//! Offline vendored subset of the `criterion` benchmark harness.
//!
//! This workspace must build with no access to the crates.io registry,
//! so the benchmark entry points the `ss-bench` suites use are
//! reimplemented as a minimal wall-clock harness: each benchmark runs a
//! calibrated batch and reports the median per-iteration time to stdout.
//! No statistics, plots, or baselines — the point is that `cargo bench`
//! and `cargo build --benches` keep working (and keep the benches
//! compiling) offline. Timing numbers are indicative only.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a displayed parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Throughput annotation (accepted, not reported).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to benchmark closures; runs the measured routine.
pub struct Bencher {
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
    samples: usize,
}

impl Bencher {
    /// Times `routine`, recording the median of several samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        times.sort();
        self.last = Some(times[times.len() / 2]);
    }

    /// Times `routine` on fresh input from `setup` (setup time excluded).
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            times.push(start.elapsed());
        }
        times.sort();
        self.last = Some(times[times.len() / 2]);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Lowers the number of timing samples for slow benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Annotates throughput (accepted for API compatibility; unused).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            last: None,
            samples: self.samples,
        };
        f(&mut b);
        match b.last {
            Some(t) => println!("bench {}/{id}: median {t:?}", self.name),
            None => println!("bench {}/{id}: no measurement", self.name),
        }
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into().id;
        self.run_one(id, f);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run_one(id.id, |b| f(b, input));
        self
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

/// The benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 32,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
