//! Offline vendored subset of the `proptest` crate.
//!
//! This workspace must build and test with no access to the crates.io
//! registry, so the property-testing surface the test suites use is
//! reimplemented here: the [`Strategy`] trait with `prop_map`, numeric
//! range and tuple strategies, `any::<T>()`, `prop::collection::vec`,
//! and the `proptest!` / `prop_assert*` / `prop_oneof!` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics immediately with the
//!   assertion's message (assertions interpolate the offending values).
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's module path, so runs are bit-reproducible — the same
//!   determinism contract the rest of this workspace enforces (no
//!   entropy sources, no wall clock). `.proptest-regressions` files are
//!   ignored.
//! * Default case count is 64 (upstream: 256), keeping the heavier
//!   simulation-driven suites inside the tier-1 time budget.

use std::fmt::Debug;
use std::ops::Range;

/// A deterministic xoshiro256++ stream used to generate test cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A stream seeded via splitmix64, so nearby seeds diverge.
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform draw in `[0, n)`. Panics on `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property is violated.
    Fail(String),
    /// The case was rejected by `prop_assume!`; try another input.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Give up after this many `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Generates values of an output type from a random stream.
///
/// Object-safe core (`new_value`) plus sized combinators, so strategies
/// can be boxed for `prop_oneof!`.
/// String strategies from `&str` patterns, as in upstream proptest —
/// restricted to the tiny regex subset this workspace uses: a single
/// character class with a bounded repetition, `[a-z]{m,n}`. Any other
/// pattern is generated verbatim as a literal string.
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        let s: &str = self;
        let parsed = (|| {
            let rest = s.strip_prefix('[')?;
            let (class, rest) = rest.split_once(']')?;
            let rest = rest.strip_prefix('{')?;
            let (bounds, rest) = rest.split_once('}')?;
            if !rest.is_empty() {
                return None;
            }
            let (lo, hi) = bounds.split_once(',')?;
            let (lo, hi) = (lo.parse::<u64>().ok()?, hi.parse::<u64>().ok()?);
            let mut chars: Vec<char> = Vec::new();
            let cs: Vec<char> = class.chars().collect();
            let mut i = 0;
            while i < cs.len() {
                if i + 2 < cs.len() && cs[i + 1] == '-' {
                    for c in cs[i]..=cs[i + 2] {
                        chars.push(c);
                    }
                    i += 3;
                } else {
                    chars.push(cs[i]);
                    i += 1;
                }
            }
            if chars.is_empty() || hi < lo {
                return None;
            }
            Some((chars, lo, hi))
        })();
        match parsed {
            Some((chars, lo, hi)) => {
                let len = lo + rng.below(hi - lo + 1);
                (0..len)
                    .map(|_| chars[rng.below(chars.len() as u64) as usize])
                    .collect()
            }
            None => s.to_string(),
        }
    }
}

/// A strategy that always yields a clone of its value (for enumerating
/// fixed variants inside `prop_oneof!`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A value with a canonical "anything goes" generator (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning many magnitudes.
        let mag = rng.unit_f64() * 1e9;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// The `any::<T>()` strategy.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

range_strategy_int!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9)
}

/// A weighted union of same-valued strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union choosing uniformly among `arms`.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].new_value(rng)
    }
}

/// Namespaced helper strategies (`prop::collection::vec`, `prop::bool`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A vector of `element` draws with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    /// Generates either boolean.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyBool;

    impl super::Strategy for AnyBool {
        type Value = bool;

        fn new_value(&self, rng: &mut super::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The canonical boolean strategy.
    pub const ANY: AnyBool = AnyBool;
}

/// Runs one property's cases; used by the `proptest!` expansion.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // FNV-1a over the test name: stable across runs and processes.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut rng = TestRng::new(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "property {name}: gave up after {rejected} rejects \
                         ({passed}/{} cases passed)",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {name} failed after {passed} passing cases: {msg}")
            }
        }
    }
}

/// Everything a property-test file imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    /// The `prop::` namespace (`prop::collection::vec`, `prop::bool::ANY`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, recording generated inputs on
/// failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{:?} == {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Skips inputs that do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Chooses uniformly among several strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` becomes
/// a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_property(
                concat!(module_path!(), "::", stringify!($name)),
                &config,
                |rng| {
                    $(let $arg = $crate::Strategy::new_value(&($strategy), rng);)+
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
    )*};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}
