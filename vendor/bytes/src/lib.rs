//! Offline vendored subset of the `bytes` crate.
//!
//! This workspace must build with no access to the crates.io registry
//! (the environments regenerating the paper's figures are frequently
//! air-gapped), so the handful of `bytes` APIs the wire codec uses are
//! reimplemented here over `Vec<u8>`/`Arc<[u8]>`. Semantics match the
//! upstream crate for the covered surface: big-endian integer accessors,
//! panic on read past the end, cheap `Bytes` clones and slices.

use std::ops::{Deref, Range};
use std::sync::Arc;

/// Read access to a byte cursor. Integer accessors are big-endian and
/// panic when fewer than the required bytes remain, exactly as the
/// upstream `bytes::Buf` does.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Fills `dst` from the cursor. Panics if not enough bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice out of bounds: {} > {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write access to a growable byte buffer. Integer writers are
/// big-endian, matching upstream `bytes::BufMut`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// An immutable, cheaply cloneable byte buffer with a read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the unread portion.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-buffer of the unread portion (`range` is relative to the
    /// current cursor). Panics when out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds for {} bytes",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.len(),
            "advance {cnt} out of bounds for {} bytes",
            self.len()
        );
        self.start += cnt;
    }
}

/// A growable byte buffer for encoding.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Appends the given bytes (inherent mirror of `BufMut::put_slice`).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Reserves capacity for at least `additional` more bytes
    /// (mirrors `bytes::BytesMut::reserve`).
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Empties the buffer, keeping its capacity (mirrors
    /// `bytes::BytesMut::clear`; lets encoders reuse one allocation).
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::new();
        w.put_u8(0xab);
        w.put_u16(0x1234);
        w.put_u32(0xdead_beef);
        w.put_u64(0x0102_0304_0506_0708);
        w.put_slice(b"xyz");
        assert_eq!(w.len(), 1 + 2 + 4 + 8 + 3);

        let mut r = w.freeze();
        assert_eq!(r.remaining(), 18);
        assert_eq!(r.get_u8(), 0xab);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn big_endian_layout() {
        let mut w = BytesMut::new();
        w.put_u16(0x0102);
        assert_eq!(&w[..], &[0x01, 0x02]);
    }

    #[test]
    fn slice_is_relative_to_cursor() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        b.advance(2);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[3, 4, 5]);
        assert_eq!(b.remaining(), 4, "slice leaves the parent untouched");
    }

    #[test]
    #[should_panic(expected = "copy_to_slice out of bounds")]
    fn overread_panics() {
        let mut b = Bytes::from(vec![1u8]);
        b.get_u16();
    }

    #[test]
    fn equality_ignores_consumed_prefix() {
        let mut a = Bytes::from(vec![9, 1, 2]);
        a.advance(1);
        assert_eq!(a, Bytes::from(vec![1, 2]));
    }
}
