//! The ss-report CLI: cross-run artifact analytics.
//!
//! ```text
//! ss-report diff <old> <new> [--out report.md] [--eps-tolerance F] [--quantile-tolerance F]
//! ss-report check <old> <new> [--quantile-tolerance F] [--metric SUBSTR]...
//! ss-report history <bench.json> [--file BENCH_history.jsonl] [--label L]
//! ```
//!
//! `<old>` / `<new>` are either a bench JSON file or a directory holding
//! `bench.json` (or `BENCH_baseline.json`) plus optional `metrics/` and
//! `profile/` artifact subdirectories — i.e. a `results/` tree, or a
//! staging directory CI assembles from committed baselines.
//!
//! `diff` always exits 0 (the report is the product; gating is CI's
//! choice via `check`). `check` exits 1 when any filtered sketch
//! quantile drifts past tolerance — the CI p99-staleness gate.

use ss_report::{check_quantiles, diff, history_line, load_run, Tolerances};
use std::path::Path;

fn usage() -> ! {
    eprintln!(
        "usage: ss-report diff <old> <new> [--out FILE] [--eps-tolerance F] \
         [--quantile-tolerance F]\n\
         \x20      ss-report check <old> <new> [--quantile-tolerance F] [--metric SUBSTR]...\n\
         \x20      ss-report history <bench.json> [--file FILE] [--label L]"
    );
    std::process::exit(2);
}

fn take_opt(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    args.remove(pos);
    if pos >= args.len() {
        eprintln!("{flag} requires a value");
        usage();
    }
    Some(args.remove(pos))
}

fn parse_frac(flag: &str, v: String) -> f64 {
    match v.parse::<f64>() {
        Ok(f) if (0.0..10.0).contains(&f) => f,
        _ => {
            eprintln!("invalid {flag} value '{v}' (want a non-negative fraction)");
            usage();
        }
    }
}

fn load_or_die(path: &str) -> ss_report::RunArtifacts {
    match load_run(Path::new(path)) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        usage();
    };
    args.remove(0);
    let mut tol = Tolerances::default();
    if let Some(v) = take_opt(&mut args, "--eps-tolerance") {
        tol.events_per_sec = parse_frac("--eps-tolerance", v);
    }
    if let Some(v) = take_opt(&mut args, "--quantile-tolerance") {
        tol.quantile = parse_frac("--quantile-tolerance", v);
    }
    match cmd.as_str() {
        "diff" => {
            let out = take_opt(&mut args, "--out");
            let [old, new] = args.as_slice() else {
                usage();
            };
            let report = diff(&load_or_die(old), &load_or_die(new), &tol);
            print!("{}", report.markdown);
            if let Some(path) = out {
                if let Err(e) = std::fs::write(&path, &report.markdown) {
                    eprintln!("error: could not write {path}: {e}");
                    std::process::exit(1);
                }
                eprintln!("# report written to {path}");
            }
            for r in &report.regressions {
                eprintln!("regression: {r}");
            }
        }
        "check" => {
            let mut filters = Vec::new();
            while let Some(m) = take_opt(&mut args, "--metric") {
                filters.push(m);
            }
            if filters.is_empty() {
                filters.push("staleness".to_string());
            }
            let [old, new] = args.as_slice() else {
                usage();
            };
            let filter_refs: Vec<&str> = filters.iter().map(String::as_str).collect();
            let report = check_quantiles(&load_or_die(old), &load_or_die(new), &tol, &filter_refs);
            print!("{}", report.markdown);
            if report.regressions.is_empty() {
                println!("# quantile gate: OK");
            } else {
                for r in &report.regressions {
                    eprintln!("regression: {r}");
                }
                std::process::exit(1);
            }
        }
        "history" => {
            let file =
                take_opt(&mut args, "--file").unwrap_or_else(|| "BENCH_history.jsonl".to_string());
            let label = take_opt(&mut args, "--label").unwrap_or_else(|| "unlabeled".to_string());
            let [bench_path] = args.as_slice() else {
                usage();
            };
            let run = load_or_die(bench_path);
            let Some(bench) = run.bench else {
                eprintln!("error: {bench_path}: no bench JSON found");
                std::process::exit(1);
            };
            let line = history_line(&bench, &label);
            use std::io::Write as _;
            let mut f = match std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&file)
            {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("error: could not open {file}: {e}");
                    std::process::exit(1);
                }
            };
            if let Err(e) = f.write_all(line.as_bytes()) {
                eprintln!("error: could not append to {file}: {e}");
                std::process::exit(1);
            }
            print!("{line}");
            eprintln!("# appended to {file}");
        }
        _ => usage(),
    }
}
