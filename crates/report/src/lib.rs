//! # ss-report — cross-run artifact analytics
//!
//! Ingests the JSONL/JSON artifacts the experiment harness writes —
//! `bench.json`, `results/metrics/*.jsonl`, and
//! `results/profile/*.profile.jsonl` — from two runs and answers "what
//! changed and where" as a markdown report: per-experiment events/s
//! deltas, phase-attribution deltas, and sketch-quantile drift against
//! configurable tolerances. A separate `history` mode appends one line
//! per bench run to the append-only `BENCH_history.jsonl` trajectory.
//!
//! Every ingested artifact must carry the workspace's
//! [`ARTIFACT_SCHEMA_VERSION`]; a mismatch (or a missing version) is a
//! hard error, never a silent best-effort parse — stale baselines must
//! be regenerated, not reinterpreted.
//!
//! Parsing is hand-rolled over the harness's fixed flat-JSON layouts
//! (the simulation stack is dependency-free by design); see
//! `crates/bench/src/bin/experiments.rs` for the writers.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

pub use ss_netsim::ARTIFACT_SCHEMA_VERSION;

/// Extracts the raw text of a `"key": value` field from one flat JSON
/// object (no nested-object values except where callers slice first).
fn raw_field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// A `"key": <number>` field of a flat JSON object.
pub fn json_f64(json: &str, key: &str) -> Option<f64> {
    raw_field(json, key)?.parse().ok()
}

/// A `"key": <integer>` field of a flat JSON object.
pub fn json_u64(json: &str, key: &str) -> Option<u64> {
    raw_field(json, key)?.parse().ok()
}

/// A `"key": "<string>"` field of a flat JSON object (no escapes — the
/// harness emits plain ASCII labels).
pub fn json_str<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Verifies the artifact's `schema_version` against the workspace's.
/// `what` names the artifact in the error ("bench.json", …).
fn check_schema(json: &str, what: &str) -> Result<(), String> {
    match json_u64(json, "schema_version") {
        Some(v) if v == u64::from(ARTIFACT_SCHEMA_VERSION) => Ok(()),
        Some(v) => Err(format!(
            "{what}: schema_version {v} does not match this tree's {ARTIFACT_SCHEMA_VERSION}; \
             regenerate the artifact with the current tools"
        )),
        None => Err(format!(
            "{what}: no schema_version field; the artifact predates versioning — \
             regenerate it with the current tools"
        )),
    }
}

/// One experiment's row of a bench JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Experiment id (e.g. `fig3`).
    pub id: String,
    /// Wall seconds for the whole experiment (nondeterministic).
    pub wall_s: f64,
    /// Exact dispatched-event count (deterministic).
    pub events: u64,
    /// events / wall_s.
    pub events_per_sec: f64,
}

/// A parsed `bench.json` / `BENCH_baseline.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRun {
    /// Whether the run used `--fast` (shortened sims).
    pub fast: bool,
    /// Sweep worker threads.
    pub threads: u64,
    /// Host metadata, verbatim (`{"os": …, "arch": …, "cpus": …}`).
    pub host: String,
    /// Per-experiment rows in run order.
    pub rows: Vec<BenchRow>,
    /// Aggregate wall seconds.
    pub total_wall_s: f64,
    /// Aggregate event count.
    pub total_events: u64,
    /// Aggregate events/s.
    pub total_events_per_sec: f64,
}

/// Parses the fixed layout `experiments bench` writes. `what` names the
/// source file for error messages.
pub fn parse_bench(json: &str, what: &str) -> Result<BenchRun, String> {
    check_schema(json, what)?;
    let need = |key: &str| -> Result<f64, String> {
        json_f64(json, key).ok_or_else(|| format!("{what}: missing field '{key}'"))
    };
    let host = json
        .find("\"host\":")
        .and_then(|at| {
            let rest = &json[at + "\"host\":".len()..];
            rest.find('}').map(|end| rest[..end + 1].trim().to_string())
        })
        .unwrap_or_else(|| "(absent)".to_string());
    let mut rows = Vec::new();
    for chunk in json.split("{\"id\": \"").skip(1) {
        let Some(id_end) = chunk.find('"') else {
            continue;
        };
        let entry = &chunk[..chunk.find('}').unwrap_or(chunk.len())];
        let (Some(wall_s), Some(events), Some(eps)) = (
            json_f64(entry, "wall_s"),
            json_u64(entry, "events"),
            json_f64(entry, "events_per_sec"),
        ) else {
            return Err(format!("{what}: malformed experiment entry: {entry}"));
        };
        rows.push(BenchRow {
            id: chunk[..id_end].to_string(),
            wall_s,
            events,
            events_per_sec: eps,
        });
    }
    Ok(BenchRun {
        fast: json.contains("\"fast\": true"),
        threads: json_u64(json, "threads").unwrap_or(0),
        host,
        rows,
        total_wall_s: need("total_wall_s")?,
        total_events: need("total_events")? as u64,
        total_events_per_sec: need("total_events_per_sec")?,
    })
}

/// One `"type":"sketch"` line of a metrics artifact: the quantile
/// summary of one distribution at one sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchLine {
    /// Sweep-point label (the `run` field).
    pub run: String,
    /// Metric name (e.g. `staleness.sketch`).
    pub metric: String,
    /// Sample count.
    pub count: u64,
    /// Quantiles in microseconds.
    pub p50_us: u64,
    /// 90th percentile (µs).
    pub p90_us: u64,
    /// 99th percentile (µs).
    pub p99_us: u64,
    /// 99.9th percentile (µs).
    pub p999_us: u64,
}

/// Parses one `results/metrics/<name>.jsonl` artifact, returning its
/// sketch lines (quantile summaries) only — the rest of the artifact is
/// compared byte-for-byte by the determinism gates, not here.
pub fn parse_metrics(content: &str, what: &str) -> Result<Vec<SketchLine>, String> {
    let header = content
        .lines()
        .next()
        .ok_or_else(|| format!("{what}: empty artifact"))?;
    check_schema(header, what)?;
    let mut out = Vec::new();
    for line in content.lines().skip(1) {
        if json_str(line, "type") != Some("sketch") {
            continue;
        }
        let need = |key: &str| -> Result<u64, String> {
            json_u64(line, key).ok_or_else(|| format!("{what}: sketch line missing '{key}'"))
        };
        out.push(SketchLine {
            run: json_str(line, "run").unwrap_or_default().to_string(),
            metric: json_str(line, "metric").unwrap_or_default().to_string(),
            count: need("count")?,
            p50_us: need("p50_us")?,
            p90_us: need("p90_us")?,
            p99_us: need("p99_us")?,
            p999_us: need("p999_us")?,
        });
    }
    Ok(out)
}

/// A parsed `results/profile/<id>.profile.jsonl` artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileArtifact {
    /// Total events the experiment reported.
    pub events_total: u64,
    /// Events attributed to named dispatch phases.
    pub events_attributed: u64,
    /// `(phase path, exact entry count)` in artifact order.
    pub phases: Vec<(String, u64)>,
}

impl ProfileArtifact {
    /// Attributed share of total events, in [0, 1]; 1 when there were
    /// no events at all.
    pub fn attribution(&self) -> f64 {
        if self.events_total == 0 {
            1.0
        } else {
            self.events_attributed as f64 / self.events_total as f64
        }
    }
}

/// Parses one committed profile artifact (counts only).
pub fn parse_profile(content: &str, what: &str) -> Result<ProfileArtifact, String> {
    let header = content
        .lines()
        .next()
        .ok_or_else(|| format!("{what}: empty artifact"))?;
    check_schema(header, what)?;
    let need = |key: &str| -> Result<u64, String> {
        json_u64(header, key).ok_or_else(|| format!("{what}: header missing '{key}'"))
    };
    let mut phases = Vec::new();
    for line in content.lines().skip(1) {
        if let (Some(phase), Some(count)) = (json_str(line, "phase"), json_u64(line, "count")) {
            phases.push((phase.to_string(), count));
        }
    }
    Ok(ProfileArtifact {
        events_total: need("events_total")?,
        events_attributed: need("events_attributed")?,
        phases,
    })
}

/// Everything ss-report can ingest from one run: a bench JSON plus any
/// metrics and profile artifacts found beside it.
#[derive(Debug, Default)]
pub struct RunArtifacts {
    /// The bench JSON, when present.
    pub bench: Option<BenchRun>,
    /// Metrics artifacts by basename (e.g. `fig3`).
    pub metrics: BTreeMap<String, Vec<SketchLine>>,
    /// Profile artifacts by experiment id.
    pub profiles: BTreeMap<String, ProfileArtifact>,
}

/// Loads a run from disk. `path` is either a bench JSON file, or a
/// directory searched for `bench.json` / `BENCH_baseline.json` plus
/// `metrics/*.jsonl` and `profile/*.profile.jsonl` subdirectories.
/// Missing pieces are fine (a run need not have all three artifact
/// kinds); malformed or version-mismatched artifacts are errors.
pub fn load_run(path: &Path) -> Result<RunArtifacts, String> {
    let mut run = RunArtifacts::default();
    let read = |p: &Path| -> Result<String, String> {
        std::fs::read_to_string(p).map_err(|e| format!("could not read {}: {e}", p.display()))
    };
    if path.is_file() {
        run.bench = Some(parse_bench(&read(path)?, &path.display().to_string())?);
        return Ok(run);
    }
    if !path.is_dir() {
        return Err(format!("{}: not a file or directory", path.display()));
    }
    for name in ["bench.json", "BENCH_baseline.json"] {
        let p = path.join(name);
        if p.is_file() {
            run.bench = Some(parse_bench(&read(&p)?, &p.display().to_string())?);
            break;
        }
    }
    let jsonl_files = |dir: &Path, suffix: &str| -> Vec<std::path::PathBuf> {
        let mut v: Vec<_> = std::fs::read_dir(dir)
            .into_iter()
            .flatten()
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .is_some_and(|n| n.to_string_lossy().ends_with(suffix))
            })
            .collect();
        v.sort();
        v
    };
    for p in jsonl_files(&path.join("metrics"), ".jsonl") {
        let name = p
            .file_stem()
            .unwrap_or_default()
            .to_string_lossy()
            .to_string();
        run.metrics
            .insert(name, parse_metrics(&read(&p)?, &p.display().to_string())?);
    }
    for p in jsonl_files(&path.join("profile"), ".profile.jsonl") {
        let stem = p
            .file_name()
            .unwrap_or_default()
            .to_string_lossy()
            .to_string();
        let id = stem.trim_end_matches(".profile.jsonl").to_string();
        run.profiles
            .insert(id, parse_profile(&read(&p)?, &p.display().to_string())?);
    }
    Ok(run)
}

/// Drift tolerances for the diff/check verdicts, as fractions.
#[derive(Debug, Clone, Copy)]
pub struct Tolerances {
    /// Allowed per-experiment events/s regression (wall-clock noise on
    /// shared runners is real; default matches bench-check's 0.5).
    pub events_per_sec: f64,
    /// Allowed relative drift of sketch quantiles (deterministic, so
    /// the default is much tighter).
    pub quantile: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            events_per_sec: 0.5,
            quantile: 0.25,
        }
    }
}

/// A rendered run-diff: the markdown report plus the flat list of
/// regressions that crossed a tolerance (empty = clean).
#[derive(Debug)]
pub struct DiffReport {
    /// The human-readable report.
    pub markdown: String,
    /// One line per tolerance violation, suitable for CI logs.
    pub regressions: Vec<String>,
}

fn pct_delta(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        if new == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (new - old) / old * 100.0
    }
}

/// Compares quantile drift between two runs' metrics artifacts,
/// appending violations to `regressions` and rows to `md`. `gate_only`
/// restricts flagged metrics to those whose name contains any needle in
/// `metric_filter` (empty = all).
fn diff_quantiles(
    old: &RunArtifacts,
    new: &RunArtifacts,
    tol: &Tolerances,
    metric_filter: &[&str],
    md: &mut String,
    regressions: &mut Vec<String>,
) {
    let mut any = false;
    for (name, old_lines) in &old.metrics {
        let Some(new_lines) = new.metrics.get(name) else {
            regressions.push(format!("{name}: metrics artifact missing from new run"));
            continue;
        };
        for o in old_lines {
            let matches_filter =
                metric_filter.is_empty() || metric_filter.iter().any(|f| o.metric.contains(f));
            if !matches_filter {
                continue;
            }
            let Some(n) = new_lines
                .iter()
                .find(|n| n.run == o.run && n.metric == o.metric)
            else {
                regressions.push(format!(
                    "{name}: sketch {} ({}) missing from new run",
                    o.metric, o.run
                ));
                continue;
            };
            if !any {
                let _ = writeln!(
                    md,
                    "\n## Quantile drift\n\n\
                     | artifact | run | metric | p99 old (µs) | p99 new (µs) | Δ% | |\n\
                     |---|---|---|---:|---:|---:|---|"
                );
                any = true;
            }
            let d = pct_delta(o.p99_us as f64, n.p99_us as f64);
            let over = d.abs() > tol.quantile * 100.0;
            let _ = writeln!(
                md,
                "| {name} | {} | {} | {} | {} | {d:+.1}% | {} |",
                o.run,
                o.metric,
                o.p99_us,
                n.p99_us,
                if over { "**drift**" } else { "" }
            );
            if over {
                regressions.push(format!(
                    "{name}: p99 {} drifted {d:+.1}% ({} -> {} µs) at {} \
                     (tolerance ±{:.0}%)",
                    o.metric,
                    o.p99_us,
                    n.p99_us,
                    o.run,
                    tol.quantile * 100.0
                ));
            }
        }
    }
    if !any {
        md.push_str("\n## Quantile drift\n\nNo comparable sketch metrics in both runs.\n");
    }
}

/// Produces the markdown run-diff between two runs: per-experiment
/// events/s and exact event-count deltas, phase-attribution deltas, and
/// sketch-quantile drift, each judged against `tol`.
pub fn diff(old: &RunArtifacts, new: &RunArtifacts, tol: &Tolerances) -> DiffReport {
    let mut md = String::from("# ss-report run diff\n");
    let mut regressions = Vec::new();

    match (&old.bench, &new.bench) {
        (Some(o), Some(n)) => {
            let _ = writeln!(
                md,
                "\n## Bench\n\nOld host: `{}` ({} threads, fast={}) — new host: `{}` \
                 ({} threads, fast={})\n",
                o.host, o.threads, o.fast, n.host, n.threads, n.fast
            );
            if o.fast != n.fast {
                md.push_str(
                    "**Warning:** runs differ in `--fast`; event counts are not \
                             comparable.\n\n",
                );
            }
            md.push_str(
                "| experiment | events old | events new | ev/s old | ev/s new | Δ ev/s | |\n\
                 |---|---:|---:|---:|---:|---:|---|\n",
            );
            for orow in &o.rows {
                let Some(nrow) = n.rows.iter().find(|r| r.id == orow.id) else {
                    regressions.push(format!("{}: experiment missing from new bench", orow.id));
                    continue;
                };
                let d = pct_delta(orow.events_per_sec, nrow.events_per_sec);
                let slow = d < -tol.events_per_sec * 100.0;
                let drifted = o.fast == n.fast && orow.events != nrow.events;
                let mut flag = String::new();
                if slow {
                    flag.push_str("**slower**");
                    regressions.push(format!(
                        "{}: events/s regressed {d:+.1}% ({:.0} -> {:.0}, floor -{:.0}%)",
                        orow.id,
                        orow.events_per_sec,
                        nrow.events_per_sec,
                        tol.events_per_sec * 100.0
                    ));
                }
                if drifted {
                    flag.push_str(" **event-count drift**");
                    regressions.push(format!(
                        "{}: deterministic event count drifted ({} -> {})",
                        orow.id, orow.events, nrow.events
                    ));
                }
                let _ = writeln!(
                    md,
                    "| {} | {} | {} | {:.0} | {:.0} | {d:+.1}% | {flag} |",
                    orow.id, orow.events, nrow.events, orow.events_per_sec, nrow.events_per_sec
                );
            }
            let d = pct_delta(o.total_events_per_sec, n.total_events_per_sec);
            let _ = writeln!(
                md,
                "| **total** | {} | {} | {:.0} | {:.0} | {d:+.1}% | |",
                o.total_events, n.total_events, o.total_events_per_sec, n.total_events_per_sec
            );
        }
        _ => md.push_str("\n## Bench\n\nBench JSON absent from one or both runs; skipped.\n"),
    }

    let mut any = false;
    for (id, op) in &old.profiles {
        let Some(np) = new.profiles.get(id) else {
            continue;
        };
        if !any {
            md.push_str(
                "\n## Phase attribution\n\n\
                 | experiment | attributed old | attributed new | phase deltas |\n\
                 |---|---:|---:|---|\n",
            );
            any = true;
        }
        // Phases whose share of attributed events moved; counts are
        // exact, so any movement is a real behavioral change.
        let mut deltas = Vec::new();
        for (phase, oc) in &op.phases {
            let nc = np
                .phases
                .iter()
                .find(|(p, _)| p == phase)
                .map_or(0, |(_, c)| *c);
            if nc != *oc {
                deltas.push(format!("`{phase}` {oc} -> {nc}"));
            }
        }
        for (phase, nc) in &np.phases {
            if !op.phases.iter().any(|(p, _)| p == phase) {
                deltas.push(format!("`{phase}` (new) {nc}"));
            }
        }
        let _ = writeln!(
            md,
            "| {id} | {:.2}% | {:.2}% | {} |",
            op.attribution() * 100.0,
            np.attribution() * 100.0,
            if deltas.is_empty() {
                "unchanged".to_string()
            } else {
                deltas.join(", ")
            }
        );
    }
    if !any {
        md.push_str("\n## Phase attribution\n\nNo profile artifacts in both runs.\n");
    }

    diff_quantiles(old, new, tol, &[], &mut md, &mut regressions);

    if regressions.is_empty() {
        md.push_str("\n## Verdict\n\nNo regressions beyond tolerance.\n");
    } else {
        md.push_str("\n## Verdict\n\nRegressions beyond tolerance:\n\n");
        for r in &regressions {
            let _ = writeln!(md, "- {r}");
        }
    }
    DiffReport {
        markdown: md,
        regressions,
    }
}

/// The quantile-drift gate: compares only sketch metrics whose name
/// contains one of `metric_filter` (default `staleness`), returning the
/// violations. Used by CI to gate p99 staleness on fig3 and recovery.
pub fn check_quantiles(
    old: &RunArtifacts,
    new: &RunArtifacts,
    tol: &Tolerances,
    metric_filter: &[&str],
) -> DiffReport {
    let mut md = String::from("# ss-report quantile gate\n");
    let mut regressions = Vec::new();
    diff_quantiles(old, new, tol, metric_filter, &mut md, &mut regressions);
    DiffReport {
        markdown: md,
        regressions,
    }
}

/// Renders the one-line `BENCH_history.jsonl` record for a bench run.
/// `label` is caller-supplied provenance (a git sha, a CI run id); the
/// trajectory file is append-only, so the history of throughput across
/// commits accumulates without ever rewriting old lines.
pub fn history_line(bench: &BenchRun, label: &str) -> String {
    format!(
        "{{\"schema_version\":{ARTIFACT_SCHEMA_VERSION},\"artifact\":\"bench_history\",\
         \"label\":\"{label}\",\"fast\":{},\"threads\":{},\"host\":{},\
         \"total_wall_s\":{:.3},\"total_events\":{},\"total_events_per_sec\":{:.0}}}\n",
        bench.fast,
        bench.threads,
        if bench.host.starts_with('{') {
            bench.host.clone()
        } else {
            format!("\"{}\"", bench.host)
        },
        bench.total_wall_s,
        bench.total_events,
        bench.total_events_per_sec
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const BENCH_OLD: &str = r#"{
  "schema_version": 1,
  "fast": false,
  "threads": 4,
  "host": {"os": "linux", "arch": "x86_64", "cpus": 8},
  "experiments": [
    {"id": "fig3", "wall_s": 2.000, "events": 1000, "events_per_sec": 500},
    {"id": "adapt", "wall_s": 1.000, "events": 400, "events_per_sec": 400}
  ],
  "total_wall_s": 3.000,
  "total_events": 1400,
  "total_events_per_sec": 466
}
"#;

    fn bench_new() -> String {
        BENCH_OLD
            .replace("\"events_per_sec\": 500", "\"events_per_sec\": 100")
            .replace("\"events\": 400", "\"events\": 401")
    }

    #[test]
    fn bench_parses() {
        let b = parse_bench(BENCH_OLD, "test").unwrap();
        assert_eq!(b.rows.len(), 2);
        assert_eq!(b.rows[0].id, "fig3");
        assert_eq!(b.rows[0].events, 1000);
        assert_eq!(b.total_events, 1400);
        assert!(b.host.contains("x86_64"));
        assert!(!b.fast);
    }

    #[test]
    fn schema_mismatch_is_refused() {
        let wrong = BENCH_OLD.replace("\"schema_version\": 1", "\"schema_version\": 99");
        let err = parse_bench(&wrong, "test").unwrap_err();
        assert!(err.contains("schema_version 99"), "{err}");
        let missing = BENCH_OLD.replace("  \"schema_version\": 1,\n", "");
        let err = parse_bench(&missing, "test").unwrap_err();
        assert!(err.contains("no schema_version"), "{err}");
    }

    #[test]
    fn metrics_sketch_lines_parse_and_require_header() {
        let art = "{\"schema_version\":1,\"artifact\":\"metrics\",\"name\":\"x\"}\n\
                   {\"run\":\"a\",\"metric\":\"staleness.sketch\",\"t_us\":5,\"type\":\"sketch\",\
                    \"count\":10,\"mean_us\":3,\"min_us\":1,\"max_us\":9,\"p50_us\":3,\
                    \"p90_us\":7,\"p99_us\":9,\"p999_us\":9}\n\
                   {\"run\":\"a\",\"metric\":\"c\",\"t_us\":5,\"type\":\"gauge\",\"value\":1.0}\n";
        let lines = parse_metrics(art, "test").unwrap();
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].metric, "staleness.sketch");
        assert_eq!(lines[0].p99_us, 9);
        let headerless = art.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert!(parse_metrics(&headerless, "test").is_err());
    }

    #[test]
    fn diff_names_regressions() {
        let old = RunArtifacts {
            bench: Some(parse_bench(BENCH_OLD, "old").unwrap()),
            ..Default::default()
        };
        let new = RunArtifacts {
            bench: Some(parse_bench(&bench_new(), "new").unwrap()),
            ..Default::default()
        };
        let report = diff(&old, &new, &Tolerances::default());
        // 500 -> 100 events/s is an 80% regression (past the 50%
        // tolerance); 400 -> 401 events is deterministic drift.
        assert_eq!(report.regressions.len(), 2, "{:?}", report.regressions);
        assert!(report.regressions[0].contains("fig3"));
        assert!(report.regressions[1].contains("adapt"));
        assert!(report.markdown.contains("**slower**"));
        assert!(report.markdown.contains("**event-count drift**"));
    }

    #[test]
    fn quantile_gate_flags_staleness_drift_only() {
        let line = |metric: &str, p99: u64| -> SketchLine {
            SketchLine {
                run: "a".into(),
                metric: metric.into(),
                count: 10,
                p50_us: 1,
                p90_us: 2,
                p99_us: p99,
                p999_us: p99,
            }
        };
        let mut old = RunArtifacts::default();
        old.metrics.insert(
            "fig3".into(),
            vec![line("staleness.sketch", 1000), line("aoi.sketch", 1000)],
        );
        let mut new = RunArtifacts::default();
        new.metrics.insert(
            "fig3".into(),
            vec![line("staleness.sketch", 2000), line("aoi.sketch", 2000)],
        );
        let report = check_quantiles(&old, &new, &Tolerances::default(), &["staleness"]);
        assert_eq!(report.regressions.len(), 1, "{:?}", report.regressions);
        assert!(report.regressions[0].contains("staleness.sketch"));
        // Within tolerance: clean.
        let report = check_quantiles(&old, &old, &Tolerances::default(), &["staleness"]);
        assert!(report.regressions.is_empty());
    }

    #[test]
    fn history_line_shape() {
        let b = parse_bench(BENCH_OLD, "test").unwrap();
        let line = history_line(&b, "abc123");
        assert!(line.starts_with("{\"schema_version\":1,\"artifact\":\"bench_history\""));
        assert!(line.contains("\"label\":\"abc123\""));
        assert!(line.contains("\"total_events\":1400"));
        assert!(line.ends_with("}\n"));
        // The line itself parses with the same helpers.
        assert_eq!(json_u64(&line, "total_events"), Some(1400));
    }
}
