//! Discrete-event simulations of the paper's protocol variants.
//!
//! * [`open_loop`] — §3: one FIFO announcement queue, no feedback.
//! * [`two_queue`] — §4: hot/cold transmission queues with proportional
//!   bandwidth sharing.
//! * [`feedback`] — §5: hot/cold queues plus receiver NACKs that promote
//!   lost records back to the hot queue (Figure 7's H/C/D machine).
//!
//! All three share the same workload and measurement machinery so their
//! results are directly comparable on common random numbers: the same
//! seed gives every variant the identical arrival/death/loss draws it
//! would have seen under any other variant.

pub mod feedback;
pub mod machine;
pub mod open_loop;
pub mod two_queue;

pub(crate) mod jobs;

/// The plain-data loss specification now lives in `ss-netsim` (one
/// audited loss module for the whole workspace); re-exported here so
/// protocol configs keep their historical path.
pub use ss_netsim::LossSpec;

/// Empirical counts of the Table 1 state changes observed in a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransitionCounts {
    /// Inconsistent record survived a lost announcement (I → I).
    pub i_to_i: u64,
    /// Inconsistent record delivered and survived (I → C).
    pub i_to_c: u64,
    /// Inconsistent record died at service (I → death).
    pub i_death: u64,
    /// Consistent record survived (C → C).
    pub c_to_c: u64,
    /// Consistent record died (C → death).
    pub c_death: u64,
}

impl TransitionCounts {
    /// Empirical transition probabilities out of the inconsistent class:
    /// `(P[I→I], P[I→C], P[I→death])`. `None` with no observations.
    pub fn from_inconsistent(&self) -> Option<(f64, f64, f64)> {
        let total = self.i_to_i + self.i_to_c + self.i_death;
        (total > 0).then(|| {
            let t = total as f64;
            (
                self.i_to_i as f64 / t,
                self.i_to_c as f64 / t,
                self.i_death as f64 / t,
            )
        })
    }

    /// Empirical probabilities out of the consistent class:
    /// `(P[C→C], P[C→death])`.
    pub fn from_consistent(&self) -> Option<(f64, f64)> {
        let total = self.c_to_c + self.c_death;
        (total > 0).then(|| {
            let t = total as f64;
            (self.c_to_c as f64 / t, self.c_death as f64 / t)
        })
    }

    /// Total services observed.
    pub fn total(&self) -> u64 {
        self.i_to_i + self.i_to_c + self.i_death + self.c_to_c + self.c_death
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_counts_probabilities() {
        let t = TransitionCounts {
            i_to_i: 10,
            i_to_c: 70,
            i_death: 20,
            c_to_c: 90,
            c_death: 10,
        };
        let (ii, ic, id) = t.from_inconsistent().unwrap();
        assert!((ii - 0.1).abs() < 1e-12);
        assert!((ic - 0.7).abs() < 1e-12);
        assert!((id - 0.2).abs() < 1e-12);
        let (cc, cd) = t.from_consistent().unwrap();
        assert!((cc - 0.9).abs() < 1e-12);
        assert!((cd - 0.1).abs() < 1e-12);
        assert_eq!(t.total(), 200);
    }

    #[test]
    fn empty_counts_give_none() {
        let t = TransitionCounts::default();
        assert_eq!(t.from_inconsistent(), None);
        assert_eq!(t.from_consistent(), None);
        assert_eq!(t.total(), 0);
    }
}
