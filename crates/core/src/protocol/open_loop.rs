//! §3: the open-loop announce/listen protocol, simulated.
//!
//! One FIFO announcement queue drains through a single server (the
//! channel, rate `μ_ch`); every service is one announcement of the head
//! record. After each service the record dies with probability `p_d`
//! (per-transmission death, as the analysis assumes), otherwise it
//! re-enters the tail of the queue for its next periodic announcement.
//! A successful (non-lost) announcement makes the record consistent at
//! the receiver.
//!
//! With [`ServiceModel::Exponential`] and [`LossSpec::Bernoulli`] this is
//! *exactly* the multi-class Jackson system of
//! [`ss_queueing::OpenLoop`], so the run reports can be checked against
//! the closed forms — which the tests below and the `validate-analysis`
//! experiment do.

use super::jobs::{JobStats, LiveJobs};
use super::{LossSpec, TransitionCounts};
use crate::workload::{ArrivalProcess, DeathProcess, ServiceModel};
use ss_netsim::metrics::{CounterId, EventKind, EventLog, MetricsSnapshot, QueueClass};
use ss_netsim::trace::{Actor, TraceKind, Tracer};
use ss_netsim::{
    run_until, run_until_traced, EventQueue, FaultSchedule, FaultSpec, Handle, LossModel,
    SimDuration, SimRng, SimTime, TracedWorld, World,
};
use std::collections::VecDeque;

/// Configuration of an open-loop announce/listen run.
#[derive(Clone, Debug)]
pub struct OpenLoopConfig {
    /// How records enter the table.
    pub arrivals: ArrivalProcess,
    /// How records leave (the analysis uses per-transmission death).
    pub death: DeathProcess,
    /// Channel service rate μ_ch in announcements/s.
    pub mu: f64,
    /// Channel loss process.
    pub loss: LossSpec,
    /// Service-time distribution.
    pub service: ServiceModel,
    /// Master seed for all random streams in this run.
    pub seed: u64,
    /// Simulated run length.
    pub duration: SimDuration,
    /// Record a `c(t)` time series with this spacing, if set.
    pub series_spacing: Option<SimDuration>,
    /// Keep up to this many typed events in the run's [`EventLog`]
    /// (0 disables event tracing).
    pub event_capacity: usize,
    /// Keep up to this many causal `ss-trace` events (0 disables causal
    /// tracing; the untraced run loop is used and tracing costs nothing).
    pub trace_capacity: usize,
}

impl OpenLoopConfig {
    /// The paper's canonical parameterization: Poisson arrivals at
    /// `lambda` records/s, per-transmission death `p_death`, Bernoulli
    /// loss `p_loss`, exponential service at `mu` — the configuration the
    /// closed forms describe.
    pub fn analytic(lambda: f64, mu: f64, p_loss: f64, p_death: f64, seed: u64) -> Self {
        OpenLoopConfig {
            arrivals: ArrivalProcess::Poisson { rate: lambda },
            death: DeathProcess::PerTransmission { p: p_death },
            mu,
            loss: LossSpec::Bernoulli(p_loss),
            service: ServiceModel::Exponential,
            seed,
            duration: SimDuration::from_secs(200_000),
            series_spacing: None,
            event_capacity: 0,
            trace_capacity: 0,
        }
    }
}

/// Everything measured in an open-loop run.
#[derive(Clone, Debug)]
pub struct OpenLoopReport {
    /// The shared §2.1 measurements.
    pub stats: JobStats,
    /// Total announcements transmitted.
    pub transmissions: u64,
    /// Announcements of records the receiver already had (redundant).
    pub redundant_transmissions: u64,
    /// Empirical Table 1 transition counts.
    pub transitions: TransitionCounts,
    /// Fraction of announcements lost by the channel.
    pub observed_loss_rate: f64,
    /// Announcements lost *only* to an active `ss-chaos` fault episode
    /// (partition, crash, silence, loss override) — 0 without faults.
    pub fault_drops: u64,
    /// Every metric of the run, frozen at the end time.
    pub metrics: MetricsSnapshot,
    /// The typed event trace (empty unless `event_capacity` was set).
    pub events: EventLog,
    /// The causal `ss-trace` log (empty unless `trace_capacity` was set).
    pub trace: Tracer,
}

impl OpenLoopReport {
    /// Fraction of bandwidth spent on redundant retransmissions —
    /// the Figure 4 quantity.
    pub fn wasted_fraction(&self) -> f64 {
        if self.transmissions == 0 {
            0.0
        } else {
            self.redundant_transmissions as f64 / self.transmissions as f64
        }
    }
}

enum Ev {
    Arrival,
    ServiceDone(Handle),
    /// Lifetime-based expiry (only scheduled under
    /// [`DeathProcess::Lifetime`]). Carries the record's generational
    /// handle: if the record died first, the handle is stale and the
    /// event is a no-op — no map lookup needed.
    LifetimeEnd(Handle),
    /// A fault-episode boundary (only scheduled with a non-empty
    /// [`FaultSpec`]): crash wipes apply here.
    FaultEdge,
}

/// Per-record protocol state, stored inline in the record's arena slot.
#[derive(Clone, Copy, Debug, Default)]
struct OlJob {
    /// Lifetime ended while in service; the record dies at the service
    /// completion instead of vanishing off the wire.
    doomed: bool,
}

struct Sim {
    cfg: OpenLoopConfig,
    queue: VecDeque<Handle>,
    serving: Option<Handle>,
    jobs: LiveJobs<OlJob>,
    loss: Box<dyn LossModel>,
    faults: FaultSchedule,
    next_id: u64,
    c_tx: CounterId,
    c_redundant: CounterId,
    c_lost: CounterId,
    c_fault_lost: CounterId,
    transitions: TransitionCounts,
    rng_arrival: SimRng,
    rng_service: SimRng,
    rng_loss: SimRng,
    rng_death: SimRng,
    rng_update: SimRng,
}

impl Sim {
    fn new(cfg: OpenLoopConfig, faults: &FaultSpec) -> Self {
        let root = SimRng::new(cfg.seed);
        let loss = cfg.loss.build_batched();
        // The schedule draws from its own derived stream, so an empty
        // spec consumes nothing and every other stream is unperturbed.
        let faults = faults.build(root.derive("faults"));
        let mut jobs = LiveJobs::new(
            SimTime::ZERO,
            cfg.series_spacing,
            cfg.event_capacity,
            cfg.trace_capacity,
        );
        let c_tx = jobs.metrics().counter("tx.total");
        let c_redundant = jobs.metrics().counter("tx.redundant");
        let c_lost = jobs.metrics().counter("tx.lost");
        let c_fault_lost = jobs.metrics().counter("faults.drops");
        Sim {
            queue: VecDeque::new(),
            serving: None,
            jobs,
            loss,
            faults,
            next_id: 0,
            c_tx,
            c_redundant,
            c_lost,
            c_fault_lost,
            transitions: TransitionCounts::default(),
            rng_arrival: root.derive("arrival"),
            rng_service: root.derive("service"),
            rng_loss: root.derive("loss"),
            rng_death: root.derive("death"),
            rng_update: root.derive("update"),
            cfg,
        }
    }

    fn spawn_record(&mut self, q: &mut EventQueue<Ev>) {
        let id = self.next_id;
        self.next_id += 1;
        let h = self.jobs.arrive(q.now(), id, OlJob::default());
        if let Some(life) = self.cfg.death.lifetime(&mut self.rng_death) {
            q.schedule_in(life, Ev::LifetimeEnd(h));
        }
        self.queue.push_back(h);
        self.maybe_start_service(q);
    }

    fn maybe_start_service(&mut self, q: &mut EventQueue<Ev>) {
        if self.serving.is_some() {
            return;
        }
        let h = loop {
            let Some(h) = self.queue.pop_front() else {
                return;
            };
            if self.jobs.contains(h) {
                break h;
            }
            // Expired while queued (lifetime death): skip.
        };
        self.serving = Some(h);
        let mut st = self
            .cfg
            .service
            .service_time(self.cfg.mu, &mut self.rng_service);
        // Bandwidth-degradation episodes stretch serialization times.
        let factor = self.faults.bandwidth_factor(q.now());
        if factor < 1.0 {
            st = SimDuration::from_micros((st.as_micros() as f64 / factor).round() as u64);
        }
        q.schedule_in(st, Ev::ServiceDone(h));
    }

    /// An arrival event: a new record, or — once an update workload's
    /// keyspace is full — an in-place update of a random live record,
    /// which makes the receiver's copy stale again. The record keeps its
    /// place in the announcement cycle, so the new version propagates on
    /// its next announcement.
    fn handle_arrival(&mut self, q: &mut EventQueue<Ev>) {
        if let ArrivalProcess::PoissonUpdates { keys, .. } = self.cfg.arrivals {
            if self.jobs.len() as u64 >= keys {
                if let Some(h) = self.jobs.random_live(&mut self.rng_update) {
                    self.jobs.invalidate(q.now(), h);
                }
                return;
            }
        }
        self.spawn_record(q);
    }

    fn schedule_next_arrival(&mut self, q: &mut EventQueue<Ev>) {
        if let Some(dt) = self.cfg.arrivals.next_interarrival(&mut self.rng_arrival) {
            q.schedule_in(dt, Ev::Arrival);
        }
    }
}

impl World for Sim {
    type Event = Ev;

    fn handle(&mut self, q: &mut EventQueue<Ev>, ev: Ev) {
        match ev {
            Ev::Arrival => {
                self.handle_arrival(q);
                self.schedule_next_arrival(q);
            }
            Ev::LifetimeEnd(h) => {
                if self.jobs.contains(h) {
                    if self.serving == Some(h) {
                        // In flight: die at service completion.
                        self.jobs.extra_mut(h).expect("live record").doomed = true;
                    } else {
                        // Waiting in the queue: removed lazily at pop.
                        if self.jobs.kill(q.now(), h) {
                            self.transitions.c_death += 1;
                        } else {
                            self.transitions.i_death += 1;
                        }
                    }
                }
            }
            Ev::ServiceDone(h) => {
                debug_assert_eq!(self.serving, Some(h));
                self.serving = None;
                let now = q.now();
                let id = self.jobs.id_of(h);
                self.jobs
                    .events()
                    .log(now, EventKind::Announce(QueueClass::Hot), id);
                let tx_id =
                    self.jobs
                        .tracer()
                        .instant(now, Actor::HotServer, TraceKind::Announce, id);
                let c_tx = self.c_tx;
                self.jobs.metrics().inc(c_tx);

                let was_consistent = self.jobs.is_consistent(h);
                if was_consistent {
                    let c_redundant = self.c_redundant;
                    self.jobs.metrics().inc(c_redundant);
                }
                // The baseline channel draw always happens (the stream
                // must not depend on the fault schedule); fault checks
                // layer on top.
                let chan_lost = self.loss.is_lost(&mut self.rng_loss);
                let fault_lost = self.faults.sender_silent(now)
                    || self.faults.data_blocked(now)
                    || self.faults.receiver_down(now, 0)
                    || self.faults.extra_loss(now);
                let lost = chan_lost || fault_lost;
                if lost {
                    let c_lost = self.c_lost;
                    self.jobs.metrics().inc(c_lost);
                    self.jobs.events().log(now, EventKind::Drop, id);
                    if fault_lost && !chan_lost {
                        let c_fault = self.c_fault_lost;
                        self.jobs.metrics().inc(c_fault);
                        self.jobs.tracer().instant_labeled(
                            now,
                            Actor::Channel,
                            TraceKind::Drop,
                            id,
                            tx_id,
                            "fault",
                        );
                    } else {
                        self.jobs.tracer().instant_under(
                            now,
                            Actor::Channel,
                            TraceKind::Drop,
                            id,
                            tx_id,
                        );
                    }
                }
                let dies = self.cfg.death.dies_after_service(&mut self.rng_death)
                    || self.jobs.extra(h).expect("serving record is live").doomed;
                let outcome = super::machine::classify_service(was_consistent, lost, dies);
                self.transitions.record(outcome.transition);
                if outcome.delivers {
                    self.jobs.deliver(q.now(), h, tx_id);
                }
                if outcome.survives {
                    self.queue.push_back(h);
                } else {
                    self.jobs.kill(q.now(), h);
                }
                self.maybe_start_service(q);
            }
            Ev::FaultEdge => {
                // A receiver crash beginning now wipes the replica: every
                // consistent record is stale again and must re-propagate
                // through the announcement cycle after the restart.
                if !self.faults.crashes_at(q.now()).is_empty() {
                    self.jobs.wipe(q.now());
                }
            }
        }
    }
}

impl TracedWorld for Sim {
    fn tracer(&mut self) -> &mut Tracer {
        self.jobs.tracer()
    }

    fn event_label(ev: &Ev) -> &'static str {
        match ev {
            Ev::Arrival => "arrival",
            Ev::ServiceDone(_) => "service-done",
            Ev::LifetimeEnd(_) => "lifetime-end",
            Ev::FaultEdge => "fault-edge",
        }
    }
}

std::thread_local! {
    /// Recycled event-queue allocation: sweep workers run many points
    /// back-to-back, and a cleared queue is indistinguishable from a
    /// fresh one (see `EventQueue::clear`), so reuse only saves the
    /// re-growth of the heap.
    static QUEUE_POOL: std::cell::RefCell<EventQueue<Ev>> =
        std::cell::RefCell::new(EventQueue::with_capacity(256));
}

/// Runs an open-loop announce/listen simulation to completion and reports
/// the paper's metrics.
pub fn run(cfg: &OpenLoopConfig) -> OpenLoopReport {
    run_faulted(cfg, &FaultSpec::none())
}

/// [`run`] under an `ss-chaos` fault schedule. With the empty spec this
/// is byte-identical to [`run`]: the schedule consumes no randomness and
/// blocks nothing.
pub fn run_faulted(cfg: &OpenLoopConfig, faults: &FaultSpec) -> OpenLoopReport {
    let mut sim = Sim::new(cfg.clone(), faults);
    let mut q: EventQueue<Ev> = QUEUE_POOL.with(|c| std::mem::take(&mut *c.borrow_mut()));
    let end = SimTime::ZERO + cfg.duration;

    if sim.jobs.tracer().is_enabled() {
        let Sim { faults, jobs, .. } = &mut sim;
        faults.record_spans(jobs.tracer());
    }
    for t in sim.faults.boundaries() {
        if t < end {
            q.schedule(t, Ev::FaultEdge);
        }
    }
    for _ in 0..cfg.arrivals.initial_count() {
        sim.spawn_record(&mut q);
    }
    sim.schedule_next_arrival(&mut q);

    // The traced/profiled loops add a per-dispatch branch; runs without
    // either keep the plain loop so observation is zero-cost when off.
    if ss_netsim::profile::is_enabled() {
        ss_netsim::run_until_profiled(&mut sim, &mut q, end);
        ss_netsim::profile::flush();
    } else if sim.jobs.tracer().is_enabled() {
        run_until_traced(&mut sim, &mut q, end);
    } else {
        run_until(&mut sim, &mut q, end);
    }

    let transmissions = sim.jobs.metrics().counter_value(sim.c_tx);
    let redundant = sim.jobs.metrics().counter_value(sim.c_redundant);
    let lost = sim.jobs.metrics().counter_value(sim.c_lost);
    let c_dispatched = sim.jobs.metrics().counter("engine.events_dispatched");
    sim.jobs.metrics().add(c_dispatched, q.dispatched());
    let c_scheduled = sim.jobs.metrics().counter("engine.events_scheduled");
    sim.jobs.metrics().add(c_scheduled, q.scheduled());

    let observed_loss_rate = if transmissions == 0 {
        0.0
    } else {
        lost as f64 / transmissions as f64
    };
    let fault_drops = sim.jobs.metrics().counter_value(sim.c_fault_lost);
    let (stats, metrics, events, trace) = sim.jobs.finish(end);
    q.clear();
    QUEUE_POOL.with(|c| *c.borrow_mut() = q);
    OpenLoopReport {
        stats,
        transmissions,
        redundant_transmissions: redundant,
        transitions: sim.transitions,
        observed_loss_rate,
        fault_drops,
        metrics,
        events,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_queueing::OpenLoop;

    /// A standard validation run: stable, moderate loss/death.
    fn validation_cfg(seed: u64) -> OpenLoopConfig {
        let mut c = OpenLoopConfig::analytic(2.0, 16.0, 0.2, 0.25, seed);
        c.duration = SimDuration::from_secs(100_000);
        c
    }

    #[test]
    fn matches_jackson_consistency() {
        let cfg = validation_cfg(11);
        let report = run(&cfg);
        let model = OpenLoop::new(2.0, 16.0, 0.2, 0.25);
        assert!(model.is_stable());

        let sim_busy = report.stats.consistency.busy.unwrap();
        let th_busy = model.consistency_busy();
        assert!(
            (sim_busy - th_busy).abs() < 0.02,
            "busy consistency: sim {sim_busy} vs theory {th_busy}"
        );

        let sim_un = report.stats.consistency.unnormalized;
        let th_un = model.consistency_unnormalized();
        assert!(
            (sim_un - th_un).abs() < 0.02,
            "unnormalized: sim {sim_un} vs theory {th_un}"
        );
    }

    #[test]
    fn matches_jackson_occupancy_and_waste() {
        let cfg = validation_cfg(12);
        let report = run(&cfg);
        let model = OpenLoop::new(2.0, 16.0, 0.2, 0.25);

        let sim_n = report.stats.mean_live_records;
        let th_n = model.mean_live_records();
        assert!(
            (sim_n - th_n).abs() / th_n < 0.05,
            "E[n]: sim {sim_n} vs theory {th_n}"
        );

        let sim_w = report.wasted_fraction();
        let th_w = model.wasted_bandwidth_fraction();
        assert!(
            (sim_w - th_w).abs() < 0.02,
            "wasted: sim {sim_w} vs theory {th_w}"
        );
    }

    #[test]
    fn empirical_transitions_match_table1() {
        let cfg = validation_cfg(13);
        let report = run(&cfg);
        let t = ss_queueing::Transitions::new(0.2, 0.25);
        let (ii, ic, id) = report.transitions.from_inconsistent().unwrap();
        assert!((ii - t.i_to_i).abs() < 0.01, "I->I {ii} vs {}", t.i_to_i);
        assert!((ic - t.i_to_c).abs() < 0.01, "I->C {ic} vs {}", t.i_to_c);
        assert!((id - t.i_death).abs() < 0.01, "I->D {id} vs {}", t.i_death);
        let (cc, cd) = report.transitions.from_consistent().unwrap();
        assert!((cc - t.c_to_c).abs() < 0.01, "C->C {cc} vs {}", t.c_to_c);
        assert!((cd - t.c_death).abs() < 0.01, "C->D {cd} vs {}", t.c_death);
    }

    #[test]
    fn observed_loss_tracks_spec() {
        let report = run(&validation_cfg(14));
        assert!((report.observed_loss_rate - 0.2).abs() < 0.01);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&validation_cfg(7));
        let b = run(&validation_cfg(7));
        assert_eq!(a.transmissions, b.transmissions);
        assert_eq!(a.stats.arrivals, b.stats.arrivals);
        assert_eq!(
            a.stats.consistency.unnormalized,
            b.stats.consistency.unnormalized
        );
    }

    #[test]
    fn bulk_workload_is_eventually_consistent() {
        // Static input + no death: every record is eventually delivered
        // despite 50% loss — the paper's "quasi-reliable" property.
        let cfg = OpenLoopConfig {
            arrivals: ArrivalProcess::Bulk { count: 50 },
            death: DeathProcess::Immortal,
            mu: 20.0,
            loss: LossSpec::Bernoulli(0.5),
            service: ServiceModel::Deterministic,
            seed: 3,
            duration: SimDuration::from_secs(500),
            series_spacing: None,
            event_capacity: 0,
            trace_capacity: 0,
        };
        let report = run(&cfg);
        assert_eq!(report.stats.latency.count(), 50, "all records delivered");
        assert_eq!(report.stats.final_live, 50);
        // Consistency converges to 1 and stays: late-run instantaneous
        // average is near 1.
        assert!(report.stats.consistency.busy.unwrap() > 0.9);
    }

    #[test]
    fn higher_loss_lowers_consistency() {
        let lo = run(&OpenLoopConfig::analytic(2.0, 16.0, 0.05, 0.25, 5));
        let hi = run(&OpenLoopConfig::analytic(2.0, 16.0, 0.60, 0.25, 5));
        assert!(lo.stats.consistency.busy.unwrap() > hi.stats.consistency.busy.unwrap() + 0.1);
    }

    #[test]
    fn empty_fault_spec_is_byte_identical() {
        let cfg = validation_cfg(31);
        let a = run(&cfg);
        let b = run_faulted(&cfg, &FaultSpec::none());
        assert_eq!(a.transmissions, b.transmissions);
        assert_eq!(a.stats.arrivals, b.stats.arrivals);
        assert_eq!(
            a.stats.consistency.unnormalized.to_bits(),
            b.stats.consistency.unnormalized.to_bits()
        );
        assert_eq!(a.fault_drops, 0);
    }

    fn bulk_lossless(seed: u64) -> OpenLoopConfig {
        OpenLoopConfig {
            arrivals: ArrivalProcess::Bulk { count: 30 },
            death: DeathProcess::Immortal,
            mu: 20.0,
            loss: LossSpec::None,
            service: ServiceModel::Deterministic,
            seed,
            duration: SimDuration::from_secs(100),
            series_spacing: None,
            event_capacity: 0,
            trace_capacity: 0,
        }
    }

    #[test]
    fn partition_blocks_then_heals() {
        let faults = FaultSpec::none().partition(SimTime::from_secs(1), SimTime::from_secs(20));
        let r = run_faulted(&bulk_lossless(41), &faults);
        assert!(r.fault_drops > 0, "partition dropped announcements");
        assert_eq!(
            r.stats.latency.count(),
            30,
            "every record delivered after heal"
        );
        assert_eq!(r.stats.final_live, 30);
    }

    #[test]
    fn receiver_crash_wipes_and_reconverges() {
        // All 30 records are consistent well before t=30; the crash wipes
        // the replica (30 update transitions), the down episode drops the
        // cycle's announcements, and after restart every record is
        // re-delivered: exactly 60 I → C transitions in total.
        let faults =
            FaultSpec::none().receiver_crash(SimTime::from_secs(30), SimTime::from_secs(40), 0);
        let r = run_faulted(&bulk_lossless(42), &faults);
        assert_eq!(r.stats.updates, 30, "crash wipe flips every record");
        assert_eq!(r.metrics.counter("records.delivered"), 60);
        assert!(r.fault_drops > 0);
        assert!(r.stats.consistency.busy.unwrap() > 0.8);
    }

    #[test]
    fn faulted_runs_replay_bit_for_bit() {
        let faults = FaultSpec::generate(&mut SimRng::new(5), 1, SimDuration::from_secs(100), 3);
        let a = run_faulted(&bulk_lossless(43), &faults);
        let b = run_faulted(&bulk_lossless(43), &faults);
        assert_eq!(a.transmissions, b.transmissions);
        assert_eq!(a.fault_drops, b.fault_drops);
        assert_eq!(
            a.stats.consistency.unnormalized.to_bits(),
            b.stats.consistency.unnormalized.to_bits()
        );
    }

    #[test]
    fn deterministic_service_close_to_exponential_metric() {
        // §3: the metric depends on the mean loss process, and the
        // consistent-fraction is also insensitive to the service
        // distribution (the class split is per-service, not per-time).
        let mut cfg = validation_cfg(21);
        let exp = run(&cfg);
        cfg.service = ServiceModel::Deterministic;
        let det = run(&cfg);
        let a = exp.stats.consistency.busy.unwrap();
        let b = det.stats.consistency.busy.unwrap();
        assert!((a - b).abs() < 0.03, "exp {a} vs det {b}");
    }
}

#[cfg(test)]
mod update_workload_tests {
    use super::*;

    #[test]
    fn keyspace_stays_bounded_and_updates_invalidate() {
        let cfg = OpenLoopConfig {
            arrivals: ArrivalProcess::PoissonUpdates {
                rate: 5.0,
                keys: 20,
            },
            death: DeathProcess::Immortal,
            mu: 30.0,
            loss: LossSpec::Bernoulli(0.1),
            service: ServiceModel::Exponential,
            seed: 77,
            duration: SimDuration::from_secs(2_000),
            series_spacing: None,
            event_capacity: 0,
            trace_capacity: 0,
        };
        let r = run(&cfg);
        assert_eq!(r.stats.final_live, 20, "keyspace bounded at 20");
        assert_eq!(r.stats.arrivals, 20);
        assert!(
            r.stats.updates > 1_000,
            "updates happened: {}",
            r.stats.updates
        );
        // Updates keep knocking records inconsistent, so steady-state
        // consistency sits strictly below 1 but well above 0: the cycle
        // re-propagates each new version.
        let c = r.stats.consistency.busy.unwrap();
        assert!((0.5..0.999).contains(&c), "churned consistency {c}");
    }

    #[test]
    fn faster_updates_lower_consistency() {
        let mk = |rate: f64| OpenLoopConfig {
            arrivals: ArrivalProcess::PoissonUpdates { rate, keys: 20 },
            death: DeathProcess::Immortal,
            mu: 30.0,
            loss: LossSpec::Bernoulli(0.1),
            service: ServiceModel::Exponential,
            seed: 78,
            duration: SimDuration::from_secs(2_000),
            series_spacing: None,
            event_capacity: 0,
            trace_capacity: 0,
        };
        let slow = run(&mk(1.0)).stats.consistency.busy.unwrap();
        let fast = run(&mk(20.0)).stats.consistency.busy.unwrap();
        assert!(
            slow > fast + 0.1,
            "churn must hurt: slow {slow} vs fast {fast}"
        );
    }
}
