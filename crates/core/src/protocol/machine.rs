//! The pure Table 1 / Figure 7 transition machine shared by the three
//! protocol simulations.
//!
//! Every variant ([`super::open_loop`], [`super::two_queue`],
//! [`super::feedback`]) ends a data service the same way: the channel
//! draw and death draw happen (in the variant's own stream order), and
//! then a *pure* classification decides what the service did to the
//! record — which Table 1 transition it was, whether the receiver
//! installs the value, and whether the record survives to re-enter a
//! queue. Figure 7's sender-side location machine (Hot → Cold on
//! transmission, Cold → Hot on NACK) and the NACK-generation rule are
//! equally draw-free. This module holds those decisions as pure
//! functions so the `ss-verify` explorer can check them exhaustively and
//! the simulations cannot drift apart on the shared protocol semantics.
//!
//! Nothing here draws randomness, reads a clock, or touches a channel:
//! inputs are booleans the caller already drew, outputs are plain data.

use super::TransitionCounts;

/// One Table 1 state change, observed at a service completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transition {
    /// A consistent record was (redundantly) announced and survived.
    CtoC,
    /// An inconsistent record was delivered and survived.
    ItoC,
    /// An inconsistent record's announcement was lost; it survived.
    ItoI,
    /// A consistent record died at this service.
    CDeath,
    /// An inconsistent record died at this service.
    IDeath,
}

/// The full consequence of one data-service completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceOutcome {
    /// The Table 1 transition this service performed.
    pub transition: Transition,
    /// Whether the receiver installs the value now (the announcement
    /// arrived and the receiver did not already hold it). Delivery
    /// happens even when the record dies at this same service: a record
    /// can be received by its final announcement.
    pub delivers: bool,
    /// Whether the record survives to re-enter a transmission queue.
    pub survives: bool,
}

/// Classifies a data-service completion per Table 1. `was_consistent`
/// is the receiver's state *before* this announcement, `lost` is the
/// composed channel verdict (baseline loss or an active fault), and
/// `dies` is the per-transmission death draw (or a deferred lifetime
/// death).
pub fn classify_service(was_consistent: bool, lost: bool, dies: bool) -> ServiceOutcome {
    let delivers = !lost && !was_consistent;
    let transition = match (was_consistent, lost, dies) {
        (true, _, true) => Transition::CDeath,
        (false, _, true) => Transition::IDeath,
        (true, _, false) => Transition::CtoC,
        (false, false, false) => Transition::ItoC,
        (false, true, false) => Transition::ItoI,
    };
    ServiceOutcome {
        transition,
        delivers,
        survives: !dies,
    }
}

impl TransitionCounts {
    /// Tallies one observed transition.
    // lint: allow(D008, statistics tally on plain counters; no protocol state is mutated)
    pub fn record(&mut self, t: Transition) {
        match t {
            Transition::CtoC => self.c_to_c += 1,
            Transition::ItoC => self.i_to_c += 1,
            Transition::ItoI => self.i_to_i += 1,
            Transition::CDeath => self.c_death += 1,
            Transition::IDeath => self.i_death += 1,
        }
    }
}

/// Where a live record currently sits at the sender — Figure 7's three
/// live states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Loc {
    /// Waiting in the hot (foreground) queue.
    Hot,
    /// Waiting in the cold (background) queue.
    Cold,
    /// Currently being transmitted by one of the data servers. A NACK
    /// arriving now must not promote it — it is already on the wire, and
    /// promoting would duplicate it across queues.
    Serving,
}

/// Figure 7's Cold → Hot edge: a delivered NACK promotes the record only
/// if it is still live, still waiting in the cold queue, and still
/// missing at the receiver. Any other combination makes the NACK moot
/// (the record died, is already hot or on the wire, or was delivered in
/// the meantime).
pub fn should_promote(loc: Option<Loc>, live: bool, consistent: bool) -> bool {
    loc == Some(Loc::Cold) && live && !consistent
}

/// The receiver's NACK-generation rule: NACK a loss it *observed*
/// (baseline channel loss — a fault-induced loss is invisible, the
/// receiver being partitioned or down) of a record it does not yet hold,
/// when a feedback channel exists and no NACK for the record is already
/// pending or in flight.
pub fn should_nack(
    chan_lost: bool,
    fault_lost: bool,
    was_consistent: bool,
    has_feedback: bool,
    already_pending: bool,
) -> bool {
    chan_lost && !fault_lost && !was_consistent && has_feedback && !already_pending
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_table1() {
        // Dying dominates: the record leaves regardless of loss.
        assert_eq!(
            classify_service(true, false, true).transition,
            Transition::CDeath
        );
        assert_eq!(
            classify_service(true, true, true).transition,
            Transition::CDeath
        );
        assert_eq!(
            classify_service(false, true, true).transition,
            Transition::IDeath
        );
        // Survivors split on (consistency, loss).
        assert_eq!(
            classify_service(true, true, false).transition,
            Transition::CtoC
        );
        assert_eq!(
            classify_service(true, false, false).transition,
            Transition::CtoC
        );
        assert_eq!(
            classify_service(false, false, false).transition,
            Transition::ItoC
        );
        assert_eq!(
            classify_service(false, true, false).transition,
            Transition::ItoI
        );
    }

    #[test]
    fn delivery_is_orthogonal_to_death() {
        // A record can be received by its final announcement.
        let o = classify_service(false, false, true);
        assert!(o.delivers && !o.survives);
        // A redundant announcement never re-delivers.
        assert!(!classify_service(true, false, false).delivers);
        // A lost announcement never delivers.
        assert!(!classify_service(false, true, false).delivers);
    }

    #[test]
    fn transition_counts_tally() {
        let mut t = TransitionCounts::default();
        t.record(Transition::ItoC);
        t.record(Transition::ItoC);
        t.record(Transition::CDeath);
        assert_eq!(t.i_to_c, 2);
        assert_eq!(t.c_death, 1);
        assert_eq!(t.total(), 3);
    }

    #[test]
    fn promotion_needs_cold_live_inconsistent() {
        assert!(should_promote(Some(Loc::Cold), true, false));
        assert!(!should_promote(Some(Loc::Cold), true, true), "already held");
        assert!(!should_promote(Some(Loc::Cold), false, false), "dead");
        assert!(!should_promote(Some(Loc::Hot), true, false), "already hot");
        assert!(
            !should_promote(Some(Loc::Serving), true, false),
            "on the wire"
        );
        assert!(!should_promote(None, true, false), "untracked");
    }

    #[test]
    fn nack_rule_matches_receiver_visibility() {
        assert!(should_nack(true, false, false, true, false));
        assert!(!should_nack(false, false, false, true, false), "no loss");
        assert!(
            !should_nack(true, true, false, true, false),
            "fault loss is invisible"
        );
        assert!(
            !should_nack(true, false, true, true, false),
            "already consistent"
        );
        assert!(
            !should_nack(true, false, false, false, false),
            "no feedback channel"
        );
        assert!(
            !should_nack(true, false, false, true, true),
            "NACK already pending"
        );
    }
}
