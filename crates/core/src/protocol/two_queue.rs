//! §4: multiple transmission queues — "hot" (foreground, new data) and
//! "cold" (background, already-transmitted data).
//!
//! A new record is announced once through the hot queue and then moves to
//! the cold queue, which cycles through its contents forever (periodic
//! background retransmission). The data bandwidth `μ_data` is split
//! between the queues; the paper evaluates the split's effect on
//! consistency (Figure 5) and receive latency (Figure 6).
//!
//! Two sharing modes are provided:
//!
//! * [`Sharing::Partitioned`] — hot and cold are independent servers at
//!   `μ_hot` and `μ_cold`. This matches the figures' sweeps directly
//!   (e.g. `μ_cold → 0` really does mean "no retransmissions, ever"),
//!   and is the default for the experiment presets.
//! * [`Sharing::WorkConserving`] — one server at `μ_hot + μ_cold` with a
//!   proportional-share scheduler (lottery/stride/SFQ/DRR/priority)
//!   choosing the next queue, so "unused excess hot bandwidth is consumed
//!   by transmissions from the cold queue" as §4 describes. Used by the
//!   scheduler-ablation experiment.

use super::jobs::{JobStats, LiveJobs};
use super::LossSpec;
use crate::workload::{ArrivalProcess, DeathProcess, ServiceModel};
use ss_netsim::metrics::{AverageId, CounterId, EventKind, EventLog, MetricsSnapshot, QueueClass};
use ss_netsim::trace::{Actor, TraceKind, Tracer};
use ss_netsim::{
    run_until, run_until_traced, EventQueue, FaultSchedule, FaultSpec, Handle, LossModel,
    SimDuration, SimRng, SimTime, TracedWorld, World,
};
use ss_sched::{Drr, Lottery, Metered, Scheduler, Sfq, StrictPriority, Stride};
use std::collections::VecDeque;

/// Which transmission queue served a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Src {
    /// The foreground (new data) queue.
    Hot,
    /// The background (retransmission) queue.
    Cold,
}

/// The proportional-share policy for work-conserving sharing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Randomized lottery scheduling.
    Lottery,
    /// Deterministic stride scheduling.
    Stride,
    /// Start-time fair queueing.
    Sfq,
    /// Deficit round robin.
    Drr,
    /// Strict priority (hot first) — the starvation baseline.
    Priority,
}

impl Policy {
    /// Builds the scheduler with classes 0 = hot, 1 = cold.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match self {
            Policy::Lottery => Box::new(Lottery::new()),
            Policy::Stride => Box::new(Stride::new()),
            Policy::Sfq => Box::new(Sfq::new()),
            Policy::Drr => Box::new(Drr::new(1)),
            Policy::Priority => Box::new(StrictPriority::new()),
        }
    }
}

/// How the hot and cold queues share the data bandwidth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sharing {
    /// Independent servers at `μ_hot` / `μ_cold`.
    Partitioned,
    /// One server at `μ_hot + μ_cold`, queue chosen per packet by the
    /// policy with weights proportional to the two rates.
    WorkConserving(Policy),
}

/// Configuration of a two-queue run.
#[derive(Clone, Debug)]
pub struct TwoQueueConfig {
    /// How records enter the table.
    pub arrivals: ArrivalProcess,
    /// How records leave.
    pub death: DeathProcess,
    /// Foreground bandwidth in announcements/s (μ_hot).
    pub mu_hot: f64,
    /// Background bandwidth in announcements/s (μ_cold).
    pub mu_cold: f64,
    /// Channel loss process (shared by both queues — same channel).
    pub loss: LossSpec,
    /// Service-time distribution.
    pub service: ServiceModel,
    /// Bandwidth sharing mode.
    pub sharing: Sharing,
    /// Master seed.
    pub seed: u64,
    /// Simulated run length.
    pub duration: SimDuration,
    /// Record a `c(t)` series with this spacing, if set.
    pub series_spacing: Option<SimDuration>,
    /// Keep up to this many typed events in the run's [`EventLog`]
    /// (0 disables event tracing).
    pub event_capacity: usize,
    /// Keep up to this many causal [`Tracer`] events (0 disables causal
    /// tracing and makes it cost one branch per would-be record).
    pub trace_capacity: usize,
}

/// Everything measured in a two-queue run.
#[derive(Clone, Debug)]
pub struct TwoQueueReport {
    /// The shared §2.1 measurements.
    pub stats: JobStats,
    /// Announcements sent from the hot queue.
    pub hot_transmissions: u64,
    /// Announcements sent from the cold queue.
    pub cold_transmissions: u64,
    /// Announcements of already-consistent records.
    pub redundant_transmissions: u64,
    /// Fraction of announcements lost.
    pub observed_loss_rate: f64,
    /// Announcements lost *only* to an active `ss-chaos` fault episode
    /// (partition, crash, silence, loss override) — 0 without faults.
    pub fault_drops: u64,
    /// Time-averaged hot-queue backlog (diverges when `λ > μ_hot`).
    pub mean_hot_backlog: f64,
    /// Hot-queue length at the end of the run.
    pub final_hot_backlog: usize,
    /// Every metric of the run, frozen at the end time. Work-conserving
    /// runs additionally carry per-class `sched.*` counters.
    pub metrics: MetricsSnapshot,
    /// The typed event trace (empty unless `event_capacity` was set).
    pub events: EventLog,
    /// The causal trace (empty unless `trace_capacity` was set).
    pub trace: Tracer,
}

impl TwoQueueReport {
    /// Total announcements.
    pub fn transmissions(&self) -> u64 {
        self.hot_transmissions + self.cold_transmissions
    }

    /// The Figure 4 quantity for this variant.
    pub fn wasted_fraction(&self) -> f64 {
        let t = self.transmissions();
        if t == 0 {
            0.0
        } else {
            self.redundant_transmissions as f64 / t as f64
        }
    }
}

enum Ev {
    Arrival,
    Done {
        h: Handle,
        src: Src,
    },
    /// Lifetime-based expiry (only under [`DeathProcess::Lifetime`]).
    /// Carries the record's generational handle: stale after death.
    LifetimeEnd(Handle),
    /// A fault-episode boundary (only scheduled with a non-empty
    /// [`FaultSpec`]): crash wipes apply here.
    FaultEdge,
}

/// Per-record protocol state, stored inline in the record's arena slot.
#[derive(Clone, Copy, Debug, Default)]
struct TqJob {
    /// Currently on the wire (for lifetime-death deferral).
    in_service: bool,
    /// Lifetime ended mid-service; killed at completion.
    doomed: bool,
}

struct Sim {
    cfg: TwoQueueConfig,
    hot: VecDeque<Handle>,
    cold: VecDeque<Handle>,
    /// Partitioned mode: per-server busy records. Work-conserving mode:
    /// only `busy_hot` is used, for the single shared server.
    busy_hot: bool,
    busy_cold: bool,
    sched: Option<Metered<Box<dyn Scheduler>>>,
    jobs: LiveJobs<TqJob>,
    loss: Box<dyn LossModel>,
    faults: FaultSchedule,
    next_id: u64,
    c_hot_tx: CounterId,
    c_cold_tx: CounterId,
    c_redundant: CounterId,
    c_lost: CounterId,
    c_fault_lost: CounterId,
    a_hot_backlog: AverageId,
    rng_arrival: SimRng,
    rng_service: SimRng,
    rng_loss: SimRng,
    rng_death: SimRng,
    rng_sched: SimRng,
    rng_update: SimRng,
}

const HOT: usize = 0;
const COLD: usize = 1;

/// Pops the next live record from `queue` (skipping stale handles of
/// lifetime-expired records left behind for lazy removal).
fn pop_live(queue: &mut VecDeque<Handle>, jobs: &LiveJobs<TqJob>) -> Option<Handle> {
    while let Some(h) = queue.pop_front() {
        if jobs.contains(h) {
            return Some(h);
        }
    }
    None
}

/// Drops dead records from the head of `queue`.
fn purge_dead(queue: &mut VecDeque<Handle>, jobs: &LiveJobs<TqJob>) {
    while let Some(&h) = queue.front() {
        if jobs.contains(h) {
            break;
        }
        queue.pop_front();
    }
}

/// Scales the two rates into small integer scheduler weights (granularity
/// 1/20 of the total), keeping round-robin-style policies like DRR from
/// serving enormous bursts per class visit.
fn weights_of(mu_hot: f64, mu_cold: f64) -> (u64, u64) {
    let total = mu_hot + mu_cold;
    if total <= 0.0 {
        return (0, 0);
    }
    let w = |mu: f64| -> u64 {
        if mu <= 0.0 {
            0
        } else {
            ((mu / total * 20.0).round() as u64).max(1)
        }
    };
    (w(mu_hot), w(mu_cold))
}

impl Sim {
    fn new(cfg: TwoQueueConfig, faults: &FaultSpec) -> Self {
        let root = SimRng::new(cfg.seed);
        let loss = cfg.loss.build_batched();
        // The schedule draws from its own derived stream, so an empty
        // spec consumes nothing and every other stream is unperturbed.
        let faults = faults.build(root.derive("faults"));
        let sched = match cfg.sharing {
            Sharing::Partitioned => None,
            Sharing::WorkConserving(policy) => {
                let mut s = Metered::new(policy.build());
                let (wh, wc) = weights_of(cfg.mu_hot, cfg.mu_cold);
                s.set_weight(HOT, wh);
                s.set_weight(COLD, wc);
                Some(s)
            }
        };
        let mut jobs = LiveJobs::new(
            SimTime::ZERO,
            cfg.series_spacing,
            cfg.event_capacity,
            cfg.trace_capacity,
        );
        let c_hot_tx = jobs.metrics().counter("tx.hot");
        let c_cold_tx = jobs.metrics().counter("tx.cold");
        let c_redundant = jobs.metrics().counter("tx.redundant");
        let c_lost = jobs.metrics().counter("tx.lost");
        let c_fault_lost = jobs.metrics().counter("faults.drops");
        let a_hot_backlog =
            jobs.metrics()
                .time_average("queue.hot.backlog", SimTime::ZERO, 0.0, SimDuration::ZERO);
        Sim {
            hot: VecDeque::new(),
            cold: VecDeque::new(),
            busy_hot: false,
            busy_cold: false,
            sched,
            jobs,
            loss,
            faults,
            next_id: 0,
            c_hot_tx,
            c_cold_tx,
            c_redundant,
            c_lost,
            c_fault_lost,
            a_hot_backlog,
            rng_arrival: root.derive("arrival"),
            rng_service: root.derive("service"),
            rng_loss: root.derive("loss"),
            rng_death: root.derive("death"),
            rng_sched: root.derive("sched"),
            rng_update: root.derive("update"),
            cfg,
        }
    }

    /// Stretches a service time under an active bandwidth-degradation
    /// episode (identity without one).
    fn degraded(&self, now: SimTime, st: SimDuration) -> SimDuration {
        let factor = self.faults.bandwidth_factor(now);
        if factor < 1.0 {
            SimDuration::from_micros((st.as_micros() as f64 / factor).round() as u64)
        } else {
            st
        }
    }

    fn note_hot_backlog(&mut self, now: SimTime) {
        let backlog = self.hot.len() as f64;
        self.jobs
            .metrics()
            .record_sample(self.a_hot_backlog, now, backlog);
    }

    fn spawn_record(&mut self, q: &mut EventQueue<Ev>) {
        let id = self.next_id;
        self.next_id += 1;
        let h = self.jobs.arrive(q.now(), id, TqJob::default());
        if let Some(life) = self.cfg.death.lifetime(&mut self.rng_death) {
            q.schedule_in(life, Ev::LifetimeEnd(h));
        }
        self.hot.push_back(h);
        self.note_hot_backlog(q.now());
        self.kick(q);
    }

    /// Marks `h` on the wire (lifetime deaths defer to completion).
    fn mark_in_service(&mut self, h: Handle) {
        self.jobs.extra_mut(h).expect("live record").in_service = true;
    }

    /// Starts whatever service the sharing mode allows.
    fn kick(&mut self, q: &mut EventQueue<Ev>) {
        match self.cfg.sharing {
            Sharing::Partitioned => {
                if !self.busy_hot && self.cfg.mu_hot > 0.0 {
                    if let Some(h) = pop_live(&mut self.hot, &self.jobs) {
                        self.note_hot_backlog(q.now());
                        self.busy_hot = true;
                        self.mark_in_service(h);
                        let st = self
                            .cfg
                            .service
                            .service_time(self.cfg.mu_hot, &mut self.rng_service);
                        let st = self.degraded(q.now(), st);
                        q.schedule_in(st, Ev::Done { h, src: Src::Hot });
                    }
                }
                if !self.busy_cold && self.cfg.mu_cold > 0.0 {
                    if let Some(h) = pop_live(&mut self.cold, &self.jobs) {
                        self.busy_cold = true;
                        self.mark_in_service(h);
                        let st = self
                            .cfg
                            .service
                            .service_time(self.cfg.mu_cold, &mut self.rng_service);
                        let st = self.degraded(q.now(), st);
                        q.schedule_in(st, Ev::Done { h, src: Src::Cold });
                    }
                }
            }
            Sharing::WorkConserving(_) => {
                if self.busy_hot {
                    return;
                }
                let mu_data = self.cfg.mu_hot + self.cfg.mu_cold;
                if mu_data <= 0.0 {
                    return;
                }
                // Purge dead heads first so backlog flags are truthful.
                purge_dead(&mut self.hot, &self.jobs);
                purge_dead(&mut self.cold, &self.jobs);
                let sched = self.sched.as_mut().expect("scheduler for WC mode");
                sched.set_backlogged(HOT, !self.hot.is_empty());
                sched.set_backlogged(COLD, !self.cold.is_empty());
                let Some(class) =
                    sched.pick_traced(q.now(), &mut self.rng_sched, self.jobs.tracer())
                else {
                    return;
                };
                sched.charge(class, 1);
                let (h, src) = if class == HOT {
                    let h = self.hot.pop_front().expect("hot backlog flag stale");
                    self.note_hot_backlog(q.now());
                    (h, Src::Hot)
                } else {
                    (
                        self.cold.pop_front().expect("cold backlog flag stale"),
                        Src::Cold,
                    )
                };
                self.busy_hot = true;
                self.mark_in_service(h);
                let st = self
                    .cfg
                    .service
                    .service_time(mu_data, &mut self.rng_service);
                let st = self.degraded(q.now(), st);
                q.schedule_in(st, Ev::Done { h, src });
            }
        }
    }

    fn complete(&mut self, q: &mut EventQueue<Ev>, h: Handle, src: Src) {
        self.jobs
            .extra_mut(h)
            .expect("completing record is live")
            .in_service = false;
        let now = q.now();
        let id = self.jobs.id_of(h);
        let (c_src, queue) = match src {
            Src::Hot => (self.c_hot_tx, QueueClass::Hot),
            Src::Cold => (self.c_cold_tx, QueueClass::Cold),
        };
        self.jobs.metrics().inc(c_src);
        self.jobs.events().log(now, EventKind::Announce(queue), id);
        let tx_actor = match src {
            Src::Hot => Actor::HotServer,
            Src::Cold => Actor::ColdServer,
        };
        let tx_id = self
            .jobs
            .tracer()
            .instant(now, tx_actor, TraceKind::Announce, id);
        let was_consistent = self.jobs.is_consistent(h);
        if was_consistent {
            let c_redundant = self.c_redundant;
            self.jobs.metrics().inc(c_redundant);
        }
        // The baseline channel draw always happens (the stream must not
        // depend on the fault schedule); fault checks layer on top.
        let chan_lost = self.loss.is_lost(&mut self.rng_loss);
        let fault_lost = self.faults.sender_silent(now)
            || self.faults.data_blocked(now)
            || self.faults.receiver_down(now, 0)
            || self.faults.extra_loss(now);
        let lost = chan_lost || fault_lost;
        if lost {
            let c_lost = self.c_lost;
            self.jobs.metrics().inc(c_lost);
            self.jobs.events().log(now, EventKind::Drop, id);
            if fault_lost && !chan_lost {
                let c_fault = self.c_fault_lost;
                self.jobs.metrics().inc(c_fault);
                self.jobs.tracer().instant_labeled(
                    now,
                    Actor::Channel,
                    TraceKind::Drop,
                    id,
                    tx_id,
                    "fault",
                );
            } else {
                self.jobs
                    .tracer()
                    .instant_under(now, Actor::Channel, TraceKind::Drop, id, tx_id);
            }
        }
        // The death draw comes from its own stream (`rng_death`), so
        // hoisting it above delivery leaves every random stream intact.
        let dies = self.cfg.death.dies_after_service(&mut self.rng_death)
            || self
                .jobs
                .extra(h)
                .expect("completing record is live")
                .doomed;
        let outcome = super::machine::classify_service(was_consistent, lost, dies);
        if outcome.delivers {
            self.jobs.deliver(now, h, tx_id);
        }
        if !outcome.survives {
            self.jobs.kill(now, h);
        } else {
            // Hot-served records age into the cold queue; cold-served
            // records cycle back to its tail.
            if src == Src::Hot {
                self.jobs.events().log(now, EventKind::Demote, id);
                self.jobs
                    .tracer()
                    .instant(now, Actor::ColdServer, TraceKind::Demote, id);
            }
            self.cold.push_back(h);
        }
    }

    /// An arrival: a new record, or — once an update workload's keyspace
    /// is full — an in-place update of a random live record. The stale
    /// record refreshes through its existing queue position (the cold
    /// cycle); promotion-on-update is the feedback variant's job.
    fn handle_arrival(&mut self, q: &mut EventQueue<Ev>) {
        if let ArrivalProcess::PoissonUpdates { keys, .. } = self.cfg.arrivals {
            if self.jobs.len() as u64 >= keys {
                if let Some(h) = self.jobs.random_live(&mut self.rng_update) {
                    self.jobs.invalidate(q.now(), h);
                }
                return;
            }
        }
        self.spawn_record(q);
    }

    fn schedule_next_arrival(&mut self, q: &mut EventQueue<Ev>) {
        if let Some(dt) = self.cfg.arrivals.next_interarrival(&mut self.rng_arrival) {
            q.schedule_in(dt, Ev::Arrival);
        }
    }
}

impl World for Sim {
    type Event = Ev;

    fn handle(&mut self, q: &mut EventQueue<Ev>, ev: Ev) {
        match ev {
            Ev::Arrival => {
                self.handle_arrival(q);
                self.schedule_next_arrival(q);
            }
            Ev::LifetimeEnd(h) => {
                if let Some(x) = self.jobs.extra_mut(h) {
                    if x.in_service {
                        x.doomed = true;
                    } else {
                        self.jobs.kill(q.now(), h);
                    }
                }
            }
            Ev::Done { h, src } => {
                match (self.cfg.sharing, src) {
                    (Sharing::Partitioned, Src::Hot) => self.busy_hot = false,
                    (Sharing::Partitioned, Src::Cold) => self.busy_cold = false,
                    (Sharing::WorkConserving(_), _) => self.busy_hot = false,
                }
                self.complete(q, h, src);
                self.kick(q);
            }
            Ev::FaultEdge => {
                // A receiver crash beginning now wipes the replica: every
                // consistent record is stale again and must re-propagate
                // through the cold cycle after the restart.
                if !self.faults.crashes_at(q.now()).is_empty() {
                    self.jobs.wipe(q.now());
                }
            }
        }
    }
}

impl TracedWorld for Sim {
    fn tracer(&mut self) -> &mut Tracer {
        self.jobs.tracer()
    }

    fn event_label(ev: &Ev) -> &'static str {
        match ev {
            Ev::Arrival => "arrival",
            Ev::Done { src: Src::Hot, .. } => "done-hot",
            Ev::Done { src: Src::Cold, .. } => "done-cold",
            Ev::LifetimeEnd(_) => "lifetime-end",
            Ev::FaultEdge => "fault-edge",
        }
    }
}

std::thread_local! {
    /// Recycled event-queue allocation: sweep workers run many points
    /// back-to-back, and a cleared queue is indistinguishable from a
    /// fresh one (see `EventQueue::clear`), so reuse only saves the
    /// re-growth of the heap.
    static QUEUE_POOL: std::cell::RefCell<EventQueue<Ev>> =
        std::cell::RefCell::new(EventQueue::with_capacity(256));
}

/// Runs a two-queue simulation and reports the paper's metrics.
pub fn run(cfg: &TwoQueueConfig) -> TwoQueueReport {
    run_faulted(cfg, &FaultSpec::none())
}

/// [`run`] under an `ss-chaos` fault schedule. With the empty spec this
/// is byte-identical to [`run`]: the schedule consumes no randomness and
/// blocks nothing.
pub fn run_faulted(cfg: &TwoQueueConfig, faults: &FaultSpec) -> TwoQueueReport {
    let mut sim = Sim::new(cfg.clone(), faults);
    let mut q: EventQueue<Ev> = QUEUE_POOL.with(|c| std::mem::take(&mut *c.borrow_mut()));
    let end = SimTime::ZERO + cfg.duration;

    if sim.jobs.tracer().is_enabled() {
        let Sim { faults, jobs, .. } = &mut sim;
        faults.record_spans(jobs.tracer());
    }
    for t in sim.faults.boundaries() {
        if t < end {
            q.schedule(t, Ev::FaultEdge);
        }
    }
    for _ in 0..cfg.arrivals.initial_count() {
        sim.spawn_record(&mut q);
    }
    sim.schedule_next_arrival(&mut q);

    // Observation consumes no randomness, so the traced and profiled
    // loops replay the plain run exactly; the branch keeps the common
    // path zero-cost.
    if ss_netsim::profile::is_enabled() {
        ss_netsim::run_until_profiled(&mut sim, &mut q, end);
        ss_netsim::profile::flush();
    } else if sim.jobs.tracer().is_enabled() {
        run_until_traced(&mut sim, &mut q, end);
    } else {
        run_until(&mut sim, &mut q, end);
    }

    let hot_tx = sim.jobs.metrics().counter_value(sim.c_hot_tx);
    let cold_tx = sim.jobs.metrics().counter_value(sim.c_cold_tx);
    let redundant = sim.jobs.metrics().counter_value(sim.c_redundant);
    let lost = sim.jobs.metrics().counter_value(sim.c_lost);
    if let Some(sched) = sim.sched.take() {
        sched.export_into(sim.jobs.metrics(), "sched");
    }
    let c_dispatched = sim.jobs.metrics().counter("engine.events_dispatched");
    sim.jobs.metrics().add(c_dispatched, q.dispatched());
    let c_scheduled = sim.jobs.metrics().counter("engine.events_scheduled");
    sim.jobs.metrics().add(c_scheduled, q.scheduled());

    let total_tx = hot_tx + cold_tx;
    let observed_loss_rate = if total_tx == 0 {
        0.0
    } else {
        lost as f64 / total_tx as f64
    };
    let fault_drops = sim.jobs.metrics().counter_value(sim.c_fault_lost);
    let mean_hot_backlog = sim
        .jobs
        .metrics()
        .average_value(sim.a_hot_backlog)
        .mean_until(end);
    let (stats, metrics, events, trace) = sim.jobs.finish(end);
    let final_hot_backlog = sim.hot.len();
    q.clear();
    QUEUE_POOL.with(|c| *c.borrow_mut() = q);
    TwoQueueReport {
        stats,
        hot_transmissions: hot_tx,
        cold_transmissions: cold_tx,
        redundant_transmissions: redundant,
        observed_loss_rate,
        fault_drops,
        mean_hot_backlog,
        final_hot_backlog,
        metrics,
        events,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 5's workload in packets/s: λ = 1.875/s (15 kbps),
    /// μ_data = 5.625/s (45 kbps), split by `hot_share`.
    fn fig5_cfg(hot_share: f64, p_loss: f64, seed: u64) -> TwoQueueConfig {
        let mu_data = 5.625;
        TwoQueueConfig {
            arrivals: ArrivalProcess::Poisson { rate: 1.875 },
            death: DeathProcess::PerTransmission { p: 0.1 },
            mu_hot: mu_data * hot_share,
            mu_cold: mu_data * (1.0 - hot_share),
            loss: LossSpec::Bernoulli(p_loss),
            service: ServiceModel::Exponential,
            sharing: Sharing::Partitioned,
            seed,
            duration: SimDuration::from_secs(40_000),
            series_spacing: None,
            event_capacity: 0,
            trace_capacity: 0,
        }
    }

    #[test]
    fn consistency_knee_at_lambda() {
        // λ/μ_data = 1/3: hot shares below it starve new data, above it
        // consistency plateaus (Figure 5's knee).
        let starved = run(&fig5_cfg(0.10, 0.1, 1));
        let at_knee = run(&fig5_cfg(0.40, 0.1, 1));
        let plateau = run(&fig5_cfg(0.70, 0.1, 1));
        let c_starved = starved.stats.consistency.busy.unwrap();
        let c_knee = at_knee.stats.consistency.busy.unwrap();
        let c_plateau = plateau.stats.consistency.busy.unwrap();
        assert!(
            c_knee > c_starved + 0.2,
            "knee {c_knee} vs starved {c_starved}"
        );
        assert!(
            (c_plateau - c_knee).abs() < 0.06,
            "plateau {c_plateau} vs knee {c_knee}"
        );
        // The starved run's hot queue diverges.
        assert!(starved.mean_hot_backlog > 10.0 * at_knee.mean_hot_backlog.max(0.1));
    }

    #[test]
    fn zero_cold_means_no_retransmissions() {
        let mut cfg = fig5_cfg(1.0, 0.5, 2);
        cfg.mu_cold = 0.0;
        let r = run(&cfg);
        assert_eq!(r.cold_transmissions, 0);
        // Every record is announced exactly once from hot; with 50% loss,
        // about half are never delivered.
        let delivered = r.stats.latency.count();
        let frac = delivered as f64 / r.stats.arrivals as f64;
        assert!((frac - 0.5).abs() < 0.05, "delivered fraction {frac}");
    }

    #[test]
    fn cold_bandwidth_raises_delivery_and_latency_shape() {
        // Figure 6's two competing effects: tiny cold bandwidth gives low
        // measured latency (only first-shot successes are counted) but low
        // delivery; ample cold bandwidth delivers everyone and brings the
        // retransmission latency down again.
        let mut tiny = fig5_cfg(0.40, 0.5, 3);
        tiny.mu_cold = 0.01;
        let mut mid = fig5_cfg(0.40, 0.5, 3);
        mid.mu_cold = tiny.mu_hot * 0.3;
        let mut ample = fig5_cfg(0.40, 0.5, 3);
        ample.mu_cold = tiny.mu_hot * 3.0;

        let rt = run(&tiny);
        let rm = run(&mid);
        let ra = run(&ample);

        let lt = rt.stats.latency.mean().as_secs_f64();
        let lm = rm.stats.latency.mean().as_secs_f64();
        let la = ra.stats.latency.mean().as_secs_f64();
        assert!(lm > lt, "latency should rise first: tiny {lt}, mid {lm}");
        assert!(la < lm, "then fall: mid {lm}, ample {la}");

        let ct = rt.stats.consistency.busy.unwrap();
        let ca = ra.stats.consistency.busy.unwrap();
        assert!(ca > ct, "ample cold consistency {ca} vs tiny {ct}");
    }

    #[test]
    fn work_conserving_policies_agree() {
        for policy in [Policy::Lottery, Policy::Stride, Policy::Sfq, Policy::Drr] {
            let mut cfg = fig5_cfg(0.5, 0.2, 4);
            cfg.sharing = Sharing::WorkConserving(policy);
            let r = run(&cfg);
            let c = r.stats.consistency.busy.unwrap();
            assert!(c > 0.65, "{policy:?} consistency {c}");
            assert!(r.hot_transmissions > 0 && r.cold_transmissions > 0);
        }
    }

    #[test]
    fn strict_priority_starves_cold_under_hot_load() {
        // Saturate hot (λ > μ_data/2 with hot weight dominant): cold gets
        // nothing under strict priority while stride still shares.
        let mut cfg = fig5_cfg(0.5, 0.2, 5);
        cfg.arrivals = ArrivalProcess::Poisson { rate: 50.0 }; // >> mu_data
        cfg.sharing = Sharing::WorkConserving(Policy::Priority);
        let pri = run(&cfg);
        cfg.sharing = Sharing::WorkConserving(Policy::Stride);
        let str_ = run(&cfg);
        assert_eq!(pri.cold_transmissions, 0, "priority must starve cold");
        assert!(str_.cold_transmissions > 0, "stride must not starve cold");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&fig5_cfg(0.4, 0.3, 9));
        let b = run(&fig5_cfg(0.4, 0.3, 9));
        assert_eq!(a.transmissions(), b.transmissions());
        assert_eq!(
            a.stats.consistency.unnormalized,
            b.stats.consistency.unnormalized
        );
    }

    #[test]
    fn causal_trace_does_not_perturb_and_links_lifecycle() {
        let mut cfg = fig5_cfg(0.4, 0.3, 11);
        cfg.duration = SimDuration::from_secs(2_000);
        cfg.sharing = Sharing::WorkConserving(Policy::Stride);
        let plain = run(&cfg);
        cfg.trace_capacity = 1 << 20;
        let traced = run(&cfg);
        // Tracing is pure observation: identical outcome either way.
        assert_eq!(plain.transmissions(), traced.transmissions());
        assert_eq!(
            plain.stats.consistency.unnormalized,
            traced.stats.consistency.unnormalized
        );
        assert!(plain.trace.is_empty());
        let t = &traced.trace;
        assert_eq!(t.dropped(), 0, "capacity must cover the whole run");
        assert_eq!(
            t.of_kind(TraceKind::Announce).count() as u64,
            traced.transmissions()
        );
        // Every scheduling decision carries the policy name.
        assert!(t.of_kind(TraceKind::Decision).count() > 0);
        assert!(t.of_kind(TraceKind::Decision).all(|e| e.label == "stride"));
        // Every channel drop parents the announcement that was lost.
        assert!(t.of_kind(TraceKind::Drop).count() > 0);
        for d in t.of_kind(TraceKind::Drop) {
            let p = &t.events()[(d.parent.raw() - 1) as usize];
            assert_eq!(p.kind, TraceKind::Announce);
            assert_eq!(p.key, d.key);
        }
        // The engine lane recorded one dispatch span per queue pop.
        assert!(t.of_kind(TraceKind::Dispatch).count() > 0);
    }

    #[test]
    fn empty_fault_spec_is_byte_identical() {
        let cfg = fig5_cfg(0.4, 0.3, 17);
        let a = run(&cfg);
        let b = run_faulted(&cfg, &FaultSpec::none());
        assert_eq!(a.transmissions(), b.transmissions());
        assert_eq!(
            a.stats.consistency.unnormalized.to_bits(),
            b.stats.consistency.unnormalized.to_bits()
        );
        assert_eq!(b.fault_drops, 0);
    }

    #[test]
    fn partition_blocks_then_heals_via_cold_cycle() {
        // Immortal bulk records, lossless channel: a partition drops a
        // stretch of announcements, but the cold cycle re-announces until
        // everyone is delivered after the heal.
        let cfg = TwoQueueConfig {
            arrivals: ArrivalProcess::Bulk { count: 20 },
            death: DeathProcess::Immortal,
            mu_hot: 10.0,
            mu_cold: 10.0,
            loss: LossSpec::None,
            service: ServiceModel::Deterministic,
            sharing: Sharing::Partitioned,
            seed: 18,
            duration: SimDuration::from_secs(200),
            series_spacing: None,
            event_capacity: 0,
            trace_capacity: 0,
        };
        let faults = FaultSpec::none().partition(SimTime::from_secs(1), SimTime::from_secs(30));
        let r = run_faulted(&cfg, &faults);
        assert!(r.fault_drops > 0, "partition dropped announcements");
        assert_eq!(r.stats.latency.count(), 20, "all delivered after heal");
        // A receiver crash mid-run wipes the replica; the cold cycle then
        // re-delivers every record a second time.
        let crash =
            FaultSpec::none().receiver_crash(SimTime::from_secs(60), SimTime::from_secs(70), 0);
        let r = run_faulted(&cfg, &crash);
        assert_eq!(r.stats.updates, 20, "crash wipe flips every record");
        assert_eq!(r.metrics.counter("records.delivered"), 40);
    }

    #[test]
    fn wasted_fraction_counts_redundant_cold() {
        let r = run(&fig5_cfg(0.4, 0.1, 10));
        assert!(r.wasted_fraction() > 0.3, "waste {}", r.wasted_fraction());
        assert!(r.wasted_fraction() < 1.0);
    }
}
