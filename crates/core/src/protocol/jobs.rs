//! Shared live-record bookkeeping for the protocol simulations.
//!
//! Tracks which live records the receiver currently agrees on, feeds the
//! [`ConsistencyMeter`] on every change, integrates the live-set size, and
//! records receive latencies — the measurement core every protocol
//! variant shares.

use crate::consistency::{ConsistencyAverages, ConsistencyMeter};
use ss_netsim::{DurationHistogram, SimDuration, SimTime, TimeWeightedMean};
use std::collections::BTreeMap;

/// Per-record simulation state.
#[derive(Clone, Copy, Debug)]
pub(crate) struct JobState {
    /// When the record entered the publisher's table.
    pub born: SimTime,
    /// Whether the receiver currently holds this record's value.
    pub consistent: bool,
}

/// The live set plus all §2.1 instrumentation.
#[derive(Clone, Debug)]
pub(crate) struct LiveJobs {
    jobs: BTreeMap<u64, JobState>,
    /// Dense list of live ids for O(1) uniform sampling (update
    /// workloads pick a random live record to supersede).
    ids: Vec<u64>,
    /// Position of each id in `ids`.
    pos: BTreeMap<u64, usize>,
    n_consistent: usize,
    updates: u64,
    meter: ConsistencyMeter,
    occupancy: TimeWeightedMean,
    latency: DurationHistogram,
    arrivals: u64,
    deaths: u64,
}

impl LiveJobs {
    pub(crate) fn new(start: SimTime, series_spacing: Option<SimDuration>) -> Self {
        let meter = match series_spacing {
            Some(sp) => ConsistencyMeter::new(start).with_series(sp),
            None => ConsistencyMeter::new(start),
        };
        LiveJobs {
            jobs: BTreeMap::new(),
            ids: Vec::new(),
            pos: BTreeMap::new(),
            n_consistent: 0,
            updates: 0,
            meter,
            occupancy: TimeWeightedMean::new(start, 0.0),
            latency: DurationHistogram::new(),
            arrivals: 0,
            deaths: 0,
        }
    }

    fn observe(&mut self, now: SimTime) {
        self.meter.observe(now, self.n_consistent, self.jobs.len());
        self.occupancy.update(now, self.jobs.len() as f64);
    }

    /// A new (inconsistent) record enters the live set.
    pub(crate) fn arrive(&mut self, now: SimTime, id: u64) {
        let prev = self.jobs.insert(
            id,
            JobState {
                born: now,
                consistent: false,
            },
        );
        assert!(prev.is_none(), "job {id} already live");
        self.pos.insert(id, self.ids.len());
        self.ids.push(id);
        self.arrivals += 1;
        self.observe(now);
    }

    /// A transmission of `id` reached the receiver. Returns `true` on the
    /// I → C transition (first successful delivery), recording latency.
    pub(crate) fn deliver(&mut self, now: SimTime, id: u64) -> bool {
        let job = self.jobs.get_mut(&id).expect("deliver of dead job");
        if job.consistent {
            return false;
        }
        job.consistent = true;
        let born = job.born;
        self.n_consistent += 1;
        self.latency.record(now.since(born));
        self.observe(now);
        true
    }

    /// The record's lifetime ended; it leaves both tables.
    /// Returns whether it was consistent at death.
    pub(crate) fn kill(&mut self, now: SimTime, id: u64) -> bool {
        let job = self.jobs.remove(&id).expect("kill of dead job");
        let idx = self.pos.remove(&id).expect("live id indexed");
        let last = self.ids.pop().expect("nonempty ids");
        if last != id {
            self.ids[idx] = last;
            self.pos.insert(last, idx);
        }
        if job.consistent {
            self.n_consistent -= 1;
        }
        self.deaths += 1;
        self.observe(now);
        job.consistent
    }

    /// The publisher superseded the record's value: the receiver's copy
    /// (if any) is stale again (C → I). Returns whether the record was
    /// consistent before the update.
    pub(crate) fn invalidate(&mut self, now: SimTime, id: u64) -> bool {
        let job = self.jobs.get_mut(&id).expect("invalidate of dead job");
        self.updates += 1;
        if job.consistent {
            job.consistent = false;
            self.n_consistent -= 1;
            self.observe(now);
            true
        } else {
            false
        }
    }

    /// A uniformly random live record id (None when the set is empty).
    pub(crate) fn random_live(&self, rng: &mut ss_netsim::SimRng) -> Option<u64> {
        if self.ids.is_empty() {
            None
        } else {
            Some(self.ids[rng.below(self.ids.len() as u64) as usize])
        }
    }

    /// Whether `id` is currently consistent. Panics if not live.
    pub(crate) fn is_consistent(&self, id: u64) -> bool {
        self.jobs[&id].consistent
    }

    /// Whether `id` is live.
    pub(crate) fn contains(&self, id: u64) -> bool {
        self.jobs.contains_key(&id)
    }

    /// Number of live records.
    pub(crate) fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Finalizes the instrumentation at `end`.
    pub(crate) fn finish(self, end: SimTime) -> JobStats {
        let averages = self.meter.averages(end);
        let series = self.meter.series().map(|s| s.points().to_vec());
        JobStats {
            consistency: averages,
            mean_live_records: self.occupancy.mean_until(end),
            latency: self.latency,
            arrivals: self.arrivals,
            updates: self.updates,
            deaths: self.deaths,
            final_live: self.jobs.len(),
            series,
        }
    }
}

/// The measurement outputs common to every protocol variant.
#[derive(Clone, Debug)]
pub struct JobStats {
    /// Time-averaged system consistency under the three conventions.
    pub consistency: ConsistencyAverages,
    /// Time-averaged number of live records (`E[n]`).
    pub mean_live_records: f64,
    /// Receive latencies `T_rec` over first successful deliveries.
    pub latency: DurationHistogram,
    /// Records that entered the system.
    pub arrivals: u64,
    /// In-place updates applied (update workloads only).
    pub updates: u64,
    /// Records whose lifetime ended during the run.
    pub deaths: u64,
    /// Records still live at the end.
    pub final_live: usize,
    /// The `c(t)` time series, when enabled.
    pub series: Option<Vec<(SimTime, f64)>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_metrics() {
        let mut j = LiveJobs::new(SimTime::ZERO, None);
        j.arrive(SimTime::ZERO, 1);
        j.arrive(SimTime::ZERO, 2);
        assert_eq!(j.len(), 2);
        assert!(!j.is_consistent(1));

        assert!(j.deliver(SimTime::from_secs(1), 1));
        assert!(!j.deliver(SimTime::from_secs(2), 1), "redundant delivery");
        assert!(j.is_consistent(1));

        assert!(j.kill(SimTime::from_secs(4), 1));
        assert!(!j.kill(SimTime::from_secs(4), 2));
        assert!(!j.contains(1));

        let stats = j.finish(SimTime::from_secs(4));
        assert_eq!(stats.arrivals, 2);
        assert_eq!(stats.deaths, 2);
        assert_eq!(stats.final_live, 0);
        assert_eq!(stats.latency.count(), 1);
        assert_eq!(stats.latency.mean(), SimDuration::from_secs(1));
        // c(t): 0 on [0,1), 0.5 on [1,4) -> busy average 1.5/4 over 4s busy.
        assert!((stats.consistency.busy.unwrap() - 0.375).abs() < 1e-12);
        // occupancy: 2 jobs for all 4 seconds.
        assert!((stats.mean_live_records - 2.0).abs() < 1e-12);
    }

    #[test]
    fn series_enabled() {
        let mut j = LiveJobs::new(SimTime::ZERO, Some(SimDuration::ZERO));
        j.arrive(SimTime::ZERO, 7);
        j.deliver(SimTime::from_secs(1), 7);
        let stats = j.finish(SimTime::from_secs(2));
        let series = stats.series.unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(series[1].1, 1.0);
    }

    #[test]
    #[should_panic(expected = "already live")]
    fn double_arrive_panics() {
        let mut j = LiveJobs::new(SimTime::ZERO, None);
        j.arrive(SimTime::ZERO, 1);
        j.arrive(SimTime::ZERO, 1);
    }

    #[test]
    #[should_panic(expected = "dead job")]
    fn deliver_dead_panics() {
        let mut j = LiveJobs::new(SimTime::ZERO, None);
        j.deliver(SimTime::ZERO, 1);
    }
}
