//! Shared live-record bookkeeping for the protocol simulations.
//!
//! Tracks which live records the receiver currently agrees on, feeds the
//! [`ConsistencyMeter`] on every change, and owns the run's `ss-metrics`
//! [`MetricsRegistry`] and [`EventLog`]: arrivals, deliveries, deaths,
//! updates, receive latency `T_rec`, live-set occupancy, and the `c(t)`
//! signal all flow through registered metrics, so every protocol variant
//! shares one measurement core and one export path.
//!
//! Storage is an [`Arena`] of generational slots (DESIGN.md §14): a
//! record is named by its [`Handle`], which rides inside event payloads
//! and protocol queues, and a stale handle (the record died, the slot
//! was recycled) is detected by the generation check instead of a map
//! lookup. Each slot also carries a protocol-specific payload `X` — the
//! per-record flags the variants used to keep in side tables (`doomed`
//! sets, `loc` maps, NACK dedup) now live inline with the record.

use crate::consistency::{ConsistencyAverages, ConsistencyMeter};
use ss_netsim::metrics::{
    AverageId, CounterId, EventKind, EventLog, HistogramId, MetricsRegistry, MetricsSnapshot,
    SketchId,
};
use ss_netsim::trace::{Actor, TraceId, TraceKind, Tracer};
use ss_netsim::{Arena, DurationHistogram, Handle, SimDuration, SimTime};

/// Per-record simulation state, stored in one arena slot together with
/// the protocol's own payload `X`.
#[derive(Clone, Copy, Debug)]
struct Job<X> {
    /// External record id — what the event log, tracer, and workload
    /// speak; stable for the record's whole life and never recycled.
    id: u64,
    /// When the record entered the publisher's table.
    born: SimTime,
    /// When the receiver's view of this record last became stale (birth,
    /// or the latest supersession while consistent). Feeds the
    /// staleness/AoI sketches.
    stale_since: SimTime,
    /// Whether the receiver currently holds this record's value.
    consistent: bool,
    /// This record's position in the dense `live` vector (for O(1)
    /// swap-removal on death).
    live_idx: u32,
    /// Protocol-specific per-record state.
    extra: X,
}

/// The live set plus all §2.1 instrumentation.
#[derive(Clone, Debug)]
pub(crate) struct LiveJobs<X = ()> {
    jobs: Arena<Job<X>>,
    /// Dense list of live handles for O(1) uniform sampling (update
    /// workloads pick a random live record to supersede). Maintained
    /// push-back / swap-remove, exactly like the id vector it replaced,
    /// so the sampling sequence is unchanged.
    live: Vec<Handle>,
    n_consistent: usize,
    meter: ConsistencyMeter,
    registry: MetricsRegistry,
    events: EventLog,
    tracer: Tracer,
    c_arrivals: CounterId,
    c_delivered: CounterId,
    c_deaths: CounterId,
    c_updates: CounterId,
    h_latency: HistogramId,
    a_live: AverageId,
    a_consistency: AverageId,
    /// `T_rec` samples in bounded memory (mirrors `latency.t_rec` but
    /// scales to populations where exact retention is impossible, and
    /// adds p999).
    sk_trec: SketchId,
    /// Closed staleness intervals: time from a record turning stale
    /// (birth or supersession) to the delivery that repaired it.
    sk_staleness: SketchId,
    /// Age of stale information at exit: how stale the receiver's view
    /// still was when a record died or the run ended unrepaired.
    sk_aoi: SketchId,
}

impl<X> LiveJobs<X> {
    /// Starts the measurement core at `start`. `series_spacing` enables
    /// the legacy `c(t)` series (and sets the `consistency.c_t` window
    /// width); `event_capacity` bounds the typed event log and
    /// `trace_capacity` the causal `ss-trace` log (0 disables either).
    pub(crate) fn new(
        start: SimTime,
        series_spacing: Option<SimDuration>,
        event_capacity: usize,
        trace_capacity: usize,
    ) -> Self {
        let meter = match series_spacing {
            Some(sp) => ConsistencyMeter::new(start).with_series(sp),
            None => ConsistencyMeter::new(start),
        };
        let mut registry = MetricsRegistry::new();
        let c_arrivals = registry.counter("records.arrivals");
        let c_delivered = registry.counter("records.delivered");
        let c_deaths = registry.counter("records.deaths");
        let c_updates = registry.counter("records.updates");
        let h_latency = registry.histogram("latency.t_rec");
        let a_live = registry.time_average("records.live", start, 0.0, SimDuration::ZERO);
        let a_consistency = registry.time_average(
            "consistency.c_t",
            start,
            0.0,
            series_spacing.unwrap_or(SimDuration::ZERO),
        );
        let sk_trec = registry.sketch("latency.t_rec.sketch");
        let sk_staleness = registry.sketch("staleness.sketch");
        let sk_aoi = registry.sketch("aoi.sketch");
        LiveJobs {
            jobs: Arena::new(),
            live: Vec::new(),
            n_consistent: 0,
            meter,
            registry,
            events: EventLog::with_capacity(event_capacity),
            tracer: Tracer::with_capacity(trace_capacity),
            c_arrivals,
            c_delivered,
            c_deaths,
            c_updates,
            h_latency,
            a_live,
            a_consistency,
            sk_trec,
            sk_staleness,
            sk_aoi,
        }
    }

    /// The run's metrics registry, for protocol-specific counters.
    pub(crate) fn metrics(&mut self) -> &mut MetricsRegistry {
        &mut self.registry
    }

    /// The run's typed event log, for protocol-specific events.
    pub(crate) fn events(&mut self) -> &mut EventLog {
        &mut self.events
    }

    /// The run's causal tracer, for protocol-specific spans and edges.
    pub(crate) fn tracer(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    fn observe(&mut self, now: SimTime) {
        self.meter.observe(now, self.n_consistent, self.jobs.len());
        self.registry
            .record_sample(self.a_live, now, self.jobs.len() as f64);
        let c = if self.jobs.is_empty() {
            0.0
        } else {
            self.n_consistent as f64 / self.jobs.len() as f64
        };
        self.registry.record_sample(self.a_consistency, now, c);
    }

    /// A new (inconsistent) record enters the live set, carrying the
    /// protocol's initial per-record state. Returns the handle that
    /// names it until death.
    pub(crate) fn arrive(&mut self, now: SimTime, id: u64, extra: X) -> Handle {
        let live_idx = u32::try_from(self.live.len()).expect("live set exceeds u32");
        let h = self.jobs.insert(Job {
            id,
            born: now,
            stale_since: now,
            consistent: false,
            live_idx,
            extra,
        });
        self.live.push(h);
        self.registry.inc(self.c_arrivals);
        self.events.log(now, EventKind::Arrival, id);
        self.tracer.birth(now, Actor::Publisher, id);
        self.observe(now);
        h
    }

    /// A transmission of `h` reached the receiver. Returns `true` on the
    /// I → C transition (first successful delivery), recording latency.
    /// `cause` is the trace id of the transmission that delivered it
    /// ([`TraceId::NONE`] parents under the record's root span instead).
    pub(crate) fn deliver(&mut self, now: SimTime, h: Handle, cause: TraceId) -> bool {
        let job = self.jobs.get_mut(h).expect("deliver of dead job");
        if job.consistent {
            return false;
        }
        job.consistent = true;
        let born = job.born;
        let stale_since = job.stale_since;
        let id = job.id;
        self.n_consistent += 1;
        self.registry.inc(self.c_delivered);
        self.registry.observe(self.h_latency, now.since(born));
        self.registry.observe_sketch(self.sk_trec, now.since(born));
        self.registry
            .observe_sketch(self.sk_staleness, now.since(stale_since));
        self.events.log(now, EventKind::Deliver, id);
        let parent = if cause.is_some() {
            cause
        } else {
            self.tracer.root(id)
        };
        self.tracer
            .instant_under(now, Actor::Replica(0), TraceKind::Deliver, id, parent);
        self.observe(now);
        true
    }

    /// The record's lifetime ended; it leaves both tables and `h` (and
    /// every copy of it) goes stale. Returns whether it was consistent
    /// at death.
    pub(crate) fn kill(&mut self, now: SimTime, h: Handle) -> bool {
        let job = self.jobs.remove(h).expect("kill of dead job");
        let last = self.live.pop().expect("nonempty live set");
        if last != h {
            self.live[job.live_idx as usize] = last;
            self.jobs
                .get_mut(last)
                .expect("dense live handle is live")
                .live_idx = job.live_idx;
        }
        if job.consistent {
            self.n_consistent -= 1;
        } else {
            // The record died before the receiver recovered its latest
            // value: the unrepaired staleness becomes an AoI sample.
            self.registry
                .observe_sketch(self.sk_aoi, now.since(job.stale_since));
        }
        self.registry.inc(self.c_deaths);
        self.events.log(now, EventKind::Expire, job.id);
        self.tracer.death(now, Actor::Publisher, job.id);
        self.observe(now);
        job.consistent
    }

    /// The publisher superseded the record's value: the receiver's copy
    /// (if any) is stale again (C → I). Returns whether the record was
    /// consistent before the update.
    pub(crate) fn invalidate(&mut self, now: SimTime, h: Handle) -> bool {
        let job = self.jobs.get_mut(h).expect("invalidate of dead job");
        let id = job.id;
        let was = job.consistent;
        job.consistent = false;
        if was {
            // A fresh staleness interval starts at the supersession; an
            // already-stale record keeps its earlier start.
            job.stale_since = now;
        }
        self.registry.inc(self.c_updates);
        self.events.log(now, EventKind::Update, id);
        self.tracer
            .instant(now, Actor::Publisher, TraceKind::Update, id);
        if was {
            self.n_consistent -= 1;
            self.observe(now);
            true
        } else {
            false
        }
    }

    /// A receiver crash wiped the replica: every consistent record is
    /// stale again (C → I), exactly as if each had been superseded — the
    /// wipe is logged as an update per flipped record so the registry,
    /// the event log, and the causal trace all stay in agreement with
    /// [`ss_netsim::trace::LifecycleAnalysis`]'s replay. The traversal is
    /// ordered by record id, not slot index, so the emitted event
    /// sequence is independent of allocation history (determinism rule
    /// D005). Returns how many records flipped.
    pub(crate) fn wipe(&mut self, now: SimTime) -> usize {
        let mut stale: Vec<(u64, Handle)> = self
            .jobs
            .iter()
            .filter(|(_, j)| j.consistent)
            .map(|(h, j)| (j.id, h))
            .collect();
        stale.sort_unstable_by_key(|&(id, _)| id);
        for &(_, h) in &stale {
            self.invalidate(now, h);
        }
        stale.len()
    }

    /// A uniformly random live record (None when the set is empty).
    pub(crate) fn random_live(&self, rng: &mut ss_netsim::SimRng) -> Option<Handle> {
        if self.live.is_empty() {
            None
        } else {
            Some(self.live[rng.below(self.live.len() as u64) as usize])
        }
    }

    /// Whether `h` is currently consistent. Panics if not live.
    #[inline]
    pub(crate) fn is_consistent(&self, h: Handle) -> bool {
        self.jobs
            .get(h)
            .expect("is_consistent of dead job")
            .consistent
    }

    /// Whether `h` still names a live record.
    #[inline]
    pub(crate) fn contains(&self, h: Handle) -> bool {
        self.jobs.contains(h)
    }

    /// The external id of the live record behind `h`. Panics if stale.
    #[inline]
    pub(crate) fn id_of(&self, h: Handle) -> u64 {
        self.jobs.get(h).expect("id_of dead job").id
    }

    /// The protocol payload of the record behind `h`, or `None` if the
    /// handle is stale.
    #[inline]
    pub(crate) fn extra(&self, h: Handle) -> Option<&X> {
        self.jobs.get(h).map(|j| &j.extra)
    }

    /// Mutable protocol payload behind `h`, or `None` if stale.
    #[inline]
    pub(crate) fn extra_mut(&mut self, h: Handle) -> Option<&mut X> {
        self.jobs.get_mut(h).map(|j| &mut j.extra)
    }

    /// Applies `f` to every live record's protocol payload (bulk state
    /// resets, e.g. a crashed receiver forgetting its NACK dedup). The
    /// visit order is slot order; callers must not emit output from `f`.
    pub(crate) fn for_each_extra_mut(&mut self, mut f: impl FnMut(&mut X)) {
        for h in &self.live {
            f(&mut self.jobs.get_mut(*h).expect("live handle").extra);
        }
    }

    /// Number of live records.
    pub(crate) fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Finalizes the instrumentation at `end`: the three consistency
    /// conventions become gauges, every metric is frozen into a
    /// [`MetricsSnapshot`], still-open trace root spans are closed, and
    /// the event log and causal trace are released.
    pub(crate) fn finish(mut self, end: SimTime) -> (JobStats, MetricsSnapshot, EventLog, Tracer) {
        let averages = self.meter.averages(end);
        let series = self.meter.series().map(|s| s.points().to_vec());

        // Records still stale at the horizon close their AoI interval at
        // `end`. Sketch recording commutes, so the arena's slot order
        // cannot influence the artifact.
        let open_stale: Vec<SimDuration> = self
            .jobs
            .iter()
            .filter(|(_, j)| !j.consistent)
            .map(|(_, j)| end.since(j.stale_since))
            .collect();
        for d in open_stale {
            self.registry.observe_sketch(self.sk_aoi, d);
        }

        let g_un = self.registry.gauge("consistency.unnormalized");
        self.registry.set_gauge(g_un, averages.unnormalized);
        let g_busy = self.registry.gauge("consistency.busy");
        self.registry
            .set_gauge(g_busy, averages.busy.unwrap_or(f64::NAN));
        let g_empty = self.registry.gauge("consistency.empty_consistent");
        self.registry.set_gauge(g_empty, averages.empty_consistent);

        let latency = self.registry.histogram_value(self.h_latency).clone();
        let snapshot = self.registry.snapshot(end);
        let stats = JobStats {
            consistency: averages,
            mean_live_records: snapshot.time_average("records.live"),
            latency,
            arrivals: snapshot.counter("records.arrivals"),
            updates: snapshot.counter("records.updates"),
            deaths: snapshot.counter("records.deaths"),
            final_live: self.jobs.len(),
            series,
        };
        self.tracer.finish(end);
        (stats, snapshot, self.events, self.tracer)
    }
}

/// The measurement outputs common to every protocol variant.
#[derive(Clone, Debug)]
pub struct JobStats {
    /// Time-averaged system consistency under the three conventions.
    pub consistency: ConsistencyAverages,
    /// Time-averaged number of live records (`E[n]`).
    pub mean_live_records: f64,
    /// Receive latencies `T_rec` over first successful deliveries.
    pub latency: DurationHistogram,
    /// Records that entered the system.
    pub arrivals: u64,
    /// In-place updates applied (update workloads only).
    pub updates: u64,
    /// Records whose lifetime ended during the run.
    pub deaths: u64,
    /// Records still live at the end.
    pub final_live: usize,
    /// The `c(t)` time series, when enabled.
    pub series: Option<Vec<(SimTime, f64)>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_metrics() {
        let mut j: LiveJobs = LiveJobs::new(SimTime::ZERO, None, 0, 0);
        let h1 = j.arrive(SimTime::ZERO, 1, ());
        let h2 = j.arrive(SimTime::ZERO, 2, ());
        assert_eq!(j.len(), 2);
        assert!(!j.is_consistent(h1));
        assert_eq!(j.id_of(h1), 1);

        assert!(j.deliver(SimTime::from_secs(1), h1, TraceId::NONE));
        assert!(
            !j.deliver(SimTime::from_secs(2), h1, TraceId::NONE),
            "redundant delivery"
        );
        assert!(j.is_consistent(h1));

        assert!(j.kill(SimTime::from_secs(4), h1));
        assert!(!j.kill(SimTime::from_secs(4), h2));
        assert!(!j.contains(h1));

        let (stats, snapshot, _events, _trace) = j.finish(SimTime::from_secs(4));
        assert_eq!(stats.arrivals, 2);
        assert_eq!(stats.deaths, 2);
        assert_eq!(stats.final_live, 0);
        assert_eq!(stats.latency.count(), 1);
        assert_eq!(stats.latency.mean(), SimDuration::from_secs(1));
        // c(t): 0 on [0,1), 0.5 on [1,4) -> busy average 1.5/4 over 4s busy.
        assert!((stats.consistency.busy.unwrap() - 0.375).abs() < 1e-12);
        // occupancy: 2 jobs for all 4 seconds.
        assert!((stats.mean_live_records - 2.0).abs() < 1e-12);
        // The registry mirrors everything.
        assert_eq!(snapshot.counter("records.arrivals"), 2);
        assert_eq!(snapshot.counter("records.delivered"), 1);
        assert_eq!(snapshot.histogram("latency.t_rec").count, 1);
        assert!((snapshot.time_average("consistency.c_t") - 0.375).abs() < 1e-12);
        assert!((snapshot.gauge("consistency.busy") - 0.375).abs() < 1e-12);
    }

    #[test]
    fn sketches_track_staleness_aoi_and_t_rec() {
        let mut j: LiveJobs = LiveJobs::new(SimTime::ZERO, None, 0, 0);
        // Record 1: delivered at 2s (t_rec = staleness = 2s), superseded
        // at 3s, re-delivered at 5s (staleness 2s), dies consistent.
        // Record 2: born at 1s, never delivered, dies at 4s -> AoI 3s.
        let h1 = j.arrive(SimTime::ZERO, 1, ());
        let h2 = j.arrive(SimTime::from_secs(1), 2, ());
        j.deliver(SimTime::from_secs(2), h1, TraceId::NONE);
        j.invalidate(SimTime::from_secs(3), h1);
        j.kill(SimTime::from_secs(4), h2);
        j.deliver(SimTime::from_secs(5), h1, TraceId::NONE);
        j.kill(SimTime::from_secs(6), h1);
        // Record 3: never delivered, still live at the 10s horizon ->
        // AoI sample 3s.
        let _h3 = j.arrive(SimTime::from_secs(7), 3, ());

        let (_, snapshot, _, _) = j.finish(SimTime::from_secs(10));
        let trec = snapshot.sketch("latency.t_rec.sketch");
        assert_eq!(trec.count, 2);
        assert_eq!(trec.count, snapshot.histogram("latency.t_rec").count);
        let staleness = snapshot.sketch("staleness.sketch");
        assert_eq!(staleness.count, 2);
        assert_eq!(staleness.max_us, 2_000_000);
        let aoi = snapshot.sketch("aoi.sketch");
        assert_eq!(aoi.count, 2);
        assert_eq!(aoi.min_us, 3_000_000);
        assert_eq!(aoi.max_us, 3_000_000);
    }

    #[test]
    fn series_enabled() {
        let mut j: LiveJobs = LiveJobs::new(SimTime::ZERO, Some(SimDuration::ZERO), 0, 0);
        let h = j.arrive(SimTime::ZERO, 7, ());
        j.deliver(SimTime::from_secs(1), h, TraceId::NONE);
        let (stats, _, _, _) = j.finish(SimTime::from_secs(2));
        let series = stats.series.unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(series[1].1, 1.0);
    }

    #[test]
    fn event_log_records_lifecycle() {
        let mut j: LiveJobs = LiveJobs::new(SimTime::ZERO, None, 16, 0);
        let h = j.arrive(SimTime::ZERO, 1, ());
        j.deliver(SimTime::from_secs(1), h, TraceId::NONE);
        j.invalidate(SimTime::from_secs(2), h);
        j.kill(SimTime::from_secs(3), h);
        let (_, _, events, _) = j.finish(SimTime::from_secs(3));
        let kinds: Vec<_> = events.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Arrival,
                EventKind::Deliver,
                EventKind::Update,
                EventKind::Expire
            ]
        );
    }

    #[test]
    fn stale_handle_is_detected_after_slot_reuse() {
        let mut j: LiveJobs = LiveJobs::new(SimTime::ZERO, None, 0, 0);
        let h1 = j.arrive(SimTime::ZERO, 1, ());
        j.kill(SimTime::from_secs(1), h1);
        // The new record recycles the slot, but the stale handle stays
        // dead — this is what makes in-flight timer events for dead
        // records safe without a map lookup.
        let h2 = j.arrive(SimTime::from_secs(2), 2, ());
        assert_eq!(h2.slot(), h1.slot());
        assert!(!j.contains(h1));
        assert!(j.contains(h2));
        assert_eq!(j.extra(h1), None);
        assert_eq!(j.id_of(h2), 2);
    }

    #[test]
    #[should_panic(expected = "dead job")]
    fn deliver_dead_panics() {
        let mut j: LiveJobs = LiveJobs::new(SimTime::ZERO, None, 0, 0);
        let h = j.arrive(SimTime::ZERO, 1, ());
        j.kill(SimTime::from_secs(1), h);
        j.deliver(SimTime::from_secs(2), h, TraceId::NONE);
    }

    #[test]
    fn wipe_emits_in_id_order_regardless_of_slot_history() {
        let mut j: LiveJobs = LiveJobs::new(SimTime::ZERO, None, 16, 0);
        // Allocate out of id order by recycling a slot: record 5 lands in
        // record 3's old slot after 3 dies.
        let h3 = j.arrive(SimTime::ZERO, 3, ());
        let h4 = j.arrive(SimTime::ZERO, 4, ());
        j.deliver(SimTime::ZERO, h3, TraceId::NONE);
        j.deliver(SimTime::ZERO, h4, TraceId::NONE);
        j.kill(SimTime::from_secs(1), h3);
        let h5 = j.arrive(SimTime::from_secs(1), 5, ());
        assert_eq!(h5.slot(), h3.slot(), "slot recycled out of id order");
        j.deliver(SimTime::from_secs(1), h5, TraceId::NONE);
        assert_eq!(j.wipe(SimTime::from_secs(2)), 2);
        let (_, _, events, _) = j.finish(SimTime::from_secs(2));
        let updates: Vec<u64> = events
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Update)
            .map(|e| e.key)
            .collect();
        assert_eq!(
            updates,
            vec![4, 5],
            "wipe order is id order, not slot order"
        );
    }

    #[test]
    fn tracer_mirrors_lifecycle_and_metrics() {
        use ss_netsim::trace::LifecycleAnalysis;
        let end = SimTime::from_secs(4);
        let mut j: LiveJobs = LiveJobs::new(SimTime::ZERO, None, 0, 64);
        let h1 = j.arrive(SimTime::ZERO, 1, ());
        let _h2 = j.arrive(SimTime::ZERO, 2, ());
        j.deliver(SimTime::from_secs(1), h1, TraceId::NONE);
        j.invalidate(SimTime::from_secs(2), h1);
        j.deliver(SimTime::from_secs(3), h1, TraceId::NONE);
        j.kill(SimTime::from_secs(4), h1);
        let (_, snapshot, _, trace) = j.finish(end);
        assert_eq!(trace.dropped(), 0);
        let a = LifecycleAnalysis::from_tracer(&trace, end);
        // Counters recomputed from the trace match the registry exactly.
        assert_eq!(a.births, snapshot.counter("records.arrivals"));
        assert_eq!(a.deliveries, snapshot.counter("records.delivered"));
        assert_eq!(a.expiries, snapshot.counter("records.deaths"));
        assert_eq!(a.updates, snapshot.counter("records.updates"));
        // So do T_rec and the replayed consistency signal (bit-exact).
        let h = snapshot.histogram("latency.t_rec");
        assert_eq!(a.t_rec.count(), h.count);
        assert_eq!(a.t_rec.mean().as_micros(), h.mean_us);
        let c = a.replay_c_t(SimTime::ZERO, SimDuration::ZERO, end);
        assert_eq!(c, snapshot.time_average("consistency.c_t"));
        let live = a.replay_live(SimTime::ZERO, end);
        assert_eq!(live, snapshot.time_average("records.live"));
        // Key 2 never recovered; key 1 was stale twice.
        assert_eq!(a.intervals.len(), 3);
    }
}
