//! The §2 data model: an evolving table of `{key, value}` pairs.
//!
//! A *publisher* owns a [`PublisherTable`] it may insert into, update, and
//! delete from at any time; the set of records present at time `t` is the
//! *live data set* `L(t)`. One or more *subscribers* each maintain a
//! [`SubscriberTable`] replica fed by announcements; every stored entry
//! carries an expiration deadline, and an entry whose deadline passes
//! without a refresh is deleted (the soft-state expiry rule).

use ss_netsim::{SimDuration, SimTime};
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

/// Identifies a record in the table. Keys are opaque 64-bit names; the
/// hierarchical namespaces of SSTP (§6.2) layer structure on top.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(pub u64);

/// A record's value. The consistency metric only needs equality between
/// the publisher's and a subscriber's value for a key, so a version stamp
/// stands in for arbitrary bytes; `payload_len` sizes the announcement
/// packet carrying it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Value {
    /// Monotone version of this key's data (bumped on every update).
    pub version: u64,
    /// Size of the application payload in bytes.
    pub payload_len: u32,
}

impl Value {
    /// A first-version value of the given payload size.
    pub fn initial(payload_len: u32) -> Self {
        Value {
            version: 1,
            payload_len,
        }
    }

    /// The next version of this value (same size).
    pub fn bumped(self) -> Self {
        Value {
            version: self.version + 1,
            payload_len: self.payload_len,
        }
    }
}

/// One live record at the publisher.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Record {
    /// The record's key.
    pub key: Key,
    /// The record's current value.
    pub value: Value,
    /// When this key first entered the table (for receive-latency
    /// accounting).
    pub born: SimTime,
}

/// The publisher's evolving table. Insertions, updates, and deletions are
/// timestamped so instrumentation can integrate the live set over time.
#[derive(Clone, Debug, Default)]
pub struct PublisherTable {
    records: BTreeMap<Key, Record>,
    next_key: u64,
    inserts: u64,
    updates: u64,
    deletes: u64,
}

impl PublisherTable {
    /// An empty table.
    pub fn new() -> Self {
        PublisherTable::default()
    }

    /// Inserts a brand-new record with a fresh key; returns it.
    pub fn insert_new(&mut self, now: SimTime, payload_len: u32) -> Record {
        let key = Key(self.next_key);
        self.next_key += 1;
        let rec = Record {
            key,
            value: Value::initial(payload_len),
            born: now,
        };
        self.records.insert(key, rec);
        self.inserts += 1;
        rec
    }

    /// Inserts a record under a caller-chosen key. Panics if the key is
    /// already live (use [`PublisherTable::update`] for updates).
    pub fn insert(&mut self, now: SimTime, key: Key, payload_len: u32) -> Record {
        let rec = Record {
            key,
            value: Value::initial(payload_len),
            born: now,
        };
        match self.records.entry(key) {
            Entry::Occupied(_) => panic!("key {key:?} already live"),
            Entry::Vacant(v) => {
                v.insert(rec);
            }
        }
        self.next_key = self.next_key.max(key.0 + 1);
        self.inserts += 1;
        rec
    }

    /// Updates an existing record to a new version; returns the new record.
    /// Panics if the key is not live.
    pub fn update(&mut self, key: Key) -> Record {
        let rec = self
            .records
            .get_mut(&key)
            .unwrap_or_else(|| panic!("update of dead key {key:?}"));
        rec.value = rec.value.bumped();
        self.updates += 1;
        *rec
    }

    /// Deletes a record (its lifetime ended); returns it if it was live.
    pub fn delete(&mut self, key: Key) -> Option<Record> {
        let r = self.records.remove(&key);
        if r.is_some() {
            self.deletes += 1;
        }
        r
    }

    /// The current value of `key`, if live.
    pub fn get(&self, key: Key) -> Option<&Record> {
        self.records.get(&key)
    }

    /// Number of live records, `|L(t)|`.
    pub fn live_count(&self) -> usize {
        self.records.len()
    }

    /// Iterates the live data set in ascending key order.
    pub fn live(&self) -> impl Iterator<Item = &Record> {
        self.records.values()
    }

    /// Lifetime counters: `(inserts, updates, deletes)`.
    pub fn op_counts(&self) -> (u64, u64, u64) {
        (self.inserts, self.updates, self.deletes)
    }
}

/// One entry in a subscriber's replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicaEntry {
    /// The value most recently received for this key.
    pub value: Value,
    /// The soft-state deadline: the entry is deleted if no refresh arrives
    /// before this instant.
    pub expires_at: SimTime,
    /// When this key was first successfully received (receive latency).
    pub first_received: SimTime,
}

/// A subscriber's soft-state replica with per-entry expiration timers.
///
/// Callers drive expiry explicitly via [`SubscriberTable::expire_until`]
/// (typically from a periodic sweep event or before reads), keeping the
/// table independent of any particular event loop.
#[derive(Clone, Debug)]
pub struct SubscriberTable {
    entries: BTreeMap<Key, ReplicaEntry>,
    ttl: SimDuration,
    expirations: u64,
    refreshes: u64,
}

impl SubscriberTable {
    /// A replica whose entries expire `ttl` after their last refresh.
    pub fn new(ttl: SimDuration) -> Self {
        assert!(!ttl.is_zero(), "zero TTL would expire entries instantly");
        SubscriberTable {
            entries: BTreeMap::new(),
            ttl,
            expirations: 0,
            refreshes: 0,
        }
    }

    /// The configured time-to-live.
    pub fn ttl(&self) -> SimDuration {
        self.ttl
    }

    /// Applies a received announcement for `(key, value)` at `now`:
    /// installs or refreshes the entry and re-arms its timer.
    /// Returns `true` when this reception changed the stored value
    /// (first receipt or a newer version).
    pub fn apply(&mut self, now: SimTime, key: Key, value: Value) -> bool {
        self.refreshes += 1;
        match self.entries.entry(key) {
            Entry::Occupied(mut o) => {
                let e = o.get_mut();
                e.expires_at = now + self.ttl;
                if value.version > e.value.version {
                    e.value = value;
                    true
                } else {
                    false
                }
            }
            Entry::Vacant(v) => {
                v.insert(ReplicaEntry {
                    value,
                    expires_at: now + self.ttl,
                    first_received: now,
                });
                true
            }
        }
    }

    /// Explicitly removes a key (e.g. on an authoritative delete
    /// announcement). Returns the removed entry.
    pub fn remove(&mut self, key: Key) -> Option<ReplicaEntry> {
        self.entries.remove(&key)
    }

    /// Re-arms every entry's expiration timer from `now`. Used when a
    /// summary announcement confirms the publisher is alive and a repair
    /// channel exists to reconcile any divergence: the summary then acts
    /// as the soft-state refresh for the whole replica.
    pub fn refresh_all(&mut self, now: SimTime) {
        let deadline = now + self.ttl;
        for e in self.entries.values_mut() {
            e.expires_at = deadline;
        }
    }

    /// Deletes every entry whose deadline is at or before `now`; returns
    /// the expired keys in ascending order (the map iterates sorted).
    pub fn expire_until(&mut self, now: SimTime) -> Vec<Key> {
        let dead: Vec<Key> = self
            .entries
            .iter()
            .filter(|(_, e)| e.expires_at <= now)
            .map(|(&k, _)| k)
            .collect();
        for k in &dead {
            self.entries.remove(k);
            self.expirations += 1;
        }
        dead
    }

    /// The entry for `key`, if present (ignoring expiry; sweep first).
    pub fn get(&self, key: Key) -> Option<&ReplicaEntry> {
        self.entries.get(&key)
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the replica is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates stored entries in ascending key order.
    pub fn entries(&self) -> impl Iterator<Item = (&Key, &ReplicaEntry)> {
        self.entries.iter()
    }

    /// Lifetime counters: `(refreshes applied, expirations)`.
    pub fn counters(&self) -> (u64, u64) {
        (self.refreshes, self.expirations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publisher_lifecycle() {
        let mut t = PublisherTable::new();
        let r1 = t.insert_new(SimTime::ZERO, 100);
        let r2 = t.insert_new(SimTime::from_secs(1), 200);
        assert_ne!(r1.key, r2.key);
        assert_eq!(t.live_count(), 2);

        let r1b = t.update(r1.key);
        assert_eq!(r1b.value.version, 2);
        assert_eq!(t.get(r1.key).unwrap().value.version, 2);

        assert!(t.delete(r1.key).is_some());
        assert!(t.delete(r1.key).is_none());
        assert_eq!(t.live_count(), 1);
        assert_eq!(t.op_counts(), (2, 1, 1));
    }

    #[test]
    fn explicit_keys_do_not_collide_with_fresh() {
        let mut t = PublisherTable::new();
        t.insert(SimTime::ZERO, Key(10), 50);
        let r = t.insert_new(SimTime::ZERO, 50);
        assert!(r.key.0 > 10);
    }

    #[test]
    #[should_panic(expected = "already live")]
    fn duplicate_insert_panics() {
        let mut t = PublisherTable::new();
        t.insert(SimTime::ZERO, Key(1), 10);
        t.insert(SimTime::ZERO, Key(1), 10);
    }

    #[test]
    #[should_panic(expected = "dead key")]
    fn update_dead_key_panics() {
        let mut t = PublisherTable::new();
        t.update(Key(9));
    }

    #[test]
    fn subscriber_applies_and_refreshes() {
        let mut s = SubscriberTable::new(SimDuration::from_secs(30));
        let v1 = Value::initial(100);
        assert!(s.apply(SimTime::ZERO, Key(1), v1), "first receipt changes");
        assert!(!s.apply(SimTime::from_secs(5), Key(1), v1), "refresh only");
        assert!(
            s.apply(SimTime::from_secs(6), Key(1), v1.bumped()),
            "newer version changes"
        );
        // Stale duplicate (e.g. reordered retransmission) must not regress.
        assert!(!s.apply(SimTime::from_secs(7), Key(1), v1));
        assert_eq!(s.get(Key(1)).unwrap().value.version, 2);
        assert_eq!(s.counters().0, 4);
    }

    #[test]
    fn expiry_honors_refresh() {
        let mut s = SubscriberTable::new(SimDuration::from_secs(10));
        s.apply(SimTime::ZERO, Key(1), Value::initial(10));
        s.apply(SimTime::ZERO, Key(2), Value::initial(10));
        // Refresh key 1 at t=8; key 2 goes silent.
        s.apply(SimTime::from_secs(8), Key(1), Value::initial(10));
        let dead = s.expire_until(SimTime::from_secs(12));
        assert_eq!(dead, vec![Key(2)]);
        assert!(s.get(Key(1)).is_some());
        assert_eq!(s.len(), 1);
        // Key 1 now dies at 18.
        let dead = s.expire_until(SimTime::from_secs(18));
        assert_eq!(dead, vec![Key(1)]);
        assert!(s.is_empty());
        assert_eq!(s.counters().1, 2);
    }

    #[test]
    fn expiry_is_sorted_and_idempotent() {
        let mut s = SubscriberTable::new(SimDuration::from_secs(1));
        for k in [5u64, 3, 9] {
            s.apply(SimTime::ZERO, Key(k), Value::initial(1));
        }
        let dead = s.expire_until(SimTime::from_secs(2));
        assert_eq!(dead, vec![Key(3), Key(5), Key(9)]);
        assert!(s.expire_until(SimTime::from_secs(3)).is_empty());
    }

    #[test]
    fn first_received_is_sticky() {
        let mut s = SubscriberTable::new(SimDuration::from_secs(100));
        s.apply(SimTime::from_secs(2), Key(1), Value::initial(10));
        s.apply(SimTime::from_secs(9), Key(1), Value::initial(10));
        assert_eq!(s.get(Key(1)).unwrap().first_received, SimTime::from_secs(2));
    }
}
