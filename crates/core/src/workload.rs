//! Workload generators: the update and death processes of §2–§3.
//!
//! The analysis assumes Poisson record arrivals at rate λ and a fixed,
//! independent per-transmission death probability `p_d` ("we approximate
//! the expiration process using a fixed and independent death probability
//! per packet"). The generators here cover that model plus the variants
//! the examples need: bulk (static) inputs for eventual-consistency runs,
//! lifetime-based expiry, and in-place updates over a fixed keyspace
//! (stock-ticker style workloads where old values are superseded).

use ss_netsim::{SimDuration, SimRng};

/// How new records (or updates) enter the publisher's table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals at `rate` records/s, each a brand-new key — the
    /// §3 model.
    Poisson {
        /// Mean arrivals per second (λ).
        rate: f64,
    },
    /// `count` records all present at t = 0 and nothing after — the
    /// static input for which open-loop announce/listen is eventually
    /// consistent.
    Bulk {
        /// Number of records in the initial table.
        count: u64,
    },
    /// Poisson *events* at `rate`/s over a fixed keyspace of `keys` keys:
    /// each event picks a uniform key and bumps its version (inserting it
    /// on first touch). Models periodically-changing data (route
    /// advertisements, stock quotes).
    PoissonUpdates {
        /// Mean update events per second.
        rate: f64,
        /// Size of the fixed keyspace.
        keys: u64,
    },
}

impl ArrivalProcess {
    /// Time to the next arrival event, or `None` if no more arrivals ever
    /// occur (bulk workloads after t = 0).
    pub fn next_interarrival(&self, rng: &mut SimRng) -> Option<SimDuration> {
        match *self {
            ArrivalProcess::Poisson { rate } | ArrivalProcess::PoissonUpdates { rate, .. } => {
                (rate > 0.0).then(|| rng.exp_duration(rate))
            }
            ArrivalProcess::Bulk { .. } => None,
        }
    }

    /// Number of records present at t = 0.
    pub fn initial_count(&self) -> u64 {
        match *self {
            ArrivalProcess::Bulk { count } => count,
            _ => 0,
        }
    }

    /// The nominal arrival rate (0 for bulk).
    pub fn rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } | ArrivalProcess::PoissonUpdates { rate, .. } => rate,
            ArrivalProcess::Bulk { .. } => 0.0,
        }
    }
}

/// How records leave the system.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeathProcess {
    /// After each transmission the record dies with probability `p` — the
    /// §3 analysis model ("death probability per packet").
    PerTransmission {
        /// The per-service death probability (p_d).
        p: f64,
    },
    /// Each record lives an exponential time with the given mean,
    /// independent of transmissions — closer to real session-directory
    /// expirations.
    Lifetime {
        /// Mean lifetime in seconds.
        mean_secs: f64,
    },
    /// Records never die (bulk-transfer workloads).
    Immortal,
}

impl DeathProcess {
    /// Draws whether a record dies at a service completion.
    pub fn dies_after_service(&self, rng: &mut SimRng) -> bool {
        match *self {
            DeathProcess::PerTransmission { p } => rng.chance(p),
            _ => false,
        }
    }

    /// Draws a record's lifetime at birth, if this process is
    /// lifetime-driven.
    pub fn lifetime(&self, rng: &mut SimRng) -> Option<SimDuration> {
        match *self {
            DeathProcess::Lifetime { mean_secs } => Some(rng.exp_duration(1.0 / mean_secs)),
            _ => None,
        }
    }

    /// The per-transmission death probability (0 for other processes) —
    /// what the closed forms take as `p_d`.
    pub fn per_transmission_p(&self) -> f64 {
        match *self {
            DeathProcess::PerTransmission { p } => p,
            _ => 0.0,
        }
    }
}

/// How long each transmission occupies the channel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ServiceModel {
    /// Exponential service at the server's rate — matches the Jackson/M/M/1
    /// analysis and is the default for validation runs.
    Exponential,
    /// Deterministic serialization (`1/μ` per packet) — how a real link
    /// behaves; used to show the metric is robust to the service
    /// distribution.
    Deterministic,
}

impl ServiceModel {
    /// Draws one service time for a server of `rate` packets/s.
    pub fn service_time(&self, rate: f64, rng: &mut SimRng) -> SimDuration {
        assert!(rate > 0.0, "service on a zero-rate server");
        match self {
            ServiceModel::Exponential => rng.exp_duration(rate),
            ServiceModel::Deterministic => SimDuration::from_secs_f64(1.0 / rate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_interarrivals_have_right_mean() {
        let mut rng = SimRng::new(1);
        let a = ArrivalProcess::Poisson { rate: 4.0 };
        let n = 50_000;
        let total: f64 = (0..n)
            .map(|_| a.next_interarrival(&mut rng).unwrap().as_secs_f64())
            .sum();
        let mean = total / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
        assert_eq!(a.initial_count(), 0);
        assert_eq!(a.rate(), 4.0);
    }

    #[test]
    fn bulk_has_no_arrivals() {
        let mut rng = SimRng::new(1);
        let a = ArrivalProcess::Bulk { count: 10 };
        assert_eq!(a.next_interarrival(&mut rng), None);
        assert_eq!(a.initial_count(), 10);
        assert_eq!(a.rate(), 0.0);
    }

    #[test]
    fn zero_rate_poisson_never_fires() {
        let mut rng = SimRng::new(1);
        let a = ArrivalProcess::Poisson { rate: 0.0 };
        assert_eq!(a.next_interarrival(&mut rng), None);
    }

    #[test]
    fn per_transmission_death_frequency() {
        let mut rng = SimRng::new(2);
        let d = DeathProcess::PerTransmission { p: 0.2 };
        let n = 100_000;
        let dead = (0..n).filter(|_| d.dies_after_service(&mut rng)).count();
        let f = dead as f64 / n as f64;
        assert!((f - 0.2).abs() < 0.01, "freq {f}");
        assert_eq!(d.lifetime(&mut rng), None);
        assert_eq!(d.per_transmission_p(), 0.2);
    }

    #[test]
    fn lifetime_death_draws_lifetimes() {
        let mut rng = SimRng::new(3);
        let d = DeathProcess::Lifetime { mean_secs: 30.0 };
        assert!(!d.dies_after_service(&mut rng));
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| d.lifetime(&mut rng).unwrap().as_secs_f64())
            .sum();
        let mean = total / n as f64;
        assert!((mean - 30.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn immortal_never_dies() {
        let mut rng = SimRng::new(4);
        let d = DeathProcess::Immortal;
        assert!(!(0..1000).any(|_| d.dies_after_service(&mut rng)));
        assert_eq!(d.lifetime(&mut rng), None);
        assert_eq!(d.per_transmission_p(), 0.0);
    }

    #[test]
    fn service_models() {
        let mut rng = SimRng::new(5);
        let det = ServiceModel::Deterministic.service_time(4.0, &mut rng);
        assert_eq!(det, SimDuration::from_millis(250));
        let n = 50_000;
        let total: f64 = (0..n)
            .map(|_| {
                ServiceModel::Exponential
                    .service_time(4.0, &mut rng)
                    .as_secs_f64()
            })
            .sum();
        let mean = total / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }
}
