//! The §2.1 consistency metric.
//!
//! Per live key the metric is the probability that publisher and
//! subscriber hold the same value; the *instantaneous system consistency*
//! `c(t)` averages it over the live set, and the *average system
//! consistency* `E[c(t)]` is its time average — which is how every figure
//! in the paper scores a protocol. [`ConsistencyMeter`] integrates `c(t)`
//! exactly from count updates.
//!
//! The paper's analysis sums over non-empty states without normalizing
//! (DESIGN.md §3), so the meter reports **three** conventions and the
//! experiments state which one each figure uses:
//!
//! * `unnormalized` — empty-system instants score 0 (the paper's closed
//!   form `q·ρ`).
//! * `busy` — the average conditioned on live data existing (`q`).
//! * `empty_consistent` — empty instants score 1 (an empty table is
//!   trivially in sync; the natural end-to-end convention).

use ss_netsim::{SimDuration, SimTime, TimeSeries};

use crate::model::{PublisherTable, SubscriberTable};

/// Time averages of the instantaneous system consistency under the three
/// empty-system conventions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConsistencyAverages {
    /// Empty instants count as 0 (paper's unnormalized sum).
    pub unnormalized: f64,
    /// Conditioned on the system being non-empty; `None` if it never was.
    pub busy: Option<f64>,
    /// Empty instants count as 1.
    pub empty_consistent: f64,
}

/// Integrates `c(t)` from `(consistent, total)` count updates.
#[derive(Clone, Debug)]
pub struct ConsistencyMeter {
    start: SimTime,
    last_t: SimTime,
    last_ratio: f64,
    last_busy: bool,
    ratio_integral: f64,
    busy_time: f64,
    series: Option<TimeSeries>,
}

impl ConsistencyMeter {
    /// A meter starting at `start` with an empty system.
    pub fn new(start: SimTime) -> Self {
        ConsistencyMeter {
            start,
            last_t: start,
            last_ratio: 0.0,
            last_busy: false,
            ratio_integral: 0.0,
            busy_time: 0.0,
            series: None,
        }
    }

    /// Additionally records a `c(t)` time series with the given minimum
    /// point spacing (for the Figure 8 style consistency-vs-time plots).
    pub fn with_series(mut self, spacing: SimDuration) -> Self {
        self.series = Some(TimeSeries::new(spacing));
        self
    }

    fn integrate_to(&mut self, now: SimTime) {
        let dt = now.since(self.last_t).as_secs_f64();
        if self.last_busy {
            self.ratio_integral += self.last_ratio * dt;
            self.busy_time += dt;
        }
        self.last_t = now;
    }

    /// Records that from `now` on, `consistent` of `total` live records
    /// agree between publisher and subscriber. Call on every change.
    pub fn observe(&mut self, now: SimTime, consistent: usize, total: usize) {
        assert!(
            consistent <= total,
            "consistent {consistent} > total {total}"
        );
        self.integrate_to(now);
        self.last_busy = total > 0;
        self.last_ratio = if total > 0 {
            consistent as f64 / total as f64
        } else {
            0.0
        };
        if let Some(s) = &mut self.series {
            // The series uses the busy-ratio, scoring empty instants as 1
            // (a drained system has converged).
            let v = if total > 0 { self.last_ratio } else { 1.0 };
            s.push(now, v);
        }
    }

    /// The instantaneous consistency right now; `None` when no live data.
    pub fn instantaneous(&self) -> Option<f64> {
        self.last_busy.then_some(self.last_ratio)
    }

    /// Time averages over `[start, end]`.
    pub fn averages(&self, end: SimTime) -> ConsistencyAverages {
        let mut me = self.clone();
        me.integrate_to(end);
        let total = end.since(me.start).as_secs_f64();
        if total == 0.0 {
            return ConsistencyAverages {
                unnormalized: 0.0,
                busy: None,
                empty_consistent: 1.0,
            };
        }
        let idle = total - me.busy_time;
        ConsistencyAverages {
            unnormalized: me.ratio_integral / total,
            busy: (me.busy_time > 0.0).then(|| me.ratio_integral / me.busy_time),
            empty_consistent: (me.ratio_integral + idle) / total,
        }
    }

    /// The recorded `c(t)` series, if enabled.
    pub fn series(&self) -> Option<&TimeSeries> {
        self.series.as_ref()
    }

    /// Fraction of `[start, end]` during which live data existed.
    pub fn busy_fraction(&self, end: SimTime) -> f64 {
        let mut me = self.clone();
        me.integrate_to(end);
        let total = end.since(me.start).as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            me.busy_time / total
        }
    }
}

/// Directly measures instantaneous consistency between a publisher table
/// and a subscriber replica: the fraction of the publisher's live keys for
/// which the subscriber holds an equal value. `None` when the live set is
/// empty.
///
/// This is the ground-truth probe used by the SSTP integration tests; the
/// protocol simulations instead track counts incrementally for speed.
pub fn measure_tables(publisher: &PublisherTable, subscriber: &SubscriberTable) -> Option<f64> {
    let total = publisher.live_count();
    if total == 0 {
        return None;
    }
    let agree = publisher
        .live()
        .filter(|r| subscriber.get(r.key).map(|e| e.value) == Some(r.value))
        .count();
    Some(agree as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Value;

    #[test]
    fn exact_integration() {
        let mut m = ConsistencyMeter::new(SimTime::ZERO);
        // [0,2): empty. [2,4): 1/2 consistent. [4,6): 2/2. [6,8): empty.
        m.observe(SimTime::from_secs(2), 1, 2);
        m.observe(SimTime::from_secs(4), 2, 2);
        m.observe(SimTime::from_secs(6), 0, 0);
        let a = m.averages(SimTime::from_secs(8));
        // ratio integral = 0.5*2 + 1*2 = 3; busy = 4s; total = 8s.
        assert!((a.unnormalized - 3.0 / 8.0).abs() < 1e-12);
        assert!((a.busy.unwrap() - 0.75).abs() < 1e-12);
        assert!((a.empty_consistent - (3.0 + 4.0) / 8.0).abs() < 1e-12);
        assert!((m.busy_fraction(SimTime::from_secs(8)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn instantaneous_reflects_last_observation() {
        let mut m = ConsistencyMeter::new(SimTime::ZERO);
        assert_eq!(m.instantaneous(), None);
        m.observe(SimTime::from_secs(1), 3, 4);
        assert_eq!(m.instantaneous(), Some(0.75));
        m.observe(SimTime::from_secs(2), 0, 0);
        assert_eq!(m.instantaneous(), None);
    }

    #[test]
    fn never_busy_gives_none() {
        let m = ConsistencyMeter::new(SimTime::ZERO);
        let a = m.averages(SimTime::from_secs(5));
        assert_eq!(a.busy, None);
        assert_eq!(a.unnormalized, 0.0);
        assert_eq!(a.empty_consistent, 1.0);
    }

    #[test]
    fn zero_span() {
        let m = ConsistencyMeter::new(SimTime::from_secs(3));
        let a = m.averages(SimTime::from_secs(3));
        assert_eq!(a.busy, None);
        assert_eq!(a.empty_consistent, 1.0);
    }

    #[test]
    fn averages_are_queryable_mid_run() {
        let mut m = ConsistencyMeter::new(SimTime::ZERO);
        m.observe(SimTime::ZERO, 1, 1);
        let early = m.averages(SimTime::from_secs(1));
        assert!((early.busy.unwrap() - 1.0).abs() < 1e-12);
        // Continue observing after the query: meter must be unaffected.
        m.observe(SimTime::from_secs(2), 0, 1);
        let late = m.averages(SimTime::from_secs(4));
        assert!((late.busy.unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn series_records_when_enabled() {
        let mut m = ConsistencyMeter::new(SimTime::ZERO).with_series(SimDuration::ZERO);
        m.observe(SimTime::from_secs(1), 1, 2);
        m.observe(SimTime::from_secs(2), 0, 0);
        let pts = m.series().unwrap().points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].1, 0.5);
        assert_eq!(pts[1].1, 1.0, "empty scores 1 in the series");
    }

    #[test]
    #[should_panic(expected = "consistent")]
    fn rejects_impossible_counts() {
        let mut m = ConsistencyMeter::new(SimTime::ZERO);
        m.observe(SimTime::ZERO, 3, 2);
    }

    #[test]
    fn table_probe() {
        let mut p = PublisherTable::new();
        let mut s = SubscriberTable::new(SimDuration::from_secs(100));
        assert_eq!(measure_tables(&p, &s), None);

        let r1 = p.insert_new(SimTime::ZERO, 10);
        let r2 = p.insert_new(SimTime::ZERO, 10);
        assert_eq!(measure_tables(&p, &s), Some(0.0));

        s.apply(SimTime::from_secs(1), r1.key, r1.value);
        assert_eq!(measure_tables(&p, &s), Some(0.5));

        s.apply(SimTime::from_secs(1), r2.key, r2.value);
        assert_eq!(measure_tables(&p, &s), Some(1.0));

        // Publisher updates r1: subscriber is stale again.
        p.update(r1.key);
        assert_eq!(measure_tables(&p, &s), Some(0.5));

        // Subscriber holding a *newer* version than publisher (impossible
        // in the protocol, but the probe must not count it as agreement).
        s.apply(
            SimTime::from_secs(2),
            r2.key,
            Value {
                version: 99,
                payload_len: 10,
            },
        );
        assert_eq!(measure_tables(&p, &s), Some(0.0));
    }
}
