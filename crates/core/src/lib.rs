//! # softstate — the paper's soft-state model, metric, and protocols
//!
//! This crate is the primary contribution of *"A Model, Analysis, and
//! Protocol Framework for Soft State-based Communication"* (Raman &
//! McCanne, SIGCOMM 1999), reproduced in Rust:
//!
//! * [`model`] — §2's data model: a publisher's evolving `{key, value}`
//!   table and subscriber replicas with soft-state expiration timers.
//! * [`consistency`] — §2.1's consistency metric: per-key agreement,
//!   instantaneous system consistency `c(t)`, and its exact time average
//!   under three empty-system conventions.
//! * [`workload`] — the update/death processes of §2–§3 (Poisson
//!   arrivals, per-transmission death, lifetimes, bulk inputs).
//! * [`protocol`] — discrete-event simulations of the three protocol
//!   variants the paper evaluates:
//!   [`protocol::open_loop`] (§3), [`protocol::two_queue`] (§4), and
//!   [`protocol::feedback`] (§5).
//!
//! The open-loop simulation is validated against the closed forms in
//! `ss-queueing`; all three variants share workload and measurement
//! machinery so they compare on common random numbers. The SSTP protocol
//! framework of §6 builds on this crate in `sstp`.
//!
//! ## Example: measuring open-loop consistency
//!
//! ```
//! use softstate::protocol::open_loop::{self, OpenLoopConfig};
//! use ss_netsim::SimDuration;
//!
//! // λ = 2 records/s, μ_ch = 16 announcements/s, 20% loss, p_d = 0.25.
//! let mut cfg = OpenLoopConfig::analytic(2.0, 16.0, 0.20, 0.25, 42);
//! cfg.duration = SimDuration::from_secs(5_000);
//! let report = open_loop::run(&cfg);
//!
//! let theory = ss_queueing::OpenLoop::new(2.0, 16.0, 0.20, 0.25);
//! let sim = report.stats.consistency.busy.unwrap();
//! assert!((sim - theory.consistency_busy()).abs() < 0.05);
//! ```

#![deny(missing_docs)]

pub mod consistency;
pub mod model;
pub mod protocol;
pub mod workload;

pub use consistency::{measure_tables, ConsistencyAverages, ConsistencyMeter};
pub use model::{Key, PublisherTable, Record, ReplicaEntry, SubscriberTable, Value};
pub use protocol::{LossSpec, TransitionCounts};
pub use workload::{ArrivalProcess, DeathProcess, ServiceModel};
