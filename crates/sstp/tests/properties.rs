//! Property-based tests of the SSTP building blocks: wire-codec
//! round-trips for arbitrary packets, namespace digest coherence under
//! random operation sequences, and sender/receiver mirror equivalence.

use bytes::BytesMut;
use proptest::prelude::*;
use softstate::Key;
use sstp::digest::{Digest, HashAlgorithm};
use sstp::namespace::{MetaTag, Namespace};
use sstp::wire::{
    DataPacket, NackPacket, NodeSummaryPacket, Packet, ReceiverReportPacket, RepairQueryPacket,
    RootSummaryPacket, WireChildEntry,
};

fn arb_digest() -> impl Strategy<Value = Digest> {
    prop_oneof![
        any::<u64>().prop_map(Digest::from_u64),
        any::<[u8; 16]>().prop_map(Digest::from_md5),
    ]
}

fn arb_path() -> impl Strategy<Value = Vec<u16>> {
    prop::collection::vec(any::<u16>(), 0..8)
}

fn arb_entry() -> impl Strategy<Value = WireChildEntry> {
    prop_oneof![
        any::<u16>().prop_map(|slot| WireChildEntry::Dead { slot }),
        (any::<u16>(), arb_digest(), any::<u32>()).prop_map(|(slot, digest, tag)| {
            WireChildEntry::Interior {
                slot,
                digest,
                tag: MetaTag(tag),
            }
        }),
        (any::<u16>(), any::<u64>(), arb_digest(), any::<u32>()).prop_map(
            |(slot, key, digest, tag)| WireChildEntry::Leaf {
                slot,
                key: Key(key),
                digest,
                tag: MetaTag(tag),
            }
        ),
    ]
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    prop_oneof![
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            arb_path(),
            any::<u16>(),
            any::<u32>(),
            (0u32..100_000, 0u32..10_000, 0u32..100_000),
        )
            .prop_map(
                |(seq, key, version, parent_path, slot, tag, (offset, payload_len, total_len))| {
                    Packet::Data(DataPacket {
                        seq,
                        key: Key(key),
                        version,
                        parent_path,
                        slot,
                        tag: MetaTag(tag),
                        offset,
                        payload_len,
                        total_len,
                    })
                }
            ),
        (any::<u64>(), arb_digest(), any::<u32>()).prop_map(|(seq, digest, live_adus)| {
            Packet::RootSummary(RootSummaryPacket {
                seq,
                digest,
                live_adus,
            })
        }),
        (
            any::<u64>(),
            arb_path(),
            prop::collection::vec(arb_entry(), 0..40)
        )
            .prop_map(
                |(seq, path, entries)| Packet::NodeSummary(NodeSummaryPacket {
                    seq,
                    path,
                    entries
                })
            ),
        arb_path().prop_map(|path| Packet::RepairQuery(RepairQueryPacket { path })),
        prop::collection::vec(any::<u64>().prop_map(Key), 0..64)
            .prop_map(|keys| Packet::Nack(NackPacket { keys })),
        (any::<u32>(), any::<u64>(), any::<u64>()).prop_map(
            |(receiver_id, highest_seq, received)| {
                Packet::ReceiverReport(ReceiverReportPacket {
                    receiver_id,
                    highest_seq,
                    received,
                })
            }
        ),
    ]
}

/// A random namespace mutation.
#[derive(Clone, Debug)]
enum Op {
    AddBranch(u8),
    AddAdu(u8),
    Update(u8, u16),
    Remove(u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (any::<u8>()).prop_map(Op::AddBranch),
            (any::<u8>()).prop_map(Op::AddAdu),
            (any::<u8>(), any::<u16>()).prop_map(|(k, v)| Op::Update(k, v)),
            (any::<u8>()).prop_map(Op::Remove),
        ],
        1..60,
    )
}

/// Applies ops to a namespace, tracking live keys; returns branch nodes.
fn apply_ops(ns: &mut Namespace, ops: &[Op]) {
    let mut branches = vec![ns.root()];
    let mut next_key = 0u64;
    let mut live: Vec<Key> = Vec::new();
    for op in ops {
        match *op {
            Op::AddBranch(sel) => {
                if branches.len() < 12 {
                    let parent = branches[sel as usize % branches.len()];
                    branches.push(ns.add_interior(parent, MetaTag(u32::from(sel))));
                }
            }
            Op::AddAdu(sel) => {
                let parent = branches[sel as usize % branches.len()];
                let key = Key(next_key);
                next_key += 1;
                ns.add_adu(parent, key, MetaTag(0));
                live.push(key);
            }
            Op::Update(sel, v) => {
                if !live.is_empty() {
                    let key = live[sel as usize % live.len()];
                    ns.update_adu(key, u64::from(v) + 2, u64::from(v));
                }
            }
            Op::Remove(sel) => {
                if !live.is_empty() {
                    let idx = sel as usize % live.len();
                    let key = live.swap_remove(idx);
                    ns.remove_adu(key);
                }
            }
        }
    }
}

proptest! {
    /// The decoder never panics on arbitrary bytes — it either parses a
    /// packet or returns an error. (The receiver feeds raw datagrams
    /// straight into it in `sstp::udp`.)
    #[test]
    fn decoder_is_total_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Packet::decode(bytes::Bytes::from(bytes));
    }

    /// Decoding a valid encoding with trailing garbage still yields the
    /// original packet (datagram padding is ignored).
    #[test]
    fn decoder_ignores_trailing_bytes(pkt in arb_packet(), junk in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut buf = BytesMut::new();
        pkt.encode(&mut buf);
        buf.extend_from_slice(&junk);
        let decoded = Packet::decode(buf.freeze()).expect("decode with padding");
        prop_assert_eq!(decoded, pkt);
    }

    /// Every packet round-trips the codec bit-exactly, and every strict
    /// prefix of the encoding fails to decode as that packet (no silent
    /// truncation).
    #[test]
    fn wire_roundtrip(pkt in arb_packet()) {
        let mut buf = BytesMut::new();
        pkt.encode(&mut buf);
        let bytes = buf.freeze();
        let decoded = Packet::decode(bytes.clone()).expect("decode");
        prop_assert_eq!(&decoded, &pkt);
        // Prefix robustness: decoding a truncated buffer must error or
        // yield a *different* packet, never panic.
        for cut in 0..bytes.len() {
            if let Ok(other) = Packet::decode(bytes.slice(0..cut)) { prop_assert_ne!(&other, &pkt, "prefix {} decoded equal", cut) }
        }
    }

    /// Identical operation sequences produce identical digests; any two
    /// different live states (almost surely) differ.
    #[test]
    fn namespace_digest_deterministic(ops in arb_ops()) {
        let mut a = Namespace::new(HashAlgorithm::Fnv64);
        let mut b = Namespace::new(HashAlgorithm::Fnv64);
        apply_ops(&mut a, &ops);
        apply_ops(&mut b, &ops);
        prop_assert_eq!(a.root_digest(), b.root_digest());
        prop_assert_eq!(a.live_adus(), b.live_adus());
        // A post-hoc mutation changes the digest.
        if let Some(leaf) = (0..100).find_map(|k| a.leaf_of(Key(k))) {
            let before = a.root_digest();
            let (key, v, r) = a.adu_info(leaf);
            a.update_adu(key, v + 1, r);
            prop_assert_ne!(a.root_digest(), before);
        }
    }

    /// Digest reads never mutate observable state: two consecutive reads
    /// agree, and interleaving reads with mutations equals batching them.
    #[test]
    fn namespace_lazy_refresh_transparent(ops in arb_ops()) {
        let mut eager = Namespace::new(HashAlgorithm::Fnv64);
        let mut lazy = Namespace::new(HashAlgorithm::Fnv64);
        // Eager: read the digest after every op. Lazy: only at the end.
        let mut branches_e = vec![eager.root()];
        let mut branches_l = vec![lazy.root()];
        let mut next_key = 0u64;
        let mut live: Vec<Key> = Vec::new();
        for op in &ops {
            for (ns, branches) in [(&mut eager, &mut branches_e), (&mut lazy, &mut branches_l)] {
                match *op {
                    Op::AddBranch(sel) => {
                        if branches.len() < 12 {
                            let parent = branches[sel as usize % branches.len()];
                            branches.push(ns.add_interior(parent, MetaTag(u32::from(sel))));
                        }
                    }
                    Op::AddAdu(sel) => {
                        let parent = branches[sel as usize % branches.len()];
                        ns.add_adu(parent, Key(next_key), MetaTag(0));
                    }
                    Op::Update(sel, v) => {
                        if !live.is_empty() {
                            let key = live[sel as usize % live.len()];
                            ns.update_adu(key, u64::from(v) + 2, u64::from(v));
                        }
                    }
                    Op::Remove(sel) => {
                        if !live.is_empty() {
                            let idx = sel as usize % live.len();
                            ns.remove_adu(live[idx]);
                        }
                    }
                }
            }
            // Book-keep shared state after both applied.
            match *op {
                Op::AddAdu(_) => {
                    live.push(Key(next_key));
                    next_key += 1;
                }
                Op::Remove(sel)
                    if !live.is_empty() => {
                        let idx = sel as usize % live.len();
                        live.swap_remove(idx);
                    }
                _ => {}
            }
            let _ = eager.root_digest(); // interleaved read
        }
        prop_assert_eq!(eager.root_digest(), lazy.root_digest());
    }

    /// MD5 and FNV namespaces agree on *structure*: equal ops give equal
    /// digests within each algorithm, and the algorithms never produce
    /// digests of the wrong length.
    #[test]
    fn namespace_algorithms_consistent(ops in arb_ops()) {
        for algo in [HashAlgorithm::Fnv64, HashAlgorithm::Md5] {
            let mut ns = Namespace::new(algo);
            apply_ops(&mut ns, &ops);
            prop_assert_eq!(ns.root_digest().len(), algo.digest_len());
        }
    }
}
