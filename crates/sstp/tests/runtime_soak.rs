//! Multi-session runtime soak: two [`Runtime`]s on loopback — one node
//! holding only publisher sessions, one holding only subscriber sessions
//! — with hundreds of concurrent sessions multiplexed over one socket
//! each, session churn (crash + rejoin), and a PR 5 `FaultSpec` replayed
//! as real socket-level drops through [`RealPathFaults`].
//!
//! The gates are the ones ISSUE 10 names:
//!
//! * every surviving (and rejoined) session reconverges within **3×TTL**
//!   of the fault schedule healing, measured as a
//!   [`ReconvergenceReport`] MTTR;
//! * every inter-task queue stays provably bounded — high-water marks
//!   never exceed the configured capacities, and any refusal is a
//!   *counted* backpressure drop;
//! * the runtime's health metrics are exported through the shared
//!   ss-metrics registry under their documented names.
//!
//! The default test runs a few hundred sessions to stay CI-sized; the
//! full thousand-session soak is the same harness behind
//! `RUNTIME_SOAK_SESSIONS` (or `--ignored`).

use softstate::Key;
use ss_netsim::{FaultSpec, LossSpec, RealPathFaults, SimDuration, SimRng, SimTime};
use sstp::digest::HashAlgorithm;
use sstp::namespace::MetaTag;
use sstp::receiver::ReceiverConfig;
use sstp::runtime::{Runtime, RuntimeConfig};
use sstp::session::ReconvergenceReport;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Replica soft-state TTL. The reconvergence gate is 3×TTL.
const TTL: SimDuration = SimDuration::from_secs(5);

fn any_loopback() -> SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

fn receiver_config(id: u32) -> ReceiverConfig {
    let mut cfg = ReceiverConfig::unicast(id, HashAlgorithm::Fnv64);
    cfg.ttl = TTL;
    cfg.repair_backoff = SimDuration::from_millis(100);
    cfg
}

/// A publisher node and a subscriber node, peered over loopback, with
/// `n` sessions each (session ids line up across the two sockets).
fn bind_nodes(n: usize, seed: u64) -> (Runtime, Runtime, Vec<u32>) {
    let placeholder = any_loopback();
    let mut pub_cfg = RuntimeConfig::loopback(any_loopback(), placeholder);
    pub_cfg.seed = seed;
    let mut pub_rt = Runtime::bind(pub_cfg).expect("bind publisher node");

    let mut sub_cfg = RuntimeConfig::loopback(any_loopback(), pub_rt.local_addr().unwrap());
    sub_cfg.seed = seed ^ 0xffff;
    let mut sub_rt = Runtime::bind(sub_cfg).expect("bind subscriber node");
    pub_rt.set_peer(sub_rt.local_addr().unwrap());

    let mut sids = Vec::with_capacity(n);
    for i in 0..n {
        let psid = pub_rt.add_publisher(HashAlgorithm::Fnv64, 64);
        let ssid = sub_rt.add_subscriber(receiver_config(i as u32));
        assert_eq!(psid, ssid, "session ids must line up across the nodes");
        sids.push(psid);
    }
    (pub_rt, sub_rt, sids)
}

/// Drives both nodes for `wall` of real time, sleeping each iteration
/// until the earlier of the two nodes' protocol deadlines or the first
/// datagram landing on the subscriber socket.
fn drive(pub_rt: &mut Runtime, sub_rt: &mut Runtime, wall: Duration) {
    let sub_sock = sub_rt.try_clone_socket().expect("clone subscriber socket");
    let end = Instant::now() + wall;
    while Instant::now() < end {
        let da = pub_rt.poll().expect("publisher poll");
        let db = sub_rt.poll().expect("subscriber poll");
        // Deadlines live on each node's own clock axis; the epochs are
        // microseconds apart, so taking the min is fine for a sleep hint.
        let hint = sub_rt.now().saturating_until_wall(da.min(db));
        let timeout = hint
            .min(Duration::from_millis(5))
            .max(Duration::from_micros(200));
        sstp::runtime::wait::wait_for_datagram(&sub_sock, timeout).expect("wait");
    }
}

/// Number of (session, key) pairs where the subscriber's replica
/// disagrees with the publisher's live table — each one is a stale serve
/// a reader would have been handed at that instant. Crashed subscriber
/// sessions are skipped (they are not "surviving" until rejoined).
fn diverged(pub_rt: &Runtime, sub_rt: &Runtime, sids: &[u32]) -> u64 {
    let mut bad = 0u64;
    for &sid in sids {
        let tx = pub_rt.publisher(sid).expect("publisher session");
        let Some(rx) = sub_rt.subscriber(sid) else {
            continue;
        };
        for rec in tx.table().live() {
            match rx.replica().get(rec.key) {
                Some(e) if e.value.version == rec.value.version => {}
                _ => bad += 1,
            }
        }
    }
    bad
}

/// Helper: a wall `Duration` until SimTime `t` on this runtime's axis.
trait UntilWall {
    fn saturating_until_wall(&self, t: SimTime) -> Duration;
}

impl UntilWall for SimTime {
    fn saturating_until_wall(&self, t: SimTime) -> Duration {
        Duration::from_micros(t.saturating_since(*self).as_micros())
    }
}

/// The soak proper, parameterized by session count.
fn soak(n: usize, seed: u64) {
    let (mut pub_rt, mut sub_rt, sids) = bind_nodes(n, seed);

    // Each publisher session announces three records.
    let mut first_keys: Vec<Key> = Vec::with_capacity(n);
    for &sid in &sids {
        let now = pub_rt.now();
        let tx = pub_rt.publisher_mut(sid).unwrap();
        let root = tx.root();
        let k = tx.publish(now, root, MetaTag(0));
        tx.publish(now, root, MetaTag(1));
        tx.publish(now, root, MetaTag(2));
        first_keys.push(k);
    }

    // Phase 1: initial convergence. Budget is generous for loaded CI.
    let budget = Instant::now() + Duration::from_secs(30);
    while diverged(&pub_rt, &sub_rt, &sids) > 0 {
        assert!(
            Instant::now() < budget,
            "initial convergence stalled: {} records still divergent",
            diverged(&pub_rt, &sub_rt, &sids)
        );
        drive(&mut pub_rt, &mut sub_rt, Duration::from_millis(150));
    }

    // Phase 2: replay a fault schedule as real socket drops at both
    // ingresses — a 1 s partition, then 1 s of 25% extra loss — while
    // updating records (divergence to repair) and churning sessions.
    let fault_spec = |now: SimTime| {
        FaultSpec::none()
            .partition(
                now + SimDuration::from_millis(200),
                now + SimDuration::from_millis(1200),
            )
            .extra_loss(
                now + SimDuration::from_millis(1200),
                now + SimDuration::from_millis(2200),
                LossSpec::Bernoulli(0.25),
            )
    };
    pub_rt.set_faults(RealPathFaults::new(
        fault_spec(pub_rt.now()).build(SimRng::new(seed ^ 0x0f01)),
    ));
    let sub_schedule = fault_spec(sub_rt.now()).build(SimRng::new(seed ^ 0x0f02));
    let healed_at = sub_schedule.healed_at();
    sub_rt.set_faults(RealPathFaults::new(sub_schedule));

    // Updates land during the blackout: the subscribers keep serving
    // version 1 until repair catches them up to version 2.
    for (i, &sid) in sids.iter().enumerate() {
        pub_rt.publisher_mut(sid).unwrap().update(first_keys[i]);
    }

    // Churn: a tenth of the subscriber sessions crash mid-fault...
    let churned: Vec<u32> = sids.iter().copied().step_by(10).collect();
    for &sid in &churned {
        sub_rt.crash(sid);
    }
    drive(&mut pub_rt, &mut sub_rt, Duration::from_millis(1400));
    // ...and rejoin with fresh, empty replicas before the loss window
    // ends: recovery flows through the root-summary descent.
    for &sid in &churned {
        sub_rt.rejoin_subscriber(sid, receiver_config(sid + 1_000_000));
    }
    drive(&mut pub_rt, &mut sub_rt, Duration::from_millis(1100));

    // Phase 3: sample until every surviving session reconverged, and
    // gate MTTR at 3×TTL past the schedule's heal point.
    let ttl3 = SimDuration::from_micros(TTL.as_micros() * 3);
    let wall_budget = Instant::now() + Duration::from_secs(25);
    let mut stale_serves = 0u64;
    let mut reconverged_at = None;
    loop {
        let bad = diverged(&pub_rt, &sub_rt, &sids);
        stale_serves += bad;
        if bad == 0 {
            reconverged_at = Some(sub_rt.now());
            break;
        }
        if Instant::now() >= wall_budget {
            break;
        }
        drive(&mut pub_rt, &mut sub_rt, Duration::from_millis(150));
    }

    let fault_drops = [pub_rt.faults().unwrap(), sub_rt.faults().unwrap()]
        .iter()
        .map(|f| f.data_drops() + f.feedback_drops())
        .sum::<u64>();
    let report = ReconvergenceReport {
        healed_at,
        reconverged_at,
        stale_serves,
        fault_drops,
    };
    assert!(
        report.fault_drops > 0,
        "the fault schedule must have dropped real datagrams"
    );
    let mttr = report
        .mttr()
        .expect("sessions did not reconverge within the wall budget");
    assert!(
        mttr <= ttl3,
        "MTTR {mttr:?} exceeds 3xTTL {ttl3:?} ({} stale serves, {} fault drops)",
        report.stale_serves,
        report.fault_drops
    );

    // Every inter-task queue stayed bounded, with refusals counted.
    for rt in [&pub_rt, &sub_rt] {
        assert!(rt.inbox_high_water() <= 64, "inbox exceeded its bound");
        assert!(rt.outbox_high_water() <= 4096, "outbox exceeded its bound");
    }

    // The health metrics flow through the shared registry under their
    // documented names.
    let snap = sub_rt.metrics_snapshot();
    assert!(snap.counter("runtime.ingress.datagrams") > 0);
    assert!(snap.counter("runtime.fault.drops") > 0);
    assert_eq!(
        snap.gauge("runtime.sessions.active") as usize,
        sids.len(),
        "all subscriber sessions should be active again after the soak"
    );
    // Backpressure refusals are *allowed* (that is the design) but must
    // agree with the runtime's own count.
    assert_eq!(
        snap.counter("runtime.backpressure.drops"),
        sub_rt.backpressure_drops()
    );
    let psnap = pub_rt.metrics_snapshot();
    assert!(psnap.counter("runtime.egress.datagrams") > 0);
    assert!(
        psnap.counter("runtime.probe.sent") > 0,
        "the partition must have driven supervisor probes"
    );
}

/// CI-sized soak: hundreds of concurrent sessions with churn and a
/// replayed fault schedule.
#[test]
fn soak_with_churn_and_replayed_faults() {
    let n = std::env::var("RUNTIME_SOAK_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    soak(n, 42);
}

/// The full thousand-session gate from ISSUE 10. Run with `--ignored`
/// (or set `RUNTIME_SOAK_SESSIONS=1000` for the default test).
#[test]
#[ignore = "full-scale soak; run explicitly or via RUNTIME_SOAK_SESSIONS"]
fn soak_at_one_thousand_sessions() {
    soak(1000, 43);
}
