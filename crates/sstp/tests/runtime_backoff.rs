//! Backoff coverage on the **real** path: the supervisor's capped
//! exponential re-probe schedule observed as actual datagrams on a
//! loopback socket, plus a property test pinning the schedule invariant
//! under arbitrary silence/heal interleavings.
//!
//! The schedule under test is the protocol's shared backoff contract
//! (PR 5): the `n`-th re-probe waits `base * 2^min(n, 4)` since the
//! previous one, plus a jitter of at most a quarter of that gap. The
//! loopback test asserts both the lower bounds (never faster than the
//! schedule) and the `2^4` cap (once capped, gaps stop doubling — which
//! is what re-detects a healed peer within a bounded interval).

use proptest::prelude::*;
use ss_netsim::{SimDuration, SimRng, SimTime};
use sstp::digest::HashAlgorithm;
use sstp::runtime::supervisor::{BackoffSchedule, Supervisor, SupervisorConfig};
use sstp::runtime::{Runtime, RuntimeConfig};
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

fn any_loopback() -> SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

/// A runtime with one publisher session probing into permanent silence:
/// the peer is a plain test socket that never answers, so every probe in
/// the schedule shows up as a datagram whose arrival time we can stamp.
#[test]
fn probe_schedule_caps_at_two_to_the_four_on_loopback() {
    let base = SimDuration::from_millis(50);
    let suspect_after = SimDuration::from_millis(100);
    let sink = UdpSocket::bind(any_loopback()).expect("bind sink");
    sink.set_read_timeout(Some(Duration::from_millis(100)))
        .expect("sink timeout");

    let mut cfg = RuntimeConfig::loopback(any_loopback(), sink.local_addr().unwrap());
    // Long enough that no periodic summary lands inside the run: the
    // only datagrams after the initial summary are supervisor probes.
    cfg.summary_interval = SimDuration::from_secs(600);
    cfg.supervisor = SupervisorConfig {
        suspect_after,
        backoff: BackoffSchedule::new(base),
        dead_after_probes: 6,
    };
    let mut rt = Runtime::bind(cfg).expect("bind runtime");
    rt.add_publisher(HashAlgorithm::Fnv64, 64);

    // Collect arrival instants on a reader thread while the main thread
    // drives the runtime. ~4.2 s spans probes 0..=7, two past the cap.
    let run = Duration::from_millis(4200);
    let reader = std::thread::spawn(move || {
        let t0 = Instant::now();
        let mut arrivals = Vec::new();
        let mut buf = [0u8; 2048];
        while t0.elapsed() < run + Duration::from_millis(300) {
            if sink.recv_from(&mut buf).is_ok() {
                arrivals.push(t0.elapsed());
            }
        }
        arrivals
    });
    rt.run_for(run).expect("run");
    let arrivals = reader.join().expect("join reader");

    // Datagram 0 is the session's initial root summary; the rest are
    // probes. Expected probe times (ms, zero jitter): 100, 150, 250,
    // 450, 850, 1650, 2450, 3250 — gaps 50,100,200,400,800,800,800.
    let probes = &arrivals[1..];
    assert!(
        probes.len() >= 7,
        "expected at least 7 probes in {run:?}, saw {}",
        probes.len()
    );
    let sched = BackoffSchedule::new(base);
    for (n, pair) in probes.windows(2).enumerate() {
        let gap = pair[1] - pair[0];
        let want = Duration::from_micros(sched.gap(n as u32).as_micros());
        // Lower bound: never faster than the schedule. A small allowance
        // covers arrival-stamping noise between the two endpoints.
        assert!(
            gap + Duration::from_millis(25) >= want,
            "probe {} came {gap:?} after its predecessor; schedule demands {want:?}",
            n + 1
        );
        // Upper bound: gap + 25% jitter + scheduling slack. For n >= 4
        // `want` is the capped 16*base — an uncapped schedule's 32*base
        // (1600 ms) would blow straight through this ceiling.
        let ceiling = want + want / 4 + Duration::from_millis(400);
        assert!(
            gap <= ceiling,
            "probe {} took {gap:?}; cap demands <= {ceiling:?}",
            n + 1
        );
    }
}

proptest! {
    /// Under arbitrary silence/heal interleavings the supervisor never
    /// re-probes a session faster than its backoff schedule, and a heal
    /// always resets the schedule: the next probe waits the full silence
    /// threshold, then restarts from the base gap.
    #[test]
    fn supervisor_never_probes_faster_than_schedule(
        steps in prop::collection::vec((any::<bool>(), 1u64..400u64), 1..120),
        seed in any::<u64>(),
    ) {
        let cfg = SupervisorConfig {
            suspect_after: SimDuration::from_millis(200),
            backoff: BackoffSchedule::new(SimDuration::from_millis(50)),
            dead_after_probes: 5,
        };
        let mut sup = Supervisor::new(cfg, SimRng::new(seed));
        let mut now = SimTime::ZERO;
        sup.register(0, now);

        let mut last_heard = now;
        let mut last_probe: Option<(SimTime, u32)> = None;
        let mut attempts = 0u32;
        for (hear, dt_ms) in steps {
            now += SimDuration::from_millis(dt_ms);
            if hear {
                sup.heard(0, now);
                last_heard = now;
                last_probe = None;
                attempts = 0;
            }
            if sup.due_probes(now).contains(&0) {
                match last_probe {
                    Some((prev, n)) => prop_assert!(
                        now.saturating_since(prev) >= cfg.backoff.gap(n),
                        "probe {} fired {:?} after its predecessor; gap({}) = {:?}",
                        attempts,
                        now.saturating_since(prev),
                        n,
                        cfg.backoff.gap(n)
                    ),
                    None => prop_assert!(
                        now.saturating_since(last_heard) >= cfg.suspect_after,
                        "probed a session heard {:?} ago, inside the silence threshold",
                        now.saturating_since(last_heard)
                    ),
                }
                last_probe = Some((now, attempts));
                attempts += 1;
            }
        }
    }
}
