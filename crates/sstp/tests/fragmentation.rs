//! ADU fragmentation tests: the §6.2 `right_edge` semantics — large ADUs
//! travel as multiple fragments, leaf digests cover the bytes actually
//! held, and a partially received ADU is detected and repaired through
//! the ordinary digest-descent machinery.

use softstate::measure_tables;
use ss_netsim::{SimDuration, SimRng, SimTime};
use sstp::digest::HashAlgorithm;
use sstp::namespace::MetaTag;
use sstp::receiver::{ReceiverConfig, SstpReceiver};
use sstp::sender::SstpSender;
use sstp::wire::Packet;

fn pair(mtu: u32) -> (SstpSender, SstpReceiver) {
    let tx = SstpSender::new(HashAlgorithm::Fnv64, 1000).with_mtu(mtu);
    let mut cfg = ReceiverConfig::unicast(0, HashAlgorithm::Fnv64);
    cfg.ttl = SimDuration::from_secs(1_000_000);
    cfg.repair_backoff = SimDuration::from_millis(1);
    (tx, SstpReceiver::new(cfg, SimRng::new(4)))
}

/// Collects all currently queued hot packets.
fn drain_hot(tx: &mut SstpSender) -> Vec<Packet> {
    std::iter::from_fn(|| tx.next_hot_packet()).collect()
}

/// Runs lossless repair rounds until convergence; returns rounds used.
fn repair_until_consistent(tx: &mut SstpSender, rx: &mut SstpReceiver) -> usize {
    let mut now = SimTime::from_secs(10);
    for round in 1..=30 {
        now += SimDuration::from_secs(1);
        rx.on_packet(now, &tx.summary_packet());
        loop {
            let fb = rx.poll_feedback(now);
            if fb.is_empty() {
                break;
            }
            for p in &fb {
                tx.on_packet(p);
            }
            for p in drain_hot(tx) {
                rx.on_packet(now, &p);
            }
        }
        if measure_tables(tx.table(), rx.replica()) == Some(1.0) {
            return round;
        }
    }
    panic!("repair did not converge");
}

#[test]
fn large_adu_fragments_and_reassembles() {
    let (mut tx, mut rx) = pair(1000);
    let root = tx.root();
    let key = tx.publish_sized(SimTime::ZERO, root, MetaTag(0), 3500);

    let frags = drain_hot(&mut tx);
    assert_eq!(frags.len(), 4, "3500 B at 1000 B MTU = 4 fragments");
    let mut offsets = Vec::new();
    for p in &frags {
        let Packet::Data(d) = p else { panic!("{p:?}") };
        assert_eq!(d.key, key);
        assert_eq!(d.total_len, 3500);
        offsets.push((d.offset, d.payload_len));
    }
    assert_eq!(
        offsets,
        vec![(0, 1000), (1000, 1000), (2000, 1000), (3000, 500)]
    );

    // Deliver all fragments: the replica takes the complete value once.
    for (i, p) in frags.iter().enumerate() {
        rx.on_packet(SimTime::from_millis(i as u64), p);
        let done = rx.replica().get(key).is_some();
        assert_eq!(
            done,
            i == frags.len() - 1,
            "complete only at the last fragment"
        );
    }
    assert_eq!(measure_tables(tx.table(), rx.replica()), Some(1.0));
    assert_eq!(rx.stats().fragments_advanced, 4);
}

#[test]
fn small_adu_is_a_single_whole_packet() {
    let (mut tx, mut rx) = pair(1000);
    let root = tx.root();
    tx.publish_sized(SimTime::ZERO, root, MetaTag(0), 400);
    let frags = drain_hot(&mut tx);
    assert_eq!(frags.len(), 1);
    let Packet::Data(d) = &frags[0] else { panic!() };
    assert!(d.is_whole());
    rx.on_packet(SimTime::ZERO, &frags[0]);
    assert_eq!(measure_tables(tx.table(), rx.replica()), Some(1.0));
}

#[test]
fn lost_middle_fragment_is_repaired_via_digest_descent() {
    let (mut tx, mut rx) = pair(1000);
    let root = tx.root();
    let key = tx.publish_sized(SimTime::ZERO, root, MetaTag(0), 3000);
    let frags = drain_hot(&mut tx);
    assert_eq!(frags.len(), 3);

    // Fragment 1 (offset 1000) is lost.
    rx.on_packet(SimTime::ZERO, &frags[0]);
    rx.on_packet(SimTime::ZERO, &frags[2]);
    assert!(rx.replica().get(key).is_none(), "partial ADU not applied");
    assert_ne!(
        measure_tables(tx.table(), rx.replica()),
        Some(1.0),
        "partial ADU counts as inconsistent"
    );

    // Digest descent detects the short right edge and NACKs; the sender
    // retransmits the whole ADU and the receiver completes.
    let rounds = repair_until_consistent(&mut tx, &mut rx);
    assert!(rounds <= 3, "repair took {rounds} rounds");
    assert!(rx.replica().get(key).is_some());
}

#[test]
fn version_update_mid_flight_restarts_reassembly() {
    let (mut tx, mut rx) = pair(1000);
    let root = tx.root();
    let key = tx.publish_sized(SimTime::ZERO, root, MetaTag(0), 2500);

    // Deliver only the first fragment of version 1.
    let p0 = tx.next_hot_packet().unwrap();
    rx.on_packet(SimTime::ZERO, &p0);

    // The application updates the record: the sender abandons the old
    // version's remaining fragments (the update has its own queue entry).
    tx.update(key);
    let rest = drain_hot(&mut tx);
    let versions: Vec<u64> = rest
        .iter()
        .map(|p| match p {
            Packet::Data(d) => d.version,
            other => panic!("{other:?}"),
        })
        .collect();
    assert!(
        versions.iter().all(|&v| v == 2),
        "superseded version must not continue: {versions:?}"
    );

    for p in &rest {
        rx.on_packet(SimTime::from_secs(1), p);
    }
    assert_eq!(rx.replica().get(key).unwrap().value.version, 2);
    assert_eq!(measure_tables(tx.table(), rx.replica()), Some(1.0));
}

#[test]
fn stale_fragments_of_old_versions_are_ignored() {
    let (mut tx, mut rx) = pair(1000);
    let root = tx.root();
    let key = tx.publish_sized(SimTime::ZERO, root, MetaTag(0), 2000);
    let v1_frags = drain_hot(&mut tx);
    tx.update(key);
    let v2_frags = drain_hot(&mut tx);

    // v2 arrives first (complete), then delayed v1 fragments straggle in.
    for p in &v2_frags {
        rx.on_packet(SimTime::ZERO, p);
    }
    assert_eq!(rx.replica().get(key).unwrap().value.version, 2);
    for p in &v1_frags {
        rx.on_packet(SimTime::from_secs(1), p);
    }
    assert_eq!(
        rx.replica().get(key).unwrap().value.version,
        2,
        "stale fragments must not regress the replica"
    );
    assert_eq!(measure_tables(tx.table(), rx.replica()), Some(1.0));
}

#[test]
fn duplicate_and_reordered_fragments_are_harmless() {
    let (mut tx, mut rx) = pair(500);
    let root = tx.root();
    let key = tx.publish_sized(SimTime::ZERO, root, MetaTag(0), 1500);
    let frags = drain_hot(&mut tx);
    assert_eq!(frags.len(), 3);

    // Duplicate fragment 0, then deliver in order with repeats.
    rx.on_packet(SimTime::ZERO, &frags[0]);
    rx.on_packet(SimTime::ZERO, &frags[0]);
    rx.on_packet(SimTime::ZERO, &frags[1]);
    rx.on_packet(SimTime::ZERO, &frags[1]);
    rx.on_packet(SimTime::ZERO, &frags[2]);
    assert_eq!(rx.replica().get(key).unwrap().value.version, 1);
    assert_eq!(measure_tables(tx.table(), rx.replica()), Some(1.0));
}

#[test]
fn cycle_stream_fragments_too() {
    let (mut tx, _rx) = pair(1000);
    let root = tx.root();
    tx.publish_sized(SimTime::ZERO, root, MetaTag(0), 2200);
    let _ = drain_hot(&mut tx);

    // The cold cycle re-announces the ADU in fragments as well.
    let mut sizes = Vec::new();
    for _ in 0..3 {
        let p = tx.next_cycle_packet().expect("cycle packet");
        let Packet::Data(d) = p else { panic!() };
        sizes.push(d.payload_len);
    }
    assert_eq!(sizes, vec![1000, 1000, 200]);
}

#[test]
fn fragmented_store_converges_under_random_loss() {
    let (mut tx, mut rx) = pair(700);
    let root = tx.root();
    for i in 0..12u32 {
        tx.publish_sized(SimTime::ZERO, root, MetaTag(0), 500 + i * 333);
    }
    // Initial transmission with every third fragment lost.
    let frags = drain_hot(&mut tx);
    for (i, p) in frags.iter().enumerate() {
        if i % 3 != 2 {
            rx.on_packet(SimTime::ZERO, p);
        }
    }
    let rounds = repair_until_consistent(&mut tx, &mut rx);
    assert!(rounds <= 6, "converged in {rounds} rounds");
}
