//! SSTP over real UDP on loopback: the sans-I/O endpoints driven by wall
//! clocks and actual sockets. Loss is injected deterministically at the
//! receiving side so repair paths run even on a lossless loopback.
//!
//! Timing bounds are generous (seconds of budget for sub-second
//! convergence) to stay robust on loaded CI machines.

use ss_netsim::{LossSpec, SimDuration};
use sstp::digest::HashAlgorithm;
use sstp::namespace::MetaTag;
use sstp::receiver::ReceiverConfig;
use sstp::udp::{UdpConfig, UdpPublisher, UdpSubscriber};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn any_loopback() -> SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

/// Builds a connected publisher/subscriber pair on ephemeral ports. The
/// subscriber's inbound datagrams pass through the given loss process
/// (the same `LossSpec` the simulator channels use).
fn connected_pair(ingress_loss: LossSpec, seed: u64) -> (UdpPublisher, UdpSubscriber) {
    let placeholder = any_loopback();
    let mut pub_cfg = UdpConfig::loopback(any_loopback(), placeholder);
    pub_cfg.summary_interval = Duration::from_millis(50);
    let mut publisher =
        UdpPublisher::bind(&pub_cfg, HashAlgorithm::Fnv64, 400).expect("bind publisher");

    let mut sub_cfg = UdpConfig::loopback(any_loopback(), publisher.local_addr().unwrap());
    sub_cfg.ingress_loss = ingress_loss;
    sub_cfg.seed = seed;
    sub_cfg.report_interval = Duration::from_millis(100);
    sub_cfg.expiry_interval = Duration::from_millis(100);
    let mut rcfg = ReceiverConfig::unicast(0, HashAlgorithm::Fnv64);
    rcfg.ttl = SimDuration::from_secs(3600);
    rcfg.repair_backoff = SimDuration::from_millis(60);
    let subscriber = UdpSubscriber::bind(&sub_cfg, rcfg).expect("bind subscriber");

    publisher.set_peer(subscriber.local_addr().unwrap());
    (publisher, subscriber)
}

/// Drives both ends until the subscriber holds `want` keys or `budget`
/// elapses; returns whether it converged.
fn drive_until(
    publisher: &mut UdpPublisher,
    subscriber: &mut UdpSubscriber,
    want: usize,
    budget: Duration,
) -> bool {
    let end = Instant::now() + budget;
    while Instant::now() < end {
        publisher.poll().expect("publisher poll");
        subscriber.poll().expect("subscriber poll");
        if subscriber.receiver().replica().len() >= want {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    false
}

#[test]
fn lossless_loopback_delivers_everything() {
    let (mut publisher, mut subscriber) = connected_pair(LossSpec::None, 1);
    let root = publisher.sender().root();
    let now = publisher.now();
    let keys: Vec<_> = (0..20)
        .map(|_| publisher.sender_mut().publish(now, root, MetaTag(0)))
        .collect();

    assert!(
        drive_until(
            &mut publisher,
            &mut subscriber,
            keys.len(),
            Duration::from_secs(5)
        ),
        "subscriber should hold all {} records; has {}",
        keys.len(),
        subscriber.receiver().replica().len()
    );
    for k in &keys {
        assert!(subscriber.receiver().replica().get(*k).is_some());
    }
    assert!(publisher.stats().datagrams_tx >= 20);
    assert!(subscriber.stats().datagrams_rx >= 20);
}

#[test]
fn injected_loss_is_repaired_via_real_feedback() {
    // 30% of datagrams into the subscriber are dropped; summaries +
    // queries + NACKs over the real socket must repair the gaps.
    let (mut publisher, mut subscriber) = connected_pair(LossSpec::Bernoulli(0.3), 7);
    let root = publisher.sender().root();
    let now = publisher.now();
    let n = 30;
    for _ in 0..n {
        publisher.sender_mut().publish(now, root, MetaTag(0));
    }

    assert!(
        drive_until(&mut publisher, &mut subscriber, n, Duration::from_secs(10)),
        "repair did not converge: {}/{} held, {} drops injected",
        subscriber.receiver().replica().len(),
        n,
        subscriber.stats().injected_drops
    );
    assert!(
        subscriber.stats().injected_drops > 0,
        "loss must have occurred"
    );
    // Feedback really flowed: the publisher processed NACKs or queries.
    let s = publisher.sender().stats();
    assert!(
        s.nacks_rx + s.queries_rx > 0,
        "repair must have used the feedback channel: {s:?}"
    );
}

#[test]
fn bursty_injected_loss_is_repaired() {
    // The unified LossSpec lets loopback tests inject Gilbert–Elliott
    // burst loss, not just i.i.d. drops: whole summary+data trains die
    // together, which exercises repair under correlated loss.
    let (mut publisher, mut subscriber) = connected_pair(
        LossSpec::Bursty {
            mean: 0.3,
            burst_len: 5.0,
        },
        11,
    );
    let root = publisher.sender().root();
    let now = publisher.now();
    let n = 30;
    for _ in 0..n {
        publisher.sender_mut().publish(now, root, MetaTag(0));
    }

    assert!(
        drive_until(&mut publisher, &mut subscriber, n, Duration::from_secs(10)),
        "repair did not converge under bursty loss: {}/{} held, {} drops",
        subscriber.receiver().replica().len(),
        n,
        subscriber.stats().injected_drops
    );
    assert!(
        subscriber.stats().injected_drops > 0,
        "burst loss must have occurred"
    );
}

#[test]
fn updates_and_withdrawals_propagate() {
    let (mut publisher, mut subscriber) = connected_pair(LossSpec::None, 3);
    let root = publisher.sender().root();
    let now = publisher.now();
    let k1 = publisher.sender_mut().publish(now, root, MetaTag(0));
    let k2 = publisher.sender_mut().publish(now, root, MetaTag(0));
    assert!(drive_until(
        &mut publisher,
        &mut subscriber,
        2,
        Duration::from_secs(5)
    ));

    // Update k1, withdraw k2.
    publisher.sender_mut().update(k1);
    publisher.sender_mut().withdraw(k2);

    let end = Instant::now() + Duration::from_secs(5);
    loop {
        publisher.poll().unwrap();
        subscriber.poll().unwrap();
        let v_ok = subscriber
            .receiver()
            .replica()
            .get(k1)
            .is_some_and(|e| e.value.version == 2);
        let gone = subscriber.receiver().replica().get(k2).is_none();
        if v_ok && gone {
            break;
        }
        assert!(Instant::now() < end, "update/withdrawal did not propagate");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn reports_reach_the_publisher() {
    let (mut publisher, mut subscriber) = connected_pair(LossSpec::None, 5);
    let root = publisher.sender().root();
    let now = publisher.now();
    publisher.sender_mut().publish(now, root, MetaTag(0));

    let end = Instant::now() + Duration::from_secs(5);
    while publisher.sender().stats().reports_rx == 0 {
        publisher.poll().unwrap();
        subscriber.poll().unwrap();
        assert!(Instant::now() < end, "no receiver report arrived");
        std::thread::sleep(Duration::from_millis(1));
    }
}
