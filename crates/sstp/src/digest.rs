//! One-way hashes for namespace summaries.
//!
//! §6.2 computes each namespace node's fixed-length summary "recursively
//! using the one-way hash function h (e.g., MD5)". MD5 (RFC 1321) is
//! implemented here from scratch — it is a *substrate dependency of the
//! paper*, not a security boundary; SSTP uses it purely as a collision-
//! resistant-enough summary so a digest mismatch means "this subtree
//! differs". A 64-bit FNV-1a is provided as a cheaper alternative and is
//! what the simulations default to (16 bytes vs 8 bytes per summary entry
//! changes packet sizes, which the session accounts for).

use std::fmt;

/// A namespace summary digest (truncated to 16 bytes max).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest {
    bytes: [u8; 16],
    len: u8,
}

impl Digest {
    /// Wraps a full MD5 digest.
    pub fn from_md5(bytes: [u8; 16]) -> Self {
        Digest { bytes, len: 16 }
    }

    /// Wraps a 64-bit FNV digest.
    pub fn from_u64(x: u64) -> Self {
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&x.to_be_bytes());
        Digest { bytes, len: 8 }
    }

    /// The digest bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Length in bytes (8 for FNV, 16 for MD5).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Digests are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.as_bytes() {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// The hash algorithm used for namespace summaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum HashAlgorithm {
    /// RFC 1321 MD5 — the paper's example choice.
    Md5,
    /// 64-bit FNV-1a — smaller summaries, faster; the simulation default.
    #[default]
    Fnv64,
}

impl HashAlgorithm {
    /// Hashes `data` with this algorithm.
    pub fn digest(&self, data: &[u8]) -> Digest {
        match self {
            HashAlgorithm::Md5 => Digest::from_md5(md5(data)),
            HashAlgorithm::Fnv64 => Digest::from_u64(fnv1a64(data)),
        }
    }

    /// Digest size in bytes — used in wire-format size accounting.
    pub fn digest_len(&self) -> usize {
        match self {
            HashAlgorithm::Md5 => 16,
            HashAlgorithm::Fnv64 => 8,
        }
    }
}

/// 64-bit FNV-1a.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// --- MD5 (RFC 1321) -----------------------------------------------------

const MD5_S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

const MD5_K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// RFC 1321 MD5 of `data`.
pub fn md5(data: &[u8]) -> [u8; 16] {
    let mut a0: u32 = 0x67452301;
    let mut b0: u32 = 0xefcdab89;
    let mut c0: u32 = 0x98badcfe;
    let mut d0: u32 = 0x10325476;

    // Padding: 0x80, zeros, then the 64-bit little-endian bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_le_bytes());

    for chunk in msg.chunks_exact(64) {
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes(chunk[i * 4..i * 4 + 4].try_into().unwrap());
        }
        let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            let sum = a.wrapping_add(f).wrapping_add(MD5_K[i]).wrapping_add(m[g]);
            b = b.wrapping_add(sum.rotate_left(MD5_S[i]));
            a = tmp;
        }
        a0 = a0.wrapping_add(a);
        b0 = b0.wrapping_add(b);
        c0 = c0.wrapping_add(c);
        d0 = d0.wrapping_add(d);
    }

    let mut out = [0u8; 16];
    out[0..4].copy_from_slice(&a0.to_le_bytes());
    out[4..8].copy_from_slice(&b0.to_le_bytes());
    out[8..12].copy_from_slice(&c0.to_le_bytes());
    out[12..16].copy_from_slice(&d0.to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn md5_hex(s: &str) -> String {
        md5(s.as_bytes())
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect()
    }

    /// The RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_test_suite() {
        assert_eq!(md5_hex(""), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(md5_hex("a"), "0cc175b9c0f1b6a831c399e269772661");
        assert_eq!(md5_hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(
            md5_hex("message digest"),
            "f96b697d7cb7938d525a2f31aaf161d0"
        );
        assert_eq!(
            md5_hex("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b"
        );
        assert_eq!(
            md5_hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
            "d174ab98d277d9f5a5611c2c9f419d9f"
        );
        assert_eq!(
            md5_hex(
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890"
            ),
            "57edf4a22be3c955ac49da2e2107b67a"
        );
    }

    #[test]
    fn md5_padding_boundaries() {
        // Lengths straddling the 56-byte padding boundary must all work.
        for n in 54..=70 {
            let data = vec![0x41u8; n];
            let d = md5(&data);
            assert_eq!(d.len(), 16);
            // Changing one byte changes the digest.
            let mut data2 = data.clone();
            data2[n / 2] ^= 1;
            assert_ne!(md5(&data), md5(&data2));
        }
    }

    #[test]
    fn fnv_known_values() {
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn digest_wrappers() {
        let m = HashAlgorithm::Md5.digest(b"abc");
        assert_eq!(m.len(), 16);
        assert_eq!(HashAlgorithm::Md5.digest_len(), 16);
        let f = HashAlgorithm::Fnv64.digest(b"abc");
        assert_eq!(f.len(), 8);
        assert_eq!(HashAlgorithm::Fnv64.digest_len(), 8);
        assert_ne!(m, f);
        assert!(!m.is_empty());
        assert_eq!(format!("{f:?}").len(), 16);
        assert_eq!(
            HashAlgorithm::Fnv64.digest(b"abc"),
            HashAlgorithm::Fnv64.digest(b"abc")
        );
    }

    #[test]
    fn digest_equality_is_content_based() {
        let a = Digest::from_u64(7);
        let b = Digest::from_u64(7);
        let c = Digest::from_u64(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_bytes().len(), 8);
    }
}
