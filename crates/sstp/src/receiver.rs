//! The SSTP receiver endpoint.
//!
//! Receivers hold a soft-state replica (entries expire without refresh)
//! and a mirror of the sender's namespace built from received data and
//! summaries. Loss recovery is the §6.2 recursive descent: a root-summary
//! digest mismatch triggers a repair query; the sender's node summary is
//! compared child by child; mismatched interiors are queried one level
//! deeper and mismatched or missing leaves are NACKed. Repair for
//! subtrees the application declared no interest in is skipped entirely
//! ("a receiver may refrain from requesting further repair along a
//! branch if there is no application-level interest").
//!
//! Feedback is scheduled, not sent inline: every query/NACK gets a fire
//! time (immediate for unicast, a random slot for multicast) and can be
//! *damped* by overhearing another receiver's equivalent request — the
//! slotting-and-damping scheme the paper imports from SRM/wb. The
//! session harness polls [`SstpReceiver::poll_feedback`] at fire times.

use crate::digest::HashAlgorithm;
use crate::machine::{MachineError, ReceiverEffect, ReceiverEvent, RxMutations, StateHasher};
use crate::namespace::{MetaTag, Namespace, Path};
use crate::reports::ReceiverReporter;
use crate::wire::{NackPacket, Packet, RepairQueryPacket};
use softstate::{Key, SubscriberTable, Value};
use ss_netsim::{EventKind, EventLog, SimDuration, SimRng, SimTime};
use std::collections::BTreeMap;

/// Which content classes this receiver repairs.
#[derive(Clone, Debug)]
pub enum Interest {
    /// Repair everything.
    All,
    /// Repair only ADUs/subtrees carrying one of these tags.
    Tags(Vec<MetaTag>),
}

impl Interest {
    /// Whether this receiver wants content tagged `tag`.
    pub fn wants(&self, tag: MetaTag) -> bool {
        match self {
            Interest::All => true,
            Interest::Tags(ts) => ts.contains(&tag),
        }
    }
}

/// When scheduled feedback fires.
#[derive(Clone, Copy, Debug)]
pub enum FeedbackTiming {
    /// Fire as soon as the session polls (unicast).
    Immediate,
    /// Fire after a uniform random delay in `[0, window)` so that in a
    /// multicast group one receiver's request can suppress the others'.
    Slotted {
        /// The slot window.
        window: SimDuration,
    },
}

/// Receiver configuration.
#[derive(Clone, Debug)]
pub struct ReceiverConfig {
    /// This receiver's id (appears in reports).
    pub id: u32,
    /// Soft-state TTL for replica entries.
    pub ttl: SimDuration,
    /// Summary hash (must match the sender's).
    pub algo: HashAlgorithm,
    /// Interest scoping.
    pub interest: Interest,
    /// Whether feedback (queries + NACKs) is enabled.
    pub feedback: bool,
    /// Minimum interval between repair attempts for the same node/key.
    pub repair_backoff: SimDuration,
    /// Feedback scheduling policy.
    pub timing: FeedbackTiming,
}

impl ReceiverConfig {
    /// A sensible unicast receiver: interested in everything, immediate
    /// feedback, 1 s backoff, 30 s TTL.
    pub fn unicast(id: u32, algo: HashAlgorithm) -> Self {
        ReceiverConfig {
            id,
            ttl: SimDuration::from_secs(30),
            algo,
            interest: Interest::All,
            feedback: true,
            repair_backoff: SimDuration::from_secs(1),
            timing: FeedbackTiming::Immediate,
        }
    }
}

/// A repair request awaiting its fire time.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum FbKind {
    Query(Path),
    Nack(Key),
}

/// Counters exposed for experiments and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReceiverStats {
    /// Data packets received.
    pub data_rx: u64,
    /// Data packets that changed the replica (new key or newer version).
    pub data_applied: u64,
    /// Root summaries received.
    pub root_summaries_rx: u64,
    /// Node summaries received.
    pub node_summaries_rx: u64,
    /// NACK packets sent.
    pub nacks_sent: u64,
    /// NACKed keys sent (one packet may carry several).
    pub nacked_keys: u64,
    /// Repair queries sent.
    pub queries_sent: u64,
    /// Own pending requests damped by overheard feedback.
    pub damped: u64,
    /// Repair skipped because the content class is uninteresting.
    pub uninterested_skips: u64,
    /// Replica entries expired by the soft-state timer.
    pub expired: u64,
    /// Fragments that advanced a reassembly right edge.
    pub fragments_advanced: u64,
}

/// The SSTP receiver endpoint.
///
/// Sans-I/O, like the sender: feed it wire packets with
/// [`SstpReceiver::on_packet`], drain repair feedback with
/// [`SstpReceiver::poll_feedback`], and run the soft-state timer with
/// [`SstpReceiver::expire`]. An optional typed event trace
/// ([`SstpReceiver::with_event_log`]) records deliveries, expiries,
/// queries, and NACKs in simulation time:
///
/// ```
/// use sstp::digest::HashAlgorithm;
/// use sstp::namespace::MetaTag;
/// use sstp::receiver::{ReceiverConfig, SstpReceiver};
/// use sstp::sender::SstpSender;
/// use ss_netsim::{EventKind, SimRng, SimTime};
///
/// let mut tx = SstpSender::new(HashAlgorithm::Fnv64, 1000);
/// let mut rx = SstpReceiver::new(
///     ReceiverConfig::unicast(0, HashAlgorithm::Fnv64),
///     SimRng::new(7),
/// )
/// .with_event_log(64);
///
/// let key = tx.publish(SimTime::ZERO, tx.root(), MetaTag(0));
/// let pkt = tx.next_hot_packet().unwrap();
/// rx.on_packet(SimTime::from_secs(1), &pkt);
///
/// assert!(rx.replica().get(key).is_some());
/// assert_eq!(rx.events().of_kind(EventKind::Deliver).count(), 1);
/// ```
#[derive(Clone)]
pub struct SstpReceiver {
    cfg: ReceiverConfig,
    replica: SubscriberTable,
    mirror: Namespace,
    reporter: ReceiverReporter,
    /// Pending feedback, ordered by fire time (seq breaks ties).
    pending: BTreeMap<(SimTime, u64), FbKind>,
    /// Reverse index for cancellation/damping.
    pending_index: BTreeMap<FbKind, (SimTime, u64)>,
    /// Backoff bookkeeping: when each request was last issued (by us or
    /// an overheard peer).
    last_attempt: BTreeMap<FbKind, SimTime>,
    /// Unsatisfied issue count per request, driving exponential backoff:
    /// the required gap doubles per attempt (capped at 2^4 — deep enough
    /// to quench a retry storm during an outage, shallow enough that
    /// repair still progresses under sustained heavy channel loss) and
    /// resets when the request is satisfied by data or a summary
    /// response.
    attempts: BTreeMap<FbKind, u32>,
    /// Fragment reassembly: per key, the version being assembled and the
    /// contiguous right edge held so far.
    reasm: BTreeMap<Key, (u64, u32)>,
    next_seq: u64,
    rng: SimRng,
    stats: ReceiverStats,
    /// Typed event trace (disabled by default; see
    /// [`SstpReceiver::with_event_log`]).
    events: EventLog,
    /// Seeded defects for mutation-testing `ss-verify` (all off in
    /// production; see [`RxMutations`]).
    muts: RxMutations,
}

impl SstpReceiver {
    /// Builds a receiver; `rng` drives slotted feedback delays.
    pub fn new(cfg: ReceiverConfig, rng: SimRng) -> Self {
        let replica = SubscriberTable::new(cfg.ttl);
        let mirror = Namespace::new(cfg.algo);
        let reporter = ReceiverReporter::new(cfg.id);
        SstpReceiver {
            cfg,
            replica,
            mirror,
            reporter,
            pending: BTreeMap::new(),
            pending_index: BTreeMap::new(),
            last_attempt: BTreeMap::new(),
            attempts: BTreeMap::new(),
            reasm: BTreeMap::new(),
            next_seq: 0,
            rng,
            stats: ReceiverStats::default(),
            events: EventLog::disabled(),
            muts: RxMutations::default(),
        }
    }

    /// Installs seeded protocol defects for mutation testing. Never used
    /// by the session harness; see [`RxMutations`].
    #[doc(hidden)]
    pub fn with_mutations(mut self, muts: RxMutations) -> Self {
        self.muts = muts;
        self
    }

    /// Advances the machine by one event; the single mutation entry
    /// point. The imperative methods ([`SstpReceiver::on_packet`],
    /// [`SstpReceiver::poll_feedback`], [`SstpReceiver::expire`]) are
    /// thin shims over this dispatch — see [`crate::machine`].
    pub fn step(&mut self, ev: ReceiverEvent) -> ReceiverEffect {
        match ev {
            ReceiverEvent::Packet { now, pkt } => {
                self.apply_packet(now, pkt);
                ReceiverEffect::None
            }
            ReceiverEvent::PollFeedback { now } => {
                ReceiverEffect::Feedback(self.apply_poll_feedback(now))
            }
            ReceiverEvent::Expire { now } => ReceiverEffect::Expired(self.apply_expire(now)),
        }
    }

    /// Enables the typed event trace, keeping the first `capacity`
    /// events (deliveries, expiries, queries, NACKs). Capacity 0 leaves
    /// tracing off.
    pub fn with_event_log(mut self, capacity: usize) -> Self {
        self.events = EventLog::with_capacity(capacity);
        self
    }

    /// The typed event trace recorded so far.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    fn cancel(&mut self, kind: &FbKind) -> bool {
        if let Some(slot) = self.pending_index.remove(kind) {
            self.pending.remove(&slot);
            true
        } else {
            false
        }
    }

    /// The request succeeded (the data or the summary answer arrived):
    /// cancel any pending copy and reset its exponential backoff, so a
    /// fresh divergence starts a fresh conversation. Damping (an
    /// overheard peer copy) keeps the attempt count — the request is
    /// still outstanding, just delegated.
    fn satisfied(&mut self, kind: &FbKind) -> bool {
        self.attempts.remove(kind);
        self.cancel(kind)
    }

    /// The minimum interval the `n`-th unsatisfied re-request must wait
    /// since the last attempt: `repair_backoff * 2^min(n, 4)`. `n == 0`
    /// is the plain configured backoff (the pre-chaos behavior); the cap
    /// at 2^4 is deep enough to quench a retry storm during an outage,
    /// shallow enough that repair still progresses afterwards.
    fn required_gap(&self, n: u32) -> SimDuration {
        let shift = if self.muts.no_backoff_cap {
            // Defect: uncapped exponent — after a long partition the gap
            // grows past any bound and repair effectively stops.
            n.min(40)
        } else {
            n.min(4)
        };
        SimDuration::from_micros(
            self.cfg
                .repair_backoff
                .as_micros()
                .saturating_mul(1u64 << shift),
        )
    }

    /// The largest backoff gap any outstanding request currently
    /// requires. The `ss-verify` explorer bounds this against
    /// `16 * repair_backoff` (the capped maximum).
    pub fn max_required_gap(&self) -> SimDuration {
        self.attempts
            .values()
            .map(|&n| self.required_gap(n))
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    fn schedule(&mut self, now: SimTime, kind: FbKind) {
        if !self.cfg.feedback {
            return;
        }
        if self.pending_index.contains_key(&kind) {
            return;
        }
        let n = self.attempts.get(&kind).copied().unwrap_or(0);
        let gap = self.required_gap(n);
        if let Some(&last) = self.last_attempt.get(&kind) {
            if now.saturating_since(last) < gap {
                return;
            }
        }
        let mut delay = match self.cfg.timing {
            FeedbackTiming::Immediate => SimDuration::ZERO,
            FeedbackTiming::Slotted { window } => {
                if window.is_zero() {
                    SimDuration::ZERO
                } else {
                    SimDuration::from_micros(self.rng.below(window.as_micros().max(1)))
                }
            }
        };
        // Re-requests jitter within a quarter of the current gap so a
        // fleet of receivers recovering from the same partition does not
        // synchronize its retries. First attempts draw nothing: the
        // baseline (fault-free) random streams are untouched.
        if n > 0 && !gap.is_zero() {
            delay += SimDuration::from_micros(self.rng.below((gap.as_micros() / 4).max(1)));
        }
        let fire = now + delay;
        let slot = (fire, self.next_seq);
        self.next_seq += 1;
        self.pending.insert(slot, kind.clone());
        self.pending_index.insert(kind.clone(), slot);
        self.last_attempt.insert(kind.clone(), now);
        *self.attempts.entry(kind).or_insert(0) += 1;
    }

    /// Processes a packet heard on the data channel, or an overheard
    /// peer feedback packet (multicast damping).
    // lint: allow(D008, compat shim delegating to step)
    pub fn on_packet(&mut self, now: SimTime, pkt: &Packet) {
        let _ = self.step(ReceiverEvent::Packet { now, pkt });
    }

    fn apply_packet(&mut self, now: SimTime, pkt: &Packet) {
        if let Some(seq) = pkt.data_seq() {
            self.reporter.on_data_channel_packet(seq);
        }
        match pkt {
            Packet::Data(d) => {
                self.stats.data_rx += 1;
                if !self.cfg.interest.wants(d.tag) {
                    self.stats.uninterested_skips += 1;
                    return;
                }
                // Fragment reassembly: track the contiguous right edge of
                // the version being received; the replica only takes the
                // value once the whole ADU is in hand.
                let entry = self.reasm.entry(d.key).or_insert((d.version, 0));
                if d.version > entry.0 {
                    // A newer version supersedes any partial assembly.
                    *entry = (d.version, 0);
                } else if d.version < entry.0 {
                    if !self.muts.accept_stale {
                        return; // stale fragment of an old version
                    }
                    // Defect: a reordered old-version fragment restarts
                    // assembly at the stale version.
                    *entry = (d.version, 0);
                }
                if d.offset <= entry.1 && d.end() > entry.1 {
                    entry.1 = d.end();
                    self.stats.fragments_advanced += 1;
                }
                let contiguous = entry.1;
                self.mirror.mirror_adu(
                    &d.parent_path,
                    d.slot,
                    d.key,
                    d.version,
                    u64::from(contiguous),
                    d.tag,
                );
                if contiguous == d.total_len {
                    if self.muts.accept_stale
                        && self
                            .replica
                            .get(d.key)
                            .is_some_and(|e| e.value.version > d.version)
                    {
                        // Defect continued: force the stale value in, past
                        // the replica's own version guard.
                        self.replica.remove(d.key);
                    }
                    let changed = self.replica.apply(
                        now,
                        d.key,
                        Value {
                            version: d.version,
                            payload_len: d.total_len,
                        },
                    );
                    if changed {
                        self.stats.data_applied += 1;
                        self.events.log(now, EventKind::Deliver, d.key.0);
                    }
                    self.reasm.remove(&d.key);
                    if !self.muts.keep_pending_on_install {
                        // Data in hand: a pending NACK for it is moot.
                        // (The mutation keeps it — a livelock where every
                        // repaired key is immediately re-requested.)
                        self.satisfied(&FbKind::Nack(d.key));
                    }
                }
            }
            Packet::RootSummary(rs) => {
                self.stats.root_summaries_rx += 1;
                if self.cfg.feedback {
                    // With a repair channel, the summary itself is the
                    // soft-state refresh: the publisher is alive, and any
                    // divergence (including withdrawals) will be
                    // reconciled by the digest descent rather than by
                    // letting entries time out one by one.
                    self.replica.refresh_all(now);
                }
                if self.mirror.root_digest() != rs.digest {
                    self.schedule(now, FbKind::Query(vec![]));
                }
            }
            Packet::NodeSummary(ns) => {
                self.stats.node_summaries_rx += 1;
                // The response satisfies our outstanding query.
                self.satisfied(&FbKind::Query(ns.path.clone()));
                self.apply_node_summary(now, &ns.path, &ns.entries);
            }
            Packet::Nack(n) => {
                // Overheard peer NACK: damp our own.
                for &key in &n.keys {
                    if self.cancel(&FbKind::Nack(key)) {
                        self.stats.damped += 1;
                    }
                    self.last_attempt.insert(FbKind::Nack(key), now);
                }
            }
            Packet::RepairQuery(q) => {
                // Overheard peer query: damp ours for the same node.
                if self.cancel(&FbKind::Query(q.path.clone())) {
                    self.stats.damped += 1;
                }
                self.last_attempt.insert(FbKind::Query(q.path.clone()), now);
            }
            Packet::ReceiverReport(_) => {}
        }
    }

    fn apply_node_summary(
        &mut self,
        now: SimTime,
        path: &Path,
        entries: &[crate::wire::WireChildEntry],
    ) {
        use crate::wire::WireChildEntry as E;
        for entry in entries {
            match entry {
                E::Dead { slot } => {
                    if let Some(key) = self.mirror.mirror_tombstone(path, *slot) {
                        self.replica.remove(key);
                    }
                }
                E::Interior { slot, digest, tag } => {
                    if !self.cfg.interest.wants(*tag) {
                        self.stats.uninterested_skips += 1;
                        continue;
                    }
                    let mut child_path = path.clone();
                    child_path.push(*slot);
                    let mismatch = match self.mirror.node_at(&child_path) {
                        None => true,
                        Some(node) => {
                            self.mirror.is_leaf(node) || self.mirror.digest(node) != *digest
                        }
                    };
                    if mismatch {
                        self.schedule(now, FbKind::Query(child_path));
                    }
                }
                E::Leaf {
                    key, digest, tag, ..
                } => {
                    if !self.cfg.interest.wants(*tag) {
                        self.stats.uninterested_skips += 1;
                        continue;
                    }
                    let mismatch = match self.mirror.leaf_of(*key) {
                        None => true,
                        Some(leaf) => self.mirror.digest(leaf) != *digest,
                    };
                    if mismatch {
                        self.schedule(now, FbKind::Nack(*key));
                    }
                }
            }
        }
    }

    /// All feedback due at or before `now`, NACKs batched into one packet.
    // lint: allow(D008, compat shim delegating to step)
    pub fn poll_feedback(&mut self, now: SimTime) -> Vec<Packet> {
        match self.step(ReceiverEvent::PollFeedback { now }) {
            ReceiverEffect::Feedback(pkts) => pkts,
            _ => unreachable!("PollFeedback yields Feedback"),
        }
    }

    fn apply_poll_feedback(&mut self, now: SimTime) -> Vec<Packet> {
        let mut queries = Vec::new();
        let mut nacks = Vec::new();
        while let Some((&slot, _)) = self.pending.first_key_value() {
            if slot.0 > now {
                break;
            }
            let kind = self.pending.remove(&slot).expect("peeked entry");
            self.pending_index.remove(&kind);
            match kind {
                FbKind::Query(path) => queries.push(path),
                FbKind::Nack(key) => nacks.push(key),
            }
        }
        let mut out: Vec<Packet> = queries
            .into_iter()
            .map(|path| {
                self.stats.queries_sent += 1;
                self.events.log(now, EventKind::Query, path.len() as u64);
                Packet::RepairQuery(RepairQueryPacket { path })
            })
            .collect();
        // Batch NACKed keys, at most 64 per packet.
        for chunk in nacks.chunks(64) {
            self.stats.nacks_sent += 1;
            self.stats.nacked_keys += chunk.len() as u64;
            for key in chunk {
                self.events.log(now, EventKind::Nack, key.0);
            }
            out.push(Packet::Nack(NackPacket {
                keys: chunk.to_vec(),
            }));
        }
        out
    }

    /// When the earliest pending feedback fires, if any.
    pub fn next_feedback_at(&self) -> Option<SimTime> {
        self.pending.first_key_value().map(|(&(t, _), _)| t)
    }

    /// Runs the soft-state expiry sweep; expired entries leave both the
    /// replica and the mirror (so they will be re-fetched if the sender
    /// still announces them). Returns the expired keys.
    // lint: allow(D008, compat shim delegating to step)
    pub fn expire(&mut self, now: SimTime) -> Vec<Key> {
        match self.step(ReceiverEvent::Expire { now }) {
            ReceiverEffect::Expired(keys) => keys,
            _ => unreachable!("Expire yields Expired"),
        }
    }

    fn apply_expire(&mut self, now: SimTime) -> Vec<Key> {
        let horizon = if self.muts.expire_early {
            // Defect: the sweep reaches half a TTL into the future, so
            // entries die while the publisher is still refreshing them.
            now + SimDuration::from_micros(self.cfg.ttl.as_micros() / 2)
        } else {
            now
        };
        let dead = self.replica.expire_until(horizon);
        for &key in &dead {
            self.mirror.remove_adu(key);
            self.reasm.remove(&key);
            self.stats.expired += 1;
            self.events.log(now, EventKind::Expire, key.0);
        }
        dead
    }

    /// Builds the periodic receiver report.
    pub fn make_report(&self) -> Packet {
        Packet::ReceiverReport(self.reporter.make_report())
    }

    /// The replica (for consistency probes).
    pub fn replica(&self) -> &SubscriberTable {
        &self.replica
    }

    /// Counters.
    pub fn stats(&self) -> ReceiverStats {
        self.stats
    }

    /// The receiver id.
    pub fn id(&self) -> u32 {
        self.cfg.id
    }

    /// Number of repair requests (queries + NACKs) awaiting their fire
    /// time. The explorer uses this for quiescence detection.
    pub fn outstanding_feedback(&self) -> usize {
        self.pending.len()
    }

    /// Whether a NACK for `key` is scheduled but not yet fired. The
    /// `ss-verify` explorer asserts this is false right after the key's
    /// data is installed (a pending NACK for data in hand is a livelock
    /// seed — see `RxMutations::keep_pending_on_install`).
    pub fn has_pending_nack(&self, key: Key) -> bool {
        self.pending_index.contains_key(&FbKind::Nack(key))
    }

    /// A 64-bit fingerprint of the machine's *semantic* state, for the
    /// `ss-verify` explorer's visited-state set. Covers the replica
    /// (keys, versions, expiry deadlines), the namespace mirror digest,
    /// scheduled feedback, backoff bookkeeping, and reassembly edges;
    /// deliberately excludes the feedback sequence counter, statistics,
    /// the reporter, the slotting RNG, and the event log. Takes
    /// `&mut self` only because the mirror digest is computed lazily.
    // lint: allow(D008, read-only aside from the lazy digest cache)
    pub fn fingerprint(&mut self) -> u64 {
        let mut h = StateHasher::new();
        h.write_u64(self.replica.len() as u64);
        for (key, e) in self.replica.entries() {
            h.write_u64(key.0);
            h.write_u64(e.value.version);
            h.write_u64(e.expires_at.as_micros());
        }
        let root = self.mirror.root_digest();
        h.write_bytes(root.as_bytes());
        h.write_u64(self.pending.len() as u64);
        for (&(fire, _), kind) in &self.pending {
            h.write_u64(fire.as_micros());
            hash_fb_kind(&mut h, kind);
        }
        h.write_u64(self.attempts.len() as u64);
        for (kind, &n) in &self.attempts {
            hash_fb_kind(&mut h, kind);
            h.write_u64(u64::from(n));
        }
        h.write_u64(self.last_attempt.len() as u64);
        for (kind, &at) in &self.last_attempt {
            hash_fb_kind(&mut h, kind);
            h.write_u64(at.as_micros());
        }
        h.write_u64(self.reasm.len() as u64);
        for (key, &(version, edge)) in &self.reasm {
            h.write_u64(key.0);
            h.write_u64(version);
            h.write_u64(u64::from(edge));
        }
        h.finish()
    }

    /// Checks the machine's internal representation invariants; the
    /// explorer calls this after every step. `pending` and
    /// `pending_index` must be exact inverses of each other.
    pub fn self_check(&self) -> Result<(), MachineError> {
        if self.pending.len() != self.pending_index.len() {
            return Err(format!(
                "pending holds {} requests but the index has {}",
                self.pending.len(),
                self.pending_index.len()
            ));
        }
        for (slot, kind) in &self.pending {
            match self.pending_index.get(kind) {
                Some(back) if back == slot => {}
                Some(back) => {
                    return Err(format!(
                        "pending {kind:?} fires at {slot:?} but the index says {back:?}"
                    ));
                }
                None => {
                    return Err(format!("pending {kind:?} missing from the index"));
                }
            }
        }
        Ok(())
    }
}

fn hash_fb_kind(h: &mut StateHasher, kind: &FbKind) {
    match kind {
        FbKind::Query(path) => {
            h.write_u64(1);
            h.write_u64(path.len() as u64);
            for &slot in path {
                h.write_u64(u64::from(slot));
            }
        }
        FbKind::Nack(key) => {
            h.write_u64(2);
            h.write_u64(key.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sender::SstpSender;

    fn pair() -> (SstpSender, SstpReceiver) {
        let s = SstpSender::new(HashAlgorithm::Fnv64, 1000);
        let r = SstpReceiver::new(
            ReceiverConfig::unicast(0, HashAlgorithm::Fnv64),
            SimRng::new(7),
        );
        (s, r)
    }

    /// Delivers every queued hot packet from sender to receiver.
    fn flush(now: SimTime, s: &mut SstpSender, r: &mut SstpReceiver) {
        while let Some(p) = s.next_hot_packet() {
            r.on_packet(now, &p);
        }
    }

    /// One full lossless repair round: summary, queries, responses, NACKs,
    /// retransmissions. Returns the number of feedback packets exchanged.
    fn repair_round(now: SimTime, s: &mut SstpSender, r: &mut SstpReceiver) -> usize {
        let summary = s.summary_packet();
        r.on_packet(now, &summary);
        let mut fb_count = 0;
        loop {
            let fb = r.poll_feedback(now);
            if fb.is_empty() {
                break;
            }
            fb_count += fb.len();
            for p in &fb {
                s.on_packet(p);
            }
            flush(now, s, r);
        }
        fb_count
    }

    #[test]
    fn lossless_delivery_matches_tables() {
        let (mut s, mut r) = pair();
        let root = s.root();
        for _ in 0..10 {
            s.publish(SimTime::ZERO, root, MetaTag(0));
        }
        flush(SimTime::ZERO, &mut s, &mut r);
        assert_eq!(softstate::measure_tables(s.table(), r.replica()), Some(1.0));
        assert_eq!(r.stats().data_applied, 10);
        // In-sync summary generates no feedback.
        let fb = repair_round(SimTime::ZERO, &mut s, &mut r);
        assert_eq!(fb, 0);
    }

    #[test]
    fn recursive_descent_repairs_a_lost_packet() {
        let (mut s, mut r) = pair();
        let root = s.root();
        let branch = s.add_branch(root, MetaTag(0));
        let k_lost = s.publish(SimTime::ZERO, branch, MetaTag(0));
        let _k_ok = s.publish(SimTime::ZERO, branch, MetaTag(0));
        // Deliver all but the first data packet (simulate its loss).
        let lost = s.next_hot_packet().unwrap();
        match &lost {
            Packet::Data(d) => assert_eq!(d.key, k_lost),
            p => panic!("{p:?}"),
        }
        flush(SimTime::ZERO, &mut s, &mut r);
        assert_eq!(softstate::measure_tables(s.table(), r.replica()), Some(0.5));

        // Repair: root mismatch -> query root -> query branch -> NACK key
        // -> retransmission.
        let now = SimTime::from_secs(2);
        let fb = repair_round(now, &mut s, &mut r);
        assert!(fb >= 2, "expected query+nack, got {fb}");
        assert_eq!(softstate::measure_tables(s.table(), r.replica()), Some(1.0));
        assert!(r.stats().nacked_keys >= 1);
        assert!(r.stats().queries_sent >= 1);
    }

    #[test]
    fn stale_version_is_renacked() {
        let (mut s, mut r) = pair();
        let root = s.root();
        let k = s.publish(SimTime::ZERO, root, MetaTag(0));
        flush(SimTime::ZERO, &mut s, &mut r);
        // Update is lost.
        s.update(k);
        let _lost = s.next_hot_packet().unwrap();
        assert_eq!(softstate::measure_tables(s.table(), r.replica()), Some(0.0));

        let fb = repair_round(SimTime::from_secs(2), &mut s, &mut r);
        assert!(fb >= 1);
        assert_eq!(softstate::measure_tables(s.table(), r.replica()), Some(1.0));
        assert_eq!(r.replica().get(k).unwrap().value.version, 2);
    }

    #[test]
    fn withdrawal_propagates_via_tombstone() {
        let (mut s, mut r) = pair();
        let root = s.root();
        let k1 = s.publish(SimTime::ZERO, root, MetaTag(0));
        let _k2 = s.publish(SimTime::ZERO, root, MetaTag(0));
        flush(SimTime::ZERO, &mut s, &mut r);
        s.withdraw(k1);
        let fb = repair_round(SimTime::from_secs(2), &mut s, &mut r);
        assert!(fb >= 1);
        assert!(
            r.replica().get(k1).is_none(),
            "tombstone must purge replica"
        );
        assert_eq!(softstate::measure_tables(s.table(), r.replica()), Some(1.0));
    }

    #[test]
    fn backoff_limits_requery_storms() {
        let (mut s, mut r) = pair();
        let root = s.root();
        s.publish(SimTime::ZERO, root, MetaTag(0));
        // Receiver never gets the data; summaries arrive rapid-fire.
        for i in 0..10 {
            let summary = s.summary_packet();
            r.on_packet(SimTime::from_millis(i * 10), &summary);
        }
        let fb = r.poll_feedback(SimTime::from_secs(1));
        // One query despite 10 mismatched summaries within the backoff.
        assert_eq!(fb.len(), 1);
        assert!(matches!(fb[0], Packet::RepairQuery(_)));
    }

    #[test]
    fn interest_scoping_skips_repair() {
        let mut s = SstpSender::new(HashAlgorithm::Fnv64, 1000);
        let mut cfg = ReceiverConfig::unicast(0, HashAlgorithm::Fnv64);
        cfg.interest = Interest::Tags(vec![MetaTag(1)]);
        let mut r = SstpReceiver::new(cfg, SimRng::new(1));

        let root = s.root();
        let wanted = s.add_branch(root, MetaTag(1));
        let unwanted = s.add_branch(root, MetaTag(2)); // high-res images
        let kw = s.publish(SimTime::ZERO, wanted, MetaTag(1));
        let ku = s.publish(SimTime::ZERO, unwanted, MetaTag(2));
        // Everything is lost; repair must only chase the wanted branch.
        while s.next_hot_packet().is_some() {}

        let now = SimTime::from_secs(1);
        let summary = s.summary_packet();
        r.on_packet(now, &summary);
        for _ in 0..5 {
            let fb = r.poll_feedback(now);
            if fb.is_empty() {
                break;
            }
            for p in &fb {
                s.on_packet(p);
            }
            while let Some(p) = s.next_hot_packet() {
                r.on_packet(now, &p);
            }
        }
        assert!(r.replica().get(kw).is_some(), "wanted key repaired");
        assert!(r.replica().get(ku).is_none(), "unwanted key not fetched");
        assert!(r.stats().uninterested_skips >= 1);
    }

    #[test]
    fn slotted_timing_delays_and_damps() {
        let mut s = SstpSender::new(HashAlgorithm::Fnv64, 1000);
        let mut cfg = ReceiverConfig::unicast(0, HashAlgorithm::Fnv64);
        cfg.timing = FeedbackTiming::Slotted {
            window: SimDuration::from_secs(2),
        };
        let mut r = SstpReceiver::new(cfg, SimRng::new(3));
        let root = s.root();
        s.publish(SimTime::ZERO, root, MetaTag(0));
        while s.next_hot_packet().is_some() {} // lose it

        let now = SimTime::from_secs(10);
        r.on_packet(now, &s.summary_packet());
        let fire = r.next_feedback_at().expect("query scheduled");
        assert!(fire >= now && fire < now + SimDuration::from_secs(2));
        assert!(r.poll_feedback(now).is_empty(), "not due yet");

        // Overhear a peer's identical query before the slot fires: damp.
        r.on_packet(
            now,
            &Packet::RepairQuery(RepairQueryPacket { path: vec![] }),
        );
        assert_eq!(r.next_feedback_at(), None);
        assert_eq!(r.stats().damped, 1);
    }

    #[test]
    fn expiry_purges_replica_and_mirror() {
        let (mut s, mut r) = pair();
        let root = s.root();
        let k = s.publish(SimTime::ZERO, root, MetaTag(0));
        flush(SimTime::ZERO, &mut s, &mut r);
        assert!(r.replica().get(k).is_some());
        // No refresh for > TTL (30 s).
        let later = SimTime::from_secs(31);
        let dead = r.expire(later);
        assert_eq!(dead, vec![k]);
        assert!(r.replica().get(k).is_none());
        assert_eq!(r.stats().expired, 1);
        // The sender still has it; the next summary round re-fetches it.
        let fb = repair_round(later, &mut s, &mut r);
        assert!(fb >= 1);
        assert!(r.replica().get(k).is_some(), "re-fetched after expiry");
    }

    #[test]
    fn report_counts_data_channel_packets() {
        let (mut s, mut r) = pair();
        let root = s.root();
        s.publish(SimTime::ZERO, root, MetaTag(0));
        flush(SimTime::ZERO, &mut s, &mut r);
        r.on_packet(SimTime::ZERO, &s.summary_packet());
        match r.make_report() {
            Packet::ReceiverReport(rr) => {
                assert_eq!(rr.received, 2);
                assert_eq!(rr.receiver_id, 0);
            }
            p => panic!("{p:?}"),
        }
    }
}
