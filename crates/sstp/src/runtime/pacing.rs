//! Rate control for the multi-session runtime: a byte token bucket and a
//! variable-rate pacer.
//!
//! Both primitives are **pure**: time enters only through `now`
//! parameters (a [`SimTime`] produced by whatever clock drives them —
//! the [`crate::runtime::WallClock`] in production, a
//! [`ss_netsim::ManualClock`] in tests), so their behavior is exactly
//! reproducible under virtual time. This is the same clock-split seam
//! the protocol machines use (see [`crate::machine`]).

use ss_netsim::{Bandwidth, SimDuration, SimTime};

/// A byte token bucket enforcing a bandwidth budget.
///
/// Tokens are bits; the bucket holds at most one second of burst. Unlike
/// the pre-runtime `sstp::udp` bucket this one never reads a clock: the
/// caller supplies `now` on every operation, which is what lets the
/// runtime compute exact wake-up deadlines ([`TokenBucket::eta`])
/// instead of busy-polling.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate_bps: f64,
    capacity: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// A full bucket with a one-second burst capacity at `rate`.
    pub fn new(rate: Bandwidth) -> Self {
        let rate_bps = rate.as_bps() as f64;
        TokenBucket {
            rate_bps,
            capacity: rate_bps,
            tokens: rate_bps,
            last: SimTime::ZERO,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last).as_secs_f64();
        self.last = self.last.max(now);
        self.tokens = (self.tokens + dt * self.rate_bps).min(self.capacity);
    }

    /// Takes `bytes` worth of tokens if available at `now`.
    pub fn try_take(&mut self, now: SimTime, bytes: usize) -> bool {
        self.refill(now);
        let need = bytes as f64 * 8.0;
        if self.tokens >= need {
            self.tokens -= need;
            true
        } else {
            false
        }
    }

    /// How long after `now` a send of `bytes` will fit the budget
    /// ([`SimDuration::ZERO`] when it already fits). This is the
    /// runtime's wake-up deadline for a throttled packet: sleep exactly
    /// this long instead of retrying on a fixed poll interval.
    pub fn eta(&mut self, now: SimTime, bytes: usize) -> SimDuration {
        self.refill(now);
        let need = bytes as f64 * 8.0;
        if self.tokens >= need {
            return SimDuration::ZERO;
        }
        if self.rate_bps <= 0.0 {
            return SimDuration::MAX;
        }
        SimDuration::from_secs_f64((need - self.tokens) / self.rate_bps)
    }
}

/// A variable-rate pacer for announce batches, after sosistab's
/// `VarRateLimit`: a limiter whose permitted rate can be re-tuned on the
/// fly while in flight.
///
/// The runtime uses one pacer for the cold path (root summaries and
/// cycle re-announcements). Under overload the supervisor *lowers* the
/// rate — the paper's announce-degradation recovery mechanic applied as
/// runtime policy — and restores it once backpressure clears; hot data
/// and feedback never pass through the pacer.
#[derive(Clone, Debug)]
pub struct VarRateLimit {
    /// Permitted operations per second.
    rate: u32,
    /// The instant the next operation becomes permitted.
    next_allowed: SimTime,
}

impl VarRateLimit {
    /// A pacer permitting `rate` operations per second (`rate` is
    /// clamped to at least 1).
    pub fn new(rate: u32) -> Self {
        VarRateLimit {
            rate: rate.max(1),
            next_allowed: SimTime::ZERO,
        }
    }

    /// The current permitted rate (operations per second).
    pub fn rate(&self) -> u32 {
        self.rate
    }

    /// Re-tunes the permitted rate without resetting the in-flight
    /// spacing (the next operation keeps its already-earned slot).
    pub fn set_rate(&mut self, rate: u32) {
        self.rate = rate.max(1);
    }

    /// Operations of catch-up credit the pacer may bank while idle. A
    /// poll loop calls [`VarRateLimit::check`] with a coarse, fixed
    /// `now`, so the pacer must be able to grant the credit earned since
    /// the previous poll as a batch — otherwise a 1 ms poll interval
    /// would silently cap *any* configured rate at one op per poll. The
    /// bound keeps a long-idle pacer from dumping an unbounded burst.
    pub const BURST_OPS: u64 = 64;

    /// Permits one operation at `now` if the pacer allows it, charging
    /// the inter-operation gap implied by the current rate. Credit
    /// accrues while the pacer is behind, up to
    /// [`VarRateLimit::BURST_OPS`] banked operations.
    pub fn check(&mut self, now: SimTime) -> bool {
        if now < self.next_allowed {
            return false;
        }
        let gap = self.gap();
        let floor = SimTime::from_micros(
            now.as_micros()
                .saturating_sub(gap.as_micros().saturating_mul(Self::BURST_OPS)),
        );
        self.next_allowed = self.next_allowed.max(floor) + gap;
        true
    }

    /// When the next operation becomes permitted (a wake-up deadline).
    pub fn next_allowed(&self) -> SimTime {
        self.next_allowed
    }

    fn gap(&self) -> SimDuration {
        SimDuration::from_micros(1_000_000 / u64::from(self.rate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_enforces_rate() {
        let mut b = TokenBucket::new(Bandwidth::from_kbps(8)); // 1000 B/s
        let t0 = SimTime::ZERO;
        // The bucket starts full (one second of burst).
        assert!(b.try_take(t0, 1000));
        // Immediately asking for another 1000 B must fail...
        assert!(!b.try_take(t0, 1000));
        // ...and the eta says exactly when it will fit.
        assert_eq!(b.eta(t0, 1000), SimDuration::from_secs(1));
        // Small amounts fit after a proportional refill.
        let t1 = t0 + SimDuration::from_millis(30);
        assert!(b.try_take(t1, 10));
    }

    #[test]
    fn token_bucket_eta_is_exact() {
        let mut b = TokenBucket::new(Bandwidth::from_kbps(8));
        let t0 = SimTime::ZERO;
        assert!(b.try_take(t0, 1000));
        let eta = b.eta(t0, 500);
        // Waiting one microsecond less than the eta still fails; waiting
        // the eta succeeds.
        assert!(!b.try_take(t0 + eta - SimDuration::from_micros(1), 500));
        assert!(b.try_take(t0 + eta, 500));
    }

    #[test]
    fn token_bucket_never_exceeds_capacity() {
        let mut b = TokenBucket::new(Bandwidth::from_kbps(8));
        // A long idle period must not bank more than one second of burst.
        let late = SimTime::from_secs(100);
        assert!(b.try_take(late, 1000));
        assert!(!b.try_take(late, 1000));
    }

    #[test]
    fn pacer_spaces_operations() {
        let mut p = VarRateLimit::new(10); // 100 ms gap
        let t0 = SimTime::ZERO;
        assert!(p.check(t0));
        assert!(!p.check(t0 + SimDuration::from_millis(99)));
        assert_eq!(p.next_allowed(), t0 + SimDuration::from_millis(100));
        assert!(p.check(t0 + SimDuration::from_millis(100)));
    }

    #[test]
    fn pacer_rate_varies_in_flight() {
        let mut p = VarRateLimit::new(10);
        let t0 = SimTime::ZERO;
        assert!(p.check(t0));
        // Degrade to 2/s: the *next* gap after the pending one widens.
        p.set_rate(2);
        assert!(!p.check(t0 + SimDuration::from_millis(99)));
        assert!(p.check(t0 + SimDuration::from_millis(100)));
        assert_eq!(p.next_allowed(), t0 + SimDuration::from_millis(600));
        // Restore: gaps narrow again from the next grant on.
        p.set_rate(10);
        assert!(p.check(t0 + SimDuration::from_millis(600)));
        assert_eq!(p.next_allowed(), t0 + SimDuration::from_millis(700));
    }

    #[test]
    fn pacer_banks_bounded_catchup_credit() {
        let mut p = VarRateLimit::new(1000); // 1 ms gap
        let t0 = SimTime::ZERO;
        assert!(p.check(t0));
        // A coarse poll 10 ms later may grant the elapsed credit as a
        // batch — the configured rate, not one op per poll...
        let t1 = t0 + SimDuration::from_millis(10);
        let granted = (0..100).filter(|_| p.check(t1)).count();
        assert_eq!(granted, 10);
        // ...but a long idle period banks at most BURST_OPS gaps.
        let t2 = t1 + SimDuration::from_secs(3600);
        let granted = (0..1000).filter(|_| p.check(t2)).count();
        assert_eq!(granted, VarRateLimit::BURST_OPS as usize + 1);
    }

    #[test]
    fn pacer_clamps_zero_rate() {
        let p = VarRateLimit::new(0);
        assert_eq!(p.rate(), 1);
    }
}
