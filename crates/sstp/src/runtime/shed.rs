//! Graceful degradation under pressure: the bounded outbound queue with
//! a class-aware shed policy.
//!
//! The paper's allocation priorities (hot announcements and feedback are
//! worth more than background refreshes — §5's allocation analysis)
//! become the runtime's overload policy: when the outbound queue backs
//! up, **cold-queue refreshes are shed first**, hot announcements and
//! feedback last. Every shed is a counted drop
//! (`runtime.shed.cold` / `runtime.shed.hot` in the metrics registry),
//! never an unbounded queue and never a panic — the soft-state model
//! guarantees a shed refresh is re-sent by a later cycle, so load
//! shedding only widens the refresh interval instead of losing state.

use crate::wire::Packet;
use std::collections::VecDeque;

/// The priority class of one outbound packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrafficClass {
    /// Foreground data: new announcements, NACK retransmissions, repair
    /// answers. Preserved under overload.
    Hot,
    /// Receiver feedback: queries, NACKs, receiver reports, liveness
    /// probes. Preserved under overload (the recovery path depends on
    /// it).
    Feedback,
    /// Background refresh: root summaries and cycle re-announcements.
    /// Shed first — soft state makes these safe to defer.
    Cold,
}

/// Counted sheds per class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShedStats {
    /// Cold refreshes shed (the intended overload valve).
    pub shed_cold: u64,
    /// Hot or feedback packets dropped because the queue was full of
    /// equally-hot traffic (genuine overload beyond the cold valve).
    pub shed_hot: u64,
}

/// One queued outbound packet.
#[derive(Clone, Debug)]
pub struct Outbound {
    /// Which session sends it (the mux frame id).
    pub session: u32,
    /// Its priority class.
    pub class: TrafficClass,
    /// The packet itself.
    pub pkt: Packet,
}

/// A bounded outbound queue that sheds cold traffic first.
///
/// Invariants (asserted in debug builds, observable via
/// [`SheddingQueue::high_water`]):
///
/// * `len() <= capacity` always — [`SheddingQueue::push`] refuses or
///   evicts, it never grows the buffer.
/// * Cold pushes are refused above the cold watermark, so background
///   refresh can never crowd out repair traffic.
/// * A hot/feedback push into a full queue evicts the oldest cold entry
///   if one exists; only when the queue is full of hot traffic is the
///   push itself refused (counted as `shed_hot`).
#[derive(Debug)]
pub struct SheddingQueue {
    items: VecDeque<Outbound>,
    capacity: usize,
    cold_watermark: usize,
    cold_queued: usize,
    high_water: usize,
    stats: ShedStats,
}

impl SheddingQueue {
    /// A queue holding at most `capacity` packets, refusing cold pushes
    /// once `cold_watermark` packets are queued. Panics if the watermark
    /// exceeds the capacity.
    pub fn new(capacity: usize, cold_watermark: usize) -> Self {
        assert!(capacity > 0, "zero-capacity outbound queue");
        assert!(
            cold_watermark <= capacity,
            "cold watermark {cold_watermark} above capacity {capacity}"
        );
        SheddingQueue {
            items: VecDeque::with_capacity(capacity),
            capacity,
            cold_watermark,
            cold_queued: 0,
            high_water: 0,
            stats: ShedStats::default(),
        }
    }

    /// Enqueues one packet under the shed policy. Returns `true` when the
    /// packet was queued, `false` when it was shed (already counted).
    pub fn push(&mut self, out: Outbound) -> bool {
        if out.class == TrafficClass::Cold && self.items.len() >= self.cold_watermark {
            self.stats.shed_cold += 1;
            return false;
        }
        if self.items.len() == self.capacity {
            // Hot/feedback arriving into a full queue: make room by
            // shedding the oldest cold entry, if any survives below.
            if let Some(pos) = self
                .items
                .iter()
                .position(|o| o.class == TrafficClass::Cold)
            {
                self.items.remove(pos);
                self.cold_queued -= 1;
                self.stats.shed_cold += 1;
            } else {
                self.stats.shed_hot += 1;
                return false;
            }
        }
        if out.class == TrafficClass::Cold {
            self.cold_queued += 1;
        }
        self.items.push_back(out);
        self.high_water = self.high_water.max(self.items.len());
        debug_assert!(
            self.items.len() <= self.capacity,
            "queue grew past capacity"
        );
        true
    }

    /// Dequeues the next packet (FIFO across classes — priority is
    /// enforced at admission, not at service, so queued hot traffic is
    /// never reordered behind later arrivals).
    pub fn pop(&mut self) -> Option<Outbound> {
        let out = self.items.pop_front();
        if let Some(o) = &out {
            if o.class == TrafficClass::Cold {
                self.cold_queued -= 1;
            }
        }
        out
    }

    /// A look at the next packet without dequeuing it (for budget
    /// checks before commitment).
    pub fn peek(&self) -> Option<&Outbound> {
        self.items.front()
    }

    /// Packets currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The deepest the queue has ever been — provably `<= capacity`.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// True when the queue is at or above its cold watermark — the
    /// supervisor's backpressure signal for announce degradation.
    pub fn pressured(&self) -> bool {
        self.items.len() >= self.cold_watermark
    }

    /// Shed counters.
    pub fn stats(&self) -> ShedStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::RepairQueryPacket;

    fn pkt() -> Packet {
        Packet::RepairQuery(RepairQueryPacket { path: Vec::new() })
    }

    fn out(class: TrafficClass) -> Outbound {
        Outbound {
            session: 0,
            class,
            pkt: pkt(),
        }
    }

    #[test]
    fn cold_refused_above_watermark() {
        let mut q = SheddingQueue::new(4, 2);
        assert!(q.push(out(TrafficClass::Cold)));
        assert!(q.push(out(TrafficClass::Cold)));
        assert!(!q.push(out(TrafficClass::Cold)));
        assert_eq!(q.stats().shed_cold, 1);
        // Hot still admitted above the watermark.
        assert!(q.push(out(TrafficClass::Hot)));
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn hot_evicts_cold_when_full() {
        let mut q = SheddingQueue::new(2, 2);
        assert!(q.push(out(TrafficClass::Cold)));
        assert!(q.push(out(TrafficClass::Hot)));
        // Full: the hot push evicts the queued cold entry.
        assert!(q.push(out(TrafficClass::Hot)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.stats().shed_cold, 1);
        assert!(q.items.iter().all(|o| o.class == TrafficClass::Hot));
        // Full of hot: a further hot push is itself refused.
        assert!(!q.push(out(TrafficClass::Feedback)));
        assert_eq!(q.stats().shed_hot, 1);
    }

    #[test]
    fn high_water_never_exceeds_capacity() {
        let mut q = SheddingQueue::new(3, 1);
        for i in 0..50 {
            let class = if i % 3 == 0 {
                TrafficClass::Cold
            } else {
                TrafficClass::Hot
            };
            q.push(out(class));
            if i % 4 == 0 {
                q.pop();
            }
            assert!(q.len() <= q.capacity());
        }
        assert!(q.high_water() <= q.capacity());
    }

    #[test]
    fn fifo_within_admitted_traffic() {
        let mut q = SheddingQueue::new(4, 4);
        q.push(Outbound {
            session: 1,
            class: TrafficClass::Hot,
            pkt: pkt(),
        });
        q.push(Outbound {
            session: 2,
            class: TrafficClass::Cold,
            pkt: pkt(),
        });
        assert_eq!(q.pop().unwrap().session, 1);
        assert_eq!(q.pop().unwrap().session, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn pressured_tracks_watermark() {
        let mut q = SheddingQueue::new(4, 2);
        assert!(!q.pressured());
        q.push(out(TrafficClass::Hot));
        q.push(out(TrafficClass::Hot));
        assert!(q.pressured());
        q.pop();
        assert!(!q.pressured());
    }
}
