//! Session liveness supervision: dead-peer detection, capped exponential
//! re-probing, and outage bookkeeping.
//!
//! The supervisor is a **pure** state machine over [`SimTime`] — no
//! sockets, no clocks — so the proptest suite can drive it through
//! arbitrary silence/heal interleavings and assert the schedule
//! invariants exactly. The runtime translates its decisions
//! ([`Supervisor::due_probes`]) into real packets: a root summary for a
//! publisher session (inviting the peer back through the summary-descent
//! recovery path), a receiver report for a subscriber session.
//!
//! The probe schedule reuses the protocol's own backoff contract
//! (`crate::reliability`, PR 5): the `n`-th re-probe waits
//! `base * 2^min(n, 4)` since the previous one, plus a jitter of at most
//! a quarter of that gap — identical in shape to the receiver's
//! re-request backoff in [`crate::receiver`], so one analysis covers
//! both.

use ss_netsim::{SimDuration, SimRng, SimTime};

/// The capped exponential backoff schedule shared by re-probes and the
/// receiver's repair re-requests: gap `n` is `base * 2^min(n, 4)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackoffSchedule {
    base: SimDuration,
}

impl BackoffSchedule {
    /// The exponent cap: gaps stop doubling after `2^4`.
    pub const CAP_SHIFT: u32 = 4;

    /// A schedule with the given base gap.
    pub fn new(base: SimDuration) -> Self {
        BackoffSchedule { base }
    }

    /// The base gap (attempt 0).
    pub fn base(&self) -> SimDuration {
        self.base
    }

    /// The minimum gap before the `n`-th re-probe:
    /// `base * 2^min(n, 4)`.
    pub fn gap(&self, n: u32) -> SimDuration {
        SimDuration::from_micros(
            self.base
                .as_micros()
                .saturating_mul(1u64 << n.min(Self::CAP_SHIFT)),
        )
    }

    /// The capped maximum gap (`16 * base`) — probing never slows below
    /// this, so a healed peer is re-detected within a bounded interval.
    pub fn max_gap(&self) -> SimDuration {
        self.gap(Self::CAP_SHIFT)
    }

    /// The largest jitter added to gap `n` (a quarter of the gap,
    /// mirroring the receiver's re-request jitter).
    pub fn jitter_bound(&self, n: u32) -> SimDuration {
        SimDuration::from_micros(self.gap(n).as_micros() / 4)
    }
}

/// Supervisor tuning.
#[derive(Clone, Copy, Debug)]
pub struct SupervisorConfig {
    /// Silence longer than this marks a session *suspect* and starts the
    /// probe schedule.
    pub suspect_after: SimDuration,
    /// The probe backoff schedule.
    pub backoff: BackoffSchedule,
    /// After this many unanswered probes the session is declared *dead*
    /// (it keeps being probed at the capped gap — soft state means a
    /// dead peer can always come back — but it leaves the active-session
    /// gauge).
    pub dead_after_probes: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            suspect_after: SimDuration::from_secs(2),
            backoff: BackoffSchedule::new(SimDuration::from_millis(250)),
            dead_after_probes: 8,
        }
    }
}

/// Liveness of one supervised session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Liveness {
    /// Heard from recently.
    Healthy,
    /// Silent past the threshold; being probed.
    Suspect,
    /// Unanswered past [`SupervisorConfig::dead_after_probes`] probes.
    Dead,
    /// Administratively crashed (churn); not probed until rejoin.
    Crashed,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    last_heard: SimTime,
    /// Probes sent since last heard (0 = healthy).
    probes: u32,
    /// When the next probe fires (meaningful once suspect).
    next_probe: SimTime,
    /// When the current outage began (first missed deadline).
    suspect_since: SimTime,
    crashed: bool,
}

/// Counters the runtime folds into the metrics registry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Probes issued.
    pub probes: u64,
    /// Suspect→healthy transitions (outages healed).
    pub heals: u64,
    /// Suspect→dead transitions.
    pub deaths: u64,
}

/// The supervisor proper: one [`Entry`] per registered session, indexed
/// by session id.
#[derive(Debug)]
pub struct Supervisor {
    cfg: SupervisorConfig,
    entries: Vec<Option<Entry>>,
    rng: SimRng,
    stats: SupervisorStats,
}

impl Supervisor {
    /// A supervisor with its own jitter stream.
    pub fn new(cfg: SupervisorConfig, rng: SimRng) -> Self {
        Supervisor {
            cfg,
            entries: Vec::new(),
            rng,
            stats: SupervisorStats::default(),
        }
    }

    /// The configured schedule.
    pub fn config(&self) -> &SupervisorConfig {
        &self.cfg
    }

    /// Registers session `sid` as healthy as of `now`.
    pub fn register(&mut self, sid: u32, now: SimTime) {
        let idx = sid as usize;
        if self.entries.len() <= idx {
            self.entries.resize(idx + 1, None);
        }
        self.entries[idx] = Some(Entry {
            last_heard: now,
            probes: 0,
            next_probe: now + self.cfg.suspect_after,
            suspect_since: now,
            crashed: false,
        });
    }

    /// Removes session `sid` from supervision.
    pub fn deregister(&mut self, sid: u32) {
        if let Some(e) = self.entries.get_mut(sid as usize) {
            *e = None;
        }
    }

    /// Marks `sid` administratively crashed (churn): probing stops until
    /// [`Supervisor::register`] is called again on rejoin.
    pub fn crash(&mut self, sid: u32) {
        if let Some(Some(e)) = self.entries.get_mut(sid as usize) {
            e.crashed = true;
        }
    }

    /// Records traffic from `sid`'s peer at `now`. Returns the outage
    /// length when this heals a suspect/dead session (the runtime feeds
    /// it to the MTTR sketch), `None` when the session was healthy.
    pub fn heard(&mut self, sid: u32, now: SimTime) -> Option<SimDuration> {
        let e = match self.entries.get_mut(sid as usize) {
            Some(Some(e)) if !e.crashed => e,
            _ => return None,
        };
        let outage = (e.probes > 0).then(|| now.saturating_since(e.suspect_since));
        if outage.is_some() {
            self.stats.heals += 1;
        }
        e.last_heard = now.max(e.last_heard);
        e.probes = 0;
        e.next_probe = e.last_heard + self.cfg.suspect_after;
        outage
    }

    /// The sessions whose probe deadline has arrived at `now`, advancing
    /// each one's schedule: probe `n` re-arms the deadline to
    /// `now + gap(n) + jitter` where `jitter <= gap(n)/4`. The invariant
    /// the proptest pins: for a fixed session, consecutive returns are
    /// never closer together than the gap its attempt count demanded —
    /// a healed-then-silent-again session restarts from the base gap,
    /// never from mid-schedule.
    pub fn due_probes(&mut self, now: SimTime) -> Vec<u32> {
        let mut due = Vec::new();
        for (sid, slot) in self.entries.iter_mut().enumerate() {
            let Some(e) = slot else { continue };
            if e.crashed || now < e.next_probe {
                continue;
            }
            if e.probes == 0 {
                // First missed deadline: the outage clock starts at the
                // silence threshold, not at this (possibly late) poll.
                e.suspect_since = e.last_heard + self.cfg.suspect_after;
            }
            let n = e.probes;
            let gap = self.cfg.backoff.gap(n);
            let jitter_cap = self.cfg.backoff.jitter_bound(n).as_micros();
            let jitter = if jitter_cap == 0 {
                SimDuration::ZERO
            } else {
                SimDuration::from_micros(self.rng.below(jitter_cap + 1))
            };
            e.next_probe = now + gap + jitter;
            e.probes += 1;
            if e.probes == self.cfg.dead_after_probes {
                self.stats.deaths += 1;
            }
            self.stats.probes += 1;
            due.push(sid as u32);
        }
        due
    }

    /// The liveness of `sid` at `now`.
    pub fn liveness(&self, sid: u32, now: SimTime) -> Liveness {
        match self.entries.get(sid as usize) {
            Some(Some(e)) => {
                if e.crashed {
                    Liveness::Crashed
                } else if e.probes >= self.cfg.dead_after_probes {
                    Liveness::Dead
                } else if e.probes > 0
                    || now.saturating_since(e.last_heard) > self.cfg.suspect_after
                {
                    Liveness::Suspect
                } else {
                    Liveness::Healthy
                }
            }
            _ => Liveness::Crashed,
        }
    }

    /// Number of registered sessions currently healthy or suspect (the
    /// `runtime.sessions.active` gauge: dead and crashed sessions are
    /// out).
    pub fn active(&self, now: SimTime) -> usize {
        (0..self.entries.len() as u32)
            .filter(|&sid| {
                matches!(
                    self.liveness(sid, now),
                    Liveness::Healthy | Liveness::Suspect
                )
            })
            .count()
    }

    /// The earliest probe deadline over all live sessions — the
    /// supervisor's contribution to the runtime's wake-up time.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.entries
            .iter()
            .flatten()
            .filter(|e| !e.crashed)
            .map(|e| e.next_probe)
            .min()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> SupervisorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sup(base_ms: u64, suspect_ms: u64) -> Supervisor {
        Supervisor::new(
            SupervisorConfig {
                suspect_after: SimDuration::from_millis(suspect_ms),
                backoff: BackoffSchedule::new(SimDuration::from_millis(base_ms)),
                dead_after_probes: 6,
            },
            SimRng::new(7),
        )
    }

    #[test]
    fn schedule_caps_at_two_to_the_four() {
        let b = BackoffSchedule::new(SimDuration::from_millis(100));
        assert_eq!(b.gap(0), SimDuration::from_millis(100));
        assert_eq!(b.gap(1), SimDuration::from_millis(200));
        assert_eq!(b.gap(4), SimDuration::from_millis(1600));
        assert_eq!(b.gap(5), SimDuration::from_millis(1600));
        assert_eq!(b.gap(40), b.max_gap());
    }

    #[test]
    fn silence_escalates_with_backoff() {
        let mut s = sup(100, 1000);
        s.register(0, SimTime::ZERO);
        // Quiet until the suspect threshold.
        assert!(s.due_probes(SimTime::from_millis(999)).is_empty());
        let t1 = SimTime::from_millis(1000);
        assert_eq!(s.due_probes(t1), vec![0]);
        assert_eq!(s.liveness(0, t1), Liveness::Suspect);
        // The next probe waits at least gap(0)=100ms, at most 125ms.
        let d = s.next_deadline().unwrap();
        assert!(d >= t1 + SimDuration::from_millis(100));
        assert!(d <= t1 + SimDuration::from_millis(125));
    }

    #[test]
    fn heal_resets_backoff_and_reports_outage() {
        let mut s = sup(100, 1000);
        s.register(0, SimTime::ZERO);
        let t1 = SimTime::from_millis(1000);
        s.due_probes(t1);
        s.due_probes(SimTime::from_millis(3000));
        let outage = s.heard(0, SimTime::from_millis(3500)).unwrap();
        // The outage clock starts at the silence threshold (t=1000).
        assert_eq!(outage, SimDuration::from_millis(2500));
        assert_eq!(s.liveness(0, SimTime::from_millis(3500)), Liveness::Healthy);
        // A fresh outage restarts from the base gap, not mid-schedule.
        let t2 = SimTime::from_millis(3500) + SimDuration::from_millis(1000);
        assert_eq!(s.due_probes(t2), vec![0]);
    }

    #[test]
    fn healthy_heard_returns_none() {
        let mut s = sup(100, 1000);
        s.register(0, SimTime::ZERO);
        assert!(s.heard(0, SimTime::from_millis(10)).is_none());
        assert_eq!(s.stats().heals, 0);
    }

    #[test]
    fn dead_after_configured_probes() {
        let mut s = sup(10, 100);
        s.register(0, SimTime::ZERO);
        let mut t = SimTime::from_millis(100);
        for _ in 0..6 {
            assert_eq!(s.due_probes(t), vec![0]);
            t += SimDuration::from_secs(1);
        }
        assert_eq!(s.liveness(0, t), Liveness::Dead);
        assert_eq!(s.active(t), 0);
        assert_eq!(s.stats().deaths, 1);
        // Dead sessions keep being probed (soft state: they may return).
        assert_eq!(s.due_probes(t), vec![0]);
        // And a late heal revives them.
        assert!(s.heard(0, t + SimDuration::from_millis(1)).is_some());
        assert_eq!(
            s.liveness(0, t + SimDuration::from_millis(1)),
            Liveness::Healthy
        );
    }

    #[test]
    fn crash_stops_probing_until_reregister() {
        let mut s = sup(10, 100);
        s.register(0, SimTime::ZERO);
        s.crash(0);
        assert!(s.due_probes(SimTime::from_secs(10)).is_empty());
        assert!(s.heard(0, SimTime::from_secs(10)).is_none());
        assert_eq!(s.liveness(0, SimTime::from_secs(10)), Liveness::Crashed);
        s.register(0, SimTime::from_secs(20));
        assert_eq!(s.liveness(0, SimTime::from_secs(20)), Liveness::Healthy);
    }
}
