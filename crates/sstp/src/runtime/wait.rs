//! The deadline-aware waiting primitive shared by the runtime and the
//! single-pair UDP bridge.
//!
//! Instead of a fixed-interval sleep loop (the busy-poll this replaces),
//! callers compute the next protocol deadline — pending summary, receiver
//! report, feedback backoff expiry, token-bucket refill — and block on
//! the socket for exactly that long. The wait returns early the moment a
//! datagram arrives, so the loop is event-driven: it wakes for traffic
//! or for a deadline, never to spin.
//!
//! The primitive uses `set_read_timeout` + `peek_from` (non-consuming, so
//! the caller's normal receive path still sees the datagram) and restores
//! the socket to nonblocking mode before returning, keeping the waiting
//! concern fully separate from the read path.

use std::io;
use std::net::UdpSocket;
use std::time::Duration;

/// The longest a single wait may block. Deadlines further out are reached
/// by waking and re-waiting, which keeps shutdown and peer-address
/// changes responsive.
pub const MAX_WAIT: Duration = Duration::from_millis(50);

/// Blocks on `socket` until a datagram is readable or `timeout` elapses,
/// whichever comes first. Returns `Ok(true)` when a datagram is waiting
/// (it is **not** consumed), `Ok(false)` on timeout. The socket is left
/// in nonblocking mode either way.
///
/// The timeout is clamped into `[1µs, MAX_WAIT]`: zero would mean "block
/// forever" to `set_read_timeout`, and unbounded waits would make the
/// caller's loop unresponsive to deadline changes.
pub fn wait_for_datagram(socket: &UdpSocket, timeout: Duration) -> io::Result<bool> {
    let timeout = timeout.clamp(Duration::from_micros(1), MAX_WAIT);
    socket.set_nonblocking(false)?;
    socket.set_read_timeout(Some(timeout))?;
    let mut probe = [0u8; 1];
    let res = socket.peek_from(&mut probe);
    // Restore nonblocking before interpreting the result so an early
    // return can never leave the socket blocking.
    socket.set_nonblocking(true)?;
    match res {
        Ok(_) => Ok(true),
        Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            Ok(false)
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::SocketAddr;
    use std::time::Instant;

    fn sock() -> UdpSocket {
        let s = UdpSocket::bind("127.0.0.1:0".parse::<SocketAddr>().unwrap()).unwrap();
        s.set_nonblocking(true).unwrap();
        s
    }

    #[test]
    fn times_out_without_traffic() {
        let s = sock();
        let start = Instant::now();
        assert!(!wait_for_datagram(&s, Duration::from_millis(20)).unwrap());
        let waited = start.elapsed();
        assert!(
            waited >= Duration::from_millis(15),
            "returned too early: {waited:?}"
        );
        // And the socket is back to nonblocking.
        let mut buf = [0u8; 8];
        assert_eq!(
            s.recv_from(&mut buf).unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
    }

    #[test]
    fn wakes_on_datagram_without_consuming_it() {
        let rx = sock();
        let tx = sock();
        let dst = rx.local_addr().unwrap();
        tx.send_to(b"ping", dst).unwrap();
        assert!(wait_for_datagram(&rx, Duration::from_millis(500)).unwrap());
        // The datagram is still there for the normal receive path.
        let mut buf = [0u8; 8];
        let (n, _) = rx.recv_from(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
    }

    #[test]
    fn long_timeouts_are_clamped() {
        let s = sock();
        let start = Instant::now();
        assert!(!wait_for_datagram(&s, Duration::from_secs(3600)).unwrap());
        assert!(start.elapsed() < Duration::from_secs(1));
    }
}
