//! Session multiplexing over a single nonblocking UDP socket.
//!
//! Many SSTP sessions share one socket; each datagram carries a 4-byte
//! big-endian session id followed by one wire [`Packet`]. The mux owns
//! the socket and the frame codec; the runtime owns routing (frame →
//! per-session bounded inbox) and all drop accounting, so every datagram
//! either reaches a state machine or increments a counter — never an
//! unbounded queue, never a panic.

use crate::wire::{Packet, WireError};
use bytes::{BufMut, BytesMut};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, UdpSocket};

/// Bytes the session-id frame header adds to each wire packet.
pub const FRAME_OVERHEAD: usize = 4;

/// One decoded inbound frame: which session, which packet.
#[derive(Clone, Debug)]
pub struct Frame {
    /// The session id from the frame header.
    pub session: u32,
    /// The decoded packet.
    pub pkt: Packet,
}

/// Why an inbound datagram failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than the 4-byte session-id header.
    Truncated,
    /// The payload failed wire decoding.
    Wire(WireError),
}

/// Encodes `pkt` for `session` into `out` (cleared first).
pub fn encode_frame(session: u32, pkt: &Packet, out: &mut BytesMut) {
    out.clear();
    out.put_u32(session);
    pkt.encode(out);
}

/// Decodes one datagram into a [`Frame`].
pub fn decode_frame(datagram: &[u8]) -> Result<Frame, FrameError> {
    if datagram.len() < FRAME_OVERHEAD {
        return Err(FrameError::Truncated);
    }
    let session = u32::from_be_bytes([datagram[0], datagram[1], datagram[2], datagram[3]]);
    let pkt = Packet::decode(bytes::Bytes::copy_from_slice(&datagram[FRAME_OVERHEAD..]))
        .map_err(FrameError::Wire)?;
    Ok(Frame { session, pkt })
}

/// A bounded FIFO between the socket reader and a session state machine.
///
/// `push` refuses instead of growing: a `false` return is the caller's
/// cue to count a backpressure drop. The queue can never exceed its
/// capacity (checked by [`BoundedQueue::high_water`], which the soak
/// test asserts stays `<= capacity`).
#[derive(Debug)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    drops: u64,
    high_water: usize,
}

impl<T> BoundedQueue<T> {
    /// An empty queue bounded at `capacity` (> 0).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity queue");
        BoundedQueue {
            items: VecDeque::with_capacity(capacity),
            capacity,
            drops: 0,
            high_water: 0,
        }
    }

    /// Enqueues `item` if there is room; otherwise counts a drop and
    /// returns `false`.
    pub fn push(&mut self, item: T) -> bool {
        if self.items.len() == self.capacity {
            self.drops += 1;
            return false;
        }
        self.items.push_back(item);
        self.high_water = self.high_water.max(self.items.len());
        debug_assert!(
            self.items.len() <= self.capacity,
            "queue grew past capacity"
        );
        true
    }

    /// Dequeues the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pushes refused because the queue was full.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// The deepest the queue has ever been — provably `<= capacity`.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

/// Socket-level counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct MuxStats {
    /// Datagrams sent.
    pub datagrams_tx: u64,
    /// Datagrams received (before any ingress filtering).
    pub datagrams_rx: u64,
    /// Datagrams that failed frame or wire decoding.
    pub decode_errors: u64,
}

/// The shared nonblocking socket plus the frame codec state.
pub struct SocketMux {
    socket: UdpSocket,
    peer: SocketAddr,
    rx_buf: Vec<u8>,
    tx_buf: BytesMut,
    stats: MuxStats,
}

impl SocketMux {
    /// Binds a nonblocking socket at `bind`, targeting `peer`.
    pub fn bind(bind: SocketAddr, peer: SocketAddr) -> io::Result<Self> {
        let socket = UdpSocket::bind(bind)?;
        socket.set_nonblocking(true)?;
        Ok(SocketMux {
            socket,
            peer,
            rx_buf: vec![0u8; 65_536],
            tx_buf: BytesMut::with_capacity(2048),
            stats: MuxStats::default(),
        })
    }

    /// The bound local address (useful with ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Re-targets the peer (e.g. once the remote ephemeral port is known).
    pub fn set_peer(&mut self, peer: SocketAddr) {
        self.peer = peer;
    }

    /// The underlying socket (for `try_clone` so a waiter can block on
    /// readability without holding the runtime lock).
    pub fn socket(&self) -> &UdpSocket {
        &self.socket
    }

    /// Receives and decodes one waiting datagram. `Ok(None)` when the
    /// socket has nothing; decode failures are counted and surfaced as
    /// `Ok(Some(Err(..)))` so the caller keeps draining.
    pub fn recv(&mut self) -> io::Result<Option<Result<Frame, FrameError>>> {
        match self.socket.recv_from(&mut self.rx_buf) {
            Ok((n, _from)) => {
                self.stats.datagrams_rx += 1;
                let decoded = decode_frame(&self.rx_buf[..n]);
                if decoded.is_err() {
                    self.stats.decode_errors += 1;
                }
                Ok(Some(decoded))
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Frames and sends one packet for `session`.
    pub fn send(&mut self, session: u32, pkt: &Packet) -> io::Result<()> {
        encode_frame(session, pkt, &mut self.tx_buf);
        self.socket.send_to(&self.tx_buf, self.peer)?;
        self.stats.datagrams_tx += 1;
        Ok(())
    }

    /// Socket counters.
    pub fn stats(&self) -> MuxStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::RepairQueryPacket;

    #[test]
    fn frame_roundtrip() {
        let pkt = Packet::RepairQuery(RepairQueryPacket { path: vec![1, 2] });
        let mut buf = BytesMut::new();
        encode_frame(0xdead_beef, &pkt, &mut buf);
        let frame = decode_frame(&buf).unwrap();
        assert_eq!(frame.session, 0xdead_beef);
        assert!(matches!(frame.pkt, Packet::RepairQuery(q) if q.path == vec![1, 2]));
    }

    #[test]
    fn truncated_frame_rejected() {
        assert_eq!(decode_frame(&[0, 1, 2]).unwrap_err(), FrameError::Truncated);
    }

    #[test]
    fn garbage_payload_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(7);
        buf.extend_from_slice(&[0xff; 3]);
        assert!(matches!(
            decode_frame(&buf).unwrap_err(),
            FrameError::Wire(_)
        ));
    }

    #[test]
    fn bounded_queue_refuses_at_capacity() {
        let mut q = BoundedQueue::new(2);
        assert!(q.push(1));
        assert!(q.push(2));
        assert!(!q.push(3));
        assert_eq!(q.drops(), 1);
        assert_eq!(q.high_water(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3));
        assert_eq!(q.high_water(), 2);
        assert!(q.high_water() <= q.capacity());
    }
}
