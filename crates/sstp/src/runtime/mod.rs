//! `ss-runtime`: a production-shaped multi-session SSTP runtime.
//!
//! Many concurrent SSTP sessions — each an independent sans-I/O
//! [`SstpSender`] or [`SstpReceiver`] state machine — multiplexed over
//! **one** nonblocking UDP socket, with the scheduling concerns the
//! simulator never needed:
//!
//! * **Bounded channels everywhere** ([`mux::BoundedQueue`],
//!   [`shed::SheddingQueue`]): socket I/O and state machines exchange
//!   packets through capacity-capped queues whose refusal is a counted,
//!   metric-visible drop (`runtime.backpressure.drops`) — never an
//!   unbounded buffer, never a panic. The soft-state model is what makes
//!   this safe: every dropped message is an idempotent refresh that a
//!   later cycle re-sends.
//! * **Rate control** ([`pacing`]): a per-session token bucket bounds
//!   each session's hot traffic; a global bucket bounds the socket; a
//!   [`pacing::VarRateLimit`] paces cold announce batches and is the
//!   knob the degradation policy turns.
//! * **Supervision** ([`supervisor`]): dead-peer detection after a
//!   silence threshold, capped-exponential re-probes (the same
//!   `base * 2^min(n,4)` schedule as the receiver's repair backoff),
//!   crash-rejoin through the existing root-summary descent, and MTTR
//!   accounting into a quantile sketch.
//! * **Graceful degradation** ([`shed`]): under pressure the outbound
//!   queue sheds cold refreshes first and the announce pacer halves its
//!   rate, preserving hot announcements and repair feedback — the
//!   paper's allocation priorities applied as overload policy.
//!
//! The enabler is the clock split the machines already obey: protocol
//! logic never reads a clock, so the *same* state machines that
//! `ss-verify` explores exhaustively and the deterministic sim replays
//! bit-for-bit are driven here by a [`WallClock`] mapping real instants
//! onto the [`SimTime`] axis. The runtime adds scheduling only — no
//! protocol logic lives in this module tree, and everything except this
//! file and the socket wait primitive is itself pure and deterministic.
//!
//! Single-threaded by design: one [`Runtime`] is one poll loop
//! ([`Runtime::poll`] returns the next wake-up deadline;
//! [`Runtime::run_for`] drives it with the deadline-aware socket wait
//! from [`wait`]). Scale across cores by running several runtimes, each
//! owning its own socket.

pub mod mux;
pub mod pacing;
pub mod shed;
pub mod supervisor;
pub mod wait;

use crate::digest::HashAlgorithm;
use crate::receiver::{ReceiverConfig, SstpReceiver};
use crate::sender::SstpSender;
use crate::wire::Packet;
use mux::{BoundedQueue, SocketMux, FRAME_OVERHEAD};
use pacing::{TokenBucket, VarRateLimit};
use shed::{Outbound, SheddingQueue, TrafficClass};
use ss_netsim::{
    Bandwidth, Clock, CounterId, GaugeId, LossModel, LossSpec, MetricsRegistry, MetricsSnapshot,
    RealPathFaults, SimDuration, SimRng, SimTime, SketchId,
};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};
use supervisor::{Supervisor, SupervisorConfig};

/// Maps wall-clock instants onto the protocol's [`SimTime`] axis.
///
/// The runtime's counterpart of the sim's virtual clock: `SimTime::ZERO`
/// is the instant the clock was created, and every protocol deadline is
/// computed on the `SimTime` axis so the state machines cannot tell the
/// difference. This is the **only** place (plus `sstp::udp`) where the
/// workspace reads a wall clock — ss-lint's D001 enforces that.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A clock whose epoch is now.
    pub fn start() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }

    /// The span from `now()` until `t`, as a std [`Duration`] for socket
    /// timeouts (zero when `t` is already past).
    pub fn until(&self, t: SimTime) -> Duration {
        Duration::from_micros(t.saturating_since(self.now()).as_micros())
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }
}

/// Runtime tuning. [`RuntimeConfig::loopback`] gives soak-friendly
/// defaults; every knob is public for tests.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Local bind address (port 0 picks an ephemeral port).
    pub bind: SocketAddr,
    /// The remote endpoint all sessions share.
    pub peer: SocketAddr,
    /// Global socket budget enforced by the shared token bucket.
    pub bandwidth: Bandwidth,
    /// Per-session hot-traffic budget.
    pub session_bandwidth: Bandwidth,
    /// Root-summary interval (publisher sessions).
    pub summary_interval: SimDuration,
    /// Receiver-report interval (subscriber sessions).
    pub report_interval: SimDuration,
    /// Soft-state expiry sweep interval (subscriber sessions).
    pub expiry_interval: SimDuration,
    /// Cold-path pacer rate (summaries + cycle refreshes, in operations
    /// per second across **all** sessions). The degradation policy halves
    /// this under pressure and restores it when pressure clears.
    pub cold_rate: u32,
    /// Capacity of each per-session inbox.
    pub inbox_capacity: usize,
    /// Capacity of the shared outbound queue.
    pub outbox_capacity: usize,
    /// Cold watermark of the outbound queue (cold pushes refused above).
    pub outbox_cold_watermark: usize,
    /// Liveness supervision knobs.
    pub supervisor: SupervisorConfig,
    /// Test hook: drop arriving datagrams by this loss process, drawn
    /// from a **dedicated** seeded stream (the batched-draw contract —
    /// see `sstp::udp`).
    pub ingress_loss: LossSpec,
    /// Seed for the ingress-drop stream and the supervisor jitter.
    pub seed: u64,
}

impl RuntimeConfig {
    /// Loopback defaults sized for many-session soak runs.
    pub fn loopback(bind: SocketAddr, peer: SocketAddr) -> Self {
        RuntimeConfig {
            bind,
            peer,
            bandwidth: Bandwidth::from_mbps(200),
            session_bandwidth: Bandwidth::from_kbps(256),
            summary_interval: SimDuration::from_millis(200),
            report_interval: SimDuration::from_millis(500),
            expiry_interval: SimDuration::from_millis(500),
            cold_rate: 50_000,
            inbox_capacity: 64,
            outbox_capacity: 4096,
            outbox_cold_watermark: 3072,
            supervisor: SupervisorConfig::default(),
            ingress_loss: LossSpec::None,
            seed: 0,
        }
    }
}

/// One session's endpoint state: the protocol machine plus its periodic
/// deadlines. All deadlines live on the [`SimTime`] axis.
enum Endpoint {
    Publisher {
        sender: SstpSender,
        bucket: TokenBucket,
        next_summary: SimTime,
        /// A hot packet built but throttled by the session bucket.
        pending: Option<Packet>,
    },
    Subscriber {
        receiver: SstpReceiver,
        next_report: SimTime,
        next_expiry: SimTime,
    },
}

/// One multiplexed session: endpoint plus its bounded inbox.
struct SessionSlot {
    endpoint: Endpoint,
    inbox: BoundedQueue<Packet>,
}

/// Pre-registered metric handles (registered once in [`Runtime::bind`];
/// D007 forbids inline re-registration).
struct Ids {
    active: GaugeId,
    backpressure: CounterId,
    shed_cold: CounterId,
    shed_hot: CounterId,
    fault_drops: CounterId,
    injected_drops: CounterId,
    ingress: CounterId,
    egress: CounterId,
    decode_errors: CounterId,
    unknown_session: CounterId,
    throttled: CounterId,
    probes: CounterId,
    heals: CounterId,
    mttr: SketchId,
}

/// Deltas already folded into the metrics registry (counters are
/// monotone; the sources keep absolute totals).
#[derive(Default)]
struct Synced {
    backpressure: u64,
    shed_cold: u64,
    shed_hot: u64,
    fault_drops: u64,
    ingress: u64,
    egress: u64,
    decode_errors: u64,
    probes: u64,
    heals: u64,
}

/// The multi-session runtime: one socket, many state machines, one poll
/// loop. See the module docs for the architecture.
pub struct Runtime {
    mux: SocketMux,
    clock: WallClock,
    global_bucket: TokenBucket,
    cold_pacer: VarRateLimit,
    base_cold_rate: u32,
    sessions: Vec<Option<SessionSlot>>,
    /// Round-robin start index for session stepping: cold-path pacer
    /// grants are contended, so a fixed order would let low session ids
    /// starve high ones of summary slots.
    step_cursor: usize,
    supervisor: Supervisor,
    outbox: SheddingQueue,
    faults: Option<RealPathFaults>,
    ingress_loss: Option<Box<dyn LossModel>>,
    drop_rng: SimRng,
    injected_drops: u64,
    unknown_session: u64,
    throttled: u64,
    closed_backpressure: u64,
    metrics: MetricsRegistry,
    ids: Ids,
    synced: Synced,
    cfg: RuntimeConfig,
}

impl Runtime {
    /// Binds the runtime's socket and registers its metric series.
    pub fn bind(cfg: RuntimeConfig) -> io::Result<Self> {
        let mut metrics = MetricsRegistry::new();
        let active = metrics.gauge("runtime.sessions.active");
        let backpressure = metrics.counter("runtime.backpressure.drops");
        let shed_cold = metrics.counter("runtime.shed.cold");
        let shed_hot = metrics.counter("runtime.shed.hot");
        let fault_drops = metrics.counter("runtime.fault.drops");
        let injected_drops = metrics.counter("runtime.loss.injected");
        let ingress = metrics.counter("runtime.ingress.datagrams");
        let egress = metrics.counter("runtime.egress.datagrams");
        let decode_errors = metrics.counter("runtime.decode.errors");
        let unknown_session = metrics.counter("runtime.route.unknown");
        let throttled = metrics.counter("runtime.throttled");
        let probes = metrics.counter("runtime.probe.sent");
        let heals = metrics.counter("runtime.session.heals");
        let mttr = metrics.sketch("runtime.session.mttr");
        let ids = Ids {
            active,
            backpressure,
            shed_cold,
            shed_hot,
            fault_drops,
            injected_drops,
            ingress,
            egress,
            decode_errors,
            unknown_session,
            throttled,
            probes,
            heals,
            mttr,
        };
        // A lossless spec consumes no randomness at all, matching the
        // simulator channels' draw discipline. A lossy one is built
        // **batched**: this ingress stream is dedicated to loss draws,
        // which is exactly the dedicated-stream contract batched draws
        // require (see `LossSpec::build_batched`).
        let ingress_loss =
            (cfg.ingress_loss.mean() > 0.0).then(|| cfg.ingress_loss.build_batched());
        Ok(Runtime {
            mux: SocketMux::bind(cfg.bind, cfg.peer)?,
            clock: WallClock::start(),
            global_bucket: TokenBucket::new(cfg.bandwidth),
            cold_pacer: VarRateLimit::new(cfg.cold_rate),
            base_cold_rate: cfg.cold_rate.max(1),
            sessions: Vec::new(),
            step_cursor: 0,
            supervisor: Supervisor::new(cfg.supervisor, SimRng::new(cfg.seed ^ 0x5cbe_11a7)),
            outbox: SheddingQueue::new(cfg.outbox_capacity, cfg.outbox_cold_watermark),
            faults: None,
            ingress_loss,
            drop_rng: SimRng::new(cfg.seed ^ 0x9e37_79b9),
            injected_drops: 0,
            unknown_session: 0,
            throttled: 0,
            closed_backpressure: 0,
            metrics,
            ids,
            synced: Synced::default(),
            cfg,
        })
    }

    /// The bound local address (useful with ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.mux.local_addr()
    }

    /// Re-targets the peer (e.g. once the remote ephemeral port is known).
    pub fn set_peer(&mut self, peer: SocketAddr) {
        self.mux.set_peer(peer);
    }

    /// The runtime's protocol clock.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// A handle to the socket for waiting on readability *outside* any
    /// lock guarding the runtime (the soak harness blocks on the clone
    /// while other threads publish).
    pub fn try_clone_socket(&self) -> io::Result<UdpSocket> {
        self.mux.socket().try_clone()
    }

    /// Installs a fault schedule to replay as real socket-level drops at
    /// this runtime's ingress (see [`RealPathFaults`]).
    pub fn set_faults(&mut self, faults: RealPathFaults) {
        self.faults = Some(faults);
    }

    /// The installed fault adapter, if any.
    pub fn faults(&self) -> Option<&RealPathFaults> {
        self.faults.as_ref()
    }

    /// Adds a publisher session; returns its session id.
    pub fn add_publisher(&mut self, algo: HashAlgorithm, default_payload: u32) -> u32 {
        let now = self.clock.now();
        let endpoint = Endpoint::Publisher {
            sender: SstpSender::new(algo, default_payload),
            bucket: TokenBucket::new(self.cfg.session_bandwidth),
            next_summary: now,
            pending: None,
        };
        self.install(endpoint, now)
    }

    /// Adds a subscriber session; returns its session id.
    pub fn add_subscriber(&mut self, rcfg: ReceiverConfig) -> u32 {
        let now = self.clock.now();
        let seed = self.cfg.seed ^ u64::from(rcfg.id).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let endpoint = Endpoint::Subscriber {
            receiver: SstpReceiver::new(rcfg, SimRng::new(seed)),
            next_report: now + self.cfg.report_interval,
            next_expiry: now + self.cfg.expiry_interval,
        };
        self.install(endpoint, now)
    }

    fn install(&mut self, endpoint: Endpoint, now: SimTime) -> u32 {
        let slot = SessionSlot {
            endpoint,
            inbox: BoundedQueue::new(self.cfg.inbox_capacity),
        };
        // Reuse the first crashed (vacated) slot before growing.
        let sid = match self.sessions.iter().position(Option::is_none) {
            Some(i) => {
                self.sessions[i] = Some(slot);
                i as u32
            }
            None => {
                self.sessions.push(Some(slot));
                (self.sessions.len() - 1) as u32
            }
        };
        self.supervisor.register(sid, now);
        sid
    }

    /// Crashes session `sid` (churn): the state machine and its queued
    /// inbox are discarded, mirroring a process death. Rejoin by
    /// installing a fresh session — recovery then flows through the
    /// root-summary descent, exactly like the sim's crash-rejoin path.
    pub fn crash(&mut self, sid: u32) {
        if let Some(slot) = self.sessions.get_mut(sid as usize) {
            if let Some(s) = slot.take() {
                // The dying inbox's refusals stay counted.
                self.closed_backpressure += s.inbox.drops();
            }
            self.supervisor.crash(sid);
        }
    }

    /// Rejoins a crashed subscriber slot with a fresh (empty-replica)
    /// receiver. Panics if `sid` is still occupied.
    pub fn rejoin_subscriber(&mut self, sid: u32, rcfg: ReceiverConfig) {
        assert!(
            self.sessions.get(sid as usize).is_some_and(Option::is_none),
            "rejoin into a live slot"
        );
        let now = self.clock.now();
        let seed = self.cfg.seed ^ u64::from(rcfg.id).wrapping_mul(0x2545_f491_4f6c_dd1d);
        self.sessions[sid as usize] = Some(SessionSlot {
            endpoint: Endpoint::Subscriber {
                receiver: SstpReceiver::new(rcfg, SimRng::new(seed)),
                next_report: now + self.cfg.report_interval,
                next_expiry: now + self.cfg.expiry_interval,
            },
            inbox: BoundedQueue::new(self.cfg.inbox_capacity),
        });
        self.supervisor.register(sid, now);
    }

    /// The publisher machine of session `sid` (publish/update/withdraw).
    pub fn publisher_mut(&mut self, sid: u32) -> Option<&mut SstpSender> {
        match self.sessions.get_mut(sid as usize)? {
            Some(SessionSlot {
                endpoint: Endpoint::Publisher { sender, .. },
                ..
            }) => Some(sender),
            _ => None,
        }
    }

    /// The publisher machine of session `sid`, read-only.
    pub fn publisher(&self, sid: u32) -> Option<&SstpSender> {
        match self.sessions.get(sid as usize)? {
            Some(SessionSlot {
                endpoint: Endpoint::Publisher { sender, .. },
                ..
            }) => Some(sender),
            _ => None,
        }
    }

    /// The subscriber machine of session `sid` (replica access).
    pub fn subscriber(&self, sid: u32) -> Option<&SstpReceiver> {
        match self.sessions.get(sid as usize)? {
            Some(SessionSlot {
                endpoint: Endpoint::Subscriber { receiver, .. },
                ..
            }) => Some(receiver),
            _ => None,
        }
    }

    /// Number of installed (non-crashed) sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.iter().flatten().count()
    }

    /// The liveness supervisor (read-only).
    pub fn supervisor(&self) -> &Supervisor {
        &self.supervisor
    }

    /// The deepest any per-session inbox has ever been (provably bounded
    /// by the configured capacity — the soak gate asserts it).
    pub fn inbox_high_water(&self) -> usize {
        self.sessions
            .iter()
            .flatten()
            .map(|s| s.inbox.high_water())
            .max()
            .unwrap_or(0)
    }

    /// The shared outbound queue's high-water mark.
    pub fn outbox_high_water(&self) -> usize {
        self.outbox.high_water()
    }

    /// Total inbox refusals (live sessions plus crashed ones).
    pub fn backpressure_drops(&self) -> u64 {
        self.closed_backpressure
            + self
                .sessions
                .iter()
                .flatten()
                .map(|s| s.inbox.drops())
                .sum::<u64>()
    }

    /// The current cold-pacer rate (ops/sec) — drops below the configured
    /// rate while the degradation policy is active.
    pub fn cold_rate(&self) -> u32 {
        self.cold_pacer.rate()
    }

    /// One poll iteration: drain the socket into per-session inboxes,
    /// step every session (ingest, then emit hot/cold/feedback under the
    /// rate budgets), issue due liveness probes, and flush the outbound
    /// queue through the global bucket. Returns the next wake-up deadline
    /// — the caller sleeps until then or until the socket turns readable
    /// ([`Runtime::run_for`] does exactly that).
    pub fn poll(&mut self) -> io::Result<SimTime> {
        let now = self.clock.now();
        self.drain_socket(now)?;
        let mut deadline = SimTime::MAX;
        let n = self.sessions.len();
        if n > 0 {
            // Rotate the starting session each poll so contended pacer
            // grants are shared fairly across sessions.
            self.step_cursor %= n;
            for i in 0..n {
                let sid = (self.step_cursor + i) % n;
                self.step_session(sid as u32, now, &mut deadline);
            }
            self.step_cursor = (self.step_cursor + 1) % n;
        }
        self.issue_probes(now);
        self.flush_outbox(now, &mut deadline)?;
        self.degrade_or_restore();
        if let Some(t) = self.supervisor.next_deadline() {
            deadline = deadline.min(t);
        }
        self.sync_metrics(now);
        Ok(deadline)
    }

    /// Drives the poll loop for `duration`, sleeping each iteration until
    /// the earliest protocol deadline or the first arriving datagram —
    /// the deadline-aware wait that replaced the fixed-interval sleep
    /// loops (see [`wait::wait_for_datagram`]).
    pub fn run_for(&mut self, duration: Duration) -> io::Result<()> {
        let end = self.clock.now() + SimDuration::from_micros(duration.as_micros() as u64);
        while self.clock.now() < end {
            let deadline = self.poll()?.min(end);
            let timeout = self.clock.until(deadline);
            if !timeout.is_zero() {
                wait::wait_for_datagram(self.mux.socket(), timeout)?;
            }
        }
        Ok(())
    }

    /// Folds every pending counter delta into the registry and snapshots
    /// it at the current protocol time.
    pub fn metrics_snapshot(&mut self) -> MetricsSnapshot {
        let now = self.clock.now();
        self.sync_metrics(now);
        self.metrics.snapshot(now)
    }

    fn drain_socket(&mut self, now: SimTime) -> io::Result<()> {
        while let Some(decoded) = self.mux.recv()? {
            let Ok(frame) = decoded else {
                continue; // counted by the mux
            };
            if let Some(loss) = &mut self.ingress_loss {
                if loss.is_lost(&mut self.drop_rng) {
                    self.injected_drops += 1;
                    continue;
                }
            }
            let Some(Some(slot)) = self.sessions.get_mut(frame.session as usize) else {
                self.unknown_session += 1;
                continue;
            };
            // Data direction lands on subscribers, feedback on publishers.
            let is_data = matches!(slot.endpoint, Endpoint::Subscriber { .. });
            if let Some(f) = &mut self.faults {
                let dropped = if is_data {
                    f.drop_data(now)
                } else {
                    f.drop_feedback(now)
                };
                if dropped {
                    continue; // counted by the adapter
                }
            }
            // A full inbox is a counted backpressure drop, never growth.
            let _ = slot.inbox.push(frame.pkt);
        }
        Ok(())
    }

    fn step_session(&mut self, sid: u32, now: SimTime, deadline: &mut SimTime) {
        let Some(Some(slot)) = self.sessions.get_mut(sid as usize) else {
            return;
        };
        // Ingest everything queued for this session.
        let mut drained = 0usize;
        while let Some(pkt) = slot.inbox.pop() {
            match &mut slot.endpoint {
                Endpoint::Publisher { sender, .. } => {
                    sender.on_packet(&pkt);
                }
                Endpoint::Subscriber { receiver, .. } => {
                    receiver.on_packet(now, &pkt);
                }
            }
            drained += 1;
        }
        if drained > 0 {
            if let Some(outage) = self.supervisor.heard(sid, now) {
                self.metrics.observe_sketch(self.ids.mttr, outage);
            }
        }
        // Emit due traffic.
        match &mut slot.endpoint {
            Endpoint::Publisher {
                sender,
                bucket,
                next_summary,
                pending,
            } => {
                // Flush a previously throttled hot packet first, then
                // drain fresh hot traffic, all within the session bucket.
                if let Some(pkt) = pending.take() {
                    if bucket.try_take(now, pkt.wire_len() + FRAME_OVERHEAD) {
                        self.outbox.push(Outbound {
                            session: sid,
                            class: TrafficClass::Hot,
                            pkt,
                        });
                    } else {
                        *deadline =
                            (*deadline).min(now.saturating_add(bucket.eta(now, pkt.wire_len())));
                        *pending = Some(pkt);
                    }
                }
                while pending.is_none() {
                    let Some(pkt) = sender.next_hot_packet() else {
                        break;
                    };
                    if bucket.try_take(now, pkt.wire_len() + FRAME_OVERHEAD) {
                        self.outbox.push(Outbound {
                            session: sid,
                            class: TrafficClass::Hot,
                            pkt,
                        });
                    } else {
                        self.throttled += 1;
                        *deadline =
                            (*deadline).min(now.saturating_add(bucket.eta(now, pkt.wire_len())));
                        *pending = Some(pkt);
                    }
                }
                // Periodic root summary, through the shared cold pacer.
                if now >= *next_summary {
                    if self.cold_pacer.check(now) {
                        self.outbox.push(Outbound {
                            session: sid,
                            class: TrafficClass::Cold,
                            pkt: sender.summary_packet(),
                        });
                        // Advance even if the push was shed: the shed IS
                        // the degradation, and soft state refreshes later.
                        *next_summary = now + self.cfg.summary_interval;
                        // One cycle re-announcement rides each summary
                        // slot, so the cold rotation advances at the
                        // summary cadence. (Grabbing every free pacer
                        // grant instead would let already-stepped
                        // sessions starve later ones of summary slots.)
                        if sender.table().live_count() > 0 && self.cold_pacer.check(now) {
                            if let Some(pkt) = sender.next_cycle_packet() {
                                self.outbox.push(Outbound {
                                    session: sid,
                                    class: TrafficClass::Cold,
                                    pkt,
                                });
                            }
                        }
                    } else {
                        *deadline = (*deadline).min(self.cold_pacer.next_allowed());
                    }
                } else {
                    *deadline = (*deadline).min(*next_summary);
                }
            }
            Endpoint::Subscriber {
                receiver,
                next_report,
                next_expiry,
            } => {
                for pkt in receiver.poll_feedback(now) {
                    self.outbox.push(Outbound {
                        session: sid,
                        class: TrafficClass::Feedback,
                        pkt,
                    });
                }
                if now >= *next_report {
                    self.outbox.push(Outbound {
                        session: sid,
                        class: TrafficClass::Feedback,
                        pkt: receiver.make_report(),
                    });
                    *next_report = now + self.cfg.report_interval;
                }
                if now >= *next_expiry {
                    receiver.expire(now);
                    *next_expiry = now + self.cfg.expiry_interval;
                }
                *deadline = (*deadline).min(*next_report).min(*next_expiry);
                if let Some(t) = receiver.next_feedback_at() {
                    *deadline = (*deadline).min(t);
                }
            }
        }
    }

    /// Turns due supervisor probes into packets: a publisher probes with
    /// a root summary (inviting the peer back through summary descent), a
    /// subscriber with a receiver report. Probes ride the Feedback class
    /// so the shed policy preserves them under overload.
    fn issue_probes(&mut self, now: SimTime) {
        for sid in self.supervisor.due_probes(now) {
            let Some(Some(slot)) = self.sessions.get_mut(sid as usize) else {
                continue;
            };
            let pkt = match &mut slot.endpoint {
                Endpoint::Publisher { sender, .. } => sender.summary_packet(),
                Endpoint::Subscriber { receiver, .. } => receiver.make_report(),
            };
            self.outbox.push(Outbound {
                session: sid,
                class: TrafficClass::Feedback,
                pkt,
            });
        }
    }

    fn flush_outbox(&mut self, now: SimTime, deadline: &mut SimTime) -> io::Result<()> {
        while let Some(head) = self.outbox.peek() {
            let cost = head.pkt.wire_len() + FRAME_OVERHEAD;
            if self.global_bucket.try_take(now, cost) {
                let out = self.outbox.pop().expect("peeked entry vanished");
                self.mux.send(out.session, &out.pkt)?;
            } else {
                self.throttled += 1;
                *deadline = (*deadline).min(now.saturating_add(self.global_bucket.eta(now, cost)));
                break;
            }
        }
        Ok(())
    }

    /// The announce-degradation policy: a cold shed since the last poll
    /// halves the pacer rate (never below 1 op/s); once the queue drains
    /// back under its watermark the rate doubles step-by-step toward the
    /// configured rate. The asymmetry (halve on evidence of overload,
    /// recover gradually) mirrors the sender's loss-driven announce
    /// degradation from the chaos PR.
    fn degrade_or_restore(&mut self) {
        let shed_now = self.outbox.stats().shed_cold;
        if shed_now > self.synced.shed_cold {
            self.cold_pacer.set_rate(self.cold_pacer.rate() / 2);
        } else if !self.outbox.pressured() && self.cold_pacer.rate() < self.base_cold_rate {
            self.cold_pacer
                .set_rate((self.cold_pacer.rate().saturating_mul(2)).min(self.base_cold_rate));
        }
    }

    /// Folds counter deltas from every component into the registry.
    /// Counters are registered once in `bind`; this keeps the registry
    /// monotone without threading metric ids through the components.
    fn sync_metrics(&mut self, now: SimTime) {
        let m = self.mux.stats();
        let shed = self.outbox.stats();
        let sup = self.supervisor.stats();
        let bp = self.backpressure_drops();
        let fd = self
            .faults
            .as_ref()
            .map(|f| f.data_drops() + f.feedback_drops())
            .unwrap_or(0);
        let adds: [(CounterId, u64, &mut u64); 9] = [
            (self.ids.backpressure, bp, &mut self.synced.backpressure),
            (
                self.ids.shed_cold,
                shed.shed_cold,
                &mut self.synced.shed_cold,
            ),
            (self.ids.shed_hot, shed.shed_hot, &mut self.synced.shed_hot),
            (self.ids.fault_drops, fd, &mut self.synced.fault_drops),
            (self.ids.ingress, m.datagrams_rx, &mut self.synced.ingress),
            (self.ids.egress, m.datagrams_tx, &mut self.synced.egress),
            (
                self.ids.decode_errors,
                m.decode_errors,
                &mut self.synced.decode_errors,
            ),
            (self.ids.probes, sup.probes, &mut self.synced.probes),
            (self.ids.heals, sup.heals, &mut self.synced.heals),
        ];
        for (id, total, last) in adds {
            self.metrics.add(id, total.saturating_sub(*last));
            *last = total;
        }
        // Absolute counters with no external total: set once per call.
        let inj = self.injected_drops;
        let unk = self.unknown_session;
        let thr = self.throttled;
        self.injected_drops = 0;
        self.unknown_session = 0;
        self.throttled = 0;
        self.metrics.add(self.ids.injected_drops, inj);
        self.metrics.add(self.ids.unknown_session, unk);
        self.metrics.add(self.ids.throttled, thr);
        self.metrics
            .set_gauge(self.ids.active, self.supervisor.active(now) as f64);
    }
}
