//! SSTP over real UDP sockets.
//!
//! The [`SstpSender`]/[`SstpReceiver`] endpoints are sans-I/O: state in,
//! packets out. This module binds them to `std::net::UdpSocket` with a
//! real-time clock ([`WallClock`]), a token-bucket rate limiter standing
//! in for the session bandwidth budget, and the periodic machinery
//! (summaries, receiver reports, expiry sweeps) driven by deadlines on
//! the protocol's [`SimTime`] axis.
//!
//! The implementation is deliberately single-threaded and poll-based —
//! call [`UdpPublisher::poll`] / [`UdpSubscriber::poll`] from your event
//! loop, or [`UdpPublisher::run_for`] to drive it for a bounded time.
//! `run_for` is **event-driven**, not a sleep loop: each iteration
//! computes the next protocol deadline (pending summary, report, expiry
//! sweep, feedback backoff, token-bucket refill) and blocks on the
//! socket for exactly that long via
//! [`crate::runtime::wait::wait_for_datagram`], waking early the moment
//! a datagram arrives.
//!
//! For test determinism both ends accept an optional seeded ingress
//! [`LossSpec`] — the same audited loss description the simulator
//! channels use — so loss-recovery paths can be exercised on loopback
//! under Bernoulli or bursty loss alike.

use crate::digest::HashAlgorithm;
use crate::receiver::{ReceiverConfig, SstpReceiver};
use crate::runtime::pacing::TokenBucket;
use crate::runtime::wait::wait_for_datagram;
use crate::runtime::WallClock;
use crate::sender::SstpSender;
use crate::wire::{Packet, WireError};
use bytes::BytesMut;
use softstate::Key;
use ss_netsim::{Bandwidth, Clock, LossModel, LossSpec, SimDuration, SimRng, SimTime};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

/// Counters common to both UDP endpoints.
#[derive(Clone, Copy, Debug, Default)]
pub struct UdpStats {
    /// Datagrams sent.
    pub datagrams_tx: u64,
    /// Datagrams received and decoded.
    pub datagrams_rx: u64,
    /// Datagrams discarded by the test-only ingress drop.
    pub injected_drops: u64,
    /// Datagrams that failed to decode.
    pub decode_errors: u64,
    /// Transmissions deferred by the rate limiter (retried next poll).
    pub throttled: u64,
}

fn make_socket(bind: SocketAddr) -> io::Result<UdpSocket> {
    let socket = UdpSocket::bind(bind)?;
    socket.set_nonblocking(true)?;
    Ok(socket)
}

fn recv_packet(
    socket: &UdpSocket,
    buf: &mut [u8],
) -> io::Result<Option<Result<Packet, WireError>>> {
    match socket.recv_from(buf) {
        Ok((n, _peer)) => Ok(Some(Packet::decode(bytes::Bytes::copy_from_slice(
            &buf[..n],
        )))),
        Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            Ok(None)
        }
        Err(e) => Err(e),
    }
}

/// Converts a std [`Duration`] onto the protocol time axis.
fn sim_duration(d: Duration) -> SimDuration {
    SimDuration::from_micros(d.as_micros() as u64)
}

/// Configuration shared by the UDP endpoints.
#[derive(Clone, Debug)]
pub struct UdpConfig {
    /// Local bind address (use port 0 to pick an ephemeral port).
    pub bind: SocketAddr,
    /// The remote endpoint.
    pub peer: SocketAddr,
    /// Session bandwidth budget enforced by the token bucket.
    pub bandwidth: Bandwidth,
    /// Root-summary interval (publisher side).
    pub summary_interval: Duration,
    /// Receiver-report interval (subscriber side).
    pub report_interval: Duration,
    /// Soft-state expiry sweep interval (subscriber side).
    pub expiry_interval: Duration,
    /// Test hook: drop incoming datagrams according to this loss
    /// process, drawn from a seeded stream (deterministic loss on
    /// loopback). The same [`LossSpec`] the simulator channels consume,
    /// so loopback tests can inject Bernoulli or bursty loss.
    pub ingress_loss: LossSpec,
    /// Seed for the ingress-drop stream.
    pub seed: u64,
}

/// The built ingress loss process, or `None` for a lossless spec (which
/// then consumes no randomness at all — matching the simulator channels'
/// draw discipline).
///
/// Lossy specs build **batched** ([`LossSpec::build_batched`]): each
/// endpoint's `drop_rng` exists solely to drive this model, which is
/// exactly the dedicated-stream contract batched draws require, and
/// batched Bernoulli is draw-for-draw identical to the unbatched model
/// on such a stream. Loopback chaos replays therefore see the very same
/// loss sequence as a simulator channel given the same seed — the drops
/// are comparable draw for draw, not merely in distribution.
fn ingress_model(spec: LossSpec) -> Option<Box<dyn LossModel>> {
    (spec.mean() > 0.0).then(|| spec.build_batched())
}

impl UdpConfig {
    /// A loopback-friendly default: 1 Mbps, 200 ms summaries.
    pub fn loopback(bind: SocketAddr, peer: SocketAddr) -> Self {
        UdpConfig {
            bind,
            peer,
            bandwidth: Bandwidth::from_mbps(1),
            summary_interval: Duration::from_millis(200),
            report_interval: Duration::from_millis(500),
            expiry_interval: Duration::from_millis(500),
            ingress_loss: LossSpec::None,
            seed: 0,
        }
    }
}

/// The publishing side of an SSTP session over UDP.
pub struct UdpPublisher {
    socket: UdpSocket,
    peer: SocketAddr,
    sender: SstpSender,
    clock: WallClock,
    bucket: TokenBucket,
    summary_interval: SimDuration,
    next_summary: SimTime,
    /// A packet that was built but could not be sent yet (rate limit).
    pending: Option<Packet>,
    drop_rng: SimRng,
    ingress_loss: Option<Box<dyn LossModel>>,
    stats: UdpStats,
    buf: Vec<u8>,
}

impl UdpPublisher {
    /// Binds the publisher. The inner [`SstpSender`] is constructed with
    /// the given hash algorithm and default payload size.
    pub fn bind(cfg: &UdpConfig, algo: HashAlgorithm, default_payload: u32) -> io::Result<Self> {
        Ok(UdpPublisher {
            socket: make_socket(cfg.bind)?,
            peer: cfg.peer,
            sender: SstpSender::new(algo, default_payload),
            clock: WallClock::start(),
            bucket: TokenBucket::new(cfg.bandwidth),
            summary_interval: sim_duration(cfg.summary_interval),
            next_summary: SimTime::ZERO,
            pending: None,
            drop_rng: SimRng::new(cfg.seed ^ 0x9e37_79b9),
            ingress_loss: ingress_model(cfg.ingress_loss),
            stats: UdpStats::default(),
            buf: vec![0u8; 65_536],
        })
    }

    /// The bound local address (useful with ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Re-targets the peer (e.g. once the subscriber's port is known).
    pub fn set_peer(&mut self, peer: SocketAddr) {
        self.peer = peer;
    }

    /// Mutable access to the protocol sender (publish/update/withdraw).
    pub fn sender_mut(&mut self) -> &mut SstpSender {
        &mut self.sender
    }

    /// The protocol sender.
    pub fn sender(&self) -> &SstpSender {
        &self.sender
    }

    /// The current protocol time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    fn send_packet(&mut self, pkt: &Packet) -> io::Result<()> {
        let mut out = BytesMut::with_capacity(2048);
        pkt.encode(&mut out);
        self.socket.send_to(&out, self.peer)?;
        self.stats.datagrams_tx += 1;
        Ok(())
    }

    /// One poll iteration: ingest feedback, emit due traffic within the
    /// bandwidth budget. Returns the number of datagrams sent.
    pub fn poll(&mut self) -> io::Result<usize> {
        let now = self.clock.now();
        // Ingest all waiting feedback.
        while let Some(decoded) = recv_packet(&self.socket, &mut self.buf)? {
            match decoded {
                Ok(pkt) => {
                    if let Some(loss) = &mut self.ingress_loss {
                        if loss.is_lost(&mut self.drop_rng) {
                            self.stats.injected_drops += 1;
                            continue;
                        }
                    }
                    self.stats.datagrams_rx += 1;
                    self.sender.on_packet(&pkt);
                }
                Err(_) => self.stats.decode_errors += 1,
            }
        }

        let mut sent = 0;
        // Flush a previously throttled packet first.
        if let Some(pkt) = self.pending.take() {
            if self.bucket.try_take(now, pkt.wire_len()) {
                self.send_packet(&pkt)?;
                sent += 1;
            } else {
                self.pending = Some(pkt);
                self.stats.throttled += 1;
                return Ok(sent);
            }
        }
        // Hot traffic (new data, repairs, summaries-on-demand).
        while let Some(pkt) = self.sender.next_hot_packet() {
            if self.bucket.try_take(now, pkt.wire_len()) {
                self.send_packet(&pkt)?;
                sent += 1;
            } else {
                self.pending = Some(pkt);
                self.stats.throttled += 1;
                return Ok(sent);
            }
        }
        // Periodic root summary.
        if now >= self.next_summary {
            let pkt = self.sender.summary_packet();
            if self.bucket.try_take(now, pkt.wire_len()) {
                self.send_packet(&pkt)?;
                sent += 1;
                self.next_summary = self.clock.now() + self.summary_interval;
            } else {
                self.pending = Some(pkt);
                self.stats.throttled += 1;
            }
        }
        Ok(sent)
    }

    /// The next instant this endpoint has scheduled work: the pending
    /// summary, or the token-bucket refill for a throttled packet.
    fn next_deadline(&mut self) -> SimTime {
        let now = self.clock.now();
        let mut deadline = self.next_summary;
        if let Some(pkt) = &self.pending {
            deadline = deadline.min(now.saturating_add(self.bucket.eta(now, pkt.wire_len())));
        }
        deadline
    }

    /// Drives the poll loop for `duration`, blocking on the socket until
    /// the next protocol deadline or the first arriving datagram —
    /// event-driven, not a fixed-interval sleep.
    pub fn run_for(&mut self, duration: Duration) -> io::Result<()> {
        let end = self.clock.now() + sim_duration(duration);
        while self.clock.now() < end {
            self.poll()?;
            let deadline = self.next_deadline().min(end);
            wait_for_datagram(&self.socket, self.clock.until(deadline))?;
        }
        Ok(())
    }

    /// Endpoint counters.
    pub fn stats(&self) -> UdpStats {
        self.stats
    }
}

/// The subscribing side of an SSTP session over UDP.
pub struct UdpSubscriber {
    socket: UdpSocket,
    peer: SocketAddr,
    receiver: SstpReceiver,
    clock: WallClock,
    bucket: TokenBucket,
    report_interval: SimDuration,
    next_report: SimTime,
    expiry_interval: SimDuration,
    next_expiry: SimTime,
    drop_rng: SimRng,
    ingress_loss: Option<Box<dyn LossModel>>,
    stats: UdpStats,
    buf: Vec<u8>,
}

impl UdpSubscriber {
    /// Binds the subscriber around the given receiver configuration.
    pub fn bind(cfg: &UdpConfig, rcfg: ReceiverConfig) -> io::Result<Self> {
        let seed = cfg.seed;
        let report_interval = sim_duration(cfg.report_interval);
        let expiry_interval = sim_duration(cfg.expiry_interval);
        Ok(UdpSubscriber {
            socket: make_socket(cfg.bind)?,
            peer: cfg.peer,
            receiver: SstpReceiver::new(rcfg, SimRng::new(seed ^ 0x51ed_2701)),
            clock: WallClock::start(),
            bucket: TokenBucket::new(cfg.bandwidth),
            report_interval,
            next_report: SimTime::ZERO + report_interval,
            expiry_interval,
            next_expiry: SimTime::ZERO + expiry_interval,
            drop_rng: SimRng::new(seed ^ 0x1f3d_5b79),
            ingress_loss: ingress_model(cfg.ingress_loss),
            stats: UdpStats::default(),
            buf: vec![0u8; 65_536],
        })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Re-targets the publisher address.
    pub fn set_peer(&mut self, peer: SocketAddr) {
        self.peer = peer;
    }

    /// The protocol receiver (replica access, stats).
    pub fn receiver(&self) -> &SstpReceiver {
        &self.receiver
    }

    /// Keys expired by the most recent sweeps are returned from `poll`.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    fn send_packet(
        socket: &UdpSocket,
        peer: SocketAddr,
        stats: &mut UdpStats,
        pkt: &Packet,
    ) -> io::Result<()> {
        let mut out = BytesMut::with_capacity(2048);
        pkt.encode(&mut out);
        socket.send_to(&out, peer)?;
        stats.datagrams_tx += 1;
        Ok(())
    }

    /// One poll iteration: ingest data, emit due feedback and reports.
    /// Returns the keys expired by the soft-state sweep this round.
    pub fn poll(&mut self) -> io::Result<Vec<Key>> {
        let now = self.clock.now();
        while let Some(decoded) = recv_packet(&self.socket, &mut self.buf)? {
            match decoded {
                Ok(pkt) => {
                    if let Some(loss) = &mut self.ingress_loss {
                        if loss.is_lost(&mut self.drop_rng) {
                            self.stats.injected_drops += 1;
                            continue;
                        }
                    }
                    self.stats.datagrams_rx += 1;
                    self.receiver.on_packet(now, &pkt);
                }
                Err(_) => self.stats.decode_errors += 1,
            }
        }

        // Due feedback, within budget.
        for pkt in self.receiver.poll_feedback(now) {
            if self.bucket.try_take(now, pkt.wire_len()) {
                Self::send_packet(&self.socket, self.peer, &mut self.stats, &pkt)?;
            } else {
                self.stats.throttled += 1;
            }
        }
        // Periodic receiver report.
        if now >= self.next_report {
            let pkt = self.receiver.make_report();
            if self.bucket.try_take(now, pkt.wire_len()) {
                Self::send_packet(&self.socket, self.peer, &mut self.stats, &pkt)?;
            }
            self.next_report = now + self.report_interval;
        }
        // Periodic expiry sweep.
        let mut expired = Vec::new();
        if now >= self.next_expiry {
            expired = self.receiver.expire(now);
            self.next_expiry = now + self.expiry_interval;
        }
        Ok(expired)
    }

    /// The next instant this endpoint has scheduled work: the pending
    /// report, the expiry sweep, or a feedback backoff expiring.
    fn next_deadline(&self) -> SimTime {
        let mut deadline = self.next_report.min(self.next_expiry);
        if let Some(t) = self.receiver.next_feedback_at() {
            deadline = deadline.min(t);
        }
        deadline
    }

    /// Drives the poll loop for `duration`, blocking on the socket until
    /// the next protocol deadline or the first arriving datagram —
    /// event-driven, not a fixed-interval sleep.
    pub fn run_for(&mut self, duration: Duration) -> io::Result<()> {
        let end = self.clock.now() + sim_duration(duration);
        while self.clock.now() < end {
            self.poll()?;
            let deadline = self.next_deadline().min(end);
            wait_for_datagram(&self.socket, self.clock.until(deadline))?;
        }
        Ok(())
    }

    /// Endpoint counters.
    pub fn stats(&self) -> UdpStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::start();
        let a = c.now();
        std::thread::sleep(Duration::from_millis(2));
        let b = c.now();
        assert!(b > a);
        // `until` a past instant saturates to zero.
        assert_eq!(c.until(a), Duration::ZERO);
    }

    #[test]
    fn sim_duration_conversion_is_microsecond_exact() {
        assert_eq!(
            sim_duration(Duration::from_millis(200)),
            SimDuration::from_millis(200)
        );
        assert_eq!(sim_duration(Duration::from_micros(7)).as_micros(), 7);
    }

    #[test]
    fn batched_ingress_matches_unbatched_draw_for_draw() {
        // The dedicated-stream contract: on its own stream, the batched
        // model produces the identical drop sequence to the unbatched
        // one, so loopback chaos replays stay comparable with the sim.
        let spec = LossSpec::Bernoulli(0.3);
        let mut batched = ingress_model(spec).expect("lossy spec builds");
        let mut plain = spec.build();
        let mut rng_a = SimRng::new(42);
        let mut rng_b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(batched.is_lost(&mut rng_a), plain.is_lost(&mut rng_b));
        }
        // A lossless spec builds no model (and burns no draws).
        assert!(ingress_model(LossSpec::None).is_none());
    }
}
