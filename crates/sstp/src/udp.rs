//! SSTP over real UDP sockets.
//!
//! The [`SstpSender`]/[`SstpReceiver`] endpoints are sans-I/O: state in,
//! packets out. This module binds them to `std::net::UdpSocket` with a
//! real-time clock, a token-bucket rate limiter standing in for the
//! session bandwidth budget, and the periodic machinery (summaries,
//! receiver reports, expiry sweeps) driven by wall-clock deadlines.
//!
//! The implementation is deliberately single-threaded and poll-based —
//! call [`UdpPublisher::poll`] / [`UdpSubscriber::poll`] from your event
//! loop, or [`UdpPublisher::run_for`] to drive it for a bounded time.
//! For test determinism both ends accept an optional seeded ingress
//! [`LossSpec`] — the same audited loss description the simulator
//! channels use — so loss-recovery paths can be exercised on loopback
//! under Bernoulli or bursty loss alike.

use crate::digest::HashAlgorithm;
use crate::receiver::{ReceiverConfig, SstpReceiver};
use crate::sender::SstpSender;
use crate::wire::{Packet, WireError};
use bytes::BytesMut;
use softstate::Key;
use ss_netsim::{Bandwidth, LossModel, LossSpec, SimRng, SimTime};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

/// Maps wall-clock instants onto the protocol's [`SimTime`] axis.
#[derive(Clone, Copy, Debug)]
struct Clock {
    epoch: Instant,
}

impl Clock {
    fn new() -> Self {
        Clock {
            epoch: Instant::now(),
        }
    }

    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }
}

/// A byte token bucket enforcing the session bandwidth budget.
#[derive(Clone, Debug)]
struct TokenBucket {
    rate_bps: f64,
    capacity: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(rate: Bandwidth) -> Self {
        let rate_bps = rate.as_bps() as f64;
        TokenBucket {
            rate_bps,
            // One-second burst capacity.
            capacity: rate_bps,
            tokens: rate_bps,
            last: Instant::now(),
        }
    }

    fn refill(&mut self) {
        let now = Instant::now();
        let dt = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.rate_bps).min(self.capacity);
    }

    /// Takes `bytes` worth of tokens if available.
    fn try_take(&mut self, bytes: usize) -> bool {
        self.refill();
        let need = bytes as f64 * 8.0;
        if self.tokens >= need {
            self.tokens -= need;
            true
        } else {
            false
        }
    }
}

/// Counters common to both UDP endpoints.
#[derive(Clone, Copy, Debug, Default)]
pub struct UdpStats {
    /// Datagrams sent.
    pub datagrams_tx: u64,
    /// Datagrams received and decoded.
    pub datagrams_rx: u64,
    /// Datagrams discarded by the test-only ingress drop.
    pub injected_drops: u64,
    /// Datagrams that failed to decode.
    pub decode_errors: u64,
    /// Transmissions deferred by the rate limiter (retried next poll).
    pub throttled: u64,
}

fn make_socket(bind: SocketAddr) -> io::Result<UdpSocket> {
    let socket = UdpSocket::bind(bind)?;
    socket.set_nonblocking(true)?;
    Ok(socket)
}

fn recv_packet(
    socket: &UdpSocket,
    buf: &mut [u8],
) -> io::Result<Option<Result<Packet, WireError>>> {
    match socket.recv_from(buf) {
        Ok((n, _peer)) => Ok(Some(Packet::decode(bytes::Bytes::copy_from_slice(
            &buf[..n],
        )))),
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
        Err(e) => Err(e),
    }
}

/// Configuration shared by the UDP endpoints.
#[derive(Clone, Debug)]
pub struct UdpConfig {
    /// Local bind address (use port 0 to pick an ephemeral port).
    pub bind: SocketAddr,
    /// The remote endpoint.
    pub peer: SocketAddr,
    /// Session bandwidth budget enforced by the token bucket.
    pub bandwidth: Bandwidth,
    /// Root-summary interval (publisher side).
    pub summary_interval: Duration,
    /// Receiver-report interval (subscriber side).
    pub report_interval: Duration,
    /// Soft-state expiry sweep interval (subscriber side).
    pub expiry_interval: Duration,
    /// Test hook: drop incoming datagrams according to this loss
    /// process, drawn from a seeded stream (deterministic loss on
    /// loopback). The same [`LossSpec`] the simulator channels consume,
    /// so loopback tests can inject Bernoulli or bursty loss.
    pub ingress_loss: LossSpec,
    /// Seed for the ingress-drop stream.
    pub seed: u64,
}

/// The built ingress loss process, or `None` for a lossless spec (which
/// then consumes no randomness at all — matching the simulator channels'
/// draw discipline).
fn ingress_model(spec: LossSpec) -> Option<Box<dyn LossModel>> {
    (spec.mean() > 0.0).then(|| spec.build())
}

impl UdpConfig {
    /// A loopback-friendly default: 1 Mbps, 200 ms summaries.
    pub fn loopback(bind: SocketAddr, peer: SocketAddr) -> Self {
        UdpConfig {
            bind,
            peer,
            bandwidth: Bandwidth::from_mbps(1),
            summary_interval: Duration::from_millis(200),
            report_interval: Duration::from_millis(500),
            expiry_interval: Duration::from_millis(500),
            ingress_loss: LossSpec::None,
            seed: 0,
        }
    }
}

/// The publishing side of an SSTP session over UDP.
pub struct UdpPublisher {
    socket: UdpSocket,
    peer: SocketAddr,
    sender: SstpSender,
    clock: Clock,
    bucket: TokenBucket,
    summary_interval: Duration,
    next_summary: Instant,
    /// A packet that was built but could not be sent yet (rate limit).
    pending: Option<Packet>,
    drop_rng: SimRng,
    ingress_loss: Option<Box<dyn LossModel>>,
    stats: UdpStats,
    buf: Vec<u8>,
}

impl UdpPublisher {
    /// Binds the publisher. The inner [`SstpSender`] is constructed with
    /// the given hash algorithm and default payload size.
    pub fn bind(cfg: &UdpConfig, algo: HashAlgorithm, default_payload: u32) -> io::Result<Self> {
        Ok(UdpPublisher {
            socket: make_socket(cfg.bind)?,
            peer: cfg.peer,
            sender: SstpSender::new(algo, default_payload),
            clock: Clock::new(),
            bucket: TokenBucket::new(cfg.bandwidth),
            summary_interval: cfg.summary_interval,
            next_summary: Instant::now(),
            pending: None,
            drop_rng: SimRng::new(cfg.seed ^ 0x9e37_79b9),
            ingress_loss: ingress_model(cfg.ingress_loss),
            stats: UdpStats::default(),
            buf: vec![0u8; 65_536],
        })
    }

    /// The bound local address (useful with ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Re-targets the peer (e.g. once the subscriber's port is known).
    pub fn set_peer(&mut self, peer: SocketAddr) {
        self.peer = peer;
    }

    /// Mutable access to the protocol sender (publish/update/withdraw).
    pub fn sender_mut(&mut self) -> &mut SstpSender {
        &mut self.sender
    }

    /// The protocol sender.
    pub fn sender(&self) -> &SstpSender {
        &self.sender
    }

    /// The current protocol time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    fn send_packet(&mut self, pkt: &Packet) -> io::Result<()> {
        let mut out = BytesMut::with_capacity(2048);
        pkt.encode(&mut out);
        self.socket.send_to(&out, self.peer)?;
        self.stats.datagrams_tx += 1;
        Ok(())
    }

    /// One poll iteration: ingest feedback, emit due traffic within the
    /// bandwidth budget. Returns the number of datagrams sent.
    pub fn poll(&mut self) -> io::Result<usize> {
        // Ingest all waiting feedback.
        while let Some(decoded) = recv_packet(&self.socket, &mut self.buf)? {
            match decoded {
                Ok(pkt) => {
                    if let Some(loss) = &mut self.ingress_loss {
                        if loss.is_lost(&mut self.drop_rng) {
                            self.stats.injected_drops += 1;
                            continue;
                        }
                    }
                    self.stats.datagrams_rx += 1;
                    self.sender.on_packet(&pkt);
                }
                Err(_) => self.stats.decode_errors += 1,
            }
        }

        let mut sent = 0;
        // Flush a previously throttled packet first.
        if let Some(pkt) = self.pending.take() {
            if self.bucket.try_take(pkt.wire_len()) {
                self.send_packet(&pkt)?;
                sent += 1;
            } else {
                self.pending = Some(pkt);
                self.stats.throttled += 1;
                return Ok(sent);
            }
        }
        // Hot traffic (new data, repairs, summaries-on-demand).
        while let Some(pkt) = self.sender.next_hot_packet() {
            if self.bucket.try_take(pkt.wire_len()) {
                self.send_packet(&pkt)?;
                sent += 1;
            } else {
                self.pending = Some(pkt);
                self.stats.throttled += 1;
                return Ok(sent);
            }
        }
        // Periodic root summary.
        if Instant::now() >= self.next_summary {
            let pkt = self.sender.summary_packet();
            if self.bucket.try_take(pkt.wire_len()) {
                self.send_packet(&pkt)?;
                sent += 1;
                self.next_summary = Instant::now() + self.summary_interval;
            } else {
                self.pending = Some(pkt);
                self.stats.throttled += 1;
            }
        }
        Ok(sent)
    }

    /// Polls in a sleep loop for `duration` (1 ms granularity).
    pub fn run_for(&mut self, duration: Duration) -> io::Result<()> {
        let end = Instant::now() + duration;
        while Instant::now() < end {
            self.poll()?;
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(())
    }

    /// Endpoint counters.
    pub fn stats(&self) -> UdpStats {
        self.stats
    }
}

/// The subscribing side of an SSTP session over UDP.
pub struct UdpSubscriber {
    socket: UdpSocket,
    peer: SocketAddr,
    receiver: SstpReceiver,
    clock: Clock,
    bucket: TokenBucket,
    report_interval: Duration,
    next_report: Instant,
    expiry_interval: Duration,
    next_expiry: Instant,
    drop_rng: SimRng,
    ingress_loss: Option<Box<dyn LossModel>>,
    stats: UdpStats,
    buf: Vec<u8>,
}

impl UdpSubscriber {
    /// Binds the subscriber around the given receiver configuration.
    pub fn bind(cfg: &UdpConfig, rcfg: ReceiverConfig) -> io::Result<Self> {
        let seed = cfg.seed;
        Ok(UdpSubscriber {
            socket: make_socket(cfg.bind)?,
            peer: cfg.peer,
            receiver: SstpReceiver::new(rcfg, SimRng::new(seed ^ 0x51ed_2701)),
            clock: Clock::new(),
            bucket: TokenBucket::new(cfg.bandwidth),
            report_interval: cfg.report_interval,
            next_report: Instant::now() + cfg.report_interval,
            expiry_interval: cfg.expiry_interval,
            next_expiry: Instant::now() + cfg.expiry_interval,
            drop_rng: SimRng::new(seed ^ 0x1f3d_5b79),
            ingress_loss: ingress_model(cfg.ingress_loss),
            stats: UdpStats::default(),
            buf: vec![0u8; 65_536],
        })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Re-targets the publisher address.
    pub fn set_peer(&mut self, peer: SocketAddr) {
        self.peer = peer;
    }

    /// The protocol receiver (replica access, stats).
    pub fn receiver(&self) -> &SstpReceiver {
        &self.receiver
    }

    /// Keys expired by the most recent sweeps are returned from `poll`.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    fn send_packet(
        socket: &UdpSocket,
        peer: SocketAddr,
        stats: &mut UdpStats,
        pkt: &Packet,
    ) -> io::Result<()> {
        let mut out = BytesMut::with_capacity(2048);
        pkt.encode(&mut out);
        socket.send_to(&out, peer)?;
        stats.datagrams_tx += 1;
        Ok(())
    }

    /// One poll iteration: ingest data, emit due feedback and reports.
    /// Returns the keys expired by the soft-state sweep this round.
    pub fn poll(&mut self) -> io::Result<Vec<Key>> {
        let now = self.clock.now();
        while let Some(decoded) = recv_packet(&self.socket, &mut self.buf)? {
            match decoded {
                Ok(pkt) => {
                    if let Some(loss) = &mut self.ingress_loss {
                        if loss.is_lost(&mut self.drop_rng) {
                            self.stats.injected_drops += 1;
                            continue;
                        }
                    }
                    self.stats.datagrams_rx += 1;
                    self.receiver.on_packet(now, &pkt);
                }
                Err(_) => self.stats.decode_errors += 1,
            }
        }

        // Due feedback, within budget.
        for pkt in self.receiver.poll_feedback(now) {
            if self.bucket.try_take(pkt.wire_len()) {
                Self::send_packet(&self.socket, self.peer, &mut self.stats, &pkt)?;
            } else {
                self.stats.throttled += 1;
            }
        }
        // Periodic receiver report.
        if Instant::now() >= self.next_report {
            let pkt = self.receiver.make_report();
            if self.bucket.try_take(pkt.wire_len()) {
                Self::send_packet(&self.socket, self.peer, &mut self.stats, &pkt)?;
            }
            self.next_report = Instant::now() + self.report_interval;
        }
        // Periodic expiry sweep.
        let mut expired = Vec::new();
        if Instant::now() >= self.next_expiry {
            expired = self.receiver.expire(now);
            self.next_expiry = Instant::now() + self.expiry_interval;
        }
        Ok(expired)
    }

    /// Polls in a sleep loop for `duration` (1 ms granularity).
    pub fn run_for(&mut self, duration: Duration) -> io::Result<()> {
        let end = Instant::now() + duration;
        while Instant::now() < end {
            self.poll()?;
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(())
    }

    /// Endpoint counters.
    pub fn stats(&self) -> UdpStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_enforces_rate() {
        let mut b = TokenBucket::new(Bandwidth::from_kbps(8)); // 1000 B/s
                                                               // The bucket starts full (one second of burst).
        assert!(b.try_take(1000));
        // Immediately asking for another 1000 B must fail.
        assert!(!b.try_take(1000));
        // Small amounts may still fit after a short refill.
        std::thread::sleep(Duration::from_millis(30));
        assert!(b.try_take(10));
    }

    #[test]
    fn clock_is_monotone() {
        let c = Clock::new();
        let a = c.now();
        std::thread::sleep(Duration::from_millis(2));
        let b = c.now();
        assert!(b > a);
    }
}
