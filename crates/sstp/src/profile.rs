//! Consistency profiles — §6.1's "empirically derived consistency
//! profiles" that "predict system consistency for given network loss
//! conditions and announcement characteristics".
//!
//! A [`ConsistencyProfile`] maps `(loss rate, feedback share)` to a
//! predicted average consistency. Two sources are supported:
//!
//! * [`ConsistencyProfile::analytic`] — a first-order model assembled
//!   from the paper's closed forms: the open-loop Jackson consistency as
//!   the no-feedback base, a NACK-coverage term for how much of the loss
//!   the feedback budget can repair, and a collapse term when the data
//!   budget can no longer absorb the arrival rate (the Figure 8/9 shape).
//! * [`ConsistencyProfile::empirical`] — an interpolation grid filled
//!   from simulation measurements (what a deployment would store; the
//!   experiment harness generates these from the `softstate` protocol
//!   simulations).
//!
//! A [`LatencyProfile`] provides the matching `T_rec` prediction used to
//! pick the hot/cold split, anchored on the M/M/1 sojourn time
//! `1/(μ_hot − λ)` exactly as the paper anchors Figure 6.

use ss_queueing::{Mm1, OpenLoop};

/// Predicts average consistency from loss rate and feedback share.
#[derive(Clone, Debug)]
pub enum ConsistencyProfile {
    /// Closed-form first-order model.
    Analytic {
        /// Record arrival rate, packets/s.
        lambda: f64,
        /// Total session bandwidth, packets/s (data + feedback).
        mu_total: f64,
        /// Per-transmission death probability of the workload.
        p_death: f64,
        /// Fraction of the data budget given to the hot queue.
        hot_share: f64,
    },
    /// A measured grid, bilinearly interpolated.
    Empirical {
        /// Sorted distinct loss-rate grid values.
        losses: Vec<f64>,
        /// Sorted distinct feedback-share grid values.
        fb_shares: Vec<f64>,
        /// Row-major `consistency[loss_idx][fb_idx]`.
        grid: Vec<Vec<f64>>,
    },
}

impl ConsistencyProfile {
    /// Builds the analytic profile for a workload (rates in packets/s).
    pub fn analytic(lambda: f64, mu_total: f64, p_death: f64, hot_share: f64) -> Self {
        assert!(lambda > 0.0 && mu_total > 0.0, "rates must be positive");
        assert!(
            (0.0..=1.0).contains(&hot_share),
            "bad hot share {hot_share}"
        );
        ConsistencyProfile::Analytic {
            lambda,
            mu_total,
            p_death,
            hot_share,
        }
    }

    /// Builds an empirical profile from a measurement grid. Panics if the
    /// grid dimensions do not match or axes are not strictly increasing.
    pub fn empirical(losses: Vec<f64>, fb_shares: Vec<f64>, grid: Vec<Vec<f64>>) -> Self {
        assert!(!losses.is_empty() && !fb_shares.is_empty(), "empty grid");
        assert!(losses.windows(2).all(|w| w[0] < w[1]), "losses not sorted");
        assert!(
            fb_shares.windows(2).all(|w| w[0] < w[1]),
            "fb_shares not sorted"
        );
        assert_eq!(grid.len(), losses.len(), "grid rows");
        assert!(grid.iter().all(|r| r.len() == fb_shares.len()), "grid cols");
        ConsistencyProfile::Empirical {
            losses,
            fb_shares,
            grid,
        }
    }

    /// Predicted average consistency at the given loss rate and feedback
    /// share of the total session bandwidth, in `[0, 1]`.
    pub fn predict(&self, loss: f64, fb_share: f64) -> f64 {
        let loss = loss.clamp(0.0, 1.0);
        let fb_share = fb_share.clamp(0.0, 1.0);
        match self {
            ConsistencyProfile::Analytic {
                lambda,
                mu_total,
                p_death,
                hot_share,
            } => analytic_predict(*lambda, *mu_total, *p_death, *hot_share, loss, fb_share),
            ConsistencyProfile::Empirical {
                losses,
                fb_shares,
                grid,
            } => bilinear(losses, fb_shares, grid, loss, fb_share),
        }
    }

    /// The feedback share in `[0, cap]` maximizing predicted consistency
    /// at this loss rate (grid search at 1% resolution — the profile is
    /// cheap and the knee is broad).
    pub fn best_fb_share(&self, loss: f64, cap: f64) -> f64 {
        let cap = cap.clamp(0.0, 0.99);
        let mut best = (0.0, self.predict(loss, 0.0));
        let steps = (cap * 100.0).round() as usize;
        for i in 1..=steps {
            let share = i as f64 / 100.0;
            let c = self.predict(loss, share);
            if c > best.1 + 1e-9 {
                best = (share, c);
            }
        }
        best.0
    }
}

/// The first-order analytic prediction. See module docs.
fn analytic_predict(
    lambda: f64,
    mu_total: f64,
    p_death: f64,
    hot_share: f64,
    loss: f64,
    fb_share: f64,
) -> f64 {
    let mu_data = mu_total * (1.0 - fb_share);
    let mu_fb = mu_total * fb_share;
    if mu_data <= 0.0 {
        return 0.0;
    }
    let p_death = p_death.clamp(1e-6, 1.0);

    // Death-limited ceiling: even a lossless channel cannot do better
    // than the §3 consistent fraction at zero loss, because a fraction
    // p_d of records die at their first announcement.
    let ceiling = OpenLoop::new(lambda.min(mu_data * p_death * 0.999), mu_data, 0.0, p_death)
        .consistency_busy();

    // Feedback coverage: the fraction of loss events a NACK can repair
    // promptly. Loss events arise at ~loss × data rate; each NACK itself
    // survives the reverse channel with probability 1−loss.
    let loss_event_rate = loss * mu_data.min(lambda / p_death.max(1e-6));
    let coverage = if loss_event_rate <= 0.0 {
        1.0
    } else {
        (mu_fb * (1.0 - loss) / loss_event_rate).min(1.0)
    };

    // Repair-latency penalty: a lost record stays inconsistent until the
    // slow background cycle re-announces it; prompt NACK repair shrinks
    // that window. The 0.5 factor calibrates the no-feedback penalty to
    // the open-loop simulations (EXPERIMENTS.md, validate-analysis); this
    // is a first-order engineering profile, not a closed form.
    let penalty = loss * ceiling * 0.5 * (1.0 - coverage * (1.0 - loss));

    // Collapse: if the hot budget cannot absorb new arrivals, consistency
    // degrades (Figure 8's cliff). The degradation is smoothed over a
    // saturation margin — an M/M/1 hot queue near ρ = 1 already spends
    // long stretches backlogged, so the penalty starts before the strict
    // μ_hot = λ boundary (full credit only from μ_hot ≥ 1.5 λ).
    let mu_hot = mu_data * hot_share;
    let absorb = if lambda <= 0.0 {
        1.0
    } else {
        ((mu_hot / lambda - 1.0) / 0.5).clamp(0.0, 1.0)
    };
    (absorb * (ceiling - penalty)).clamp(0.0, 1.0)
}

/// Bilinear interpolation with clamped extrapolation.
fn bilinear(xs: &[f64], ys: &[f64], grid: &[Vec<f64>], x: f64, y: f64) -> f64 {
    let (i0, i1, tx) = bracket(xs, x);
    let (j0, j1, ty) = bracket(ys, y);
    let g = |i: usize, j: usize| grid[i][j];
    let a = g(i0, j0) * (1.0 - ty) + g(i0, j1) * ty;
    let b = g(i1, j0) * (1.0 - ty) + g(i1, j1) * ty;
    a * (1.0 - tx) + b * tx
}

/// Finds the bracketing indices and interpolation parameter for `x`.
fn bracket(xs: &[f64], x: f64) -> (usize, usize, f64) {
    if x <= xs[0] {
        return (0, 0, 0.0);
    }
    if x >= xs[xs.len() - 1] {
        let last = xs.len() - 1;
        return (last, last, 0.0);
    }
    let hi = xs.partition_point(|&v| v < x);
    let lo = hi - 1;
    let t = (x - xs[lo]) / (xs[hi] - xs[lo]);
    (lo, hi, t)
}

/// Predicts receive latency from the hot/cold split — the `T_rec` profile
/// §6.1 consults ("the share of bandwidth for the different transmission
/// queues is obtained from the T_rec profile").
#[derive(Clone, Copy, Debug)]
pub struct LatencyProfile {
    /// Record arrival rate, packets/s.
    pub lambda: f64,
    /// Data budget, packets/s.
    pub mu_data: f64,
    /// Channel loss rate.
    pub loss: f64,
}

impl LatencyProfile {
    /// Expected receive latency (seconds) when `hot_share` of the data
    /// budget goes to the hot queue: the M/M/1 sojourn of the first
    /// transmission, plus the expected wait for a repair when that
    /// transmission is lost (one cold-cycle period per retry).
    ///
    /// Returns `f64::INFINITY` when the hot queue is unstable
    /// (`μ_hot ≤ λ`) or repairs can never happen (`μ_cold = 0` with
    /// loss > 0 contributes an unbounded tail, surfaced as infinity).
    pub fn predict(&self, hot_share: f64) -> f64 {
        let hot_share = hot_share.clamp(0.0, 1.0);
        let mu_hot = self.mu_data * hot_share;
        let mu_cold = self.mu_data * (1.0 - hot_share);
        if mu_hot <= self.lambda {
            return f64::INFINITY;
        }
        let first = Mm1::new(self.lambda, mu_hot).mean_sojourn();
        if self.loss == 0.0 {
            return first;
        }
        if mu_cold <= 0.0 {
            return f64::INFINITY;
        }
        // A lost first shot waits for cold retransmissions; the expected
        // number of further attempts is loss/(1−loss), each costing one
        // cold service time.
        let retries = self.loss / (1.0 - self.loss).max(1e-9);
        first + retries / mu_cold
    }

    /// The hot share minimizing predicted latency, searched at 1%
    /// resolution.
    pub fn best_hot_share(&self) -> f64 {
        let mut best = (0.5, f64::INFINITY);
        for i in 1..100 {
            let share = i as f64 / 100.0;
            let t = self.predict(share);
            if t < best.1 {
                best = (share, t);
            }
        }
        best.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_profile() -> ConsistencyProfile {
        // λ = 1.875 pkt/s (15 kbps), μ_total = 5.625 pkt/s (45 kbps).
        ConsistencyProfile::analytic(1.875, 5.625, 0.1, 0.67)
    }

    #[test]
    fn analytic_monotone_in_loss_at_zero_fb() {
        let p = paper_profile();
        let mut last = 1.1;
        for i in 0..=9 {
            let c = p.predict(i as f64 / 10.0, 0.0);
            assert!(c <= last + 1e-9, "loss {} gives {c} > {last}", i);
            last = c;
        }
    }

    #[test]
    fn analytic_feedback_helps_then_collapses() {
        let p = paper_profile();
        let at = |s: f64| p.predict(0.4, s);
        assert!(
            at(0.25) > at(0.0) + 0.05,
            "moderate fb must help at 40% loss"
        );
        assert!(at(0.9) < at(0.25) - 0.2, "fb starving data must collapse");
    }

    #[test]
    fn best_fb_share_lands_in_the_paper_band() {
        // Figure 8: at 40% loss the good region is fb/total ∈ [20%, 50%].
        let p = paper_profile();
        let s = p.best_fb_share(0.4, 0.99);
        assert!((0.05..=0.55).contains(&s), "best share {s}");
        // With no loss, feedback buys nothing.
        assert_eq!(p.best_fb_share(0.0, 0.99), 0.0);
    }

    #[test]
    fn best_fb_share_respects_cap() {
        let p = paper_profile();
        let s = p.best_fb_share(0.5, 0.10);
        assert!(s <= 0.10 + 1e-9);
    }

    #[test]
    fn empirical_interpolates_and_clamps() {
        let p = ConsistencyProfile::empirical(
            vec![0.0, 0.5],
            vec![0.0, 1.0],
            vec![vec![1.0, 0.8], vec![0.5, 0.7]],
        );
        assert!((p.predict(0.0, 0.0) - 1.0).abs() < 1e-12);
        assert!((p.predict(0.5, 1.0) - 0.7).abs() < 1e-12);
        // Center: mean of all four corners.
        assert!((p.predict(0.25, 0.5) - 0.75).abs() < 1e-12);
        // Clamped extrapolation.
        assert!((p.predict(0.9, 2.0) - 0.7).abs() < 1e-12);
        assert!((p.predict(-1.0, -1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    fn empirical_rejects_unsorted() {
        let _ =
            ConsistencyProfile::empirical(vec![0.5, 0.0], vec![0.0], vec![vec![1.0], vec![1.0]]);
    }

    #[test]
    fn latency_profile_matches_mm1_at_zero_loss() {
        // Paper's Figure 6 anchor: λ = 1.875, μ = 5.625 -> 267 ms.
        let lp = LatencyProfile {
            lambda: 1.875,
            mu_data: 5.625,
            loss: 0.0,
        };
        let t = lp.predict(1.0);
        assert!((t - 0.2667).abs() < 0.001, "t = {t}");
    }

    #[test]
    fn latency_unstable_hot_is_infinite() {
        let lp = LatencyProfile {
            lambda: 2.0,
            mu_data: 5.0,
            loss: 0.1,
        };
        assert!(lp.predict(0.3).is_infinite(), "mu_hot = 1.5 < lambda");
        assert!(lp.predict(0.9).is_finite());
    }

    #[test]
    fn best_hot_share_balances_first_shot_and_repair() {
        let lp = LatencyProfile {
            lambda: 1.875,
            mu_data: 5.625,
            loss: 0.3,
        };
        let s = lp.best_hot_share();
        // Must keep the hot queue stable but leave room for cold repair.
        assert!(s > 1.875 / 5.625, "share {s} must exceed λ/μ");
        assert!(s < 0.99, "share {s} must leave cold bandwidth");
        assert!(lp.predict(s).is_finite());
    }
}
