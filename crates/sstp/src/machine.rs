//! The pure `step(event) -> effect` seam over the SSTP endpoints.
//!
//! Both endpoint machines ([`crate::sender::SstpSender`] and
//! [`crate::receiver::SstpReceiver`]) are driven exclusively through a
//! single mutation entry point, `step`, which consumes one typed event
//! and returns one typed effect. The machines never read a clock (time
//! only enters through event payloads — see `ss_netsim::Clock` for what
//! drivers use), never touch a channel, and never perform I/O; the lint
//! rules D005/D008 enforce this mechanically.
//!
//! The seam exists for three consumers:
//!
//! 1. **The session harness** (`crate::session`), which owns the event
//!    queue and channels and feeds the machines simulated events.
//! 2. **The exhaustive explorer** (`ss-verify`), which drives small-scope
//!    models through *every* interleaving of events and checks
//!    convergence and safety invariants on each reached state. Pure
//!    machines make states clonable and hashable, which is what makes
//!    that search tractable.
//! 3. **A future async transport** (ROADMAP item 3), which will wrap the
//!    same machines in real sockets and timers without touching the
//!    protocol logic.
//!
//! The long-standing imperative methods (`publish`, `on_packet`, …)
//! remain available as thin compatibility shims that construct the
//! corresponding event and delegate to `step`.

use crate::namespace::{MetaTag, NodeId};
use crate::wire::Packet;
use softstate::Key;
use ss_netsim::SimTime;

/// One input to the sender state machine.
#[derive(Clone, Debug)]
pub enum SenderEvent<'a> {
    /// The application publishes a new ADU under `parent`.
    /// `payload_len: None` uses the sender's configured default size.
    Publish {
        /// Arrival time (stamps the publisher-table record).
        now: SimTime,
        /// Namespace node the ADU hangs off.
        parent: NodeId,
        /// Application content class.
        tag: MetaTag,
        /// Explicit payload size, or `None` for the default.
        payload_len: Option<u32>,
    },
    /// The application replaces a live record with a new version.
    Update(Key),
    /// The application withdraws a record (its lifetime ended).
    Withdraw(Key),
    /// The application grows the namespace with an interior node.
    AddBranch {
        /// Parent node of the new branch.
        parent: NodeId,
        /// The branch's content class.
        tag: MetaTag,
    },
    /// The application re-weights a data class's hot bandwidth share.
    SetClassWeight {
        /// The class to re-weight.
        tag: MetaTag,
        /// New stride weight (0 pauses the class).
        weight: u64,
    },
    /// A packet arrived on the feedback channel.
    Feedback(&'a Packet),
    /// The transport has room for one foreground packet.
    PollHot,
    /// The transport has room for one background (cold-cycle) packet.
    PollCycle,
    /// The periodic summary timer fired.
    PollSummary,
}

/// What one sender step produced.
#[derive(Clone, Debug)]
pub enum SenderEffect {
    /// Nothing observable (weight change, ignored packet, …).
    None,
    /// A publish created this key.
    Published(Key),
    /// A branch was added.
    Branch(NodeId),
    /// Whether the withdrawn key was live.
    Withdrawn(bool),
    /// Keys a NACK promoted into the hot queue.
    Promoted(Vec<Key>),
    /// A packet to transmit (or `None` when the polled queue was empty).
    Transmit(Option<Packet>),
}

/// One input to the receiver state machine.
#[derive(Clone, Debug)]
pub enum ReceiverEvent<'a> {
    /// A packet heard on the data channel (or an overheard peer feedback
    /// packet, for multicast damping).
    Packet {
        /// Arrival time.
        now: SimTime,
        /// The packet.
        pkt: &'a Packet,
    },
    /// The session asks for all feedback due at or before `now`.
    PollFeedback {
        /// The poll instant.
        now: SimTime,
    },
    /// The soft-state expiry sweep runs at `now`.
    Expire {
        /// The sweep instant.
        now: SimTime,
    },
}

/// What one receiver step produced.
#[derive(Clone, Debug)]
pub enum ReceiverEffect {
    /// Nothing to transmit or report.
    None,
    /// Feedback packets to send (queries first, then batched NACKs).
    Feedback(Vec<Packet>),
    /// Keys the expiry sweep removed.
    Expired(Vec<Key>),
}

/// A machine invariant violation found by a self-check, as
/// `(what, detail)`. Produced by [`crate::sender::SstpSender::self_check`]
/// and [`crate::receiver::SstpReceiver::self_check`]; the `ss-verify`
/// explorer treats any of these as a counterexample.
pub type MachineError = String;

/// An FNV-1a 64 accumulator for protocol-state fingerprints.
///
/// The endpoint machines hash their *semantic* state — tables, queues,
/// pending feedback, reassembly edges — and deliberately exclude
/// monotone counters (wire sequence numbers, statistics, event logs):
/// including those would make every reachable state unique and defeat
/// the explorer's visited-state deduplication.
#[derive(Clone, Copy, Debug)]
pub struct StateHasher(u64);

impl StateHasher {
    /// A fresh accumulator at the FNV-1a offset basis.
    pub fn new() -> Self {
        StateHasher(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one u64 into the hash.
    // lint: allow(D008, hash accumulator, not protocol state)
    pub fn write_u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Folds raw bytes into the hash.
    // lint: allow(D008, hash accumulator, not protocol state)
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// The accumulated hash.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for StateHasher {
    fn default() -> Self {
        StateHasher::new()
    }
}

/// Seeded protocol defects for mutation-testing the `ss-verify` explorer.
///
/// All flags default to off, in which case the machines behave exactly as
/// shipped (the session harness never sets them). Each flag re-introduces
/// one plausible implementation bug; the explorer's test suite asserts
/// that every one of them is caught by an invariant.
#[doc(hidden)]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TxMutations {
    /// Drop the NACK → hot-queue promotion edge (Figure 7's Cold → Hot).
    pub drop_promotions: bool,
    /// Skip hot-queue dedup: every enqueue appends, even when queued.
    pub no_queue_dedup: bool,
    /// Freeze the root summary digest at its first emitted value.
    pub frozen_summary_digest: bool,
    /// Reuse sequence number 0 for every packet (non-monotone seq).
    pub reuse_seq: bool,
}

/// Seeded receiver defects (see [`TxMutations`]).
#[doc(hidden)]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RxMutations {
    /// Accept stale fragments: an older version overwrites a newer one.
    pub accept_stale: bool,
    /// Remove the exponential-backoff cap (2^n instead of 2^min(n,4)).
    pub no_backoff_cap: bool,
    /// Keep a pending NACK alive after the data it asked for arrives.
    pub keep_pending_on_install: bool,
    /// Expire entries at half their TTL (off-by-one-style early expiry).
    pub expire_early: bool,
}
