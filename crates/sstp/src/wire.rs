//! SSTP wire formats.
//!
//! Six packet types carry the protocol: application data, the sender's
//! periodic root summary (the "cold transmissions of the root summary"),
//! per-node summaries answering repair queries, receiver repair queries,
//! NACKs, and RTCP-style receiver reports. Every type round-trips through
//! a compact binary codec built on `bytes`; [`Packet::wire_len`] is the
//! exact encoded size plus simulated payload, which is what the simulated
//! channels charge for bandwidth.
//!
//! Data-channel packets (data, root summary, node summary) carry a shared
//! sequence number so receivers can estimate the channel loss rate from
//! sequence gaps, RTCP-style (§6.1 "the average packet loss rate,
//! periodically obtained from RTCP-like receiver reports").

use crate::digest::Digest;
use crate::namespace::{ChildEntry, MetaTag, Path};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use softstate::Key;

/// Codec failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the packet did.
    Truncated,
    /// Unknown packet or entry type tag.
    BadTag(u8),
    /// A digest length that is neither 8 (FNV) nor 16 (MD5).
    BadDigestLen(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated packet"),
            WireError::BadTag(t) => write!(f, "unknown type tag {t:#04x}"),
            WireError::BadDigestLen(n) => write!(f, "invalid digest length {n}"),
        }
    }
}

impl std::error::Error for WireError {}

/// New application data (or a NACK-triggered retransmission of it).
///
/// ADUs larger than the sender's MTU travel as several fragments; each
/// carries its byte `offset` and the ADU's `total_len` so receivers can
/// track the contiguous *right edge* they hold — the §6.2 quantity leaf
/// digests are computed over. An unfragmented ADU is the special case
/// `offset = 0, payload_len = total_len`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataPacket {
    /// Data-channel sequence number.
    pub seq: u64,
    /// The record's key.
    pub key: Key,
    /// The record's version.
    pub version: u64,
    /// Namespace path of the ADU's parent node.
    pub parent_path: Path,
    /// The ADU's child slot under that parent.
    pub slot: u16,
    /// Interest tag.
    pub tag: MetaTag,
    /// Byte offset of this fragment within the ADU.
    pub offset: u32,
    /// Bytes of application payload in this fragment (simulated, not
    /// carried, but charged on the wire).
    pub payload_len: u32,
    /// Total size of the ADU this fragment belongs to.
    pub total_len: u32,
}

impl DataPacket {
    /// The byte just past this fragment: `offset + payload_len`.
    pub fn end(&self) -> u32 {
        self.offset + self.payload_len
    }

    /// True when this single packet carries the whole ADU.
    pub fn is_whole(&self) -> bool {
        self.offset == 0 && self.payload_len == self.total_len
    }
}

/// The periodic summary of everything previously transmitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RootSummaryPacket {
    /// Data-channel sequence number.
    pub seq: u64,
    /// Root namespace digest.
    pub digest: Digest,
    /// Live ADU count (lets late joiners size their catch-up).
    pub live_adus: u32,
}

/// One child slot's description inside a [`NodeSummaryPacket`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireChildEntry {
    /// Tombstoned slot.
    Dead {
        /// The slot index.
        slot: u16,
    },
    /// Interior child with its subtree digest.
    Interior {
        /// The slot index.
        slot: u16,
        /// Subtree digest.
        digest: Digest,
        /// Interest tag.
        tag: MetaTag,
    },
    /// ADU child.
    Leaf {
        /// The slot index.
        slot: u16,
        /// The ADU's key.
        key: Key,
        /// Leaf digest.
        digest: Digest,
        /// Interest tag.
        tag: MetaTag,
    },
}

impl From<ChildEntry> for WireChildEntry {
    fn from(e: ChildEntry) -> Self {
        match e {
            ChildEntry::Dead { slot } => WireChildEntry::Dead { slot },
            ChildEntry::Interior { slot, digest, tag } => {
                WireChildEntry::Interior { slot, digest, tag }
            }
            ChildEntry::Leaf {
                slot,
                key,
                digest,
                tag,
            } => WireChildEntry::Leaf {
                slot,
                key,
                digest,
                tag,
            },
        }
    }
}

/// A repair response: the digests one level below `path`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeSummaryPacket {
    /// Data-channel sequence number.
    pub seq: u64,
    /// The summarized node's path.
    pub path: Path,
    /// One entry per child slot.
    pub entries: Vec<WireChildEntry>,
}

/// A receiver's request for the next level of signatures under `path`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepairQueryPacket {
    /// The node whose children the receiver wants summarized.
    pub path: Path,
}

/// A receiver's negative acknowledgment for specific ADUs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NackPacket {
    /// Keys whose data the receiver is missing (or holds stale).
    pub keys: Vec<Key>,
}

/// An RTCP-style receiver report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReceiverReportPacket {
    /// The reporting receiver.
    pub receiver_id: u32,
    /// Highest data-channel sequence seen.
    pub highest_seq: u64,
    /// Total data-channel packets received.
    pub received: u64,
}

/// Any SSTP packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Packet {
    /// Application data.
    Data(DataPacket),
    /// Periodic root summary.
    RootSummary(RootSummaryPacket),
    /// Repair response.
    NodeSummary(NodeSummaryPacket),
    /// Repair query.
    RepairQuery(RepairQueryPacket),
    /// Negative acknowledgment.
    Nack(NackPacket),
    /// Receiver report.
    ReceiverReport(ReceiverReportPacket),
}

const TAG_DATA: u8 = 1;
const TAG_ROOT: u8 = 2;
const TAG_NODE: u8 = 3;
const TAG_QUERY: u8 = 4;
const TAG_NACK: u8 = 5;
const TAG_REPORT: u8 = 6;

const ENTRY_DEAD: u8 = 0;
const ENTRY_INTERIOR: u8 = 1;
const ENTRY_LEAF: u8 = 2;

/// Fixed per-packet header overhead we charge on the wire (IP+UDP-ish).
pub const HEADER_OVERHEAD: usize = 28;

fn put_path(buf: &mut BytesMut, path: &Path) {
    buf.put_u16(path.len() as u16);
    for &p in path {
        buf.put_u16(p);
    }
}

/// Encoded size of a path: a u16 count plus a u16 per component.
fn path_len(path: &Path) -> usize {
    2 + 2 * path.len()
}

/// Encoded size of a digest: a u8 length prefix plus the digest bytes.
fn digest_len(d: &Digest) -> usize {
    1 + d.len()
}

fn get_path(buf: &mut Bytes) -> Result<Path, WireError> {
    if buf.remaining() < 2 {
        return Err(WireError::Truncated);
    }
    let n = buf.get_u16() as usize;
    if buf.remaining() < n * 2 {
        return Err(WireError::Truncated);
    }
    Ok((0..n).map(|_| buf.get_u16()).collect())
}

fn put_digest(buf: &mut BytesMut, d: &Digest) {
    buf.put_u8(d.len() as u8);
    buf.put_slice(d.as_bytes());
}

fn get_digest(buf: &mut Bytes) -> Result<Digest, WireError> {
    if buf.remaining() < 1 {
        return Err(WireError::Truncated);
    }
    let n = buf.get_u8();
    if buf.remaining() < n as usize {
        return Err(WireError::Truncated);
    }
    match n {
        8 => {
            let mut b = [0u8; 8];
            buf.copy_to_slice(&mut b);
            Ok(Digest::from_u64(u64::from_be_bytes(b)))
        }
        16 => {
            let mut b = [0u8; 16];
            buf.copy_to_slice(&mut b);
            Ok(Digest::from_md5(b))
        }
        other => Err(WireError::BadDigestLen(other)),
    }
}

impl Packet {
    /// Encodes the packet into `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        // One up-front reservation instead of doubling mid-packet.
        buf.reserve(self.encoded_len());
        match self {
            Packet::Data(p) => {
                buf.put_u8(TAG_DATA);
                buf.put_u64(p.seq);
                buf.put_u64(p.key.0);
                buf.put_u64(p.version);
                put_path(buf, &p.parent_path);
                buf.put_u16(p.slot);
                buf.put_u32(p.tag.0);
                buf.put_u32(p.offset);
                buf.put_u32(p.payload_len);
                buf.put_u32(p.total_len);
            }
            Packet::RootSummary(p) => {
                buf.put_u8(TAG_ROOT);
                buf.put_u64(p.seq);
                put_digest(buf, &p.digest);
                buf.put_u32(p.live_adus);
            }
            Packet::NodeSummary(p) => {
                buf.put_u8(TAG_NODE);
                buf.put_u64(p.seq);
                put_path(buf, &p.path);
                buf.put_u16(p.entries.len() as u16);
                for e in &p.entries {
                    match e {
                        WireChildEntry::Dead { slot } => {
                            buf.put_u8(ENTRY_DEAD);
                            buf.put_u16(*slot);
                        }
                        WireChildEntry::Interior { slot, digest, tag } => {
                            buf.put_u8(ENTRY_INTERIOR);
                            buf.put_u16(*slot);
                            put_digest(buf, digest);
                            buf.put_u32(tag.0);
                        }
                        WireChildEntry::Leaf {
                            slot,
                            key,
                            digest,
                            tag,
                        } => {
                            buf.put_u8(ENTRY_LEAF);
                            buf.put_u16(*slot);
                            buf.put_u64(key.0);
                            put_digest(buf, digest);
                            buf.put_u32(tag.0);
                        }
                    }
                }
            }
            Packet::RepairQuery(p) => {
                buf.put_u8(TAG_QUERY);
                put_path(buf, &p.path);
            }
            Packet::Nack(p) => {
                buf.put_u8(TAG_NACK);
                buf.put_u16(p.keys.len() as u16);
                for k in &p.keys {
                    buf.put_u64(k.0);
                }
            }
            Packet::ReceiverReport(p) => {
                buf.put_u8(TAG_REPORT);
                buf.put_u32(p.receiver_id);
                buf.put_u64(p.highest_seq);
                buf.put_u64(p.received);
            }
        }
    }

    /// Decodes one packet from `buf`.
    pub fn decode(mut buf: Bytes) -> Result<Packet, WireError> {
        let b = &mut buf;
        macro_rules! need {
            ($n:expr) => {
                if b.remaining() < $n {
                    return Err(WireError::Truncated);
                }
            };
        }
        need!(1);
        let tag = b.get_u8();
        match tag {
            TAG_DATA => {
                need!(24);
                let seq = b.get_u64();
                let key = Key(b.get_u64());
                let version = b.get_u64();
                let parent_path = get_path(b)?;
                need!(18);
                let slot = b.get_u16();
                let tag = MetaTag(b.get_u32());
                let offset = b.get_u32();
                let payload_len = b.get_u32();
                let total_len = b.get_u32();
                Ok(Packet::Data(DataPacket {
                    seq,
                    key,
                    version,
                    parent_path,
                    slot,
                    tag,
                    offset,
                    payload_len,
                    total_len,
                }))
            }
            TAG_ROOT => {
                need!(8);
                let seq = b.get_u64();
                let digest = get_digest(b)?;
                need!(4);
                let live_adus = b.get_u32();
                Ok(Packet::RootSummary(RootSummaryPacket {
                    seq,
                    digest,
                    live_adus,
                }))
            }
            TAG_NODE => {
                need!(8);
                let seq = b.get_u64();
                let path = get_path(b)?;
                need!(2);
                let n = b.get_u16() as usize;
                let mut entries = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    need!(3);
                    let etag = b.get_u8();
                    let slot = b.get_u16();
                    entries.push(match etag {
                        ENTRY_DEAD => WireChildEntry::Dead { slot },
                        ENTRY_INTERIOR => {
                            let digest = get_digest(b)?;
                            need!(4);
                            let tag = MetaTag(b.get_u32());
                            WireChildEntry::Interior { slot, digest, tag }
                        }
                        ENTRY_LEAF => {
                            need!(8);
                            let key = Key(b.get_u64());
                            let digest = get_digest(b)?;
                            need!(4);
                            let tag = MetaTag(b.get_u32());
                            WireChildEntry::Leaf {
                                slot,
                                key,
                                digest,
                                tag,
                            }
                        }
                        other => return Err(WireError::BadTag(other)),
                    });
                }
                Ok(Packet::NodeSummary(NodeSummaryPacket {
                    seq,
                    path,
                    entries,
                }))
            }
            TAG_QUERY => Ok(Packet::RepairQuery(RepairQueryPacket {
                path: get_path(b)?,
            })),
            TAG_NACK => {
                need!(2);
                let n = b.get_u16() as usize;
                need!(n * 8);
                let keys = (0..n).map(|_| Key(b.get_u64())).collect();
                Ok(Packet::Nack(NackPacket { keys }))
            }
            TAG_REPORT => {
                need!(20);
                Ok(Packet::ReceiverReport(ReceiverReportPacket {
                    receiver_id: b.get_u32(),
                    highest_seq: b.get_u64(),
                    received: b.get_u64(),
                }))
            }
            other => Err(WireError::BadTag(other)),
        }
    }

    /// Exact number of bytes [`Packet::encode`] writes, computed without
    /// encoding. `wire_len` is called for every simulated transmission
    /// (the channels charge bandwidth by it), and materializing a
    /// throwaway `BytesMut` per packet dominated the sstp send path;
    /// this arithmetic version allocates nothing. Kept in lockstep with
    /// `encode` by the `encoded_len_matches_encode_for_every_variant`
    /// test.
    pub fn encoded_len(&self) -> usize {
        match self {
            Packet::Data(p) => 1 + 8 + 8 + 8 + path_len(&p.parent_path) + 2 + 4 + 4 + 4 + 4,
            Packet::RootSummary(p) => 1 + 8 + digest_len(&p.digest) + 4,
            Packet::NodeSummary(p) => {
                let entries: usize = p
                    .entries
                    .iter()
                    .map(|e| match e {
                        WireChildEntry::Dead { .. } => 1 + 2,
                        WireChildEntry::Interior { digest, .. } => 1 + 2 + digest_len(digest) + 4,
                        WireChildEntry::Leaf { digest, .. } => 1 + 2 + 8 + digest_len(digest) + 4,
                    })
                    .sum();
                1 + 8 + path_len(&p.path) + 2 + entries
            }
            Packet::RepairQuery(p) => 1 + path_len(&p.path),
            Packet::Nack(p) => 1 + 2 + 8 * p.keys.len(),
            Packet::ReceiverReport(_) => 1 + 4 + 8 + 8,
        }
    }

    /// The bytes this packet occupies on the wire: header overhead +
    /// encoded control bytes + simulated payload (data packets only).
    pub fn wire_len(&self) -> usize {
        let payload = match self {
            Packet::Data(d) => d.payload_len as usize,
            _ => 0,
        };
        HEADER_OVERHEAD + self.encoded_len() + payload
    }

    /// The data-channel sequence number, for packets that carry one.
    pub fn data_seq(&self) -> Option<u64> {
        match self {
            Packet::Data(p) => Some(p.seq),
            Packet::RootSummary(p) => Some(p.seq),
            Packet::NodeSummary(p) => Some(p.seq),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: Packet) {
        let mut buf = BytesMut::new();
        p.encode(&mut buf);
        let decoded = Packet::decode(buf.freeze()).expect("decode");
        assert_eq!(decoded, p);
    }

    #[test]
    fn data_roundtrip() {
        roundtrip(Packet::Data(DataPacket {
            seq: 12345,
            key: Key(999),
            version: 7,
            parent_path: vec![1, 0, 65535],
            slot: 42,
            tag: MetaTag(3),
            offset: 500,
            payload_len: 500,
            total_len: 1000,
        }));
    }

    #[test]
    fn root_summary_roundtrip_both_digests() {
        roundtrip(Packet::RootSummary(RootSummaryPacket {
            seq: 1,
            digest: Digest::from_u64(0xdeadbeef),
            live_adus: 77,
        }));
        roundtrip(Packet::RootSummary(RootSummaryPacket {
            seq: 2,
            digest: Digest::from_md5([7u8; 16]),
            live_adus: 0,
        }));
    }

    #[test]
    fn node_summary_roundtrip_mixed_entries() {
        roundtrip(Packet::NodeSummary(NodeSummaryPacket {
            seq: 9,
            path: vec![],
            entries: vec![
                WireChildEntry::Dead { slot: 0 },
                WireChildEntry::Interior {
                    slot: 1,
                    digest: Digest::from_u64(11),
                    tag: MetaTag(5),
                },
                WireChildEntry::Leaf {
                    slot: 2,
                    key: Key(123),
                    digest: Digest::from_md5([1u8; 16]),
                    tag: MetaTag(0),
                },
            ],
        }));
    }

    #[test]
    fn control_roundtrips() {
        roundtrip(Packet::RepairQuery(RepairQueryPacket { path: vec![0, 1] }));
        roundtrip(Packet::Nack(NackPacket {
            keys: vec![Key(1), Key(2), Key(u64::MAX)],
        }));
        roundtrip(Packet::Nack(NackPacket { keys: vec![] }));
        roundtrip(Packet::ReceiverReport(ReceiverReportPacket {
            receiver_id: 4,
            highest_seq: 1_000_000,
            received: 999_888,
        }));
    }

    #[test]
    fn wire_len_includes_payload_and_header() {
        let d = Packet::Data(DataPacket {
            seq: 0,
            key: Key(0),
            version: 0,
            parent_path: vec![],
            slot: 0,
            tag: MetaTag(0),
            offset: 0,
            payload_len: 1000,
            total_len: 1000,
        });
        let mut buf = BytesMut::new();
        d.encode(&mut buf);
        assert_eq!(d.wire_len(), HEADER_OVERHEAD + buf.len() + 1000);

        let n = Packet::Nack(NackPacket { keys: vec![Key(1)] });
        assert_eq!(n.wire_len(), HEADER_OVERHEAD + 1 + 2 + 8);
    }

    #[test]
    fn encoded_len_matches_encode_for_every_variant() {
        let packets = vec![
            Packet::Data(DataPacket {
                seq: 1,
                key: Key(2),
                version: 3,
                parent_path: vec![4, 5, 6],
                slot: 7,
                tag: MetaTag(8),
                offset: 9,
                payload_len: 10,
                total_len: 11,
            }),
            Packet::RootSummary(RootSummaryPacket {
                seq: 1,
                digest: Digest::from_u64(2),
                live_adus: 3,
            }),
            Packet::RootSummary(RootSummaryPacket {
                seq: 1,
                digest: Digest::from_md5([9u8; 16]),
                live_adus: 3,
            }),
            Packet::NodeSummary(NodeSummaryPacket {
                seq: 4,
                path: vec![1],
                entries: vec![
                    WireChildEntry::Dead { slot: 0 },
                    WireChildEntry::Interior {
                        slot: 1,
                        digest: Digest::from_u64(5),
                        tag: MetaTag(6),
                    },
                    WireChildEntry::Leaf {
                        slot: 2,
                        key: Key(7),
                        digest: Digest::from_md5([3u8; 16]),
                        tag: MetaTag(8),
                    },
                ],
            }),
            Packet::RepairQuery(RepairQueryPacket { path: vec![] }),
            Packet::RepairQuery(RepairQueryPacket { path: vec![1, 2] }),
            Packet::Nack(NackPacket { keys: vec![] }),
            Packet::Nack(NackPacket {
                keys: vec![Key(1), Key(2)],
            }),
            Packet::ReceiverReport(ReceiverReportPacket {
                receiver_id: 1,
                highest_seq: 2,
                received: 3,
            }),
        ];
        for p in packets {
            let mut buf = BytesMut::new();
            p.encode(&mut buf);
            assert_eq!(p.encoded_len(), buf.len(), "encoded_len drifted: {p:?}");
        }
    }

    #[test]
    fn data_seq_only_on_data_channel_packets() {
        assert_eq!(Packet::Nack(NackPacket { keys: vec![] }).data_seq(), None);
        assert_eq!(
            Packet::RepairQuery(RepairQueryPacket { path: vec![] }).data_seq(),
            None
        );
        let r = Packet::RootSummary(RootSummaryPacket {
            seq: 5,
            digest: Digest::from_u64(0),
            live_adus: 0,
        });
        assert_eq!(r.data_seq(), Some(5));
    }

    #[test]
    fn decode_errors() {
        assert_eq!(
            Packet::decode(Bytes::from_static(&[])),
            Err(WireError::Truncated)
        );
        assert_eq!(
            Packet::decode(Bytes::from_static(&[0x77])),
            Err(WireError::BadTag(0x77))
        );
        // Truncated data packet.
        let mut buf = BytesMut::new();
        Packet::Data(DataPacket {
            seq: 1,
            key: Key(1),
            version: 1,
            parent_path: vec![1],
            slot: 0,
            tag: MetaTag(0),
            offset: 0,
            payload_len: 0,
            total_len: 0,
        })
        .encode(&mut buf);
        let full = buf.freeze();
        for cut in 1..full.len() {
            let r = Packet::decode(full.slice(0..cut));
            assert!(r.is_err(), "decoding {cut}/{} bytes must fail", full.len());
        }
    }

    #[test]
    fn bad_digest_len_rejected() {
        // Hand-craft a root summary with digest length 9.
        let mut buf = BytesMut::new();
        buf.put_u8(2); // TAG_ROOT
        buf.put_u64(1);
        buf.put_u8(9);
        buf.put_slice(&[0u8; 9]);
        buf.put_u32(0);
        assert_eq!(
            Packet::decode(buf.freeze()),
            Err(WireError::BadDigestLen(9))
        );
    }

    #[test]
    fn error_display() {
        assert_eq!(WireError::Truncated.to_string(), "truncated packet");
        assert!(WireError::BadTag(3).to_string().contains("0x03"));
        assert!(WireError::BadDigestLen(9).to_string().contains('9'));
    }
}
