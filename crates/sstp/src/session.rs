//! An end-to-end SSTP session on the simulated network: one sender, any
//! number of receivers, lossy rate-limited channels, and the §6.1
//! adaptation loop (receiver reports → loss estimate → profile-driven
//! reallocation).
//!
//! Channel layout:
//!
//! * **hot** — foreground data server (new data, NACK retransmissions,
//!   repair responses), rate `allocation.hot`.
//! * **cold** — background server cycling root summaries back to back,
//!   rate `allocation.cold` (idle when summaries are disabled).
//! * **feedback** — one reverse server per receiver at
//!   `allocation.feedback / n`, carrying queries, NACKs, and reports.
//!   With feedback enabled the session floors this at 1% of the session
//!   bandwidth so receiver reports can bootstrap the loss estimate.
//!
//! Data-channel packets are "multicast": one transmission, and each
//! receiver draws loss independently. Feedback packets are likewise heard
//! by the sender *and* every other receiver (with loss), which is what
//! lets the receivers' slotting-and-damping suppress duplicate repair
//! requests in multicast groups.

use crate::allocator::{Allocation, Allocator, AllocatorConfig, BandwidthSource, StaticBandwidth};
use crate::digest::HashAlgorithm;
use crate::namespace::{MetaTag, NodeId};
use crate::receiver::{FeedbackTiming, Interest, ReceiverConfig, ReceiverStats, SstpReceiver};
use crate::sender::{SenderStats, SstpSender};
use crate::wire::Packet;
use softstate::consistency::ConsistencyAverages;
use softstate::{ArrivalProcess, ConsistencyMeter, Key, LossSpec};
use ss_netsim::trace::{Actor, TraceId, TraceKind, Tracer};
use ss_netsim::{
    profile, run_until, run_until_profiled, run_until_traced, AverageId, Bandwidth, CounterId,
    DurationHistogram, EventKind, EventLog, EventQueue, FaultSchedule, FaultSpec, HistogramId,
    LossModel, MetricsRegistry, MetricsSnapshot, QueueClass, SimDuration, SimRng, SimTime,
    SketchId, TracedWorld, World,
};

/// The application workload driving a session.
#[derive(Clone, Debug)]
pub struct SessionWorkload {
    /// How records arrive / update.
    pub arrivals: ArrivalProcess,
    /// Mean record lifetime in seconds (`None` = records live forever).
    /// Lifetimes are exponential; at expiry the sender withdraws the key.
    pub mean_lifetime_secs: Option<f64>,
    /// Number of namespace branches records are spread across.
    pub branches: usize,
    /// Hot-bandwidth weights per branch (Figure 12's application class
    /// control); `None` = equal weights. Cycled if shorter than
    /// `branches`.
    pub class_weights: Option<Vec<u64>>,
}

/// Session configuration.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Total session bandwidth (the congestion-manager budget).
    pub total_bandwidth: Bandwidth,
    /// ADU payload size in bytes.
    pub adu_bytes: u32,
    /// Maximum payload per data packet; ADUs above this fragment
    /// (`None` = never fragment).
    pub mtu: Option<u32>,
    /// Number of receivers (1 = unicast).
    pub n_receivers: usize,
    /// Data-channel loss (independently drawn per receiver).
    pub data_loss: LossSpec,
    /// Feedback-channel loss.
    pub fb_loss: LossSpec,
    /// One-way propagation delay, both directions.
    pub prop_delay: SimDuration,
    /// Allocator configuration (includes the reliability knobs).
    pub allocator: AllocatorConfig,
    /// The workload.
    pub workload: SessionWorkload,
    /// Receiver soft-state TTL.
    pub ttl: SimDuration,
    /// Receiver-report interval.
    pub report_interval: SimDuration,
    /// Reallocation interval (`None` = allocate once at start).
    pub adapt_interval: Option<SimDuration>,
    /// Receiver expiry-sweep interval.
    pub expiry_sweep: SimDuration,
    /// Ground-truth consistency sampling interval.
    pub measure_interval: SimDuration,
    /// Slot window for multicast feedback suppression (`None` =
    /// immediate feedback; use with unicast).
    pub slot_window: Option<SimDuration>,
    /// Per-receiver interest scoping (`None` = all receivers want all).
    pub interests: Option<Vec<Interest>>,
    /// Summary hash algorithm.
    pub algo: HashAlgorithm,
    /// Event-trace capacity: the session and each receiver keep the
    /// first this-many typed events (0 disables tracing).
    pub event_capacity: usize,
    /// Causal-trace capacity: keep the first this-many [`Tracer`] events
    /// (0 disables causal tracing).
    pub trace_capacity: usize,
    /// Run length.
    pub duration: SimDuration,
    /// Master seed.
    pub seed: u64,
    /// `ss-chaos` fault schedule: timed partitions, loss overrides,
    /// bandwidth degradation, receiver crashes, and sender silence on the
    /// virtual clock. The empty spec (the default) consumes no randomness
    /// and leaves the run byte-identical to a fault-free session.
    pub faults: FaultSpec,
}

impl SessionConfig {
    /// A unicast session with the paper's Figure 8 flavor: 45 kbps total,
    /// 1000-byte ADUs, Poisson arrivals at 15 kbps worth of records.
    pub fn unicast_default(seed: u64) -> Self {
        SessionConfig {
            total_bandwidth: Bandwidth::from_kbps(45),
            adu_bytes: 1000,
            mtu: None,
            n_receivers: 1,
            data_loss: LossSpec::Bernoulli(0.1),
            fb_loss: LossSpec::Bernoulli(0.1),
            prop_delay: SimDuration::from_millis(50),
            allocator: AllocatorConfig::default(),
            workload: SessionWorkload {
                arrivals: ArrivalProcess::Poisson { rate: 1.875 },
                mean_lifetime_secs: Some(120.0),
                branches: 4,
                class_weights: None,
            },
            ttl: SimDuration::from_secs(60),
            report_interval: SimDuration::from_secs(5),
            adapt_interval: Some(SimDuration::from_secs(10)),
            expiry_sweep: SimDuration::from_secs(1),
            measure_interval: SimDuration::from_secs(1),
            slot_window: None,
            interests: None,
            algo: HashAlgorithm::Fnv64,
            event_capacity: 0,
            trace_capacity: 0,
            duration: SimDuration::from_secs(600),
            seed,
            faults: FaultSpec::none(),
        }
    }
}

/// How the session recovered from its fault schedule (present on a
/// [`SessionReport`] only when the run had a non-empty [`FaultSpec`]).
///
/// Reconvergence is judged by the ground-truth consistency probe: the
/// run *reconverges* at the first [`SessionConfig::measure_interval`]
/// sample at or after the last fault heals where every receiver's
/// replica fully agrees with the sender's table. MTTR is that instant
/// minus the heal time, so its resolution is the measure interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReconvergenceReport {
    /// When the last fault episode ended.
    pub healed_at: SimTime,
    /// First fully-consistent probe sample at/after the heal (`None` if
    /// the run ended before reconverging).
    pub reconverged_at: Option<SimTime>,
    /// Probe samples' total disagreeing records from the first fault
    /// until reconvergence — each one is a stale (or missing) entry a
    /// reader would have been served at that instant.
    pub stale_serves: u64,
    /// Packets dropped *only* because of an active fault episode.
    pub fault_drops: u64,
}

impl ReconvergenceReport {
    /// Mean-time-to-repair: heal → full reconvergence (`None` if the run
    /// ended first).
    pub fn mttr(&self) -> Option<SimDuration> {
        self.reconverged_at
            .map(|t| t.saturating_since(self.healed_at))
    }
}

/// Per-receiver outcome.
#[derive(Clone, Debug)]
pub struct ReceiverOutcome {
    /// Time-averaged ground-truth consistency (measured by table probe).
    pub consistency: ConsistencyAverages,
    /// Receive latencies: publisher insert → first receiver copy.
    pub latency: DurationHistogram,
    /// Protocol counters.
    pub stats: ReceiverStats,
    /// The last sampled instantaneous consistency.
    pub final_consistency: Option<f64>,
    /// This receiver's typed event trace (empty unless
    /// [`SessionConfig::event_capacity`] is set).
    pub events: EventLog,
}

/// Aggregate packet counters for the whole session.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PacketCounters {
    /// Data-channel packets transmitted (hot + cold).
    pub data_channel_tx: u64,
    /// Data-channel receptions lost (summed over receivers).
    pub data_rx_lost: u64,
    /// Feedback packets transmitted (all receivers).
    pub feedback_tx: u64,
    /// Feedback packets lost en route to the sender.
    pub feedback_lost: u64,
    /// Bytes on the data channel.
    pub data_bytes: u64,
    /// Bytes on the feedback channels.
    pub feedback_bytes: u64,
}

/// Everything a session run produces.
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// One outcome per receiver.
    pub receivers: Vec<ReceiverOutcome>,
    /// Sender counters.
    pub sender: SenderStats,
    /// Channel counters.
    pub packets: PacketCounters,
    /// Allocation decisions over time.
    pub allocations: Vec<(SimTime, Allocation)>,
    /// Number of back-pressure notifications raised to the application.
    pub rate_warnings: u64,
    /// The sender's final smoothed loss estimate.
    pub final_loss_estimate: f64,
    /// Recovery measurement, present when the run had a non-empty
    /// [`SessionConfig::faults`] schedule.
    pub recovery: Option<ReconvergenceReport>,
    /// Every metric of the run, frozen at the end time. Channel and
    /// endpoint counters, per-receiver consistency time averages
    /// (`rx.<i>.consistency`) and latency histograms
    /// (`rx.<i>.latency.t_rec`), and engine totals all live here under
    /// stable dotted names.
    pub metrics: MetricsSnapshot,
    /// Session-level typed event trace: transmissions (announce/summary),
    /// channel drops, and feedback sends (empty unless
    /// [`SessionConfig::event_capacity`] is set).
    pub events: EventLog,
    /// The causal trace: record lifecycles, wire spans, digest exchange,
    /// and NACK → promotion → retransmit → install chains (empty unless
    /// [`SessionConfig::trace_capacity`] is set).
    pub trace: Tracer,
}

impl SessionReport {
    /// Mean busy-period consistency across receivers.
    pub fn mean_consistency(&self) -> f64 {
        let vals: Vec<f64> = self
            .receivers
            .iter()
            .filter_map(|r| r.consistency.busy)
            .collect();
        if vals.is_empty() {
            return 1.0;
        }
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

enum Ev {
    AppArrival,
    Lifetime(Key),
    HotFree,
    ColdFree,
    FbFree(usize),
    /// Receiver `i` hears a data packet; the [`TraceId`] names the wire
    /// span that carried it (NONE when tracing is off).
    DataArrive(usize, Packet, TraceId),
    FbArriveSender(Packet, TraceId),
    FbOverheard(usize, Packet, TraceId),
    FeedbackDue(usize),
    ReportTick(usize),
    AdaptTick,
    ExpiryTick,
    MeasureTick,
    /// A fault-episode boundary (only scheduled with a non-empty
    /// [`FaultSpec`]): crash wipes happen here, and idle servers are
    /// re-kicked when a silence episode ends.
    FaultEdge,
}

struct RxChan {
    loss: Box<dyn LossModel>,
    rng: SimRng,
}

/// A dense set of [`Key`]s backed by a growable bitmap. Sender keys are
/// allocated sequentially from 0, so membership is one word index —
/// this replaces the per-receiver `BTreeSet<Key>` the first-delivery
/// latency probe used to walk on every measurement tick.
#[derive(Clone, Debug, Default)]
struct KeySeen(Vec<u64>);

impl KeySeen {
    fn contains(&self, k: &Key) -> bool {
        match self.0.get((k.0 >> 6) as usize) {
            Some(w) => w & (1 << (k.0 & 63)) != 0,
            None => false,
        }
    }

    fn insert(&mut self, k: Key) {
        let word = (k.0 >> 6) as usize;
        if word >= self.0.len() {
            self.0.resize(word + 1, 0);
        }
        self.0[word] |= 1 << (k.0 & 63);
    }
}

/// Takes (returns and clears) the pending promotion trace id for `key`,
/// or [`TraceId::NONE`] when none is pending.
fn take_promotion(promoted: &mut [TraceId], key: Key) -> TraceId {
    match promoted.get_mut(key.0 as usize) {
        Some(slot) => std::mem::replace(slot, TraceId::NONE),
        None => TraceId::NONE,
    }
}

struct Sim {
    cfg: SessionConfig,
    sender: SstpSender,
    receivers: Vec<SstpReceiver>,
    /// Per-receiver configs kept for crash-and-restart recreation.
    rx_cfgs: Vec<ReceiverConfig>,
    /// Counters of receiver incarnations lost to crashes (a recreated
    /// receiver starts its stats from zero; the outcome sums both).
    carried_stats: Vec<ReceiverStats>,
    /// Per-receiver data-channel loss processes.
    data_chan: Vec<RxChan>,
    /// Feedback loss toward the sender, per receiver.
    fb_chan: Vec<RxChan>,
    /// Overhearing loss among receivers (reuses fb loss spec).
    overhear_chan: Vec<RxChan>,
    allocator: Allocator,
    bw_source: StaticBandwidth,
    allocation: Allocation,
    /// The `ss-chaos` schedule (empty = inert, zero draws).
    faults: FaultSchedule,
    /// §6.1 graceful degradation: multiplicative announce-rate backoff
    /// under sustained heavy reported loss, recovering toward 1.0.
    degrade: f64,
    /// Seed stream for deterministic crash-and-restart receiver rebuilds.
    rng_restart: SimRng,
    restart_seq: u64,
    /// First fully-consistent probe at/after the schedule's heal time.
    reconverged_at: Option<SimTime>,
    /// Earliest fault boundary (None when the schedule is empty); stale
    /// serves are only counted from this instant on.
    fault_started: Option<SimTime>,
    /// Busy flags for the three server kinds.
    hot_busy: bool,
    cold_busy: bool,
    /// Alternates summary/data in the no-feedback cold stream.
    cold_flip: bool,
    fb_busy: Vec<bool>,
    /// Per-receiver feedback send queues (packets waiting for the fb
    /// server).
    fb_queue: Vec<Vec<Packet>>,
    /// Earliest scheduled FeedbackDue per receiver (dedup).
    fb_due_at: Vec<Option<SimTime>>,
    /// Ground-truth instrumentation.
    meters: Vec<ConsistencyMeter>,
    latency_seen: Vec<KeySeen>,
    /// Birth time of every key ever published, indexed by the key's id
    /// (sender keys are allocated densely from 0, one per publish, so a
    /// plain vector in publish order replaces the old `BTreeMap` with
    /// the same point-lookup semantics and no tree walks on the per-probe
    /// latency path).
    born_at: Vec<SimTime>,
    /// Last time the sender wrote each key (birth or in-place update),
    /// indexed like `born_at`. The probe-sampled staleness sketch
    /// measures receiver lag against the *newest* sender value, so
    /// updates must bump this while `born_at` stays the birth instant.
    updated_at: Vec<SimTime>,
    /// Workload state.
    rng_arrival: SimRng,
    rng_lifetime: SimRng,
    branches: Vec<NodeId>,
    update_keys: Vec<Key>,
    /// Metrics: every channel counter, per-receiver consistency average
    /// and latency histogram lives in the registry; typed protocol
    /// events go to the session event log.
    registry: MetricsRegistry,
    events: EventLog,
    tracer: Tracer,
    /// Trace id of the latest promotion per key, indexed densely by key
    /// id ([`TraceId::NONE`] = no promotion pending), so the promoted
    /// hot retransmission parents under it (NACK → promote →
    /// retransmit).
    promoted: Vec<TraceId>,
    c_data_tx: CounterId,
    c_data_lost: CounterId,
    c_data_bytes: CounterId,
    c_fb_tx: CounterId,
    c_fb_lost: CounterId,
    c_fb_bytes: CounterId,
    c_fault_lost: CounterId,
    c_stale: CounterId,
    a_consistency: Vec<AverageId>,
    h_latency: Vec<HistogramId>,
    /// Pooled quantile sketches across all receivers: first-receipt
    /// latency and probe-sampled staleness of disagreeing records.
    sk_trec: SketchId,
    sk_staleness: SketchId,
    allocations: Vec<(SimTime, Allocation)>,
    rate_warnings: u64,
}

/// Field-wise sum of two stats blocks (crash-and-restart carryover).
fn add_stats(a: ReceiverStats, b: ReceiverStats) -> ReceiverStats {
    ReceiverStats {
        data_rx: a.data_rx + b.data_rx,
        data_applied: a.data_applied + b.data_applied,
        root_summaries_rx: a.root_summaries_rx + b.root_summaries_rx,
        node_summaries_rx: a.node_summaries_rx + b.node_summaries_rx,
        nacks_sent: a.nacks_sent + b.nacks_sent,
        nacked_keys: a.nacked_keys + b.nacked_keys,
        queries_sent: a.queries_sent + b.queries_sent,
        damped: a.damped + b.damped,
        uninterested_skips: a.uninterested_skips + b.uninterested_skips,
        expired: a.expired + b.expired,
        fragments_advanced: a.fragments_advanced + b.fragments_advanced,
    }
}

impl Sim {
    fn new(cfg: SessionConfig) -> Self {
        let root_rng = SimRng::new(cfg.seed);
        let mut sender = match cfg.mtu {
            Some(mtu) => SstpSender::new(cfg.algo, cfg.adu_bytes).with_mtu(mtu),
            None => SstpSender::new(cfg.algo, cfg.adu_bytes),
        };
        let branches: Vec<NodeId> = (0..cfg.workload.branches.max(1))
            .map(|i| sender.add_branch(sender.root(), MetaTag(i as u32)))
            .collect();
        if let Some(weights) = &cfg.workload.class_weights {
            for i in 0..branches.len() {
                sender.set_class_weight(MetaTag(i as u32), weights[i % weights.len()]);
            }
        }

        let reliability = cfg.allocator.reliability;
        let timing = match cfg.slot_window {
            Some(window) => FeedbackTiming::Slotted { window },
            None => FeedbackTiming::Immediate,
        };
        let rx_cfgs: Vec<ReceiverConfig> = (0..cfg.n_receivers)
            .map(|i| {
                let interest = cfg
                    .interests
                    .as_ref()
                    .map(|v| v[i % v.len()].clone())
                    .unwrap_or(Interest::All);
                ReceiverConfig {
                    id: i as u32,
                    ttl: cfg.ttl,
                    algo: cfg.algo,
                    interest,
                    feedback: reliability.feedback,
                    repair_backoff: reliability.repair_backoff,
                    timing,
                }
            })
            .collect();
        let receivers: Vec<SstpReceiver> = rx_cfgs
            .iter()
            .enumerate()
            .map(|(i, rc)| {
                SstpReceiver::new(rc.clone(), root_rng.derive(&format!("rcv-{i}")))
                    .with_event_log(cfg.event_capacity)
            })
            .collect();

        let chan = |label: &str, spec: LossSpec| -> Vec<RxChan> {
            (0..cfg.n_receivers)
                .map(|i| RxChan {
                    // Batching is safe here: each channel's rng stream is
                    // consumed by its loss model alone.
                    loss: spec.build_batched(),
                    rng: root_rng.derive(&format!("{label}-{i}")),
                })
                .collect()
        };

        let allocator = Allocator::new(cfg.allocator.clone());
        let bw_source = StaticBandwidth(cfg.total_bandwidth);
        let allocation = allocator.allocate(cfg.total_bandwidth, 0.0, cfg.workload.arrivals.rate());

        let mut registry = MetricsRegistry::new();
        let c_data_tx = registry.counter("chan.data.tx");
        let c_data_lost = registry.counter("chan.data.rx_lost");
        let c_data_bytes = registry.counter("chan.data.bytes");
        let c_fb_tx = registry.counter("chan.fb.tx");
        let c_fb_lost = registry.counter("chan.fb.lost");
        let c_fb_bytes = registry.counter("chan.fb.bytes");
        let c_fault_lost = registry.counter("faults.drops");
        let c_stale = registry.counter("recovery.stale_serves");
        let a_consistency = (0..cfg.n_receivers)
            .map(|i| {
                registry.time_average(
                    &format!("rx.{i}.consistency"),
                    SimTime::ZERO,
                    1.0,
                    SimDuration::ZERO,
                )
            })
            .collect();
        let h_latency = (0..cfg.n_receivers)
            .map(|i| registry.histogram(&format!("rx.{i}.latency.t_rec")))
            .collect();
        let sk_trec = registry.sketch("latency.t_rec.sketch");
        let sk_staleness = registry.sketch("staleness.sketch");
        let events = EventLog::with_capacity(cfg.event_capacity);

        // The schedule draws from its own derived stream, so an empty
        // spec consumes nothing and every other stream is unperturbed.
        let faults = cfg.faults.build(root_rng.derive("faults"));
        let fault_started = faults.boundaries().first().copied();

        Sim {
            sender,
            data_chan: chan("data", cfg.data_loss),
            fb_chan: chan("fb", cfg.fb_loss),
            overhear_chan: chan("overhear", cfg.fb_loss),
            carried_stats: vec![ReceiverStats::default(); receivers.len()],
            receivers,
            rx_cfgs,
            allocator,
            bw_source,
            allocation,
            faults,
            degrade: 1.0,
            rng_restart: root_rng.derive("restart"),
            restart_seq: 0,
            reconverged_at: None,
            fault_started,
            hot_busy: false,
            cold_busy: false,
            cold_flip: false,
            fb_busy: vec![false; cfg.n_receivers],
            fb_queue: vec![Vec::new(); cfg.n_receivers],
            fb_due_at: vec![None; cfg.n_receivers],
            meters: (0..cfg.n_receivers)
                .map(|_| ConsistencyMeter::new(SimTime::ZERO))
                .collect(),
            latency_seen: vec![KeySeen::default(); cfg.n_receivers],
            born_at: Vec::new(),
            updated_at: Vec::new(),
            rng_arrival: root_rng.derive("arrival"),
            rng_lifetime: root_rng.derive("lifetime"),
            branches,
            update_keys: Vec::new(),
            registry,
            events,
            tracer: Tracer::with_capacity(cfg.trace_capacity),
            promoted: Vec::new(),
            c_data_tx,
            c_data_lost,
            c_data_bytes,
            c_fb_tx,
            c_fb_lost,
            c_fb_bytes,
            c_fault_lost,
            c_stale,
            a_consistency,
            h_latency,
            sk_trec,
            sk_staleness,
            allocations: Vec::new(),
            rate_warnings: 0,
            cfg,
        }
    }

    /// The feedback rate per receiver, floored so reports can flow.
    fn fb_rate(&self) -> Bandwidth {
        if !self.cfg.allocator.reliability.feedback {
            // Reports still need a trickle in announce/listen mode to
            // drive the loss estimate; reuse the floor.
            return self.cfg.total_bandwidth.mul_f64(0.01);
        }
        let floor = self.cfg.total_bandwidth.mul_f64(0.01);
        let per = Bandwidth::from_bps(
            self.allocation.feedback.as_bps() / self.cfg.n_receivers.max(1) as u64,
        );
        if per.as_bps() < floor.as_bps() {
            floor
        } else {
            per
        }
    }

    fn spawn_arrival(&mut self, q: &mut EventQueue<Ev>) {
        let now = q.now();
        match self.cfg.workload.arrivals {
            ArrivalProcess::PoissonUpdates { keys, .. } => {
                // Update an existing key or publish until the keyspace is
                // full.
                if (self.update_keys.len() as u64) < keys {
                    self.publish_one(q);
                } else {
                    let idx = self.rng_arrival.below(keys) as usize;
                    let key = self.update_keys[idx];
                    if self.sender.table().get(key).is_some() {
                        self.sender.update(key);
                        self.updated_at[key.0 as usize] = now;
                        self.tracer
                            .instant(now, Actor::Publisher, TraceKind::Update, key.0);
                    }
                }
            }
            _ => self.publish_one(q),
        }
        let _ = now;
        self.kick_hot(q);
    }

    fn publish_one(&mut self, q: &mut EventQueue<Ev>) {
        let now = q.now();
        let b = self.born_at.len() % self.branches.len();
        let branch = self.branches[b];
        let key = self.sender.publish(now, branch, MetaTag(b as u32));
        debug_assert_eq!(key.0 as usize, self.born_at.len(), "keys are dense");
        self.born_at.push(now);
        self.updated_at.push(now);
        self.update_keys.push(key);
        self.tracer.birth(now, Actor::Publisher, key.0);
        if let Some(mean) = self.cfg.workload.mean_lifetime_secs {
            let dt = self.rng_lifetime.exp_duration(1.0 / mean);
            q.schedule_in(dt, Ev::Lifetime(key));
        }
    }

    fn schedule_next_arrival(&mut self, q: &mut EventQueue<Ev>) {
        if let Some(dt) = self
            .cfg
            .workload
            .arrivals
            .next_interarrival(&mut self.rng_arrival)
        {
            q.schedule_in(dt, Ev::AppArrival);
        }
    }

    /// Broadcasts a data-channel packet to every receiver with
    /// independent loss, and schedules the next server-free event.
    /// `class` says which queue (hot/cold server) the packet left from,
    /// for the event trace.
    fn transmit_data(
        &mut self,
        q: &mut EventQueue<Ev>,
        pkt: Packet,
        rate: Bandwidth,
        free: Ev,
        class: QueueClass,
    ) {
        let bytes = pkt.wire_len();
        let c_tx = self.c_data_tx;
        self.registry.inc(c_tx);
        let c_bytes = self.c_data_bytes;
        self.registry.add(c_bytes, bytes as u64);
        let (kind, key) = match &pkt {
            Packet::Data(d) => (EventKind::Announce(class), d.key.0),
            _ => (EventKind::Summary, 0),
        };
        self.events.log(q.now(), kind, key);
        let mut tx_time = rate.transmit_time(bytes);
        // Bandwidth-degradation episodes stretch serialization time.
        let factor = self.faults.bandwidth_factor(q.now());
        if factor < 1.0 {
            tx_time =
                SimDuration::from_micros((tx_time.as_micros() as f64 / factor).round() as u64);
        }
        let depart = q.now() + tx_time;
        // The wire span: serialization of the packet at the server's
        // rate. A data announcement of a just-promoted key parents under
        // its promotion, completing the NACK → promote → retransmit edge.
        let tx_actor = match class {
            QueueClass::Hot => Actor::HotServer,
            QueueClass::Cold => Actor::ColdServer,
        };
        let tkind = match &pkt {
            Packet::Data(_) => TraceKind::Announce,
            _ => TraceKind::Summary,
        };
        let promo = match &pkt {
            Packet::Data(d) => take_promotion(&mut self.promoted, d.key),
            _ => TraceId::NONE,
        };
        let tx_id = if promo.is_some() {
            self.tracer
                .span_under(q.now(), depart, tx_actor, tkind, key, promo)
        } else {
            self.tracer.span(q.now(), depart, tx_actor, tkind, key)
        };
        for i in 0..self.receivers.len() {
            // The baseline channel draw always happens first so that an
            // empty fault spec leaves the random streams untouched.
            let ch = &mut self.data_chan[i];
            let chan_lost = ch.loss.is_lost(&mut ch.rng);
            let fault_lost = self.faults.data_blocked(q.now())
                || self.faults.receiver_down(q.now(), i as u32)
                || self.faults.extra_loss(q.now());
            if chan_lost || fault_lost {
                let c_lost = self.c_data_lost;
                self.registry.inc(c_lost);
                self.events.log(q.now(), EventKind::Drop, key);
                if fault_lost && !chan_lost {
                    let c_fault = self.c_fault_lost;
                    self.registry.inc(c_fault);
                    self.tracer.instant_labeled(
                        q.now(),
                        Actor::Channel,
                        TraceKind::Drop,
                        key,
                        tx_id,
                        "fault",
                    );
                } else {
                    self.tracer
                        .instant_under(q.now(), Actor::Channel, TraceKind::Drop, key, tx_id);
                }
                continue;
            }
            let p = self.faults.perturb(q.now());
            if p.corrupt {
                // A corrupted packet fails the receiver's checksum: in
                // effect a loss, attributed to the fault.
                let c_lost = self.c_data_lost;
                self.registry.inc(c_lost);
                let c_fault = self.c_fault_lost;
                self.registry.inc(c_fault);
                self.events.log(q.now(), EventKind::Drop, key);
                self.tracer.instant_labeled(
                    q.now(),
                    Actor::Channel,
                    TraceKind::Drop,
                    key,
                    tx_id,
                    "fault",
                );
                continue;
            }
            let arrive = depart + self.cfg.prop_delay + p.extra_delay;
            q.schedule(arrive, Ev::DataArrive(i, pkt.clone(), tx_id));
            if p.duplicate {
                q.schedule(arrive, Ev::DataArrive(i, pkt.clone(), tx_id));
            }
        }
        q.schedule(depart, free);
    }

    /// Hot/cold rate after graceful degradation: sustained heavy
    /// reported loss multiplicatively backs the announce rate off (see
    /// [`Sim::adapt`]), so a partitioned network is not flooded with
    /// packets nobody acknowledges.
    fn degraded_rate(&self, rate: Bandwidth) -> Bandwidth {
        if self.degrade < 1.0 {
            rate.mul_f64(self.degrade)
        } else {
            rate
        }
    }

    fn kick_hot(&mut self, q: &mut EventQueue<Ev>) {
        if self.hot_busy || self.allocation.hot.is_zero() {
            return;
        }
        // A silenced sender transmits nothing; the `FaultEdge` at the
        // episode end re-kicks the idle servers.
        if self.faults.sender_silent(q.now()) {
            return;
        }
        if let Some(pkt) = self.sender.next_hot_packet() {
            self.hot_busy = true;
            let rate = self.degraded_rate(self.allocation.hot);
            self.transmit_data(q, pkt, rate, Ev::HotFree, QueueClass::Hot);
        }
    }

    fn kick_cold(&mut self, q: &mut EventQueue<Ev>) {
        if self.cold_busy
            || !self.cfg.allocator.reliability.summaries
            || self.allocation.cold.is_zero()
        {
            return;
        }
        if self.faults.sender_silent(q.now()) {
            return;
        }
        // With feedback, the cold stream is pure summaries: divergence is
        // repaired by digest descent. Without feedback (announce/listen),
        // the cold stream must itself refresh the data, so summaries
        // alternate with round-robin data retransmissions — the classic
        // §3 open-loop behavior.
        let pkt = if self.cfg.allocator.reliability.feedback {
            self.sender.summary_packet()
        } else {
            self.cold_flip = !self.cold_flip;
            if self.cold_flip {
                self.sender.summary_packet()
            } else {
                match self.sender.next_cycle_packet() {
                    Some(p) => p,
                    None => self.sender.summary_packet(),
                }
            }
        };
        self.cold_busy = true;
        let rate = self.degraded_rate(self.allocation.cold);
        self.transmit_data(q, pkt, rate, Ev::ColdFree, QueueClass::Cold);
    }

    fn kick_fb(&mut self, q: &mut EventQueue<Ev>, i: usize) {
        if self.fb_busy[i] || self.fb_queue[i].is_empty() {
            return;
        }
        // A crashed receiver sends nothing; its queue was cleared at the
        // crash edge and any stragglers wait for the restart re-kick.
        if self.faults.receiver_down(q.now(), i as u32) {
            return;
        }
        self.fb_busy[i] = true;
        let pkt = self.fb_queue[i].remove(0);
        let bytes = pkt.wire_len();
        let c_tx = self.c_fb_tx;
        self.registry.inc(c_tx);
        let c_bytes = self.c_fb_bytes;
        self.registry.add(c_bytes, bytes as u64);
        let kind = match &pkt {
            Packet::Nack(_) => EventKind::Nack,
            Packet::RepairQuery(_) => EventKind::Query,
            _ => EventKind::Report,
        };
        self.events.log(q.now(), kind, i as u64);
        let depart = q.now() + self.fb_rate().transmit_time(bytes);
        let tkind = match &pkt {
            Packet::Nack(_) => TraceKind::Nack,
            Packet::RepairQuery(_) => TraceKind::Query,
            _ => TraceKind::Report,
        };
        let fb_id = self
            .tracer
            .span(q.now(), depart, Actor::Feedback(i as u32), tkind, i as u64);
        // Toward the sender. Baseline draw first; a feedback-direction
        // partition layers on top of it.
        let ch = &mut self.fb_chan[i];
        let chan_lost = ch.loss.is_lost(&mut ch.rng);
        let fault_lost = self.faults.feedback_blocked(q.now());
        if chan_lost || fault_lost {
            let c_lost = self.c_fb_lost;
            self.registry.inc(c_lost);
            if fault_lost && !chan_lost {
                let c_fault = self.c_fault_lost;
                self.registry.inc(c_fault);
                self.tracer.instant_labeled(
                    q.now(),
                    Actor::Channel,
                    TraceKind::Drop,
                    i as u64,
                    fb_id,
                    "fault",
                );
            } else {
                self.tracer.instant_under(
                    q.now(),
                    Actor::Channel,
                    TraceKind::Drop,
                    i as u64,
                    fb_id,
                );
            }
        } else {
            q.schedule(
                depart + self.cfg.prop_delay,
                Ev::FbArriveSender(pkt.clone(), fb_id),
            );
        }
        // Overheard by peers (multicast feedback), when there are any.
        if self.receivers.len() > 1 {
            for j in 0..self.receivers.len() {
                if j == i {
                    continue;
                }
                let ch = &mut self.overhear_chan[j];
                let lost = ch.loss.is_lost(&mut ch.rng)
                    || self.faults.feedback_blocked(q.now())
                    || self.faults.receiver_down(q.now(), j as u32);
                if !lost {
                    q.schedule(
                        depart + self.cfg.prop_delay,
                        Ev::FbOverheard(j, pkt.clone(), fb_id),
                    );
                }
            }
        }
        q.schedule(depart, Ev::FbFree(i));
    }

    /// After a receiver interaction, make sure its next feedback fire
    /// time has a wake-up event.
    fn arm_feedback(&mut self, q: &mut EventQueue<Ev>, i: usize) {
        let Some(at) = self.receivers[i].next_feedback_at() else {
            return;
        };
        let at = at.max(q.now());
        if self.fb_due_at[i].is_none_or(|cur| at < cur) {
            self.fb_due_at[i] = Some(at);
            q.schedule(at, Ev::FeedbackDue(i));
        }
    }

    fn measure(&mut self, q: &mut EventQueue<Ev>) {
        let _prof = profile::scope("probe.measure");
        let now = q.now();
        let total = self.sender.table().live_count();
        let mut disagree = 0u64;
        for i in 0..self.receivers.len() {
            let mut agree = 0usize;
            for r in self.sender.table().live() {
                if self.receivers[i].replica().get(r.key).map(|e| e.value) == Some(r.value) {
                    agree += 1;
                } else if let Some(&upd) = self.updated_at.get(r.key.0 as usize) {
                    // Probe-sampled staleness: how old the newest sender
                    // value for this disagreeing record already is.
                    self.registry
                        .observe_sketch(self.sk_staleness, now.saturating_since(upd));
                }
            }
            disagree += (total - agree) as u64;
            self.meters[i].observe(now, agree, total);
            let ratio = if total == 0 {
                1.0
            } else {
                agree as f64 / total as f64
            };
            let a = self.a_consistency[i];
            self.registry.record_sample(a, now, ratio);
            // Latency collection: first receipt of each key.
            let mut newly = Vec::new();
            for (k, e) in self.receivers[i].replica().entries() {
                if !self.latency_seen[i].contains(k) {
                    newly.push((*k, e.first_received));
                }
            }
            for (k, first) in newly {
                self.latency_seen[i].insert(k);
                if let Some(&born) = self.born_at.get(k.0 as usize) {
                    let h = self.h_latency[i];
                    self.registry.observe(h, first.saturating_since(born));
                    self.registry
                        .observe_sketch(self.sk_trec, first.saturating_since(born));
                }
            }
        }
        // Reconvergence accounting, only when a fault schedule exists.
        // Every probe between the first fault edge and reconvergence
        // counts its disagreeing records as stale serves; the first
        // fully consistent probe at or after the heal instant marks
        // reconvergence (so MTTR has measure-interval resolution).
        if !self.faults.is_empty()
            && self.reconverged_at.is_none()
            && self.fault_started.is_some_and(|t| now >= t)
        {
            let c = self.c_stale;
            self.registry.add(c, disagree);
            if now >= self.faults.healed_at() && disagree == 0 {
                self.reconverged_at = Some(now);
            }
        }
    }

    fn adapt(&mut self, q: &mut EventQueue<Ev>) {
        let _prof = profile::scope("adapt.allocate");
        let now = q.now();
        let total = self.bw_source.total(now);
        let lambda = self.cfg.workload.arrivals.rate();
        let loss = self.sender.estimated_loss();
        // Graceful degradation: sustained heavy reported loss backs the
        // announce rate off multiplicatively (floored at 25%), and the
        // rate recovers once the estimate subsides. The 0.6 threshold
        // sits well above steady-state channel loss, so only
        // partition-grade outages trigger it.
        self.degrade = if loss > 0.6 {
            (self.degrade * 0.7).max(0.25)
        } else {
            (self.degrade * 1.3).min(1.0)
        };
        let alloc = self.allocator.allocate(total, loss, lambda);
        if alloc.rate_warning {
            self.rate_warnings += 1;
        }
        self.allocation = alloc;
        self.allocations.push((now, alloc));
        // Newly available bandwidth may unblock idle servers.
        self.kick_hot(q);
        self.kick_cold(q);
    }
}

impl World for Sim {
    type Event = Ev;

    fn handle(&mut self, q: &mut EventQueue<Ev>, ev: Ev) {
        match ev {
            Ev::AppArrival => {
                self.spawn_arrival(q);
                self.schedule_next_arrival(q);
            }
            Ev::Lifetime(key) => {
                if self.sender.table().get(key).is_some() {
                    self.tracer.death(q.now(), Actor::Publisher, key.0);
                }
                self.sender.withdraw(key);
                take_promotion(&mut self.promoted, key);
            }
            Ev::HotFree => {
                self.hot_busy = false;
                self.kick_hot(q);
            }
            Ev::ColdFree => {
                self.cold_busy = false;
                self.kick_cold(q);
            }
            Ev::FbFree(i) => {
                self.fb_busy[i] = false;
                self.kick_fb(q, i);
            }
            Ev::DataArrive(i, pkt, cause) => {
                // A packet in flight toward a receiver that has since
                // crashed arrives at a dead host.
                if self.faults.receiver_down(q.now(), i as u32) {
                    return;
                }
                let before = self.receivers[i].stats().data_applied;
                {
                    let _prof = profile::scope("digest.rx_apply");
                    self.receivers[i].on_packet(q.now(), &pkt);
                }
                if self.receivers[i].stats().data_applied > before {
                    if let Packet::Data(d) = &pkt {
                        self.tracer.instant_under(
                            q.now(),
                            Actor::Replica(i as u32),
                            TraceKind::Deliver,
                            d.key.0,
                            cause,
                        );
                    }
                }
                self.arm_feedback(q, i);
            }
            Ev::FbArriveSender(pkt, cause) => {
                let promoted = {
                    let _prof = profile::scope("feedback.sender");
                    self.sender.on_packet(&pkt)
                };
                for key in promoted {
                    let id = self.tracer.instant_under(
                        q.now(),
                        Actor::HotServer,
                        TraceKind::Promote,
                        key.0,
                        cause,
                    );
                    let slot = key.0 as usize;
                    if slot >= self.promoted.len() {
                        self.promoted.resize(slot + 1, TraceId::NONE);
                    }
                    self.promoted[slot] = id;
                }
                self.kick_hot(q);
            }
            Ev::FbOverheard(i, pkt, cause) => {
                if self.faults.receiver_down(q.now(), i as u32) {
                    return;
                }
                let before = self.receivers[i].stats().data_applied;
                {
                    let _prof = profile::scope("digest.rx_apply");
                    self.receivers[i].on_packet(q.now(), &pkt);
                }
                if self.receivers[i].stats().data_applied > before {
                    if let Packet::Data(d) = &pkt {
                        self.tracer.instant_under(
                            q.now(),
                            Actor::Replica(i as u32),
                            TraceKind::Deliver,
                            d.key.0,
                            cause,
                        );
                    }
                }
                self.arm_feedback(q, i);
            }
            Ev::FeedbackDue(i) => {
                self.fb_due_at[i] = None;
                let _prof = profile::scope("feedback.poll");
                let pkts = self.receivers[i].poll_feedback(q.now());
                self.fb_queue[i].extend(pkts);
                self.kick_fb(q, i);
                self.arm_feedback(q, i);
            }
            Ev::ReportTick(i) => {
                if !self.faults.receiver_down(q.now(), i as u32) {
                    let report = self.receivers[i].make_report();
                    // lint: allow(D010, bounded send queue; kick_fb drains it at the fb service rate)
                    self.fb_queue[i].push(report);
                    self.kick_fb(q, i);
                }
                q.schedule_in(self.cfg.report_interval, Ev::ReportTick(i));
            }
            Ev::AdaptTick => {
                self.adapt(q);
                if let Some(dt) = self.cfg.adapt_interval {
                    q.schedule_in(dt, Ev::AdaptTick);
                }
            }
            Ev::ExpiryTick => {
                let now = q.now();
                for r in &mut self.receivers {
                    r.expire(now);
                }
                q.schedule_in(self.cfg.expiry_sweep, Ev::ExpiryTick);
            }
            Ev::MeasureTick => {
                self.measure(q);
                q.schedule_in(self.cfg.measure_interval, Ev::MeasureTick);
            }
            Ev::FaultEdge => {
                let now = q.now();
                for rx in self.faults.crashes_at(now) {
                    let i = rx as usize;
                    if i >= self.receivers.len() {
                        continue;
                    }
                    // The crash wipes the replica: the receiver is
                    // recreated from a deterministic restart stream, and
                    // its first-incarnation stats are carried so the
                    // outcome counts both lives. Rejoin happens through
                    // the normal path — the next root summary diverges
                    // against the empty replica and digest descent
                    // re-fetches everything live.
                    let stream = self
                        .rng_restart
                        .derive(&format!("{i}-{}", self.restart_seq));
                    self.restart_seq += 1;
                    let fresh = SstpReceiver::new(self.rx_cfgs[i].clone(), stream)
                        .with_event_log(self.cfg.event_capacity);
                    let old = std::mem::replace(&mut self.receivers[i], fresh);
                    self.carried_stats[i] = add_stats(self.carried_stats[i], old.stats());
                    self.fb_queue[i].clear();
                    self.fb_due_at[i] = None;
                    // `latency_seen` is deliberately NOT cleared: the
                    // latency histogram records first-ever delivery per
                    // key, and re-fetches after a crash are recovery
                    // traffic, not fresh deliveries.
                }
                // An ending silence/bandwidth episode may leave servers
                // idle with work pending; re-kick everything.
                self.kick_hot(q);
                self.kick_cold(q);
                for i in 0..self.receivers.len() {
                    self.kick_fb(q, i);
                }
            }
        }
    }
}

impl TracedWorld for Sim {
    fn tracer(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    fn event_label(ev: &Ev) -> &'static str {
        match ev {
            Ev::AppArrival => "app-arrival",
            Ev::Lifetime(_) => "lifetime-end",
            Ev::HotFree => "hot-free",
            Ev::ColdFree => "cold-free",
            Ev::FbFree(_) => "fb-free",
            Ev::DataArrive(..) => "data-arrive",
            Ev::FbArriveSender(..) => "fb-arrive-sender",
            Ev::FbOverheard(..) => "fb-overheard",
            Ev::FeedbackDue(_) => "feedback-due",
            Ev::ReportTick(_) => "report-tick",
            Ev::AdaptTick => "adapt-tick",
            Ev::ExpiryTick => "expiry-tick",
            Ev::MeasureTick => "measure-tick",
            Ev::FaultEdge => "fault-edge",
        }
    }
}

std::thread_local! {
    /// Recycled event-queue allocation: sweep workers run many sessions
    /// back-to-back, and a cleared queue is indistinguishable from a
    /// fresh one (see `EventQueue::clear`), so reuse only saves the
    /// re-growth of the heap.
    static QUEUE_POOL: std::cell::RefCell<EventQueue<Ev>> =
        std::cell::RefCell::new(EventQueue::with_capacity(256));
}

/// Runs a full SSTP session and reports all metrics.
///
/// The report carries both the classic typed fields
/// ([`SessionReport::receivers`], [`SessionReport::packets`], …) and a
/// [`MetricsSnapshot`] with every counter, gauge, histogram, and
/// time-averaged consistency series the run produced
/// (`examples/quickstart.rs` is the same flow as a binary):
///
/// ```
/// use softstate::{ArrivalProcess, LossSpec};
/// use ss_netsim::SimDuration;
/// use sstp::session::{self, SessionConfig, SessionWorkload};
///
/// // A unicast SSTP session: 45 kbps budget, 20% loss both ways,
/// // records arriving at ~1.9/s with two-minute lifetimes.
/// let mut cfg = SessionConfig::unicast_default(42);
/// cfg.data_loss = LossSpec::Bernoulli(0.2);
/// cfg.fb_loss = LossSpec::Bernoulli(0.2);
/// cfg.workload = SessionWorkload {
///     arrivals: ArrivalProcess::Poisson { rate: 1.875 },
///     mean_lifetime_secs: Some(120.0),
///     branches: 4,
///     class_weights: None,
/// };
/// cfg.duration = SimDuration::from_secs(600);
///
/// let report = session::run(&cfg);
///
/// // The subscriber tracked the publisher through 20% loss...
/// assert!(report.mean_consistency() > 0.7);
/// // ...and the metrics snapshot is the self-contained record of the
/// // run: channel counters, per-receiver latency, loss estimate.
/// let m = &report.metrics;
/// assert_eq!(m.counter("chan.data.tx"), report.packets.data_channel_tx);
/// assert_eq!(m.histogram("rx.0.latency.t_rec").count, report.receivers[0].latency.count());
/// assert!((m.gauge("session.loss_estimate") - 0.2).abs() < 0.1);
/// ```
pub fn run(cfg: &SessionConfig) -> SessionReport {
    assert!(cfg.n_receivers >= 1, "need at least one receiver");
    let mut sim = Sim::new(cfg.clone());
    let mut q: EventQueue<Ev> = QUEUE_POOL.with(|c| std::mem::take(&mut *c.borrow_mut()));
    let end = SimTime::ZERO + cfg.duration;

    // Initial records for bulk workloads.
    for _ in 0..cfg.workload.arrivals.initial_count() {
        sim.publish_one(&mut q);
    }
    sim.kick_hot(&mut q);
    sim.kick_cold(&mut q);
    sim.schedule_next_arrival(&mut q);

    // Periodic machinery. Report ticks are staggered per receiver.
    for i in 0..cfg.n_receivers {
        let offset = SimDuration::from_micros(
            cfg.report_interval.as_micros() * (i as u64 + 1) / (cfg.n_receivers as u64 + 1),
        );
        q.schedule(SimTime::ZERO + offset, Ev::ReportTick(i));
    }
    if let Some(dt) = cfg.adapt_interval {
        q.schedule(SimTime::ZERO + dt, Ev::AdaptTick);
    }
    q.schedule(SimTime::ZERO + cfg.expiry_sweep, Ev::ExpiryTick);
    q.schedule(SimTime::ZERO, Ev::MeasureTick);

    // Fault schedule: a wake-up at every episode boundary (crash wipes,
    // restart rejoins, end-of-silence re-kicks), plus trace spans so
    // ss-trace shows the episodes alongside protocol activity.
    if sim.tracer.is_enabled() {
        sim.faults.record_spans(&mut sim.tracer);
    }
    for t in sim.faults.boundaries() {
        if t < end {
            q.schedule(t, Ev::FaultEdge);
        }
    }

    // Neither tracing nor profiling consumes randomness, so each loop
    // replays the plain run exactly; branch so the common case pays
    // nothing.
    if profile::is_enabled() {
        run_until_profiled(&mut sim, &mut q, end);
    } else if sim.tracer.is_enabled() {
        run_until_traced(&mut sim, &mut q, end);
    } else {
        run_until(&mut sim, &mut q, end);
    }
    sim.measure(&mut q);
    profile::flush();
    sim.tracer.finish(end);

    // Export the endpoint counters into the registry so the snapshot is
    // the one self-contained record of the run.
    let sender = sim.sender.stats();
    for (name, v) in [
        ("sender.data_tx", sender.data_tx),
        ("sender.root_summaries_tx", sender.root_summaries_tx),
        ("sender.node_summaries_tx", sender.node_summaries_tx),
        ("sender.nacks_rx", sender.nacks_rx),
        ("sender.queries_rx", sender.queries_rx),
        ("sender.reports_rx", sender.reports_rx),
        ("sender.nacks_suppressed", sender.nacks_suppressed),
    ] {
        let c = sim.registry.counter(name);
        sim.registry.add(c, v);
    }
    for i in 0..cfg.n_receivers {
        let stats = add_stats(sim.carried_stats[i], sim.receivers[i].stats());
        for (field, v) in [
            ("data_rx", stats.data_rx),
            ("data_applied", stats.data_applied),
            ("root_summaries_rx", stats.root_summaries_rx),
            ("node_summaries_rx", stats.node_summaries_rx),
            ("nacks_sent", stats.nacks_sent),
            ("nacked_keys", stats.nacked_keys),
            ("queries_sent", stats.queries_sent),
            ("damped", stats.damped),
            ("uninterested_skips", stats.uninterested_skips),
            ("expired", stats.expired),
            ("fragments_advanced", stats.fragments_advanced),
        ] {
            let c = sim.registry.counter(&format!("rx.{i}.{field}"));
            sim.registry.add(c, v);
        }
    }
    let c = sim.registry.counter("engine.events_dispatched");
    sim.registry.add(c, q.dispatched());
    let c = sim.registry.counter("engine.events_scheduled");
    sim.registry.add(c, q.scheduled());
    let c = sim.registry.counter("session.rate_warnings");
    sim.registry.add(c, sim.rate_warnings);
    let g = sim.registry.gauge("session.loss_estimate");
    sim.registry.set_gauge(g, sim.sender.estimated_loss());

    // Reconvergence report, only when a schedule was configured.
    let recovery = (!sim.faults.is_empty()).then(|| ReconvergenceReport {
        healed_at: sim.faults.healed_at(),
        reconverged_at: sim.reconverged_at,
        stale_serves: sim.registry.counter_value(sim.c_stale),
        fault_drops: sim.registry.counter_value(sim.c_fault_lost),
    });
    if let Some(r) = &recovery {
        let g = sim.registry.gauge("recovery.mttr_secs");
        sim.registry
            .set_gauge(g, r.mttr().map_or(-1.0, |d| d.as_secs_f64()));
        let g = sim.registry.gauge("recovery.reconverged");
        sim.registry
            .set_gauge(g, if r.reconverged_at.is_some() { 1.0 } else { 0.0 });
        let g = sim.registry.gauge("session.degrade_factor");
        sim.registry.set_gauge(g, sim.degrade);
    }

    let packets = PacketCounters {
        data_channel_tx: sim.registry.counter_value(sim.c_data_tx),
        data_rx_lost: sim.registry.counter_value(sim.c_data_lost),
        feedback_tx: sim.registry.counter_value(sim.c_fb_tx),
        feedback_lost: sim.registry.counter_value(sim.c_fb_lost),
        data_bytes: sim.registry.counter_value(sim.c_data_bytes),
        feedback_bytes: sim.registry.counter_value(sim.c_fb_bytes),
    };
    let metrics = sim.registry.snapshot(end);
    q.clear();
    QUEUE_POOL.with(|c| *c.borrow_mut() = q);

    let receivers = (0..cfg.n_receivers)
        .map(|i| ReceiverOutcome {
            consistency: sim.meters[i].averages(end),
            latency: sim.registry.histogram_value(sim.h_latency[i]).clone(),
            stats: add_stats(sim.carried_stats[i], sim.receivers[i].stats()),
            final_consistency: sim.meters[i].instantaneous(),
            events: sim.receivers[i].events().clone(),
        })
        .collect();

    SessionReport {
        receivers,
        sender,
        packets,
        allocations: sim.allocations,
        rate_warnings: sim.rate_warnings,
        final_loss_estimate: sim.sender.estimated_loss(),
        recovery,
        metrics,
        events: sim.events,
        trace: sim.tracer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reliability::ReliabilityLevel;

    fn base_cfg(seed: u64) -> SessionConfig {
        let mut cfg = SessionConfig::unicast_default(seed);
        cfg.duration = SimDuration::from_secs(400);
        cfg
    }

    #[test]
    fn unicast_session_converges() {
        let report = run(&base_cfg(1));
        let c = report.mean_consistency();
        assert!(c > 0.8, "consistency {c}");
        assert!(report.packets.data_channel_tx > 100);
        assert!(report.sender.data_tx > 0);
        assert!(report.receivers[0].stats.data_applied > 0);
        // Loss estimate converged near the configured 10%.
        assert!(
            (report.final_loss_estimate - 0.1).abs() < 0.08,
            "loss estimate {}",
            report.final_loss_estimate
        );
    }

    #[test]
    fn feedback_improves_on_announce_listen() {
        let mut open = base_cfg(2);
        open.allocator.reliability = ReliabilityLevel::AnnounceListen.into();
        open.data_loss = LossSpec::Bernoulli(0.4);
        open.fb_loss = LossSpec::Bernoulli(0.4);
        let r_open = run(&open);

        let mut fb = base_cfg(2);
        fb.allocator.reliability = ReliabilityLevel::Quasi { max_fb_share: 0.5 }.into();
        fb.data_loss = LossSpec::Bernoulli(0.4);
        fb.fb_loss = LossSpec::Bernoulli(0.4);
        let r_fb = run(&fb);

        let c_open = r_open.mean_consistency();
        let c_fb = r_fb.mean_consistency();
        assert!(
            c_fb > c_open + 0.03,
            "feedback {c_fb} vs announce/listen {c_open}"
        );
        assert!(r_fb.sender.nacks_rx > 0);
        assert_eq!(r_open.sender.nacks_rx, 0);
    }

    #[test]
    fn static_store_reaches_full_consistency() {
        let mut cfg = base_cfg(3);
        cfg.workload = SessionWorkload {
            arrivals: ArrivalProcess::Bulk { count: 30 },
            mean_lifetime_secs: None,
            branches: 3,
            class_weights: None,
        };
        cfg.ttl = SimDuration::from_secs(100_000); // nothing expires
        cfg.data_loss = LossSpec::Bernoulli(0.3);
        cfg.fb_loss = LossSpec::Bernoulli(0.3);
        let report = run(&cfg);
        assert_eq!(
            report.receivers[0].final_consistency,
            Some(1.0),
            "static store must fully converge"
        );
        assert_eq!(report.receivers[0].latency.count(), 30);
    }

    #[test]
    fn multicast_damping_reduces_duplicate_feedback() {
        let mut cfg = base_cfg(4);
        cfg.n_receivers = 6;
        cfg.slot_window = Some(SimDuration::from_secs(2));
        cfg.data_loss = LossSpec::Bernoulli(0.3);
        cfg.workload.arrivals = ArrivalProcess::Bulk { count: 20 };
        cfg.workload.mean_lifetime_secs = None;
        cfg.ttl = SimDuration::from_secs(100_000);
        let report = run(&cfg);
        let damped: u64 = report.receivers.iter().map(|r| r.stats.damped).sum();
        assert!(damped > 0, "peers must suppress duplicate requests");
        let c = report.mean_consistency();
        assert!(c > 0.7, "multicast consistency {c}");
    }

    #[test]
    fn overload_raises_rate_warnings() {
        let mut cfg = base_cfg(5);
        // 45 kbps budget but 10 records/s of 1000-byte ADUs = 80 kbps.
        cfg.workload.arrivals = ArrivalProcess::Poisson { rate: 10.0 };
        let report = run(&cfg);
        assert!(report.rate_warnings > 0, "app must be told to slow down");
    }

    #[test]
    fn adaptation_tracks_loss() {
        let mut cfg = base_cfg(6);
        cfg.data_loss = LossSpec::Bernoulli(0.4);
        cfg.fb_loss = LossSpec::Bernoulli(0.4);
        let report = run(&cfg);
        // Once loss was measured, the allocator funds feedback.
        assert!(!report.allocations.is_empty(), "allocations recorded");
        let last = report.allocations.last().unwrap();
        assert!(
            last.1.feedback.as_bps() > 0,
            "fb budget must be funded under 40% loss: {:?}",
            last.1.feedback
        );
        assert!(report.final_loss_estimate > 0.25);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&base_cfg(7));
        let b = run(&base_cfg(7));
        assert_eq!(a.packets.data_channel_tx, b.packets.data_channel_tx);
        assert_eq!(a.sender.data_tx, b.sender.data_tx);
        assert_eq!(
            a.receivers[0].stats.data_applied,
            b.receivers[0].stats.data_applied
        );
        assert_eq!(a.metrics, b.metrics, "metrics snapshot is deterministic");
        assert_eq!(a.metrics.to_jsonl(), b.metrics.to_jsonl());
    }

    #[test]
    fn metrics_snapshot_mirrors_report() {
        let mut cfg = base_cfg(9);
        cfg.event_capacity = 4096;
        let report = run(&cfg);
        // Channel counters are the same numbers the report carries.
        let m = &report.metrics;
        assert_eq!(m.counter("chan.data.tx"), report.packets.data_channel_tx);
        assert_eq!(m.counter("chan.data.rx_lost"), report.packets.data_rx_lost);
        assert_eq!(m.counter("chan.fb.tx"), report.packets.feedback_tx);
        assert_eq!(m.counter("sender.data_tx"), report.sender.data_tx);
        assert_eq!(
            m.counter("rx.0.data_applied"),
            report.receivers[0].stats.data_applied
        );
        assert_eq!(
            m.histogram("rx.0.latency.t_rec").count,
            report.receivers[0].latency.count()
        );
        assert!(m.counter("engine.events_dispatched") > 0);
        assert!(
            m.counter("engine.events_scheduled") >= m.counter("engine.events_dispatched"),
            "can't dispatch more than was scheduled"
        );
        let c = m.time_average("rx.0.consistency");
        assert!((0.0..=1.0).contains(&c), "E[c(t)] = {c}");
        // The traces saw real protocol activity.
        use ss_netsim::{EventKind, QueueClass};
        assert!(
            report
                .events
                .of_kind(EventKind::Announce(QueueClass::Hot))
                .count()
                > 0
        );
        assert!(report.events.of_kind(EventKind::Summary).count() > 0);
        assert!(
            report.receivers[0]
                .events
                .of_kind(EventKind::Deliver)
                .count()
                > 0
        );
    }

    #[test]
    fn zero_event_capacity_disables_traces() {
        let report = run(&base_cfg(12));
        assert!(report.events.is_empty());
        assert_eq!(report.events.dropped(), 0);
        assert!(report.receivers[0].events.is_empty());
        // The causal tracer is equally silent at zero capacity.
        assert!(report.trace.is_empty());
        assert_eq!(report.trace.dropped(), 0);
    }

    #[test]
    fn causal_trace_links_wire_and_lifecycle() {
        use ss_netsim::trace::TraceKind;

        let mut cfg = base_cfg(12);
        cfg.trace_capacity = 400_000;
        let traced = run(&cfg);
        let plain = run(&base_cfg(12));

        // Tracing consumes no randomness: the traced run replays the
        // untraced one exactly.
        assert_eq!(traced.trace.dropped(), 0);
        assert_eq!(traced.packets, plain.packets);
        assert_eq!(
            traced.mean_consistency().to_bits(),
            plain.mean_consistency().to_bits()
        );

        // Every replica install shows up as a Deliver instant parented
        // under the wire span that carried the packet.
        let installs: u64 = traced.receivers.iter().map(|r| r.stats.data_applied).sum();
        let delivers: Vec<_> = traced.trace.of_kind(TraceKind::Deliver).collect();
        assert_eq!(delivers.len() as u64, installs);
        for d in &delivers {
            let parent = traced
                .trace
                .events()
                .iter()
                .find(|e| e.id == d.parent)
                .expect("deliver has a wire-span parent");
            assert_eq!(parent.kind, TraceKind::Announce);
            assert_eq!(parent.key, d.key);
        }

        // Every promotion chains back through the feedback packet that
        // triggered it (NACK -> promote).
        let promotes: Vec<_> = traced.trace.of_kind(TraceKind::Promote).collect();
        assert!(!promotes.is_empty(), "lossy run should promote keys");
        for p in &promotes {
            let parent = traced
                .trace
                .events()
                .iter()
                .find(|e| e.id == p.parent)
                .expect("promote has a feedback parent");
            assert_eq!(parent.kind, TraceKind::Nack);
        }

        // The exporters are deterministic functions of the trace.
        let again = run(&cfg);
        assert_eq!(
            traced.trace.to_causal_jsonl(),
            again.trace.to_causal_jsonl()
        );
    }

    #[test]
    fn class_weights_prioritize_a_branch() {
        // Plumbing check: weights flow through to the sender and the
        // session stays functional under overload. (The service-ratio
        // property itself is unit-tested at the sender:
        // `sender::tests::class_weights_bias_hot_service`.)
        let mut cfg = base_cfg(11);
        cfg.workload = SessionWorkload {
            arrivals: ArrivalProcess::Poisson { rate: 4.0 },
            mean_lifetime_secs: Some(90.0),
            branches: 2,
            class_weights: Some(vec![8, 1]),
        };
        cfg.total_bandwidth = Bandwidth::from_kbps(30);
        cfg.data_loss = LossSpec::Bernoulli(0.1);
        let report = run(&cfg);
        assert!(report.rate_warnings > 0, "4 rec/s exceeds 30 kbps");
        assert!(
            report.receivers[0].stats.data_applied > 50,
            "prioritized session must keep delivering: {}",
            report.receivers[0].stats.data_applied
        );
    }

    #[test]
    fn fragmented_adus_converge_end_to_end() {
        let mut cfg = base_cfg(10);
        cfg.adu_bytes = 4000; // 4 fragments per ADU at MTU 1000
        cfg.mtu = Some(1000);
        cfg.allocator.adu_bytes = 4000;
        cfg.workload.arrivals = ArrivalProcess::Poisson { rate: 0.4 };
        cfg.data_loss = LossSpec::Bernoulli(0.15);
        let report = run(&cfg);
        let c = report.mean_consistency();
        assert!(c > 0.7, "fragmented session consistency {c}");
        assert!(
            report.receivers[0].stats.fragments_advanced > report.receivers[0].stats.data_applied,
            "multiple fragments per applied ADU"
        );
    }

    #[test]
    fn interest_scoped_receiver_skips_branch() {
        let mut cfg = base_cfg(8);
        cfg.interests = Some(vec![Interest::Tags(vec![MetaTag(0), MetaTag(1)])]);
        cfg.workload.branches = 4;
        cfg.data_loss = LossSpec::Bernoulli(0.3);
        let report = run(&cfg);
        assert!(
            report.receivers[0].stats.uninterested_skips > 0,
            "uninterested branches must be skipped"
        );
    }

    /// A static bulk store that nothing expires: the cleanest substrate
    /// for reconvergence assertions.
    fn chaos_cfg(seed: u64) -> SessionConfig {
        let mut cfg = base_cfg(seed);
        cfg.workload = SessionWorkload {
            arrivals: ArrivalProcess::Bulk { count: 30 },
            mean_lifetime_secs: None,
            branches: 3,
            class_weights: None,
        };
        cfg.ttl = SimDuration::from_secs(100_000);
        cfg.data_loss = LossSpec::Bernoulli(0.1);
        cfg.fb_loss = LossSpec::Bernoulli(0.1);
        cfg
    }

    #[test]
    fn no_faults_reports_no_recovery() {
        let report = run(&chaos_cfg(20));
        assert!(report.recovery.is_none());
        assert_eq!(report.metrics.counter("faults.drops"), 0);
    }

    #[test]
    fn partition_reconverges_and_reports_mttr() {
        let mut cfg = chaos_cfg(21);
        cfg.faults = FaultSpec::none().partition(
            SimTime::ZERO + SimDuration::from_secs(60),
            SimTime::ZERO + SimDuration::from_secs(150),
        );
        let report = run(&cfg);
        let rec = report.recovery.expect("schedule configured");
        assert_eq!(rec.healed_at, SimTime::ZERO + SimDuration::from_secs(150));
        assert!(rec.fault_drops > 0, "the partition must eat packets");
        let mttr = rec.mttr().expect("must reconverge after the heal");
        assert!(
            mttr <= SimDuration::from_secs(120),
            "repair should finish within two cold cycles of the heal, got {mttr:?}"
        );
        assert_eq!(
            report.receivers[0].final_consistency,
            Some(1.0),
            "static store fully reconverges"
        );
    }

    #[test]
    fn receiver_crash_rejoins_via_summary_descent() {
        let mut cfg = chaos_cfg(22);
        cfg.faults = FaultSpec::none().receiver_crash(
            SimTime::ZERO + SimDuration::from_secs(100),
            SimTime::ZERO + SimDuration::from_secs(140),
            0,
        );
        let report = run(&cfg);
        let rec = report.recovery.expect("schedule configured");
        assert!(rec.reconverged_at.is_some(), "crashed receiver must rejoin");
        assert_eq!(report.receivers[0].final_consistency, Some(1.0));
        // The wiped replica disagrees with the whole store until the
        // descent re-fetches it: every probe in between serves stale.
        assert!(rec.stale_serves > 0);
        // The outcome counts both incarnations: the 30 originals plus
        // the post-restart re-fetch of the whole store.
        assert!(
            report.receivers[0].stats.data_applied >= 45,
            "carried stats must span the crash: {}",
            report.receivers[0].stats.data_applied
        );
        assert_eq!(
            report.metrics.counter("rx.0.data_applied"),
            report.receivers[0].stats.data_applied,
            "metrics export uses the same carried stats"
        );
    }

    #[test]
    fn sender_silence_stalls_then_recovers() {
        let mut cfg = chaos_cfg(23);
        cfg.faults = FaultSpec::none().sender_silence(
            SimTime::ZERO + SimDuration::from_secs(5),
            SimTime::ZERO + SimDuration::from_secs(60),
        );
        let report = run(&cfg);
        let rec = report.recovery.expect("schedule configured");
        assert!(
            rec.reconverged_at.is_some(),
            "the FaultEdge re-kick must restart the servers"
        );
        assert_eq!(report.receivers[0].final_consistency, Some(1.0));
    }

    #[test]
    fn generated_fault_schedule_replays_bit_for_bit() {
        let mut cfg = chaos_cfg(24);
        let mut rng = SimRng::new(99);
        cfg.faults = FaultSpec::generate(&mut rng, 1, SimDuration::from_secs(300), 4);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.recovery, b.recovery);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.metrics.to_jsonl(), b.metrics.to_jsonl());
    }

    #[test]
    fn sustained_outage_degrades_announce_rate() {
        let mut cfg = base_cfg(25);
        // A near-total loss episode (a bidirectional partition would
        // also block the loss reports that drive the estimate) pushes
        // reported loss far past the 0.6 threshold; the announce rate
        // must back off while the outage lasts.
        cfg.duration = SimDuration::from_secs(300);
        cfg.faults = FaultSpec::none().extra_loss(
            SimTime::ZERO + SimDuration::from_secs(60),
            SimTime::ZERO + SimDuration::from_secs(320),
            LossSpec::Bernoulli(0.95),
        );
        let report = run(&cfg);
        let g = report.metrics.gauge("session.degrade_factor");
        assert!(
            g < 1.0,
            "announce rate must be degraded during the outage, factor {g}"
        );
        assert!(report.recovery.unwrap().fault_drops > 0);
    }
}
