//! The reliability continuum — §6's "parameterized framework that can be
//! tuned to provide one of a continuum of 'reliability levels'", from
//! plain announce/listen up to feedback-driven reliable transport.
//!
//! A [`ReliabilityLevel`] is the coarse application-facing dial; it
//! lowers to [`ReliabilityParams`], the knob set the session machinery
//! actually consumes. Applications with unusual needs can construct
//! `ReliabilityParams` directly.

use ss_netsim::SimDuration;

/// Application-facing reliability levels.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ReliabilityLevel {
    /// Fire-and-forget: data is announced once; no summaries, no
    /// feedback. The cheapest level — suited to data that is superseded
    /// faster than it could be repaired.
    BestEffort,
    /// Classic announce/listen: periodic root summaries let receivers
    /// detect divergence and late joiners catch up, but no receiver
    /// feedback is sent (the §3 regime, hierarchically summarized).
    AnnounceListen,
    /// Announce/listen plus NACK-based repair with a bounded feedback
    /// budget — the §5 regime. The share is the cap on the fraction of
    /// session bandwidth the allocator may give to feedback.
    Quasi {
        /// Maximum feedback share of the session bandwidth.
        max_fb_share: f64,
    },
    /// Full repair: feedback budget up to half the session bandwidth and
    /// aggressive repair timers; converges to sender state as fast as the
    /// channel allows.
    Reliable,
}

/// The exact knob set the session consumes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReliabilityParams {
    /// Whether the sender emits periodic root summaries (cold traffic).
    pub summaries: bool,
    /// Whether receivers send repair queries and NACKs.
    pub feedback: bool,
    /// The cap on the feedback share of the session bandwidth.
    pub max_fb_share: f64,
    /// Minimum interval between repair attempts for the same namespace
    /// node or key at one receiver (damps repair storms).
    pub repair_backoff: SimDuration,
}

impl ReliabilityParams {
    /// Validates invariants (call after hand-constructing).
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=0.9).contains(&self.max_fb_share) {
            return Err(format!(
                "max_fb_share {} out of [0, 0.9]",
                self.max_fb_share
            ));
        }
        if self.feedback && self.max_fb_share == 0.0 {
            return Err("feedback enabled with a zero feedback budget".into());
        }
        if self.feedback && !self.summaries {
            return Err("feedback requires summaries (losses are detected via digests)".into());
        }
        Ok(())
    }
}

impl From<ReliabilityLevel> for ReliabilityParams {
    fn from(level: ReliabilityLevel) -> Self {
        match level {
            ReliabilityLevel::BestEffort => ReliabilityParams {
                summaries: false,
                feedback: false,
                max_fb_share: 0.0,
                repair_backoff: SimDuration::from_secs(1),
            },
            ReliabilityLevel::AnnounceListen => ReliabilityParams {
                summaries: true,
                feedback: false,
                max_fb_share: 0.0,
                repair_backoff: SimDuration::from_secs(1),
            },
            ReliabilityLevel::Quasi { max_fb_share } => ReliabilityParams {
                summaries: true,
                feedback: true,
                max_fb_share: max_fb_share.clamp(0.01, 0.9),
                repair_backoff: SimDuration::from_secs(1),
            },
            ReliabilityLevel::Reliable => ReliabilityParams {
                summaries: true,
                feedback: true,
                max_fb_share: 0.5,
                repair_backoff: SimDuration::from_millis(250),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_lower_to_valid_params() {
        for level in [
            ReliabilityLevel::BestEffort,
            ReliabilityLevel::AnnounceListen,
            ReliabilityLevel::Quasi { max_fb_share: 0.3 },
            ReliabilityLevel::Reliable,
        ] {
            let p: ReliabilityParams = level.into();
            p.validate().unwrap_or_else(|e| panic!("{level:?}: {e}"));
        }
    }

    #[test]
    fn continuum_orders_feedback_budget() {
        let be: ReliabilityParams = ReliabilityLevel::BestEffort.into();
        let al: ReliabilityParams = ReliabilityLevel::AnnounceListen.into();
        let q: ReliabilityParams = ReliabilityLevel::Quasi { max_fb_share: 0.2 }.into();
        let r: ReliabilityParams = ReliabilityLevel::Reliable.into();
        assert!(!be.summaries && !be.feedback);
        assert!(al.summaries && !al.feedback);
        assert!(q.feedback && q.max_fb_share < r.max_fb_share);
        assert!(r.repair_backoff < q.repair_backoff);
    }

    #[test]
    fn quasi_clamps_share() {
        let p: ReliabilityParams = ReliabilityLevel::Quasi { max_fb_share: 5.0 }.into();
        assert!(p.max_fb_share <= 0.9);
        let p: ReliabilityParams = ReliabilityLevel::Quasi { max_fb_share: 0.0 }.into();
        assert!(p.max_fb_share >= 0.01);
        p.validate().unwrap();
    }

    #[test]
    fn validate_catches_contradictions() {
        let bad = ReliabilityParams {
            summaries: false,
            feedback: true,
            max_fb_share: 0.2,
            repair_backoff: SimDuration::from_secs(1),
        };
        assert!(bad.validate().is_err());
        let bad2 = ReliabilityParams {
            summaries: true,
            feedback: true,
            max_fb_share: 0.0,
            repair_backoff: SimDuration::from_secs(1),
        };
        assert!(bad2.validate().is_err());
        let bad3 = ReliabilityParams {
            summaries: true,
            feedback: false,
            max_fb_share: 2.0,
            repair_backoff: SimDuration::from_secs(1),
        };
        assert!(bad3.validate().is_err());
    }
}
