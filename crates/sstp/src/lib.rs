//! # sstp — the Soft State Transport Protocol framework (§6)
//!
//! The paper's §6 sketches SSTP: a transport framework whose reliability
//! behavior is predictable from the soft-state model and customizable by
//! the application. This crate is a full implementation of that sketch:
//!
//! * [`digest`] — MD5 (RFC 1321, from scratch) and FNV-1a summary hashes.
//! * [`namespace`] — the hierarchical ADU index with recursive digests,
//!   stable slots, tombstones, and interest tags (§6.2).
//! * [`wire`] — binary packet formats: data, root/node summaries, repair
//!   queries, NACKs, receiver reports.
//! * [`reports`] — RTCP-style loss measurement (§6.1).
//! * [`profile`] — consistency and latency profiles derived from the
//!   paper's model (§6.1, Figure 12's "profiles" input).
//! * [`allocator`] — the profile-driven bandwidth allocator with
//!   application back-pressure notification (§6.1).
//! * [`reliability`] — the continuum of reliability levels.
//! * [`sender`] / [`receiver`] — sans-I/O protocol endpoints with
//!   recursive-descent repair, interest scoping, and slotting-and-damping
//!   feedback suppression for multicast.
//! * [`session`] — the end-to-end simulated session (1 sender,
//!   N receivers, lossy rate-limited channels, adaptation loop).
//! * [`udp`] — the same endpoints bound to real `std::net` UDP sockets
//!   with a wall clock and token-bucket budget (loopback-tested).
//! * [`runtime`] — the production-shaped multi-session runtime: many
//!   sessions multiplexed over one socket with bounded queues,
//!   per-session rate limiting, liveness supervision with capped
//!   exponential re-probes, and shed-cold-first graceful degradation.
//!
//! ## Example: one repaired unicast exchange
//!
//! ```
//! use sstp::digest::HashAlgorithm;
//! use sstp::namespace::MetaTag;
//! use sstp::receiver::{ReceiverConfig, SstpReceiver};
//! use sstp::sender::SstpSender;
//! use ss_netsim::{SimRng, SimTime};
//!
//! let mut tx = SstpSender::new(HashAlgorithm::Fnv64, 1000);
//! let mut rx = SstpReceiver::new(
//!     ReceiverConfig::unicast(0, HashAlgorithm::Fnv64),
//!     SimRng::new(1),
//! );
//! let root = tx.root();
//! let key = tx.publish(SimTime::ZERO, root, MetaTag(0));
//!
//! // The data packet is lost; the periodic summary reveals it.
//! let _lost = tx.next_hot_packet().unwrap();
//! let now = SimTime::from_secs(1);
//! let summary = tx.summary_packet();
//! rx.on_packet(now, &summary);
//!
//! // Recursive descent: query -> node summary -> NACK -> retransmission.
//! for _ in 0..4 {
//!     for fb in rx.poll_feedback(now) {
//!         tx.on_packet(&fb);
//!     }
//!     while let Some(p) = tx.next_hot_packet() {
//!         rx.on_packet(now, &p);
//!     }
//! }
//! assert!(rx.replica().get(key).is_some());
//! ```

#![deny(missing_docs)]

pub mod allocator;
pub mod digest;
pub mod machine;
pub mod namespace;
pub mod profile;
pub mod receiver;
pub mod reliability;
pub mod reports;
pub mod runtime;
pub mod sender;
pub mod session;
pub mod udp;
pub mod wire;

pub use allocator::{Allocation, Allocator, AllocatorConfig, BandwidthSource};
pub use digest::{Digest, HashAlgorithm};
pub use machine::{ReceiverEffect, ReceiverEvent, SenderEffect, SenderEvent};
pub use namespace::{MetaTag, Namespace, Path};
pub use receiver::{Interest, ReceiverConfig, SstpReceiver};
pub use reliability::{ReliabilityLevel, ReliabilityParams};
pub use runtime::{Runtime, RuntimeConfig, WallClock};
pub use sender::SstpSender;
pub use session::{SessionConfig, SessionReport, SessionWorkload};
pub use wire::Packet;
