//! RTCP-style receiver reports and loss estimation.
//!
//! §6.1: "SSTP uses measured packet loss rates using RTCP-style receiver
//! reports … to carefully control bandwidth allocation." Receivers count
//! data-channel packets against the highest sequence number seen (so
//! gaps reveal losses); the sender differences successive cumulative
//! reports to get per-interval loss and smooths with an EWMA — the same
//! scheme RTP/RTCP uses for its fraction-lost field.

use crate::wire::ReceiverReportPacket;

/// Receiver-side accounting of the data channel.
#[derive(Clone, Debug)]
pub struct ReceiverReporter {
    receiver_id: u32,
    highest_seq: Option<u64>,
    received: u64,
}

impl ReceiverReporter {
    /// A reporter for the given receiver id.
    pub fn new(receiver_id: u32) -> Self {
        ReceiverReporter {
            receiver_id,
            highest_seq: None,
            received: 0,
        }
    }

    /// Notes a received data-channel packet with sequence `seq`.
    pub fn on_data_channel_packet(&mut self, seq: u64) {
        self.received += 1;
        self.highest_seq = Some(self.highest_seq.map_or(seq, |h| h.max(seq)));
    }

    /// Builds the current cumulative report.
    pub fn make_report(&self) -> ReceiverReportPacket {
        ReceiverReportPacket {
            receiver_id: self.receiver_id,
            highest_seq: self.highest_seq.unwrap_or(0),
            received: self.received,
        }
    }

    /// Total packets received so far.
    pub fn received(&self) -> u64 {
        self.received
    }
}

/// Sender-side loss estimation from cumulative receiver reports.
#[derive(Clone, Debug)]
pub struct LossEstimator {
    alpha: f64,
    ewma: Option<f64>,
    last_highest: u64,
    last_received: u64,
}

impl LossEstimator {
    /// An estimator smoothing interval losses with weight `alpha` for the
    /// newest observation (RTCP implementations typically use ~1/8–1/4).
    pub fn new(alpha: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&alpha) && alpha > 0.0,
            "bad alpha {alpha}"
        );
        LossEstimator {
            alpha,
            ewma: None,
            last_highest: 0,
            last_received: 0,
        }
    }

    /// Ingests a cumulative report; returns the interval loss it implied
    /// (`None` when the interval carried no packets).
    pub fn on_report(&mut self, report: &ReceiverReportPacket) -> Option<f64> {
        // Sequences start at 0, so `highest + 1` packets were expected.
        let expected_cum = report.highest_seq + 1;
        let expected = expected_cum.saturating_sub(self.last_highest);
        let received = report.received.saturating_sub(self.last_received);
        self.last_highest = expected_cum;
        self.last_received = report.received;
        if expected == 0 {
            return None;
        }
        let loss = 1.0 - (received as f64 / expected as f64).min(1.0);
        self.ewma = Some(match self.ewma {
            None => loss,
            Some(prev) => prev * (1.0 - self.alpha) + loss * self.alpha,
        });
        Some(loss)
    }

    /// The smoothed loss estimate (0 before any report).
    pub fn loss(&self) -> f64 {
        self.ewma.unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reporter_counts_and_tracks_highest() {
        let mut r = ReceiverReporter::new(3);
        for seq in [0u64, 1, 3, 2, 7] {
            r.on_data_channel_packet(seq);
        }
        let rep = r.make_report();
        assert_eq!(rep.receiver_id, 3);
        assert_eq!(rep.highest_seq, 7);
        assert_eq!(rep.received, 5);
        assert_eq!(r.received(), 5);
    }

    #[test]
    fn empty_report_is_zeroed() {
        let rep = ReceiverReporter::new(1).make_report();
        assert_eq!(rep.highest_seq, 0);
        assert_eq!(rep.received, 0);
    }

    #[test]
    fn estimator_computes_interval_loss() {
        let mut est = LossEstimator::new(1.0); // no smoothing: direct
                                               // Interval 1: seqs 0..=9 sent, 8 received.
        let l1 = est
            .on_report(&ReceiverReportPacket {
                receiver_id: 0,
                highest_seq: 9,
                received: 8,
            })
            .unwrap();
        assert!((l1 - 0.2).abs() < 1e-12);
        assert!((est.loss() - 0.2).abs() < 1e-12);
        // Interval 2: 10 more sent (10..=19), all 10 received.
        let l2 = est
            .on_report(&ReceiverReportPacket {
                receiver_id: 0,
                highest_seq: 19,
                received: 18,
            })
            .unwrap();
        assert!((l2 - 0.0).abs() < 1e-12);
        assert!((est.loss() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn estimator_smooths() {
        let mut est = LossEstimator::new(0.5);
        est.on_report(&ReceiverReportPacket {
            receiver_id: 0,
            highest_seq: 99,
            received: 60, // 40% loss
        });
        est.on_report(&ReceiverReportPacket {
            receiver_id: 0,
            highest_seq: 199,
            received: 160, // next interval: 0% loss
        });
        // EWMA: 0.4 then 0.4*0.5 + 0*0.5 = 0.2.
        assert!((est.loss() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn quiet_interval_returns_none() {
        let mut est = LossEstimator::new(0.25);
        est.on_report(&ReceiverReportPacket {
            receiver_id: 0,
            highest_seq: 9,
            received: 10,
        });
        let before = est.loss();
        // Duplicate report: no packets in the interval.
        let r = est.on_report(&ReceiverReportPacket {
            receiver_id: 0,
            highest_seq: 9,
            received: 10,
        });
        assert_eq!(r, None);
        assert_eq!(est.loss(), before);
    }

    #[test]
    fn loss_clamped_nonnegative() {
        // Receiver counting more packets than sequences (duplicates) must
        // not produce negative loss.
        let mut est = LossEstimator::new(1.0);
        let l = est
            .on_report(&ReceiverReportPacket {
                receiver_id: 0,
                highest_seq: 4,
                received: 10,
            })
            .unwrap();
        assert_eq!(l, 0.0);
    }

    #[test]
    fn end_to_end_with_simulated_gap_pattern() {
        // Feed the estimator from a reporter that misses every 4th packet.
        let mut rep = ReceiverReporter::new(0);
        let mut est = LossEstimator::new(1.0);
        for seq in 0..1000u64 {
            if seq % 4 != 3 {
                rep.on_data_channel_packet(seq);
            }
        }
        // The final (lost) packet leaves highest at 998.
        let loss = est.on_report(&rep.make_report()).unwrap();
        assert!((loss - 0.25).abs() < 0.01, "loss {loss}");
    }
}
