//! The profile-driven bandwidth allocator of §6.1 (Figure 12).
//!
//! Inputs: the total session bandwidth (from outside — "SSTP does not
//! attempt to perform congestion control … but rather relies on a
//! congestion management module"), the measured loss rate (from receiver
//! reports), and the application's arrival rate and consistency target.
//! Outputs: the `{μ_data, μ_feedback}` split, the `{μ_hot, μ_cold}`
//! sub-split, a consistency prediction, and — when the arrival rate
//! exceeds what the hot budget can absorb — a back-pressure notification
//! ("this dictates the maximum rate at which the application can send to
//! maintain the requested level of consistency").

use crate::profile::{ConsistencyProfile, LatencyProfile};
use crate::reliability::ReliabilityParams;
use ss_netsim::{Bandwidth, SimTime};

/// The session bandwidth source — the stand-in for the congestion
/// manager (CM) the paper delegates to. A static implementation covers
/// manually-configured sessions ("configured manually as in most non-TCP
/// applications today"); a scripted one exercises adaptation.
pub trait BandwidthSource {
    /// The session bandwidth available at `now`.
    fn total(&self, now: SimTime) -> Bandwidth;
}

/// A fixed session bandwidth.
#[derive(Clone, Copy, Debug)]
pub struct StaticBandwidth(pub Bandwidth);

impl BandwidthSource for StaticBandwidth {
    fn total(&self, _now: SimTime) -> Bandwidth {
        self.0
    }
}

/// A step schedule of session bandwidths: each entry applies from its
/// time onward. Used to test allocator adaptation to CM rate changes.
#[derive(Clone, Debug)]
pub struct ScriptedBandwidth {
    steps: Vec<(SimTime, Bandwidth)>,
}

impl ScriptedBandwidth {
    /// Builds the schedule; steps must be time-sorted and non-empty, and
    /// the first step must cover t = 0.
    pub fn new(steps: Vec<(SimTime, Bandwidth)>) -> Self {
        assert!(!steps.is_empty(), "empty bandwidth schedule");
        assert_eq!(steps[0].0, SimTime::ZERO, "schedule must start at t=0");
        assert!(
            steps.windows(2).all(|w| w[0].0 < w[1].0),
            "schedule not sorted"
        );
        ScriptedBandwidth { steps }
    }
}

impl BandwidthSource for ScriptedBandwidth {
    fn total(&self, now: SimTime) -> Bandwidth {
        self.steps
            .iter()
            .rev()
            .find(|(t, _)| *t <= now)
            .map(|(_, bw)| *bw)
            .expect("schedule covers t=0")
    }
}

/// Static configuration of the allocator.
#[derive(Clone, Debug)]
pub struct AllocatorConfig {
    /// ADU payload size in bytes (data packet cost).
    pub adu_bytes: usize,
    /// Feedback packet size in bytes (NACK/query/report cost).
    pub feedback_bytes: usize,
    /// The application's consistency target in `[0, 1]`.
    pub consistency_target: f64,
    /// Hot-queue headroom factor: `μ_hot ≥ headroom × λ` (the Figure 5/10
    /// knee says `μ_hot ≥ λ` is necessary; headroom keeps a margin).
    pub hot_headroom: f64,
    /// The reliability knobs (feedback cap, summaries on/off).
    pub reliability: ReliabilityParams,
}

impl Default for AllocatorConfig {
    fn default() -> Self {
        AllocatorConfig {
            adu_bytes: 1000,
            feedback_bytes: 64,
            consistency_target: 0.9,
            hot_headroom: 1.2,
            reliability: crate::reliability::ReliabilityLevel::Quasi { max_fb_share: 0.5 }.into(),
        }
    }
}

/// One allocation decision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Allocation {
    /// Data budget (hot + cold).
    pub data: Bandwidth,
    /// Feedback budget.
    pub feedback: Bandwidth,
    /// Foreground (new data + NACK repair) budget.
    pub hot: Bandwidth,
    /// Background (summary announcement) budget.
    pub cold: Bandwidth,
    /// Predicted average consistency at this allocation.
    pub predicted_consistency: f64,
    /// Set when the application's arrival rate exceeds what the hot
    /// budget can absorb — the SSTP back-pressure notification.
    pub rate_warning: bool,
    /// The maximum sustainable application arrival rate (records/s)
    /// under this allocation.
    pub max_sustainable_rate: f64,
}

/// The profile-driven allocator.
#[derive(Clone, Debug)]
pub struct Allocator {
    cfg: AllocatorConfig,
}

impl Allocator {
    /// Builds an allocator. Panics on invalid reliability parameters.
    pub fn new(cfg: AllocatorConfig) -> Self {
        if let Err(e) = cfg.reliability.validate() {
            panic!("invalid reliability params: {e}");
        }
        assert!(
            (0.0..=1.0).contains(&cfg.consistency_target),
            "bad target {}",
            cfg.consistency_target
        );
        assert!(cfg.hot_headroom >= 1.0, "headroom below 1 starves hot");
        Allocator { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &AllocatorConfig {
        &self.cfg
    }

    /// Computes the allocation for the current conditions.
    ///
    /// * `total` — session bandwidth from the congestion manager.
    /// * `measured_loss` — smoothed loss from receiver reports.
    /// * `lambda_records` — the application's recent arrival rate,
    ///   records/s.
    pub fn allocate(
        &self,
        total: Bandwidth,
        measured_loss: f64,
        lambda_records: f64,
    ) -> Allocation {
        let loss = measured_loss.clamp(0.0, 1.0);
        let adu_bits = (self.cfg.adu_bytes * 8) as f64;
        let total_pkts = total.as_bps() as f64 / adu_bits;

        // 1. Feedback share from the consistency profile, bounded by the
        //    reliability level's cap. Feedback packets are cheaper than
        //    ADUs, so the share found in packet units is scaled by the
        //    byte ratio when converting to bandwidth.
        let fb_share = if self.cfg.reliability.feedback && total_pkts > 0.0 {
            let profile =
                ConsistencyProfile::analytic(lambda_records.max(1e-3), total_pkts, 0.1, 0.67);
            profile.best_fb_share(loss, self.cfg.reliability.max_fb_share)
        } else {
            0.0
        };
        // The feedback budget has two components:
        //  * a *repair-descent floor*, paced by the repair backoff rather
        //    than by data volume — digest descent needs a handful of
        //    control packets (queries plus responses' NACKs) per backoff
        //    interval per diverged subtree, regardless of ADU size;
        //  * a *loss-driven NACK term* from the consistency profile,
        //    scaled by the NACK/ADU byte ratio.
        // Both together, capped by the reliability level's share.
        let byte_ratio = self.cfg.feedback_bytes as f64 / self.cfg.adu_bytes as f64;
        let nack_term = total.mul_f64(fb_share * byte_ratio.min(1.0));
        let feedback = if self.cfg.reliability.feedback {
            let backoff_secs = self.cfg.reliability.repair_backoff.as_secs_f64().max(0.05);
            let pkt_bits = ((self.cfg.feedback_bytes + 28) * 8) as f64;
            let floor = (4.0 / backoff_secs * pkt_bits) as u64;
            let cap = total.mul_f64(self.cfg.reliability.max_fb_share);
            Bandwidth::from_bps((floor + nack_term.as_bps()).min(cap.as_bps()))
        } else {
            Bandwidth::ZERO
        };
        let data = total - feedback;

        // 2. Hot/cold split: give hot λ×headroom, leave the rest cold,
        //    but never drop cold below the latency-profile optimum when
        //    there is slack.
        let data_pkts = data.as_bps() as f64 / adu_bits;
        let want_hot_pkts = lambda_records * self.cfg.hot_headroom;
        let hot_share_needed = if data_pkts > 0.0 {
            (want_hot_pkts / data_pkts).min(1.0)
        } else {
            1.0
        };
        let hot_share = if self.cfg.reliability.summaries {
            // Keep at least 10% cold for summaries; prefer the latency
            // profile's split when it demands more hot than the floor.
            let lp = LatencyProfile {
                lambda: lambda_records.max(1e-3),
                mu_data: data_pkts.max(1e-3),
                loss,
            };
            hot_share_needed.max(lp.best_hot_share()).min(0.9)
        } else {
            hot_share_needed.max(0.5)
        };
        let hot = data.mul_f64(hot_share);
        let cold = data - hot;

        // 3. Back-pressure: can the hot budget absorb λ?
        let hot_pkts = hot.as_bps() as f64 / adu_bits;
        let max_sustainable_rate = hot_pkts / self.cfg.hot_headroom;
        let rate_warning = lambda_records > max_sustainable_rate + 1e-9;

        // 4. Predict the outcome for the application.
        let predicted = if total_pkts > 0.0 {
            ConsistencyProfile::analytic(lambda_records.max(1e-3), total_pkts, 0.1, hot_share)
                .predict(loss, fb_share)
        } else {
            0.0
        };

        Allocation {
            data,
            feedback,
            hot,
            cold,
            predicted_consistency: predicted,
            rate_warning,
            max_sustainable_rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reliability::ReliabilityLevel;

    fn alloc_with(level: ReliabilityLevel) -> Allocator {
        Allocator::new(AllocatorConfig {
            reliability: level.into(),
            ..AllocatorConfig::default()
        })
    }

    #[test]
    fn splits_sum_to_total() {
        let a = alloc_with(ReliabilityLevel::Quasi { max_fb_share: 0.5 });
        let total = Bandwidth::from_kbps(45);
        for loss in [0.0, 0.1, 0.4, 0.7] {
            let al = a.allocate(total, loss, 1.875);
            assert_eq!(al.data + al.feedback, total, "loss {loss}");
            assert_eq!(al.hot + al.cold, al.data, "loss {loss}");
        }
    }

    #[test]
    fn no_feedback_budget_without_feedback() {
        let a = alloc_with(ReliabilityLevel::AnnounceListen);
        let al = a.allocate(Bandwidth::from_kbps(45), 0.4, 1.875);
        assert_eq!(al.feedback, Bandwidth::ZERO);
        assert_eq!(al.data, Bandwidth::from_kbps(45));
    }

    #[test]
    fn feedback_budget_grows_with_loss() {
        let a = alloc_with(ReliabilityLevel::Quasi { max_fb_share: 0.5 });
        let total = Bandwidth::from_kbps(45);
        let lo = a.allocate(total, 0.02, 1.875);
        let hi = a.allocate(total, 0.40, 1.875);
        assert!(
            hi.feedback.as_bps() > lo.feedback.as_bps(),
            "fb at 40% loss {:?} must exceed fb at 2% {:?}",
            hi.feedback,
            lo.feedback
        );
    }

    #[test]
    fn rate_warning_when_lambda_exceeds_hot() {
        let a = alloc_with(ReliabilityLevel::Quasi { max_fb_share: 0.5 });
        // 45 kbps total, 1000-byte ADUs = 5.625 pkt/s ceiling.
        let ok = a.allocate(Bandwidth::from_kbps(45), 0.1, 1.875);
        assert!(!ok.rate_warning, "λ = 1.875 fits in 45 kbps");
        let over = a.allocate(Bandwidth::from_kbps(45), 0.1, 20.0);
        assert!(over.rate_warning, "λ = 20 pkt/s cannot fit");
        assert!(over.max_sustainable_rate < 20.0);
        assert!(ok.max_sustainable_rate >= 1.875);
    }

    #[test]
    fn hot_scales_with_lambda() {
        let a = alloc_with(ReliabilityLevel::Quasi { max_fb_share: 0.3 });
        let total = Bandwidth::from_kbps(100);
        let slow = a.allocate(total, 0.1, 1.0);
        let fast = a.allocate(total, 0.1, 8.0);
        assert!(fast.hot.as_bps() > slow.hot.as_bps());
        // Cold never fully starved while summaries are on.
        assert!(slow.cold.as_bps() > 0);
        assert!(fast.cold.as_bps() > 0);
    }

    #[test]
    fn prediction_degrades_with_loss() {
        let a = alloc_with(ReliabilityLevel::Quasi { max_fb_share: 0.5 });
        let total = Bandwidth::from_kbps(45);
        let c0 = a.allocate(total, 0.0, 1.875).predicted_consistency;
        let c5 = a.allocate(total, 0.5, 1.875).predicted_consistency;
        assert!(c0 > c5, "c(0%)={c0} must exceed c(50%)={c5}");
        assert!(c0 >= 0.85, "lossless prediction {c0}");
    }

    #[test]
    fn feedback_share_respects_reliability_cap() {
        let tight = alloc_with(ReliabilityLevel::Quasi { max_fb_share: 0.05 });
        let total = Bandwidth::from_kbps(45);
        let al = tight.allocate(total, 0.5, 1.875);
        let share = al.feedback.fraction_of(total);
        assert!(share <= 0.05 + 1e-9, "share {share}");
    }

    #[test]
    fn bandwidth_sources() {
        let s = StaticBandwidth(Bandwidth::from_kbps(45));
        assert_eq!(s.total(SimTime::from_secs(99)), Bandwidth::from_kbps(45));

        let sched = ScriptedBandwidth::new(vec![
            (SimTime::ZERO, Bandwidth::from_kbps(45)),
            (SimTime::from_secs(100), Bandwidth::from_kbps(20)),
        ]);
        assert_eq!(
            sched.total(SimTime::from_secs(50)),
            Bandwidth::from_kbps(45)
        );
        assert_eq!(
            sched.total(SimTime::from_secs(100)),
            Bandwidth::from_kbps(20)
        );
        assert_eq!(
            sched.total(SimTime::from_secs(500)),
            Bandwidth::from_kbps(20)
        );
    }

    #[test]
    #[should_panic(expected = "schedule must start at t=0")]
    fn scripted_bandwidth_needs_origin() {
        let _ = ScriptedBandwidth::new(vec![(SimTime::from_secs(1), Bandwidth::from_kbps(1))]);
    }

    #[test]
    #[should_panic(expected = "invalid reliability params")]
    fn rejects_bad_reliability() {
        let mut cfg = AllocatorConfig::default();
        cfg.reliability.summaries = false; // feedback without summaries
        let _ = Allocator::new(cfg);
    }
}
