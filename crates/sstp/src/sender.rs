//! The SSTP sender endpoint.
//!
//! "An SSTP sender transmits original application data as well as
//! periodic soft state announcements summarizing all previously
//! transmitted data. SSTP receivers use NACKs to report lost data items
//! to the sender, which in response performs the appropriate
//! retransmissions." (§6)
//!
//! The sender is sans-I/O: it owns the publisher table, the namespace,
//! and the hot transmission queue, and exposes pull-style packet
//! constructors ([`SstpSender::next_hot_packet`] for the foreground
//! queue, [`SstpSender::summary_packet`] for the cold/background stream).
//! The session harness (or a real UDP wrapper) drives it.

use crate::digest::{Digest, HashAlgorithm};
use crate::machine::{MachineError, SenderEffect, SenderEvent, StateHasher, TxMutations};
use crate::namespace::{MetaTag, Namespace, NodeId, Path};
use crate::reports::LossEstimator;
use crate::wire::{DataPacket, NodeSummaryPacket, Packet, RootSummaryPacket};
use softstate::{Key, PublisherTable};
use ss_netsim::{SimRng, SimTime};
use ss_sched::{Scheduler, Stride};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// What waits in the hot (foreground) queue.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum HotItem {
    /// (Re)transmission of a record's current value.
    Data(Key),
    /// A repair response summarizing one namespace node's children.
    Summary(Path),
}

/// Counters exposed for experiments and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SenderStats {
    /// Data packets emitted (original + repair retransmissions).
    pub data_tx: u64,
    /// Root summaries emitted.
    pub root_summaries_tx: u64,
    /// Node summaries emitted (repair responses).
    pub node_summaries_tx: u64,
    /// NACK packets processed.
    pub nacks_rx: u64,
    /// Repair queries processed.
    pub queries_rx: u64,
    /// Receiver reports processed.
    pub reports_rx: u64,
    /// Keys NACKed that were already queued or dead (suppressed).
    pub nacks_suppressed: u64,
}

/// In-progress fragmentation of one ADU onto one channel.
#[derive(Clone, Debug)]
struct FragState {
    key: Key,
    version: u64,
    parent_path: Path,
    slot: u16,
    tag: MetaTag,
    offset: u32,
    total: u32,
}

/// The SSTP sender endpoint.
///
/// Sans-I/O: the application publishes ADUs into the namespace and then
/// drains wire packets ([`SstpSender::next_hot_packet`],
/// [`SstpSender::next_cycle_packet`], [`SstpSender::summary_packet`])
/// at whatever rate its bandwidth budget allows.
///
/// ```
/// use sstp::digest::HashAlgorithm;
/// use sstp::namespace::MetaTag;
/// use sstp::sender::SstpSender;
/// use sstp::wire::Packet;
/// use ss_netsim::SimTime;
///
/// let mut tx = SstpSender::new(HashAlgorithm::Fnv64, 1000);
/// let root = tx.root();
/// let key = tx.publish(SimTime::ZERO, root, MetaTag(0));
///
/// // The new ADU is queued exactly once on the hot (foreground) path.
/// match tx.next_hot_packet() {
///     Some(Packet::Data(d)) => assert_eq!(d.key, key),
///     other => panic!("expected the published ADU, got {other:?}"),
/// }
/// assert!(tx.next_hot_packet().is_none());
/// ```
#[derive(Clone)]
pub struct SstpSender {
    table: PublisherTable,
    ns: Namespace,
    /// Per-class foreground queues (Figure 12: the application's data
    /// classes compete for the hot bandwidth under explicit weights).
    hot: Vec<VecDeque<HotItem>>,
    /// Stride scheduler choosing which class transmits next.
    hot_sched: Stride,
    /// Maps application tags to dense class indices (index 0 is the
    /// control class carrying repair responses).
    class_of_tag: BTreeMap<u32, usize>,
    sched_rng: SimRng,
    queued: BTreeSet<HotItem>,
    /// Round-robin snapshot for cold data cycling.
    cycle: Vec<Key>,
    /// Maximum application payload per data packet; ADUs above this are
    /// fragmented, advancing the namespace right edge per fragment.
    mtu: u32,
    /// Fragmentation state of the hot (foreground) stream.
    hot_frag: Option<FragState>,
    /// Fragmentation state of the cold cycling stream.
    cycle_frag: Option<FragState>,
    seq: u64,
    /// Per-receiver loss estimators (cumulative reports must be
    /// differenced per reporter, as RTCP does). BTreeMap keeps the
    /// mean's summation order — and thus the estimate — deterministic.
    loss: std::collections::BTreeMap<u32, LossEstimator>,
    default_payload: u32,
    stats: SenderStats,
    /// Seeded defects for mutation-testing `ss-verify` (all off in
    /// production; see [`TxMutations`]).
    muts: TxMutations,
    /// First root digest ever emitted, kept only for the
    /// `frozen_summary_digest` mutation.
    frozen_digest: Option<Digest>,
}

impl SstpSender {
    /// A sender using the given summary hash and default ADU payload size.
    pub fn new(algo: HashAlgorithm, default_payload: u32) -> Self {
        // Class 0 is the control class (repair responses). It gets the
        // same weight as a single data class: prioritizing it sounds
        // attractive but is counterproductive — large node summaries then
        // displace the data transmissions that would resolve the digest
        // mismatch, and the repair traffic feeds on itself (measured in
        // the profile-accuracy/adapt experiments: ~7 points of
        // consistency lost at 1% loss with a 4x control weight).
        let mut hot_sched = Stride::new();
        hot_sched.set_weight(0, 1);
        SstpSender {
            table: PublisherTable::new(),
            ns: Namespace::new(algo),
            hot: vec![VecDeque::new()],
            hot_sched,
            class_of_tag: BTreeMap::new(),
            sched_rng: SimRng::new(0x5f3d),
            queued: BTreeSet::new(),
            cycle: Vec::new(),
            mtu: u32::MAX,
            hot_frag: None,
            cycle_frag: None,
            seq: 0,
            loss: std::collections::BTreeMap::new(),
            default_payload,
            stats: SenderStats::default(),
            muts: TxMutations::default(),
            frozen_digest: None,
        }
    }

    /// Installs seeded protocol defects for mutation testing. Never used
    /// by the session harness; see [`TxMutations`].
    #[doc(hidden)]
    pub fn with_mutations(mut self, muts: TxMutations) -> Self {
        self.muts = muts;
        self
    }

    /// Advances the machine by one event; the single mutation entry
    /// point. Every imperative method on this type is a thin shim over
    /// this dispatch — see [`crate::machine`] for why the seam exists.
    pub fn step(&mut self, ev: SenderEvent) -> SenderEffect {
        match ev {
            SenderEvent::Publish {
                now,
                parent,
                tag,
                payload_len,
            } => {
                let len = payload_len.unwrap_or(self.default_payload);
                SenderEffect::Published(self.apply_publish(now, parent, tag, len))
            }
            SenderEvent::Update(key) => {
                self.apply_update(key);
                SenderEffect::None
            }
            SenderEvent::Withdraw(key) => SenderEffect::Withdrawn(self.apply_withdraw(key)),
            SenderEvent::AddBranch { parent, tag } => {
                SenderEffect::Branch(self.ns.add_interior(parent, tag))
            }
            SenderEvent::SetClassWeight { tag, weight } => {
                let c = self.class_for(tag);
                self.hot_sched.set_weight(c, weight);
                SenderEffect::None
            }
            SenderEvent::Feedback(pkt) => SenderEffect::Promoted(self.apply_feedback(pkt)),
            SenderEvent::PollHot => SenderEffect::Transmit(self.apply_next_hot()),
            SenderEvent::PollCycle => SenderEffect::Transmit(self.apply_next_cycle()),
            SenderEvent::PollSummary => SenderEffect::Transmit(Some(self.apply_summary())),
        }
    }

    /// The next wire sequence number (shared across all packet types, so
    /// receivers can count losses on the data channel).
    fn bump_seq(&mut self) -> u64 {
        if self.muts.reuse_seq {
            return 0;
        }
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    /// Sets the maximum payload per data packet. ADUs larger than `mtu`
    /// are transmitted as fragments carrying `(offset, total_len)`, and
    /// the ADU's namespace right edge advances fragment by fragment —
    /// the §6.2 ALF framing. Panics on zero.
    pub fn with_mtu(mut self, mtu: u32) -> Self {
        assert!(mtu > 0, "mtu must be positive");
        self.mtu = mtu;
        self
    }

    /// Begins fragmenting `key`'s current value; returns the state, or
    /// `None` if the record is dead.
    fn start_frag(&mut self, key: Key) -> Option<FragState> {
        let rec = self.table.get(key)?;
        let value = rec.value;
        let leaf = self.ns.leaf_of(key).expect("live record has a leaf");
        let mut parent_path = self.ns.path_of(leaf);
        let slot = parent_path.pop().expect("leaf is not the root");
        let tag = self.ns.tag(leaf);
        Some(FragState {
            key,
            version: value.version,
            parent_path,
            slot,
            tag,
            offset: 0,
            total: value.payload_len,
        })
    }

    /// Emits the next fragment of `state`, advancing the namespace right
    /// edge; returns the packet and whether the ADU is now fully sent.
    /// Returns `None` if the record died or was superseded mid-stream
    /// (the new version has its own queue entry).
    fn next_fragment(&mut self, state: &mut FragState) -> Option<(Packet, bool)> {
        let rec = self.table.get(state.key)?;
        if rec.value.version != state.version {
            return None;
        }
        let remaining = state.total - state.offset;
        let len = remaining.min(self.mtu);
        let end = state.offset + len;
        self.ns.update_adu(state.key, state.version, u64::from(end));
        let seq = self.bump_seq();
        self.stats.data_tx += 1;
        let pkt = Packet::Data(DataPacket {
            seq,
            key: state.key,
            version: state.version,
            parent_path: state.parent_path.clone(),
            slot: state.slot,
            tag: state.tag,
            offset: state.offset,
            payload_len: len,
            total_len: state.total,
        });
        state.offset = end;
        Some((pkt, end == state.total))
    }

    /// The namespace root, for building the application's hierarchy.
    pub fn root(&self) -> NodeId {
        self.ns.root()
    }

    /// Adds an interior namespace node (an application data class).
    // lint: allow(D008, compat shim delegating to step)
    pub fn add_branch(&mut self, parent: NodeId, tag: MetaTag) -> NodeId {
        match self.step(SenderEvent::AddBranch { parent, tag }) {
            SenderEffect::Branch(node) => node,
            _ => unreachable!("AddBranch yields Branch"),
        }
    }

    /// The dense class index for `tag`, creating it (weight 1) on first
    /// use.
    fn class_for(&mut self, tag: MetaTag) -> usize {
        if let Some(&c) = self.class_of_tag.get(&tag.0) {
            return c;
        }
        let c = self.hot.len();
        self.hot.push(VecDeque::new());
        self.hot_sched.set_weight(c, 1);
        self.class_of_tag.insert(tag.0, c);
        c
    }

    /// Sets the hot-bandwidth weight of an application data class —
    /// §6.1's "the application flexibly controls the amount of bandwidth
    /// allocated to its different data classes". Weight 0 pauses the
    /// class. Classes default to weight 1.
    // lint: allow(D008, compat shim delegating to step)
    pub fn set_class_weight(&mut self, tag: MetaTag, weight: u64) {
        let _ = self.step(SenderEvent::SetClassWeight { tag, weight });
    }

    fn enqueue(&mut self, class: usize, item: HotItem) {
        if self.muts.no_queue_dedup {
            // Defect: append unconditionally; a NACK storm now queues the
            // same key many times and `self_check` sees the multiset
            // diverge from the dedup set.
            self.queued.insert(item.clone());
            self.hot[class].push_back(item);
            return;
        }
        if self.queued.insert(item.clone()) {
            self.hot[class].push_back(item);
        }
    }

    /// Publishes a new record under `parent`; it is queued for immediate
    /// transmission ("a sender transmits new data upon arrival from the
    /// application"). Returns the new key.
    // lint: allow(D008, compat shim delegating to step)
    pub fn publish(&mut self, now: SimTime, parent: NodeId, tag: MetaTag) -> Key {
        match self.step(SenderEvent::Publish {
            now,
            parent,
            tag,
            payload_len: None,
        }) {
            SenderEffect::Published(key) => key,
            _ => unreachable!("Publish yields Published"),
        }
    }

    /// [`SstpSender::publish`] with an explicit payload size.
    // lint: allow(D008, compat shim delegating to step)
    pub fn publish_sized(
        &mut self,
        now: SimTime,
        parent: NodeId,
        tag: MetaTag,
        payload_len: u32,
    ) -> Key {
        match self.step(SenderEvent::Publish {
            now,
            parent,
            tag,
            payload_len: Some(payload_len),
        }) {
            SenderEffect::Published(key) => key,
            _ => unreachable!("Publish yields Published"),
        }
    }

    fn apply_publish(&mut self, now: SimTime, parent: NodeId, tag: MetaTag, len: u32) -> Key {
        let rec = self.table.insert_new(now, len);
        self.ns.add_adu(parent, rec.key, tag);
        let class = self.class_for(tag);
        self.enqueue(class, HotItem::Data(rec.key));
        rec.key
    }

    /// Updates an existing record to a new version and queues its
    /// retransmission. Panics on a dead key.
    // lint: allow(D008, compat shim delegating to step)
    pub fn update(&mut self, key: Key) {
        let _ = self.step(SenderEvent::Update(key));
    }

    fn apply_update(&mut self, key: Key) {
        let rec = self.table.update(key);
        // The new version has 0 bytes on the wire until retransmitted.
        self.ns.update_adu(key, rec.value.version, 0);
        let class = self.class_of_key(key);
        self.enqueue(class, HotItem::Data(key));
    }

    /// Withdraws a record: its lifetime ended. Receivers learn via
    /// summary mismatch (the tombstoned slot) or their own soft-state
    /// expiry. Returns `true` if the key was live.
    // lint: allow(D008, compat shim delegating to step)
    pub fn withdraw(&mut self, key: Key) -> bool {
        match self.step(SenderEvent::Withdraw(key)) {
            SenderEffect::Withdrawn(live) => live,
            _ => unreachable!("Withdraw yields Withdrawn"),
        }
    }

    fn apply_withdraw(&mut self, key: Key) -> bool {
        if self.table.delete(key).is_none() {
            return false;
        }
        self.ns.remove_adu(key);
        // Any queued transmission is dropped lazily at pop time.
        true
    }

    /// The class of a live key (via its namespace tag).
    fn class_of_key(&mut self, key: Key) -> usize {
        let tag = self
            .ns
            .leaf_of(key)
            .map(|leaf| self.ns.tag(leaf))
            .unwrap_or_default();
        self.class_for(tag)
    }

    /// Processes a packet arriving on the feedback channel. Returns the
    /// keys this packet promoted into the hot queue (non-empty only for
    /// NACKs naming live, not-yet-queued keys), so callers can trace the
    /// NACK → promotion causality.
    // lint: allow(D008, compat shim delegating to step)
    pub fn on_packet(&mut self, pkt: &Packet) -> Vec<Key> {
        match self.step(SenderEvent::Feedback(pkt)) {
            SenderEffect::Promoted(keys) => keys,
            _ => unreachable!("Feedback yields Promoted"),
        }
    }

    fn apply_feedback(&mut self, pkt: &Packet) -> Vec<Key> {
        let mut promoted = Vec::new();
        match pkt {
            Packet::Nack(n) => {
                self.stats.nacks_rx += 1;
                if self.muts.drop_promotions {
                    // Defect: the NACK is counted but never promotes its
                    // keys — Figure 7's cold → hot edge is severed, so
                    // lost data waits for the (slow) cold cycle forever.
                    return promoted;
                }
                for &key in &n.keys {
                    if self.table.get(key).is_some() {
                        let item = HotItem::Data(key);
                        if self.queued.contains(&item) {
                            self.stats.nacks_suppressed += 1;
                        } else {
                            let class = self.class_of_key(key);
                            self.enqueue(class, item);
                            promoted.push(key);
                        }
                    } else {
                        self.stats.nacks_suppressed += 1;
                    }
                }
            }
            Packet::RepairQuery(q) => {
                self.stats.queries_rx += 1;
                // Only answer for nodes that exist and are interior.
                if let Some(node) = self.ns.node_at(&q.path) {
                    if !self.ns.is_leaf(node) {
                        // Repair responses ride the control class (0).
                        self.enqueue(0, HotItem::Summary(q.path.clone()));
                    }
                }
            }
            Packet::ReceiverReport(r) => {
                self.stats.reports_rx += 1;
                self.loss
                    .entry(r.receiver_id)
                    .or_insert_with(|| LossEstimator::new(0.25))
                    .on_report(r);
            }
            // Data-channel packets never arrive at the sender.
            Packet::Data(_) | Packet::RootSummary(_) | Packet::NodeSummary(_) => {}
        }
        promoted
    }

    /// Builds the next foreground packet, or `None` when the hot queue is
    /// empty. Dead records and vanished nodes queued earlier are skipped.
    /// An ADU larger than the MTU occupies several consecutive calls, one
    /// fragment each.
    // lint: allow(D008, compat shim delegating to step)
    pub fn next_hot_packet(&mut self) -> Option<Packet> {
        match self.step(SenderEvent::PollHot) {
            SenderEffect::Transmit(pkt) => pkt,
            _ => unreachable!("PollHot yields Transmit"),
        }
    }

    fn apply_next_hot(&mut self) -> Option<Packet> {
        // Continue an in-progress fragmented ADU first.
        if let Some(mut state) = self.hot_frag.take() {
            if let Some((pkt, done)) = self.next_fragment(&mut state) {
                if !done {
                    self.hot_frag = Some(state);
                }
                return Some(pkt);
            }
        }
        loop {
            // Refresh backlog flags and let the stride scheduler pick the
            // class with the next slot.
            for c in 0..self.hot.len() {
                self.hot_sched.set_backlogged(c, !self.hot[c].is_empty());
            }
            let class = self.hot_sched.pick(&mut self.sched_rng)?;
            let Some(item) = self.hot[class].pop_front() else {
                // Stale backlog flag (defensive); mark idle and retry.
                self.hot_sched.set_backlogged(class, false);
                continue;
            };
            self.hot_sched.charge(class, 1);
            self.queued.remove(&item);
            match item {
                HotItem::Data(key) => {
                    let Some(mut state) = self.start_frag(key) else {
                        continue; // withdrawn while queued
                    };
                    let Some((pkt, done)) = self.next_fragment(&mut state) else {
                        continue;
                    };
                    if !done {
                        self.hot_frag = Some(state);
                    }
                    return Some(pkt);
                }
                HotItem::Summary(path) => {
                    let Some(node) = self.ns.node_at(&path) else {
                        continue; // subtree vanished while queued
                    };
                    if self.ns.is_leaf(node) {
                        continue;
                    }
                    let entries = self
                        .ns
                        .summary_entries(node)
                        .into_iter()
                        .map(Into::into)
                        .collect();
                    let seq = self.bump_seq();
                    self.stats.node_summaries_tx += 1;
                    return Some(Packet::NodeSummary(NodeSummaryPacket {
                        seq,
                        path,
                        entries,
                    }));
                }
            }
        }
    }

    /// Builds a background (cold) data retransmission: cycles round-robin
    /// through the live records, re-announcing each in turn. This is the
    /// classic §3 open-loop refresh stream, used when no feedback channel
    /// exists to repair divergence (announce/listen reliability) and by
    /// late-joiner catch-up. Returns `None` when the table is empty.
    // lint: allow(D008, compat shim delegating to step)
    pub fn next_cycle_packet(&mut self) -> Option<Packet> {
        match self.step(SenderEvent::PollCycle) {
            SenderEffect::Transmit(pkt) => pkt,
            _ => unreachable!("PollCycle yields Transmit"),
        }
    }

    fn apply_next_cycle(&mut self) -> Option<Packet> {
        if let Some(mut state) = self.cycle_frag.take() {
            if let Some((pkt, done)) = self.next_fragment(&mut state) {
                if !done {
                    self.cycle_frag = Some(state);
                }
                return Some(pkt);
            }
        }
        loop {
            if self.cycle.is_empty() {
                // live() iterates the BTreeMap-backed table in ascending
                // key order (lint rule D002 guarantees it stays ordered).
                self.cycle = self.table.live().map(|r| r.key).collect();
                self.cycle.reverse(); // pop() serves in ascending order
                if self.cycle.is_empty() {
                    return None;
                }
            }
            let key = self.cycle.pop().expect("nonempty cycle");
            let Some(mut state) = self.start_frag(key) else {
                continue; // withdrawn since the cycle snapshot
            };
            let Some((pkt, done)) = self.next_fragment(&mut state) else {
                continue;
            };
            if !done {
                self.cycle_frag = Some(state);
            }
            return Some(pkt);
        }
    }

    /// Builds a background (cold) packet: the periodic root summary.
    // lint: allow(D008, compat shim delegating to step)
    pub fn summary_packet(&mut self) -> Packet {
        match self.step(SenderEvent::PollSummary) {
            SenderEffect::Transmit(Some(pkt)) => pkt,
            _ => unreachable!("PollSummary yields a packet"),
        }
    }

    fn apply_summary(&mut self) -> Packet {
        let seq = self.bump_seq();
        self.stats.root_summaries_tx += 1;
        let current = self.ns.root_digest();
        let digest = if self.muts.frozen_summary_digest {
            // Defect: the digest is computed once and re-announced
            // forever, so receivers never see later publishes diverge.
            *self.frozen_digest.get_or_insert(current)
        } else {
            current
        };
        Packet::RootSummary(RootSummaryPacket {
            seq,
            digest,
            live_adus: self.ns.live_adus() as u32,
        })
    }

    /// Number of foreground transmissions waiting (all classes).
    pub fn hot_backlog(&self) -> usize {
        self.hot.iter().map(VecDeque::len).sum()
    }

    /// The smoothed loss estimate: the mean of the per-receiver
    /// estimators (0 before any report). The mean drives the allocator
    /// toward the group's typical conditions; use
    /// [`SstpSender::worst_receiver_loss`] to provision for the worst.
    pub fn estimated_loss(&self) -> f64 {
        if self.loss.is_empty() {
            return 0.0;
        }
        self.loss.values().map(LossEstimator::loss).sum::<f64>() / self.loss.len() as f64
    }

    /// The highest per-receiver smoothed loss estimate (0 before any
    /// report).
    pub fn worst_receiver_loss(&self) -> f64 {
        self.loss
            .values()
            .map(LossEstimator::loss)
            .fold(0.0, f64::max)
    }

    /// The publisher's table (ground truth for consistency probes).
    pub fn table(&self) -> &PublisherTable {
        &self.table
    }

    /// Counters.
    pub fn stats(&self) -> SenderStats {
        self.stats
    }

    /// A 64-bit fingerprint of the machine's *semantic* state, for the
    /// `ss-verify` explorer's visited-state set. Covers the publisher
    /// table, the namespace digest, the hot queues, the cold-cycle
    /// snapshot, and in-flight fragmentation; deliberately excludes wire
    /// sequence numbers, statistics, loss estimators, and the scheduler
    /// tie-break RNG (monotone or non-semantic state that would make
    /// every explored state unique). Takes `&mut self` only because the
    /// namespace digest is computed lazily.
    // lint: allow(D008, read-only aside from the lazy digest cache)
    pub fn fingerprint(&mut self) -> u64 {
        let mut h = StateHasher::new();
        h.write_u64(self.table.live_count() as u64);
        for rec in self.table.live() {
            h.write_u64(rec.key.0);
            h.write_u64(rec.value.version);
            h.write_u64(u64::from(rec.value.payload_len));
        }
        let root = self.ns.root_digest();
        h.write_bytes(root.as_bytes());
        h.write_u64(self.hot.len() as u64);
        for q in &self.hot {
            h.write_u64(q.len() as u64);
            for item in q {
                hash_hot_item(&mut h, item);
            }
        }
        for (&tag, &class) in &self.class_of_tag {
            h.write_u64(u64::from(tag));
            h.write_u64(class as u64);
        }
        h.write_u64(self.cycle.len() as u64);
        for key in &self.cycle {
            h.write_u64(key.0);
        }
        hash_frag(&mut h, self.hot_frag.as_ref());
        hash_frag(&mut h, self.cycle_frag.as_ref());
        h.finish()
    }

    /// Checks the machine's internal representation invariants; the
    /// explorer calls this after every step. The hot queues and the
    /// dedup set must describe exactly the same multiset, and every
    /// class index must be in range.
    pub fn self_check(&self) -> Result<(), MachineError> {
        let mut queued_items = 0usize;
        for (class, q) in self.hot.iter().enumerate() {
            for item in q {
                queued_items += 1;
                if !self.queued.contains(item) {
                    return Err(format!(
                        "hot class {class} holds an item missing from the dedup set: {item:?}"
                    ));
                }
            }
        }
        if queued_items != self.queued.len() {
            return Err(format!(
                "hot queues hold {queued_items} items but the dedup set has {}",
                self.queued.len()
            ));
        }
        for (&tag, &class) in &self.class_of_tag {
            if class >= self.hot.len() {
                return Err(format!(
                    "tag {tag} maps to class {class}, but only {} classes exist",
                    self.hot.len()
                ));
            }
        }
        Ok(())
    }
}

fn hash_hot_item(h: &mut StateHasher, item: &HotItem) {
    match item {
        HotItem::Data(key) => {
            h.write_u64(1);
            h.write_u64(key.0);
        }
        HotItem::Summary(path) => {
            h.write_u64(2);
            h.write_u64(path.len() as u64);
            for &slot in path {
                h.write_u64(u64::from(slot));
            }
        }
    }
}

fn hash_frag(h: &mut StateHasher, frag: Option<&FragState>) {
    match frag {
        None => h.write_u64(0),
        Some(f) => {
            h.write_u64(1);
            h.write_u64(f.key.0);
            h.write_u64(f.version);
            h.write_u64(u64::from(f.offset));
            h.write_u64(u64::from(f.total));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{NackPacket, ReceiverReportPacket, RepairQueryPacket};

    fn sender() -> SstpSender {
        SstpSender::new(HashAlgorithm::Fnv64, 1000)
    }

    #[test]
    fn publish_queues_immediate_transmission() {
        let mut s = sender();
        let root = s.root();
        let k = s.publish(SimTime::ZERO, root, MetaTag(1));
        assert_eq!(s.hot_backlog(), 1);
        let pkt = s.next_hot_packet().unwrap();
        match pkt {
            Packet::Data(d) => {
                assert_eq!(d.key, k);
                assert_eq!(d.version, 1);
                assert_eq!(d.seq, 0);
                assert_eq!(d.parent_path, Vec::<u16>::new());
                assert_eq!(d.slot, 0);
                assert_eq!(d.payload_len, 1000);
            }
            p => panic!("expected data, got {p:?}"),
        }
        assert!(s.next_hot_packet().is_none());
        assert_eq!(s.stats().data_tx, 1);
    }

    #[test]
    fn update_bumps_version_and_requeues() {
        let mut s = sender();
        let root = s.root();
        let k = s.publish(SimTime::ZERO, root, MetaTag(0));
        let _ = s.next_hot_packet();
        s.update(k);
        match s.next_hot_packet().unwrap() {
            Packet::Data(d) => assert_eq!(d.version, 2),
            p => panic!("{p:?}"),
        }
    }

    #[test]
    fn nack_requeues_live_keys_with_dedup() {
        let mut s = sender();
        let root = s.root();
        let k1 = s.publish(SimTime::ZERO, root, MetaTag(0));
        let k2 = s.publish(SimTime::ZERO, root, MetaTag(0));
        while s.next_hot_packet().is_some() {}

        let promoted = s.on_packet(&Packet::Nack(NackPacket {
            keys: vec![k1, k2, k1, Key(9999)],
        }));
        // k1 dup suppressed, unknown key suppressed.
        assert_eq!(promoted, vec![k1, k2]);
        assert_eq!(s.hot_backlog(), 2);
        assert_eq!(s.stats().nacks_suppressed, 2);
        assert_eq!(s.stats().nacks_rx, 1);
    }

    #[test]
    fn withdrawn_key_is_skipped_at_pop() {
        let mut s = sender();
        let root = s.root();
        let k = s.publish(SimTime::ZERO, root, MetaTag(0));
        assert!(s.withdraw(k));
        assert!(!s.withdraw(k));
        assert!(s.next_hot_packet().is_none(), "dead record never transmits");
    }

    #[test]
    fn repair_query_yields_node_summary() {
        let mut s = sender();
        let root = s.root();
        let branch = s.add_branch(root, MetaTag(2));
        s.publish(SimTime::ZERO, branch, MetaTag(2));
        while s.next_hot_packet().is_some() {}

        s.on_packet(&Packet::RepairQuery(RepairQueryPacket { path: vec![] }));
        match s.next_hot_packet().unwrap() {
            Packet::NodeSummary(ns) => {
                assert_eq!(ns.path, Vec::<u16>::new());
                assert_eq!(ns.entries.len(), 1);
            }
            p => panic!("{p:?}"),
        }
        // Query for a leaf or nonexistent path is ignored.
        s.on_packet(&Packet::RepairQuery(RepairQueryPacket { path: vec![0, 0] }));
        s.on_packet(&Packet::RepairQuery(RepairQueryPacket { path: vec![9] }));
        assert!(s.next_hot_packet().is_none());
        assert_eq!(s.stats().queries_rx, 3);
    }

    #[test]
    fn summary_packet_reflects_namespace() {
        let mut s = sender();
        let root = s.root();
        let p1 = s.summary_packet();
        s.publish(SimTime::ZERO, root, MetaTag(0));
        let p2 = s.summary_packet();
        match (p1, p2) {
            (Packet::RootSummary(a), Packet::RootSummary(b)) => {
                assert_ne!(a.digest, b.digest);
                assert_eq!(a.live_adus, 0);
                assert_eq!(b.live_adus, 1);
                assert!(b.seq > a.seq);
            }
            _ => unreachable!(),
        }
        assert_eq!(s.stats().root_summaries_tx, 2);
    }

    #[test]
    fn sequences_are_shared_and_monotone() {
        let mut s = sender();
        let root = s.root();
        s.publish(SimTime::ZERO, root, MetaTag(0));
        let seqs = [
            s.summary_packet().data_seq().unwrap(),
            s.next_hot_packet().unwrap().data_seq().unwrap(),
            s.summary_packet().data_seq().unwrap(),
        ];
        assert_eq!(seqs.to_vec(), vec![0, 1, 2]);
    }

    #[test]
    fn class_weights_bias_hot_service() {
        // Two saturated classes with weights 3:1: hot slots split 3:1.
        let mut s = sender();
        let root = s.root();
        let a = s.add_branch(root, MetaTag(1));
        let b = s.add_branch(root, MetaTag(2));
        s.set_class_weight(MetaTag(1), 3);
        s.set_class_weight(MetaTag(2), 1);
        for _ in 0..120 {
            s.publish(SimTime::ZERO, a, MetaTag(1));
            s.publish(SimTime::ZERO, b, MetaTag(2));
        }
        // Drain the first 80 slots and count per-class service.
        let mut counts = [0u32; 3];
        for _ in 0..80 {
            match s.next_hot_packet().unwrap() {
                Packet::Data(d) => counts[d.tag.0 as usize] += 1,
                p => panic!("{p:?}"),
            }
        }
        assert_eq!(counts[1] + counts[2], 80);
        let ratio = f64::from(counts[1]) / f64::from(counts[2]);
        assert!((ratio - 3.0).abs() < 0.3, "service ratio {ratio}");
    }

    #[test]
    fn zero_weight_pauses_a_class() {
        let mut s = sender();
        let root = s.root();
        let a = s.add_branch(root, MetaTag(1));
        let b = s.add_branch(root, MetaTag(2));
        s.set_class_weight(MetaTag(2), 0);
        s.publish(SimTime::ZERO, a, MetaTag(1));
        s.publish(SimTime::ZERO, b, MetaTag(2));
        match s.next_hot_packet().unwrap() {
            Packet::Data(d) => assert_eq!(d.tag, MetaTag(1)),
            p => panic!("{p:?}"),
        }
        assert!(s.next_hot_packet().is_none(), "paused class never serves");
        assert_eq!(s.hot_backlog(), 1, "paused item stays queued");
        // Raising the weight resumes service.
        s.set_class_weight(MetaTag(2), 1);
        match s.next_hot_packet().unwrap() {
            Packet::Data(d) => assert_eq!(d.tag, MetaTag(2)),
            p => panic!("{p:?}"),
        }
    }

    #[test]
    fn control_class_outranks_saturated_data() {
        // A saturated data class must not crowd out repair responses.
        let mut s = sender();
        let root = s.root();
        let a = s.add_branch(root, MetaTag(1));
        for _ in 0..50 {
            s.publish(SimTime::ZERO, a, MetaTag(1));
        }
        s.on_packet(&Packet::RepairQuery(crate::wire::RepairQueryPacket {
            path: vec![],
        }));
        // The node summary appears within the first few slots (control
        // weight 4 vs data weight 1).
        let mut found_at = None;
        for i in 0..6 {
            if matches!(s.next_hot_packet().unwrap(), Packet::NodeSummary(_)) {
                found_at = Some(i);
                break;
            }
        }
        assert!(found_at.is_some(), "repair response starved by data");
    }

    #[test]
    fn reports_feed_loss_estimator() {
        let mut s = sender();
        assert_eq!(s.estimated_loss(), 0.0);
        s.on_packet(&Packet::ReceiverReport(ReceiverReportPacket {
            receiver_id: 0,
            highest_seq: 9,
            received: 5,
        }));
        assert!((s.estimated_loss() - 0.5).abs() < 1e-9);
        assert_eq!(s.stats().reports_rx, 1);
    }
}
