//! Integration gates for the `ss-verify` explorer itself: the real
//! protocol must check out clean at a meaningful scope, and every seeded
//! mutation must be caught by the invariant it was planted to break.

use ss_verify::explore::{detect, explore, run_script};
use ss_verify::invariants::inv;
use ss_verify::model::{parse_script, Action, Scope};
use ss_verify::mutation::{Mutation, MutationSet};

/// The invariant each seeded defect is designed to trip. A mutation
/// caught by a *different* invariant still proves detection, but it
/// means the directed script drifted from its intent — fail loudly.
fn intended_invariant(m: Mutation) -> &'static str {
    match m {
        Mutation::DropPromotions => inv::CONVERGENCE,
        Mutation::NoQueueDedup => inv::SELF_CHECK,
        Mutation::FrozenSummaryDigest => inv::CONVERGENCE,
        Mutation::ReuseSeq => inv::MONOTONE_SEQ,
        Mutation::AcceptStale => inv::VERSION_REGRESSION,
        Mutation::NoBackoffCap => inv::BACKOFF_CAP,
        Mutation::KeepPendingOnInstall => inv::PENDING_NACK,
        Mutation::ExpireEarly => inv::TTL,
        Mutation::DropNackKeys => inv::CONVERGENCE,
        Mutation::VersionClamp => inv::CONVERGENCE,
        Mutation::CorruptRootDigest => inv::REPAIR_QUIESCENCE,
        Mutation::StripTombstones => inv::CONVERGENCE,
        Mutation::DropQueries => inv::CONVERGENCE,
    }
}

#[test]
fn every_seeded_mutation_is_caught_by_its_intended_invariant() {
    for m in Mutation::ALL {
        let cex = detect(m).unwrap_or_else(|| panic!("mutation {} escaped the explorer", m.name()));
        assert_eq!(
            cex.violation.invariant,
            intended_invariant(m),
            "mutation {} caught by the wrong invariant ({})",
            m.name(),
            cex.violation,
        );
        assert!(
            !cex.script.is_empty() || cex.during_drain,
            "counterexample for {} carries no script",
            m.name()
        );
    }
}

#[test]
fn directed_scripts_are_clean_on_the_real_protocol() {
    // Each mutation's adversarial script exercises a hostile schedule;
    // without the defect seeded, the same schedule must pass. This pins
    // down that detection comes from the defect, not the schedule.
    for m in Mutation::ALL {
        if let Some(cex) = run_script(&m.script(), Scope::script(), MutationSet::default()) {
            panic!(
                "script for {} violates the real protocol: {}",
                m.name(),
                cex.violation
            );
        }
    }
}

#[test]
fn real_protocol_explores_clean_at_smoke_scope() {
    let report = explore(Scope::smoke(), MutationSet::default());
    if let Some(cex) = &report.counterexample {
        panic!("real protocol violated an invariant:\n{cex}");
    }
    // The smoke scope is the floor CI leans on in debug builds; a sudden
    // drop in reachable states means the adversary lost moves.
    assert!(
        report.states > 1000,
        "smoke scope shrank to {} states",
        report.states
    );
    assert!(report.drains > 0, "no quiescent state was drain-checked");
}

#[test]
fn counterexample_scripts_replay_to_the_same_violation() {
    // Take a mutation caught via its directed script, round-trip the
    // script through the text form, and replay: same invariant.
    let m = Mutation::AcceptStale;
    let cex = detect(m).expect("accept_stale must be caught");
    let text = cex
        .script
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join("\n");
    let parsed = parse_script(&text).expect("rendered script re-parses");
    assert_eq!(parsed, cex.script);
    let replayed = run_script(&parsed, Scope::script(), m.set())
        .expect("replayed script reproduces the violation");
    assert_eq!(replayed.violation.invariant, cex.violation.invariant);
}

#[test]
fn action_display_and_parse_round_trip() {
    let acts = [
        Action::Publish,
        Action::Update { idx: 1 },
        Action::Withdraw { idx: 0 },
        Action::EmitHot,
        Action::EmitCycle,
        Action::EmitSummary,
        Action::DeliverData { rx: 2 },
        Action::DeliverDataLast { rx: 0 },
        Action::DupData { rx: 1 },
        Action::DropData { rx: 0 },
        Action::ClearData { rx: 1 },
        Action::PollFeedback { rx: 0 },
        Action::DeliverFeedback { rx: 1 },
        Action::DropFeedback { rx: 0 },
        Action::Expire { rx: 2 },
        Action::Tick,
        Action::Crash { rx: 1 },
    ];
    for act in acts {
        let rendered = act.to_string();
        let parsed: Action = rendered.parse().unwrap_or_else(|e| {
            panic!("`{rendered}` does not re-parse: {e}");
        });
        assert_eq!(parsed, act, "`{rendered}` round-trips");
    }
    // Scripts tolerate blank lines and comments.
    let script = parse_script("# adversary\npublish\n\ntick\ndeliver-data 0\n")
        .expect("commented script parses");
    assert_eq!(
        script,
        vec![Action::Publish, Action::Tick, Action::DeliverData { rx: 0 }]
    );
}
