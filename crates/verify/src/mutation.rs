//! Seeded protocol defects for validating the explorer.
//!
//! A model checker that has never caught a bug proves nothing. Each
//! [`Mutation`] here switches on exactly one seeded defect — eight live
//! inside the SSTP endpoints themselves (`TxMutations` / `RxMutations`
//! in `sstp::machine`, compiled in but default-off) and five corrupt
//! packets on the model's simulated wire ([`WireMutations`], applied at
//! delivery time). The `mutations_detected` test asserts the explorer
//! produces a counterexample for every one of them; the same adversarial
//! scripts must run clean on the unmutated protocol.

use crate::model::Action;
use sstp::machine::{RxMutations, TxMutations};

/// Defects injected on the model's wire rather than inside an endpoint:
/// each corrupts one packet kind at delivery time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireMutations {
    /// NACK packets arrive with their key list stripped, so the sender
    /// never learns what to promote.
    pub drop_nack_keys: bool,
    /// Data packets arrive with their version clamped to 1, so updates
    /// never propagate.
    pub version_clamp: bool,
    /// Root summaries arrive with a constant bogus digest, so receivers
    /// chase a divergence that is not there, forever.
    pub corrupt_root_digest: bool,
    /// Node summaries arrive with tombstone entries removed, so
    /// withdrawals never reach receivers.
    pub strip_tombstones: bool,
    /// Repair queries silently vanish in flight, severing the digest
    /// descent.
    pub drop_queries: bool,
}

/// The full defect configuration of one model run.
#[derive(Clone, Copy, Debug, Default)]
pub struct MutationSet {
    /// Sender-side machine defects.
    pub tx: TxMutations,
    /// Receiver-side machine defects.
    pub rx: RxMutations,
    /// Wire-level defects.
    pub wire: WireMutations,
}

/// Every seeded defect the explorer must be able to catch, one per
/// variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Sender: NACKs counted but never promote (Figure 7's cold → hot
    /// edge severed).
    DropPromotions,
    /// Sender: hot-queue dedup disabled; the same key queues twice.
    NoQueueDedup,
    /// Sender: the root summary digest is computed once and frozen.
    FrozenSummaryDigest,
    /// Sender: the data-channel sequence number is never advanced.
    ReuseSeq,
    /// Receiver: stale versions overwrite fresh ones.
    AcceptStale,
    /// Receiver: the exponential-backoff exponent is uncapped.
    NoBackoffCap,
    /// Receiver: a pending NACK survives its own data's installation.
    KeepPendingOnInstall,
    /// Receiver: the expiry sweep reaches half a TTL into the future.
    ExpireEarly,
    /// Wire: NACK key lists are stripped in flight.
    DropNackKeys,
    /// Wire: data versions are clamped to 1 in flight.
    VersionClamp,
    /// Wire: root summary digests are corrupted in flight.
    CorruptRootDigest,
    /// Wire: tombstones are stripped from node summaries in flight.
    StripTombstones,
    /// Wire: repair queries vanish in flight.
    DropQueries,
}

impl Mutation {
    /// Every mutation, in a fixed order.
    pub const ALL: [Mutation; 13] = [
        Mutation::DropPromotions,
        Mutation::NoQueueDedup,
        Mutation::FrozenSummaryDigest,
        Mutation::ReuseSeq,
        Mutation::AcceptStale,
        Mutation::NoBackoffCap,
        Mutation::KeepPendingOnInstall,
        Mutation::ExpireEarly,
        Mutation::DropNackKeys,
        Mutation::VersionClamp,
        Mutation::CorruptRootDigest,
        Mutation::StripTombstones,
        Mutation::DropQueries,
    ];

    /// The mutation's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::DropPromotions => "drop_promotions",
            Mutation::NoQueueDedup => "no_queue_dedup",
            Mutation::FrozenSummaryDigest => "frozen_summary_digest",
            Mutation::ReuseSeq => "reuse_seq",
            Mutation::AcceptStale => "accept_stale",
            Mutation::NoBackoffCap => "no_backoff_cap",
            Mutation::KeepPendingOnInstall => "keep_pending_on_install",
            Mutation::ExpireEarly => "expire_early",
            Mutation::DropNackKeys => "drop_nack_keys",
            Mutation::VersionClamp => "version_clamp",
            Mutation::CorruptRootDigest => "corrupt_root_digest",
            Mutation::StripTombstones => "strip_tombstones",
            Mutation::DropQueries => "drop_queries",
        }
    }

    /// One-line description for `--list-mutations`.
    pub fn describe(self) -> &'static str {
        match self {
            Mutation::DropPromotions => "sender ignores NACK promotions (cold→hot edge severed)",
            Mutation::NoQueueDedup => "sender hot-queue dedup disabled",
            Mutation::FrozenSummaryDigest => "sender freezes the root summary digest",
            Mutation::ReuseSeq => "sender reuses data-channel sequence numbers",
            Mutation::AcceptStale => "receiver lets stale versions overwrite fresh ones",
            Mutation::NoBackoffCap => "receiver backoff exponent uncapped",
            Mutation::KeepPendingOnInstall => {
                "receiver keeps a pending NACK after its data installs"
            }
            Mutation::ExpireEarly => "receiver expiry sweep reaches half a TTL early",
            Mutation::DropNackKeys => "wire strips NACK key lists",
            Mutation::VersionClamp => "wire clamps data versions to 1",
            Mutation::CorruptRootDigest => "wire corrupts root summary digests",
            Mutation::StripTombstones => "wire strips tombstones from node summaries",
            Mutation::DropQueries => "wire drops repair queries",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Mutation> {
        Mutation::ALL.iter().copied().find(|m| m.name() == name)
    }

    /// The defect configuration switching on exactly this mutation.
    pub fn set(self) -> MutationSet {
        let mut s = MutationSet::default();
        match self {
            Mutation::DropPromotions => s.tx.drop_promotions = true,
            Mutation::NoQueueDedup => s.tx.no_queue_dedup = true,
            Mutation::FrozenSummaryDigest => s.tx.frozen_summary_digest = true,
            Mutation::ReuseSeq => s.tx.reuse_seq = true,
            Mutation::AcceptStale => s.rx.accept_stale = true,
            Mutation::NoBackoffCap => s.rx.no_backoff_cap = true,
            Mutation::KeepPendingOnInstall => s.rx.keep_pending_on_install = true,
            Mutation::ExpireEarly => s.rx.expire_early = true,
            Mutation::DropNackKeys => s.wire.drop_nack_keys = true,
            Mutation::VersionClamp => s.wire.version_clamp = true,
            Mutation::CorruptRootDigest => s.wire.corrupt_root_digest = true,
            Mutation::StripTombstones => s.wire.strip_tombstones = true,
            Mutation::DropQueries => s.wire.drop_queries = true,
        }
        s
    }

    /// A directed adversarial event script that exposes this defect.
    /// Replayed through the same model and invariant machinery as the
    /// exhaustive search; the unmutated protocol must run every one of
    /// these clean (`scripts_clean_on_real_protocol`).
    pub fn script(self) -> Vec<Action> {
        use Action::*;
        match self {
            // Lose rx0's copy; repair is the only way back, and the
            // severed promotion edge means the post-script drain never
            // converges.
            Mutation::DropPromotions => {
                vec![Publish, EmitHot, DropData { rx: 0 }, DeliverData { rx: 1 }]
            }
            // An update of an already-queued key must be suppressed by
            // the dedup set; without it the sender's own self-check
            // finds the queue and the set disagreeing.
            Mutation::NoQueueDedup => vec![Publish, Update { idx: 0 }],
            // Freeze the digest over an empty tree, then publish: the
            // summary keeps announcing emptiness, so a receiver that
            // lost the data never learns to repair.
            Mutation::FrozenSummaryDigest => vec![
                EmitSummary,
                DeliverData { rx: 0 },
                DeliverData { rx: 1 },
                Publish,
                EmitHot,
                DropData { rx: 0 },
                DropData { rx: 1 },
            ],
            // Two consecutive transmissions must carry increasing
            // sequence numbers.
            Mutation::ReuseSeq => vec![Publish, EmitHot, Publish, EmitHot],
            // Put v1 and v2 in flight, deliver them newest-first: the
            // reordered v1 must not regress the replica.
            Mutation::AcceptStale => vec![
                Publish,
                EmitHot,
                Update { idx: 0 },
                EmitHot,
                DeliverDataLast { rx: 0 },
                DeliverData { rx: 0 },
            ],
            // Starve the same root query five times; the fifth re-request
            // gap must stay within the 16x cap.
            Mutation::NoBackoffCap => {
                let mut s = vec![Publish, EmitHot, DropData { rx: 0 }, DeliverData { rx: 1 }];
                for _ in 0..5 {
                    s.extend([EmitSummary, DeliverData { rx: 0 }, ClearData { rx: 1 }]);
                    // Let the slot jitter pass, fire the query, lose it.
                    s.extend([Tick, Tick, Tick, Tick]);
                    s.extend([PollFeedback { rx: 0 }, DropFeedback { rx: 0 }]);
                    // Wait out the (capped) exponential gap: 16 ticks is
                    // two full capped gaps at the script scope's timing.
                    s.extend(std::iter::repeat_n(Tick, 16));
                }
                s
            }
            // Walk the full repair descent to a scheduled NACK, then let
            // the cold cycle deliver the data: the pending NACK must die
            // with the install.
            Mutation::KeepPendingOnInstall => vec![
                Publish,
                EmitHot,
                DropData { rx: 0 },
                DeliverData { rx: 1 },
                EmitSummary,
                DeliverData { rx: 0 },
                ClearData { rx: 1 },
                PollFeedback { rx: 0 },
                DeliverFeedback { rx: 0 },
                EmitHot,
                DeliverData { rx: 0 },
                ClearData { rx: 1 },
                EmitCycle,
                DeliverData { rx: 0 },
            ],
            // Install a key, stay well inside its TTL, sweep: nothing may
            // die.
            Mutation::ExpireEarly => vec![
                Publish,
                EmitHot,
                DeliverData { rx: 0 },
                DeliverData { rx: 1 },
                Tick,
                Tick,
                Tick,
                Expire { rx: 0 },
            ],
            // Same descent as keep_pending_on_install, but the NACK is
            // fired and delivered — with its keys stripped, the drain
            // can never promote the lost data.
            Mutation::DropNackKeys => vec![
                Publish,
                EmitHot,
                DropData { rx: 0 },
                DeliverData { rx: 1 },
                EmitSummary,
                DeliverData { rx: 0 },
                ClearData { rx: 1 },
                PollFeedback { rx: 0 },
                DeliverFeedback { rx: 0 },
                EmitHot,
                DeliverData { rx: 0 },
                ClearData { rx: 1 },
                PollFeedback { rx: 0 },
                DeliverFeedback { rx: 0 },
            ],
            // The clamped wire forever re-delivers v1 while the publisher
            // sits at v2.
            Mutation::VersionClamp => vec![
                Publish,
                Update { idx: 0 },
                EmitHot,
                DeliverData { rx: 0 },
                DeliverData { rx: 1 },
            ],
            // A fully consistent group must stop generating repair
            // traffic; the corrupted digest keeps it descending forever.
            Mutation::CorruptRootDigest => vec![
                Publish,
                EmitHot,
                DeliverData { rx: 0 },
                DeliverData { rx: 1 },
                EmitSummary,
                DeliverData { rx: 0 },
                DeliverData { rx: 1 },
            ],
            // Withdraw after delivery: the tombstone is the only way the
            // receivers learn, and the wire eats it.
            Mutation::StripTombstones => vec![
                Publish,
                EmitHot,
                DeliverData { rx: 0 },
                DeliverData { rx: 1 },
                Withdraw { idx: 0 },
            ],
            // A lost packet whose repair descent starts with a query the
            // wire swallows.
            Mutation::DropQueries => {
                vec![Publish, EmitHot, DropData { rx: 0 }, DeliverData { rx: 1 }]
            }
        }
    }
}
