//! The small-scope SSTP model the explorer drives.
//!
//! One [`sstp::sender::SstpSender`] multicasts to a handful of
//! [`sstp::receiver::SstpReceiver`]s over per-receiver in-flight packet
//! queues. Every protocol step is an [`Action`] — publish, transmit,
//! deliver, lose, duplicate, reorder, fire feedback, advance time,
//! expire, crash — so an interleaving is just a list of actions, and a
//! counterexample is a replayable script of them. The model owns the
//! adversary's budgets (how many losses, duplicates, crashes, clock
//! ticks the search may spend), which is what keeps the state space
//! finite.
//!
//! All protocol state advances exclusively through the endpoints'
//! `step` seam; the model adds nothing but the wire and the adversary.

use crate::invariants::{self, Violation};
use crate::mutation::MutationSet;
use softstate::Key;
use ss_netsim::{SimDuration, SimRng, SimTime};
use sstp::digest::{Digest, HashAlgorithm};
use sstp::machine::{ReceiverEffect, ReceiverEvent, SenderEffect, SenderEvent, StateHasher};
use sstp::namespace::{MetaTag, NodeId};
use sstp::receiver::{FeedbackTiming, Interest, ReceiverConfig, SstpReceiver};
use sstp::sender::SstpSender;
use sstp::wire::{Packet, WireChildEntry};
use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;

/// The bounded-scope configuration of one exploration: how many
/// receivers, how much adversary budget, and the protocol timing.
#[derive(Clone, Copy, Debug)]
pub struct Scope {
    /// Number of receivers (the paper's "one sender, a multicast
    /// group"); small scopes of 2–3 suffice for every seeded defect.
    pub receivers: usize,
    /// Simulated payload bytes per ADU (kept under the MTU so ADUs are
    /// single-packet; fragmentation has its own unit tests).
    pub payload: u32,
    /// How many fresh keys the search may publish.
    pub publish_budget: u32,
    /// How many version bumps the search may apply.
    pub update_budget: u32,
    /// How many withdrawals the search may apply.
    pub withdraw_budget: u32,
    /// How many packets (data or feedback) the adversary may lose.
    pub loss_budget: u32,
    /// How many packets the adversary may duplicate.
    pub dup_budget: u32,
    /// How many receiver crash/rejoin events the adversary may inject.
    pub crash_budget: u32,
    /// How many clock ticks the search may spend.
    pub tick_budget: u32,
    /// How many cold-cycle transmissions the search may pull.
    pub cycle_budget: u32,
    /// How many root summaries the search may emit.
    pub summary_budget: u32,
    /// One clock tick.
    pub tick: SimDuration,
    /// Receiver soft-state TTL.
    pub ttl: SimDuration,
    /// Receiver repair backoff (the exponential base).
    pub repair_backoff: SimDuration,
    /// In-flight packets per receiver before emit actions are disabled.
    pub flight_cap: usize,
    /// DFS depth bound.
    pub max_depth: usize,
    /// Repair rounds the quiescent-drain check runs before declaring
    /// non-convergence.
    pub drain_rounds: usize,
}

impl Scope {
    /// The shallow CI scope: wide branching, modest depth. This is the
    /// primary gate — it must visit well over 10^5 distinct states.
    pub fn ci_shallow() -> Self {
        Scope {
            receivers: 2,
            payload: 64,
            publish_budget: 2,
            update_budget: 1,
            withdraw_budget: 1,
            loss_budget: 2,
            dup_budget: 1,
            crash_budget: 1,
            tick_budget: 2,
            cycle_budget: 2,
            summary_budget: 2,
            tick: SimDuration::from_micros(500_000),
            ttl: SimDuration::from_micros(2_000_000),
            repair_backoff: SimDuration::from_micros(500_000),
            flight_cap: 2,
            max_depth: 8,
            drain_rounds: 40,
        }
    }

    /// The deep CI scope: narrower adversary, deeper interleavings, so
    /// long repair conversations (descent → NACK → retransmit → expiry)
    /// fit inside the bound.
    pub fn ci_deep() -> Self {
        Scope {
            publish_budget: 1,
            update_budget: 1,
            withdraw_budget: 0,
            loss_budget: 2,
            dup_budget: 0,
            crash_budget: 1,
            tick_budget: 3,
            cycle_budget: 1,
            summary_budget: 2,
            max_depth: 12,
            ..Scope::ci_shallow()
        }
    }

    /// A tiny scope for unit tests and smoke runs.
    pub fn smoke() -> Self {
        Scope {
            publish_budget: 1,
            update_budget: 1,
            withdraw_budget: 0,
            loss_budget: 1,
            dup_budget: 0,
            crash_budget: 0,
            tick_budget: 1,
            cycle_budget: 1,
            summary_budget: 1,
            max_depth: 6,
            ..Scope::ci_shallow()
        }
    }

    /// The generous scope directed mutation scripts run under: budgets
    /// are sized so no script ever starves, and the timing matches the
    /// scripts' tick arithmetic (tick = backoff = 500 ms, TTL = 4
    /// ticks).
    pub fn script() -> Self {
        Scope {
            receivers: 2,
            payload: 64,
            publish_budget: 8,
            update_budget: 8,
            withdraw_budget: 4,
            loss_budget: 32,
            dup_budget: 8,
            crash_budget: 2,
            tick_budget: 160,
            cycle_budget: 8,
            summary_budget: 16,
            tick: SimDuration::from_micros(500_000),
            ttl: SimDuration::from_micros(2_000_000),
            repair_backoff: SimDuration::from_micros(500_000),
            flight_cap: 8,
            max_depth: 64,
            drain_rounds: 40,
        }
    }
}

/// One atomic step of the model: a protocol move or an adversary move.
///
/// `rx` indexes a receiver; `idx` indexes the sender's live keys in
/// ascending key order. Actions print as (and parse from) one-word
/// script lines — a counterexample is just a sequence of these.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Publish a fresh ADU under the root.
    Publish,
    /// Bump the version of the `idx`-th live key.
    Update {
        /// Index into the ascending live-key list.
        idx: u8,
    },
    /// Withdraw the `idx`-th live key.
    Withdraw {
        /// Index into the ascending live-key list.
        idx: u8,
    },
    /// Pull the next hot (foreground) packet and broadcast it.
    EmitHot,
    /// Pull the next cold-cycle packet and broadcast it.
    EmitCycle,
    /// Emit the periodic root summary and broadcast it.
    EmitSummary,
    /// Deliver the oldest in-flight packet to receiver `rx`.
    DeliverData {
        /// Receiver index.
        rx: u8,
    },
    /// Deliver the *newest* in-flight packet to receiver `rx` (reorder).
    DeliverDataLast {
        /// Receiver index.
        rx: u8,
    },
    /// Duplicate the oldest in-flight packet for receiver `rx`.
    DupData {
        /// Receiver index.
        rx: u8,
    },
    /// Lose the oldest in-flight packet for receiver `rx`.
    DropData {
        /// Receiver index.
        rx: u8,
    },
    /// Script-only: discard everything in flight toward receiver `rx`
    /// without spending loss budget (used to keep a bystander receiver
    /// out of a directed scenario).
    ClearData {
        /// Receiver index.
        rx: u8,
    },
    /// Fire receiver `rx`'s due feedback into the feedback channel.
    PollFeedback {
        /// Receiver index.
        rx: u8,
    },
    /// Deliver receiver `rx`'s oldest feedback packet to the sender.
    DeliverFeedback {
        /// Receiver index.
        rx: u8,
    },
    /// Lose receiver `rx`'s oldest feedback packet.
    DropFeedback {
        /// Receiver index.
        rx: u8,
    },
    /// Run receiver `rx`'s soft-state expiry sweep.
    Expire {
        /// Receiver index.
        rx: u8,
    },
    /// Advance the shared clock by one tick.
    Tick,
    /// Crash receiver `rx` and rejoin it with empty state.
    Crash {
        /// Receiver index.
        rx: u8,
    },
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Publish => write!(f, "publish"),
            Action::Update { idx } => write!(f, "update {idx}"),
            Action::Withdraw { idx } => write!(f, "withdraw {idx}"),
            Action::EmitHot => write!(f, "emit-hot"),
            Action::EmitCycle => write!(f, "emit-cycle"),
            Action::EmitSummary => write!(f, "emit-summary"),
            Action::DeliverData { rx } => write!(f, "deliver-data {rx}"),
            Action::DeliverDataLast { rx } => write!(f, "deliver-data-last {rx}"),
            Action::DupData { rx } => write!(f, "dup-data {rx}"),
            Action::DropData { rx } => write!(f, "drop-data {rx}"),
            Action::ClearData { rx } => write!(f, "clear-data {rx}"),
            Action::PollFeedback { rx } => write!(f, "poll-feedback {rx}"),
            Action::DeliverFeedback { rx } => write!(f, "deliver-feedback {rx}"),
            Action::DropFeedback { rx } => write!(f, "drop-feedback {rx}"),
            Action::Expire { rx } => write!(f, "expire {rx}"),
            Action::Tick => write!(f, "tick"),
            Action::Crash { rx } => write!(f, "crash {rx}"),
        }
    }
}

impl FromStr for Action {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split_whitespace();
        let word = parts.next().ok_or_else(|| "empty action".to_string())?;
        let arg = |parts: &mut std::str::SplitWhitespace| -> Result<u8, String> {
            parts
                .next()
                .ok_or_else(|| format!("`{word}` needs an index"))?
                .parse::<u8>()
                .map_err(|e| format!("bad index for `{word}`: {e}"))
        };
        let act = match word {
            "publish" => Action::Publish,
            "update" => Action::Update {
                idx: arg(&mut parts)?,
            },
            "withdraw" => Action::Withdraw {
                idx: arg(&mut parts)?,
            },
            "emit-hot" => Action::EmitHot,
            "emit-cycle" => Action::EmitCycle,
            "emit-summary" => Action::EmitSummary,
            "deliver-data" => Action::DeliverData {
                rx: arg(&mut parts)?,
            },
            "deliver-data-last" => Action::DeliverDataLast {
                rx: arg(&mut parts)?,
            },
            "dup-data" => Action::DupData {
                rx: arg(&mut parts)?,
            },
            "drop-data" => Action::DropData {
                rx: arg(&mut parts)?,
            },
            "clear-data" => Action::ClearData {
                rx: arg(&mut parts)?,
            },
            "poll-feedback" => Action::PollFeedback {
                rx: arg(&mut parts)?,
            },
            "deliver-feedback" => Action::DeliverFeedback {
                rx: arg(&mut parts)?,
            },
            "drop-feedback" => Action::DropFeedback {
                rx: arg(&mut parts)?,
            },
            "expire" => Action::Expire {
                rx: arg(&mut parts)?,
            },
            "tick" => Action::Tick,
            "crash" => Action::Crash {
                rx: arg(&mut parts)?,
            },
            other => return Err(format!("unknown action `{other}`")),
        };
        if parts.next().is_some() {
            return Err(format!("trailing tokens after `{word}`"));
        }
        Ok(act)
    }
}

/// Parses a whole replay script: one action per line, `#` comments and
/// blank lines ignored.
pub fn parse_script(src: &str) -> Result<Vec<Action>, String> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        out.push(
            line.parse::<Action>()
                .map_err(|e| format!("line {}: {e}", i + 1))?,
        );
    }
    Ok(out)
}

/// The explorable system state: endpoints, wire, clock, and the
/// adversary's remaining budgets.
#[derive(Clone)]
pub struct Model {
    pub(crate) scope: Scope,
    pub(crate) muts: MutationSet,
    pub(crate) sender: SstpSender,
    pub(crate) receivers: Vec<SstpReceiver>,
    /// In-flight data-channel packets, per receiver (the multicast tree
    /// delivers an independent copy to each).
    pub(crate) data_flights: Vec<VecDeque<Packet>>,
    /// In-flight feedback packets, per receiver.
    pub(crate) fb_flights: Vec<VecDeque<Packet>>,
    pub(crate) now: SimTime,
    root: NodeId,
    publishes_left: u32,
    updates_left: u32,
    withdraws_left: u32,
    losses_left: u32,
    dups_left: u32,
    crashes_left: u32,
    ticks_left: u32,
    cycles_left: u32,
    summaries_left: u32,
    /// Highest data-channel sequence seen leaving the sender, for the
    /// monotone-sequence invariant.
    last_data_seq: Option<u64>,
    /// Bumps the rejoin RNG seed so a crashed receiver's replacement is
    /// distinguishable from the original.
    crash_gen: u64,
}

fn fresh_receiver(scope: &Scope, id: u32, gen: u64, muts: &MutationSet) -> SstpReceiver {
    let cfg = ReceiverConfig {
        id,
        ttl: scope.ttl,
        algo: HashAlgorithm::Fnv64,
        interest: Interest::All,
        feedback: true,
        repair_backoff: scope.repair_backoff,
        timing: FeedbackTiming::Immediate,
    };
    SstpReceiver::new(cfg, SimRng::new(0x5EED_0000 + u64::from(id) * 1000 + gen))
        .with_mutations(muts.rx)
}

impl Model {
    /// Builds the initial state: empty endpoints, empty wire, time zero.
    pub fn new(scope: Scope, muts: MutationSet) -> Self {
        let sender = SstpSender::new(HashAlgorithm::Fnv64, scope.payload).with_mutations(muts.tx);
        let root = sender.root();
        let receivers = (0..scope.receivers)
            .map(|i| fresh_receiver(&scope, i as u32, 0, &muts))
            .collect();
        Model {
            muts,
            sender,
            receivers,
            data_flights: vec![VecDeque::new(); scope.receivers],
            fb_flights: vec![VecDeque::new(); scope.receivers],
            now: SimTime::ZERO,
            root,
            publishes_left: scope.publish_budget,
            updates_left: scope.update_budget,
            withdraws_left: scope.withdraw_budget,
            losses_left: scope.loss_budget,
            dups_left: scope.dup_budget,
            crashes_left: scope.crash_budget,
            ticks_left: scope.tick_budget,
            cycles_left: scope.cycle_budget,
            summaries_left: scope.summary_budget,
            last_data_seq: None,
            crash_gen: 0,
            scope,
        }
    }

    /// The scope this model was built with.
    pub fn scope(&self) -> &Scope {
        &self.scope
    }

    /// The sender's live keys in ascending order (the `idx` namespace
    /// for [`Action::Update`] / [`Action::Withdraw`]).
    pub fn live_keys(&self) -> Vec<Key> {
        self.sender.table().live().map(|r| r.key).collect()
    }

    /// Every action currently enabled, in a fixed deterministic order.
    /// Budget-exhausted and no-op moves are excluded, which is what
    /// keeps the branching factor honest.
    pub fn enabled(&self) -> Vec<Action> {
        let mut acts = Vec::with_capacity(16);
        let room = self
            .data_flights
            .iter()
            .all(|f| f.len() < self.scope.flight_cap);
        if self.publishes_left > 0 {
            acts.push(Action::Publish);
        }
        let keys = self.live_keys();
        for idx in 0..keys.len().min(4) {
            if self.updates_left > 0 {
                acts.push(Action::Update { idx: idx as u8 });
            }
            if self.withdraws_left > 0 {
                acts.push(Action::Withdraw { idx: idx as u8 });
            }
        }
        if room && self.sender.hot_backlog() > 0 {
            acts.push(Action::EmitHot);
        }
        if room && self.cycles_left > 0 && self.sender.table().live_count() > 0 {
            acts.push(Action::EmitCycle);
        }
        if room && self.summaries_left > 0 {
            acts.push(Action::EmitSummary);
        }
        for rx in 0..self.receivers.len() {
            let r = rx as u8;
            let flight = &self.data_flights[rx];
            if !flight.is_empty() {
                acts.push(Action::DeliverData { rx: r });
            }
            if flight.len() >= 2 {
                acts.push(Action::DeliverDataLast { rx: r });
            }
            if !flight.is_empty() && self.dups_left > 0 && flight.len() < self.scope.flight_cap {
                acts.push(Action::DupData { rx: r });
            }
            if !flight.is_empty() && self.losses_left > 0 {
                acts.push(Action::DropData { rx: r });
            }
            if self.receivers[rx]
                .next_feedback_at()
                .is_some_and(|t| t <= self.now)
            {
                acts.push(Action::PollFeedback { rx: r });
            }
            if !self.fb_flights[rx].is_empty() {
                acts.push(Action::DeliverFeedback { rx: r });
                if self.losses_left > 0 {
                    acts.push(Action::DropFeedback { rx: r });
                }
            }
            if !self.receivers[rx].replica().is_empty() {
                acts.push(Action::Expire { rx: r });
            }
            if self.crashes_left > 0 {
                acts.push(Action::Crash { rx: r });
            }
        }
        if self.ticks_left > 0 {
            acts.push(Action::Tick);
        }
        acts
    }

    /// Applies one action, running every per-step invariant check.
    /// Actions on empty flights are no-ops (replay scripts may
    /// over-approximate); budget bookkeeping saturates.
    pub fn apply(&mut self, act: Action) -> Result<(), Violation> {
        match act {
            Action::Publish => {
                let ev = SenderEvent::Publish {
                    now: self.now,
                    parent: self.root,
                    tag: MetaTag(0),
                    payload_len: None,
                };
                let _ = self.sender.step(ev);
                self.publishes_left = self.publishes_left.saturating_sub(1);
            }
            Action::Update { idx } => {
                if let Some(&key) = self.live_keys().get(idx as usize) {
                    let _ = self.sender.step(SenderEvent::Update(key));
                    self.updates_left = self.updates_left.saturating_sub(1);
                }
            }
            Action::Withdraw { idx } => {
                if let Some(&key) = self.live_keys().get(idx as usize) {
                    let _ = self.sender.step(SenderEvent::Withdraw(key));
                    self.withdraws_left = self.withdraws_left.saturating_sub(1);
                }
            }
            Action::EmitHot => {
                self.emit(SenderEvent::PollHot)?;
            }
            Action::EmitCycle => {
                if self.emit(SenderEvent::PollCycle)? {
                    self.cycles_left = self.cycles_left.saturating_sub(1);
                }
            }
            Action::EmitSummary => {
                if self.emit(SenderEvent::PollSummary)? {
                    self.summaries_left = self.summaries_left.saturating_sub(1);
                }
            }
            Action::DeliverData { rx } => {
                let rx = rx as usize;
                if let Some(pkt) = self.data_flights[rx].pop_front() {
                    self.deliver_data(rx, pkt)?;
                }
            }
            Action::DeliverDataLast { rx } => {
                let rx = rx as usize;
                if let Some(pkt) = self.data_flights[rx].pop_back() {
                    self.deliver_data(rx, pkt)?;
                }
            }
            Action::DupData { rx } => {
                let rx = rx as usize;
                if let Some(pkt) = self.data_flights[rx].front().cloned() {
                    self.data_flights[rx].push_back(pkt);
                    self.dups_left = self.dups_left.saturating_sub(1);
                }
            }
            Action::DropData { rx } => {
                if self.data_flights[rx as usize].pop_front().is_some() {
                    self.losses_left = self.losses_left.saturating_sub(1);
                }
            }
            Action::ClearData { rx } => {
                self.data_flights[rx as usize].clear();
            }
            Action::PollFeedback { rx } => {
                self.poll_feedback(rx as usize)?;
            }
            Action::DeliverFeedback { rx } => {
                let rx = rx as usize;
                if let Some(pkt) = self.fb_flights[rx].pop_front() {
                    self.deliver_feedback(pkt)?;
                }
            }
            Action::DropFeedback { rx } => {
                if self.fb_flights[rx as usize].pop_front().is_some() {
                    self.losses_left = self.losses_left.saturating_sub(1);
                }
            }
            Action::Expire { rx } => {
                self.expire(rx as usize)?;
            }
            Action::Tick => {
                self.now += self.scope.tick;
                self.ticks_left = self.ticks_left.saturating_sub(1);
            }
            Action::Crash { rx } => {
                let rx = rx as usize;
                self.crash_gen += 1;
                self.receivers[rx] =
                    fresh_receiver(&self.scope, rx as u32, self.crash_gen, &self.muts);
                self.data_flights[rx].clear();
                self.fb_flights[rx].clear();
                self.crashes_left = self.crashes_left.saturating_sub(1);
            }
        }
        invariants::post_checks(self)
    }

    /// Pulls one packet from the sender and broadcasts a copy to every
    /// receiver's flight. Returns whether a packet was produced.
    pub(crate) fn emit(&mut self, ev: SenderEvent) -> Result<bool, Violation> {
        let pkt = match self.sender.step(ev) {
            SenderEffect::Transmit(p) => p,
            _ => None,
        };
        let Some(pkt) = pkt else {
            return Ok(false);
        };
        invariants::check_monotone_seq(&mut self.last_data_seq, &pkt)?;
        for flight in &mut self.data_flights {
            flight.push_back(pkt.clone());
        }
        Ok(true)
    }

    /// Applies the wire mutations to a data-channel packet.
    fn mangle_data(&self, mut pkt: Packet) -> Packet {
        match &mut pkt {
            Packet::Data(d) if self.muts.wire.version_clamp => d.version = 1,
            Packet::RootSummary(rs) if self.muts.wire.corrupt_root_digest => {
                rs.digest = Digest::from_u64(0xBAD_5EED);
            }
            Packet::NodeSummary(ns) if self.muts.wire.strip_tombstones => {
                ns.entries
                    .retain(|e| !matches!(e, WireChildEntry::Dead { .. }));
            }
            _ => {}
        }
        pkt
    }

    /// Delivers one data-channel packet to receiver `rx`, checking the
    /// no-regression and no-pending-NACK-after-install invariants
    /// around the step.
    pub(crate) fn deliver_data(&mut self, rx: usize, pkt: Packet) -> Result<(), Violation> {
        let pkt = self.mangle_data(pkt);
        let data = match &pkt {
            Packet::Data(d) => Some((d.key, d.is_whole(), d.version)),
            _ => None,
        };
        let before = data.and_then(|(key, _, _)| {
            self.receivers[rx]
                .replica()
                .get(key)
                .map(|e| e.value.version)
        });
        let _ = self.receivers[rx].step(ReceiverEvent::Packet {
            now: self.now,
            pkt: &pkt,
        });
        if let Some((key, whole, _)) = data {
            let after = self.receivers[rx]
                .replica()
                .get(key)
                .map(|e| e.value.version);
            invariants::check_no_version_regression(rx, key, before, after)?;
            if whole && after.is_some() {
                invariants::check_no_pending_nack_after_install(&self.receivers[rx], rx, key)?;
            }
        }
        invariants::post_checks(self)
    }

    /// Fires receiver `rx`'s due feedback into the feedback channel.
    pub(crate) fn poll_feedback(&mut self, rx: usize) -> Result<(), Violation> {
        let eff = self.receivers[rx].step(ReceiverEvent::PollFeedback { now: self.now });
        if let ReceiverEffect::Feedback(pkts) = eff {
            self.fb_flights[rx].extend(pkts);
        }
        invariants::post_checks(self)
    }

    /// Delivers one feedback packet to the sender, applying the wire
    /// mutations (a dropped query simply vanishes).
    pub(crate) fn deliver_feedback(&mut self, mut pkt: Packet) -> Result<(), Violation> {
        match &mut pkt {
            Packet::Nack(n) if self.muts.wire.drop_nack_keys => n.keys.clear(),
            Packet::RepairQuery(_) if self.muts.wire.drop_queries => return Ok(()),
            _ => {}
        }
        let _ = self.sender.step(SenderEvent::Feedback(&pkt));
        invariants::post_checks(self)
    }

    /// Runs receiver `rx`'s expiry sweep, checking that nothing whose
    /// deadline is still in the future dies.
    pub(crate) fn expire(&mut self, rx: usize) -> Result<(), Violation> {
        let safe: Vec<Key> = self.receivers[rx]
            .replica()
            .entries()
            .filter(|(_, e)| e.expires_at > self.now)
            .map(|(k, _)| *k)
            .collect();
        let _ = self.receivers[rx].step(ReceiverEvent::Expire { now: self.now });
        invariants::check_ttl_respected(&self.receivers[rx], rx, self.now, &safe)?;
        invariants::post_checks(self)
    }

    /// Whether the wire is empty (nothing in flight in either
    /// direction) — the states where the quiescent-drain convergence
    /// check runs.
    pub fn is_quiescent(&self) -> bool {
        self.data_flights.iter().all(VecDeque::is_empty)
            && self.fb_flights.iter().all(VecDeque::is_empty)
    }

    /// A fingerprint of the full model state for the visited set:
    /// endpoint fingerprints, in-flight packets (minus their sequence
    /// numbers, which are monotone bookkeeping, not protocol state),
    /// the clock, and the remaining budgets.
    pub fn fingerprint(&mut self) -> u64 {
        let mut h = StateHasher::new();
        h.write_u64(self.sender.fingerprint());
        for rx in &mut self.receivers {
            h.write_u64(rx.fingerprint());
        }
        for flight in self.data_flights.iter().chain(self.fb_flights.iter()) {
            h.write_u64(flight.len() as u64);
            for pkt in flight {
                hash_packet(&mut h, pkt);
            }
        }
        h.write_u64(self.now.as_micros());
        for b in [
            self.publishes_left,
            self.updates_left,
            self.withdraws_left,
            self.losses_left,
            self.dups_left,
            self.crashes_left,
            self.ticks_left,
            self.cycles_left,
            self.summaries_left,
        ] {
            h.write_u64(u64::from(b));
        }
        h.write_u64(self.crash_gen);
        h.finish()
    }
}

/// Hashes a packet's semantic content, excluding the data-channel
/// sequence number (two states differing only in how many packets the
/// sender has ever sent are the same protocol state).
fn hash_packet(h: &mut StateHasher, pkt: &Packet) {
    match pkt {
        Packet::Data(d) => {
            h.write_u64(1);
            h.write_u64(d.key.0);
            h.write_u64(d.version);
            h.write_u64(u64::from(d.slot));
            h.write_u64(u64::from(d.tag.0));
            h.write_u64(u64::from(d.offset));
            h.write_u64(u64::from(d.payload_len));
            h.write_u64(u64::from(d.total_len));
            for &c in &d.parent_path {
                h.write_u64(u64::from(c));
            }
        }
        Packet::RootSummary(p) => {
            h.write_u64(2);
            h.write_bytes(p.digest.as_bytes());
            h.write_u64(u64::from(p.live_adus));
        }
        Packet::NodeSummary(p) => {
            h.write_u64(3);
            for &c in &p.path {
                h.write_u64(u64::from(c));
            }
            h.write_u64(p.entries.len() as u64);
            for e in &p.entries {
                match e {
                    WireChildEntry::Dead { slot } => {
                        h.write_u64(10);
                        h.write_u64(u64::from(*slot));
                    }
                    WireChildEntry::Interior { slot, digest, tag } => {
                        h.write_u64(11);
                        h.write_u64(u64::from(*slot));
                        h.write_bytes(digest.as_bytes());
                        h.write_u64(u64::from(tag.0));
                    }
                    WireChildEntry::Leaf {
                        slot,
                        key,
                        digest,
                        tag,
                    } => {
                        h.write_u64(12);
                        h.write_u64(u64::from(*slot));
                        h.write_u64(key.0);
                        h.write_bytes(digest.as_bytes());
                        h.write_u64(u64::from(tag.0));
                    }
                }
            }
        }
        Packet::RepairQuery(p) => {
            h.write_u64(4);
            for &c in &p.path {
                h.write_u64(u64::from(c));
            }
        }
        Packet::Nack(p) => {
            h.write_u64(5);
            for k in &p.keys {
                h.write_u64(k.0);
            }
        }
        Packet::ReceiverReport(p) => {
            h.write_u64(6);
            h.write_u64(u64::from(p.receiver_id));
        }
    }
}
