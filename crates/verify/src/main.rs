//! The `ss-verify` command-line front end.
//!
//! ```text
//! ss-verify [--scope shallow|deep|smoke] [--depth N] [--min-states N]
//!           [--mutation NAME | --all-mutations] [--replay FILE]
//!           [--list-mutations] [--json]
//! ```
//!
//! Exit codes: `0` — check passed (real protocol clean / mutation
//! caught); `1` — check failed (invariant violation on the real
//! protocol, a mutation escaped, or `--min-states` unmet); `2` — usage
//! or I/O error.

use ss_verify::explore::{detect, explore, run_script, Counterexample};
use ss_verify::model::{parse_script, Scope};
use ss_verify::mutation::{Mutation, MutationSet};
use std::process::ExitCode;

struct Args {
    scope: Scope,
    scope_name: String,
    mutation: Option<Mutation>,
    all_mutations: bool,
    list_mutations: bool,
    replay: Option<String>,
    json: bool,
    min_states: Option<u64>,
}

fn usage() -> &'static str {
    "usage: ss-verify [--scope shallow|deep|smoke] [--depth N] [--min-states N]\n\
     \x20                [--mutation NAME | --all-mutations] [--replay FILE]\n\
     \x20                [--list-mutations] [--json]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scope: Scope::ci_shallow(),
        scope_name: "shallow".to_string(),
        mutation: None,
        all_mutations: false,
        list_mutations: false,
        replay: None,
        json: false,
        min_states: None,
    };
    let mut depth: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scope" => {
                let name = it.next().ok_or("--scope needs a value")?;
                args.scope = match name.as_str() {
                    "shallow" => Scope::ci_shallow(),
                    "deep" => Scope::ci_deep(),
                    "smoke" => Scope::smoke(),
                    other => return Err(format!("unknown scope `{other}`")),
                };
                args.scope_name = name;
            }
            "--depth" => {
                depth = Some(
                    it.next()
                        .ok_or("--depth needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --depth: {e}"))?,
                );
            }
            "--min-states" => {
                args.min_states = Some(
                    it.next()
                        .ok_or("--min-states needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --min-states: {e}"))?,
                );
            }
            "--mutation" => {
                let name = it.next().ok_or("--mutation needs a name")?;
                args.mutation = Some(
                    Mutation::from_name(&name)
                        .ok_or_else(|| format!("unknown mutation `{name}`"))?,
                );
            }
            "--all-mutations" => args.all_mutations = true,
            "--list-mutations" => args.list_mutations = true,
            "--replay" => args.replay = Some(it.next().ok_or("--replay needs a file")?),
            "--json" => args.json = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if let Some(d) = depth {
        args.scope.max_depth = d;
    }
    Ok(args)
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn cex_json(cex: &Counterexample) -> String {
    let script: Vec<String> = cex
        .script
        .iter()
        .map(|a| format!("\"{}\"", json_escape(&a.to_string())))
        .collect();
    format!(
        "{{\"invariant\":\"{}\",\"detail\":\"{}\",\"during_drain\":{},\"script\":[{}]}}",
        json_escape(cex.violation.invariant),
        json_escape(&cex.violation.detail),
        cex.during_drain,
        script.join(",")
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("ss-verify: {msg}");
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    if args.list_mutations {
        for m in Mutation::ALL {
            println!("{:<24} {}", m.name(), m.describe());
        }
        return ExitCode::SUCCESS;
    }

    // lint: allow(D001, CLI wall-clock for the runtime report, not simulation time)
    let started = std::time::Instant::now();

    if args.all_mutations {
        let mut missed = Vec::new();
        let mut rows = Vec::new();
        for m in Mutation::ALL {
            match detect(m) {
                Some(cex) => {
                    rows.push(format!(
                        "{{\"mutation\":\"{}\",\"detected\":true,\"invariant\":\"{}\"}}",
                        m.name(),
                        json_escape(cex.violation.invariant)
                    ));
                    if !args.json {
                        println!(
                            "caught  {:<24} via {} ({} steps)",
                            m.name(),
                            cex.violation.invariant,
                            cex.script.len()
                        );
                    }
                }
                None => {
                    missed.push(m);
                    rows.push(format!(
                        "{{\"mutation\":\"{}\",\"detected\":false}}",
                        m.name()
                    ));
                    if !args.json {
                        println!("MISSED  {}", m.name());
                    }
                }
            }
        }
        if args.json {
            println!(
                "{{\"mode\":\"all-mutations\",\"total\":{},\"missed\":{},\"results\":[{}],\"elapsed_ms\":{}}}",
                Mutation::ALL.len(),
                missed.len(),
                rows.join(","),
                started.elapsed().as_millis()
            );
        } else {
            println!(
                "{}/{} mutations caught in {:?}",
                Mutation::ALL.len() - missed.len(),
                Mutation::ALL.len(),
                started.elapsed()
            );
        }
        return if missed.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }

    let muts = args.mutation.map(Mutation::set).unwrap_or_default();

    if let Some(path) = &args.replay {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ss-verify: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let script = match parse_script(&src) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ss-verify: bad script {path}: {e}");
                return ExitCode::from(2);
            }
        };
        return match run_script(&script, Scope::script(), muts) {
            Some(cex) => {
                if args.json {
                    println!(
                        "{{\"mode\":\"replay\",\"violation\":{},\"elapsed_ms\":{}}}",
                        cex_json(&cex),
                        started.elapsed().as_millis()
                    );
                } else {
                    print!("{cex}");
                }
                ExitCode::from(1)
            }
            None => {
                if args.json {
                    println!(
                        "{{\"mode\":\"replay\",\"violation\":null,\"elapsed_ms\":{}}}",
                        started.elapsed().as_millis()
                    );
                } else {
                    println!("replay clean ({} steps + drain)", script.len());
                }
                ExitCode::SUCCESS
            }
        };
    }

    if let Some(m) = args.mutation {
        return match detect(m) {
            Some(cex) => {
                if args.json {
                    println!(
                        "{{\"mode\":\"mutation\",\"mutation\":\"{}\",\"detected\":true,\"violation\":{},\"elapsed_ms\":{}}}",
                        m.name(),
                        cex_json(&cex),
                        started.elapsed().as_millis()
                    );
                } else {
                    println!("mutation {} caught:", m.name());
                    print!("{cex}");
                }
                ExitCode::SUCCESS
            }
            None => {
                if args.json {
                    println!(
                        "{{\"mode\":\"mutation\",\"mutation\":\"{}\",\"detected\":false,\"elapsed_ms\":{}}}",
                        m.name(),
                        started.elapsed().as_millis()
                    );
                } else {
                    println!("mutation {} ESCAPED the explorer", m.name());
                }
                ExitCode::from(1)
            }
        };
    }

    // Default mode: explore the real protocol.
    let report = explore(args.scope, MutationSet::default());
    let ok =
        report.counterexample.is_none() && args.min_states.is_none_or(|min| report.states >= min);
    if args.json {
        let violation = report
            .counterexample
            .as_ref()
            .map(cex_json)
            .unwrap_or_else(|| "null".to_string());
        println!(
            "{{\"mode\":\"explore\",\"scope\":\"{}\",\"depth\":{},\"states\":{},\"transitions\":{},\"drains\":{},\"deepest\":{},\"violation\":{},\"elapsed_ms\":{}}}",
            json_escape(&args.scope_name),
            args.scope.max_depth,
            report.states,
            report.transitions,
            report.drains,
            report.deepest,
            violation,
            started.elapsed().as_millis()
        );
    } else {
        println!(
            "scope {} depth {}: {} states, {} transitions, {} drains, deepest {} in {:?}",
            args.scope_name,
            args.scope.max_depth,
            report.states,
            report.transitions,
            report.drains,
            report.deepest,
            started.elapsed()
        );
        if let Some(cex) = &report.counterexample {
            print!("{cex}");
        } else if let Some(min) = args.min_states {
            if report.states < min {
                println!(
                    "FAILED: visited {} states, gate requires {}",
                    report.states, min
                );
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
