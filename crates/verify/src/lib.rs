//! `ss-verify`: bounded exhaustive state-space checking of the SSTP
//! state machines.
//!
//! The SSTP endpoints (`sstp::sender`, `sstp::receiver`) are sans-I/O
//! machines advanced exclusively through their `step` seams, which
//! makes them checkable: this crate closes a small-scope system around
//! them — one sender, a couple of receivers, an adversarial wire with
//! loss/duplication/reorder/crash budgets — and explores *every*
//! interleaving of protocol and adversary moves to a bounded depth
//! (see [`explore::explore`]), asserting the safety invariants in
//! [`invariants`] after every step and running a repair-only
//! convergence drain at every quiescent state.
//!
//! Counterexamples are replayable event scripts ([`model::Action`]
//! lines), and the checker is itself validated by thirteen seeded
//! protocol defects ([`mutation::Mutation`]) that it must catch — the
//! small-scope hypothesis, made executable.
//!
//! ```
//! use ss_verify::{explore, model::Scope, mutation::MutationSet};
//!
//! let report = explore::explore(Scope::smoke(), MutationSet::default());
//! assert!(report.counterexample.is_none());
//! assert!(report.states > 100);
//! ```

pub mod explore;
pub mod invariants;
pub mod model;
pub mod mutation;

pub use explore::{detect, explore as explore_scope, run_script, Counterexample, Report};
pub use invariants::{drain_converges, Violation};
pub use model::{parse_script, Action, Model, Scope};
pub use mutation::{Mutation, MutationSet, WireMutations};
