//! Bounded-depth exhaustive exploration of the model.
//!
//! Plain DFS over [`Model::enabled`] interleavings with a visited-state
//! set keyed by [`Model::fingerprint`]. Every transition runs the
//! per-step invariants; every newly reached *quiescent* state (empty
//! wire) additionally runs the [`drain_converges`] liveness check. The
//! first violation stops the search and comes back as a
//! [`Counterexample`] whose script replays the exact path.

use crate::invariants::{drain_converges, Violation};
use crate::model::{Action, Model, Scope};
use crate::mutation::{Mutation, MutationSet};
use std::collections::BTreeSet;
use std::fmt;

/// A replayable witness of an invariant violation.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The event script leading to the violating state.
    pub script: Vec<Action>,
    /// What broke.
    pub violation: Violation,
    /// Whether the violation surfaced during the post-script quiescent
    /// drain (liveness) rather than on a scripted step (safety).
    pub during_drain: bool,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "violated {}", self.violation)?;
        writeln!(f, "replayable script ({} steps):", self.script.len())?;
        for act in &self.script {
            writeln!(f, "  {act}")?;
        }
        if self.during_drain {
            writeln!(
                f,
                "(violation surfaced in the quiescent repair drain after the script)"
            )?;
        }
        Ok(())
    }
}

/// What an exploration did.
#[derive(Clone, Debug)]
pub struct Report {
    /// Distinct states visited (including the initial state).
    pub states: u64,
    /// Transitions applied (including ones landing on visited states).
    pub transitions: u64,
    /// Quiescent states put through the drain check.
    pub drains: u64,
    /// Deepest interleaving reached.
    pub deepest: usize,
    /// The first violation found, if any.
    pub counterexample: Option<Counterexample>,
}

struct Frame {
    state: Model,
    acts: Vec<Action>,
    idx: usize,
    via: Option<Action>,
}

fn path_to(stack: &[Frame], last: Action) -> Vec<Action> {
    stack
        .iter()
        .filter_map(|f| f.via)
        .chain(std::iter::once(last))
        .collect()
}

/// Exhaustively explores every interleaving of enabled actions up to
/// `scope.max_depth`, deduplicating on state fingerprints. Returns the
/// first counterexample found, or a clean report.
pub fn explore(scope: Scope, muts: MutationSet) -> Report {
    let mut report = Report {
        states: 1,
        transitions: 0,
        drains: 0,
        deepest: 0,
        counterexample: None,
    };
    let mut root = Model::new(scope, muts);
    let mut visited: BTreeSet<u64> = BTreeSet::new();
    let mut drained: BTreeSet<u64> = BTreeSet::new();
    let root_fp = root.fingerprint();
    visited.insert(root_fp);
    if root.is_quiescent() {
        report.drains += 1;
        drained.insert(root_fp);
        if let Err(v) = drain_converges(&root) {
            report.counterexample = Some(Counterexample {
                script: Vec::new(),
                violation: v,
                during_drain: true,
            });
            return report;
        }
    }
    let acts = root.enabled();
    let mut stack = vec![Frame {
        state: root,
        acts,
        idx: 0,
        via: None,
    }];
    while let Some(top) = stack.last_mut() {
        if top.idx >= top.acts.len() {
            stack.pop();
            continue;
        }
        let act = top.acts[top.idx];
        top.idx += 1;
        let mut child = top.state.clone();
        if let Err(v) = child.apply(act) {
            report.counterexample = Some(Counterexample {
                script: path_to(&stack, act),
                violation: v,
                during_drain: false,
            });
            return report;
        }
        report.transitions += 1;
        let fp = child.fingerprint();
        if !visited.insert(fp) {
            continue;
        }
        report.states += 1;
        let depth = stack.len();
        report.deepest = report.deepest.max(depth);
        if child.is_quiescent() && drained.insert(fp) {
            report.drains += 1;
            if let Err(v) = drain_converges(&child) {
                report.counterexample = Some(Counterexample {
                    script: path_to(&stack, act),
                    violation: v,
                    during_drain: true,
                });
                return report;
            }
        }
        if depth < scope.max_depth {
            let acts = child.enabled();
            stack.push(Frame {
                state: child,
                acts,
                idx: 0,
                via: Some(act),
            });
        }
    }
    report
}

/// Replays a script through a fresh model, then runs the quiescent
/// drain. Returns the first violation as a counterexample, or `None`
/// when the run is clean.
pub fn run_script(script: &[Action], scope: Scope, muts: MutationSet) -> Option<Counterexample> {
    let mut m = Model::new(scope, muts);
    for (i, &act) in script.iter().enumerate() {
        if let Err(v) = m.apply(act) {
            return Some(Counterexample {
                script: script[..=i].to_vec(),
                violation: v,
                during_drain: false,
            });
        }
    }
    drain_converges(&m).err().map(|v| Counterexample {
        script: script.to_vec(),
        violation: v,
        during_drain: true,
    })
}

/// Tries to catch a seeded mutation: first its directed adversarial
/// script, then (as a fallback) a blind smoke-scope exploration.
/// Returns the counterexample that caught it, or `None` if the defect
/// escaped — which is itself a bug in the explorer.
pub fn detect(mutation: Mutation) -> Option<Counterexample> {
    run_script(&mutation.script(), Scope::script(), mutation.set())
        .or_else(|| explore(Scope::smoke(), mutation.set()).counterexample)
}
