//! The safety and convergence properties the explorer asserts.
//!
//! Per-step invariants (checked after every [`crate::model::Action`]):
//!
//! - **I1 monotone sequence** — data-channel sequence numbers strictly
//!   increase across everything the sender transmits.
//! - **I2 no version regression** — a delivery never replaces a replica
//!   entry with an older version (stale never overwrites fresh).
//! - **I3 bounded backoff** — no outstanding repair request ever
//!   requires a gap beyond `16 x repair_backoff`, the capped maximum.
//! - **I4 endpoint self-checks** — the sender's queue/dedup-set
//!   bijection and the receiver's pending/pending-index bijection hold.
//! - **I7 no pending NACK after install** — once a key's data is in the
//!   replica, no NACK for it may remain scheduled (the livelock seed).
//! - **I8 TTL respected** — the expiry sweep never removes an entry
//!   whose deadline is still in the future.
//!
//! Liveness is checked at quiescent states by [`drain_converges`]:
//! from any reachable state with an empty wire, running the repair
//! conversation alone (root summaries, digest descent, NACK promotion,
//! hot retransmission — deliberately *not* the cold cycle, which would
//! mask a broken repair path) must, within a bounded number of rounds,
//! make every replica exactly equal to the publisher's live set (**I5
//! convergence**) and then produce a round with no repair traffic at
//! all (**I6 repair quiescence**).

use crate::model::Model;
use softstate::Key;
use ss_netsim::SimDuration;
use sstp::machine::SenderEvent;
use sstp::receiver::SstpReceiver;
use sstp::wire::Packet;
use std::collections::BTreeMap;
use std::fmt;

/// Invariant identifiers, used in reports and counterexamples.
pub mod inv {
    /// Monotone data-channel sequence numbers.
    pub const MONOTONE_SEQ: &str = "I1-monotone-seq";
    /// Stale data never overwrites fresh.
    pub const VERSION_REGRESSION: &str = "I2-version-regression";
    /// Repair backoff stays within the 16x cap.
    pub const BACKOFF_CAP: &str = "I3-backoff-cap";
    /// Endpoint internal bijections hold.
    pub const SELF_CHECK: &str = "I4-self-check";
    /// Quiescent drain reaches exact replica convergence.
    pub const CONVERGENCE: &str = "I5-convergence";
    /// A consistent group stops generating repair traffic.
    pub const REPAIR_QUIESCENCE: &str = "I6-repair-quiescence";
    /// No NACK stays pending for data already in hand.
    pub const PENDING_NACK: &str = "I7-pending-nack-after-install";
    /// The expiry sweep honors per-entry deadlines.
    pub const TTL: &str = "I8-ttl-early-expiry";
}

/// One invariant violation, carrying enough detail to read the failure
/// without re-running it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant broke (one of the [`inv`] constants).
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

/// I1: `seq` on every transmitted data-channel packet must strictly
/// increase.
pub(crate) fn check_monotone_seq(last: &mut Option<u64>, pkt: &Packet) -> Result<(), Violation> {
    let Some(seq) = pkt.data_seq() else {
        return Ok(());
    };
    if let Some(prev) = *last {
        if seq <= prev {
            return Err(Violation {
                invariant: inv::MONOTONE_SEQ,
                detail: format!("sender transmitted seq {seq} after seq {prev}"),
            });
        }
    }
    *last = Some(seq);
    Ok(())
}

/// I2: a delivery may add or upgrade a replica entry, never downgrade
/// it.
pub(crate) fn check_no_version_regression(
    rx: usize,
    key: Key,
    before: Option<u64>,
    after: Option<u64>,
) -> Result<(), Violation> {
    if let (Some(b), Some(a)) = (before, after) {
        if a < b {
            return Err(Violation {
                invariant: inv::VERSION_REGRESSION,
                detail: format!("rx{rx} key {key:?}: version {b} regressed to {a}"),
            });
        }
    }
    Ok(())
}

/// I7: once a whole ADU is installed, no NACK for its key may remain
/// scheduled.
pub(crate) fn check_no_pending_nack_after_install(
    rx: &SstpReceiver,
    idx: usize,
    key: Key,
) -> Result<(), Violation> {
    if rx.has_pending_nack(key) {
        return Err(Violation {
            invariant: inv::PENDING_NACK,
            detail: format!("rx{idx} still has a pending NACK for installed key {key:?}"),
        });
    }
    Ok(())
}

/// I8: every entry whose deadline lay in the future before the sweep
/// must still be present after it.
pub(crate) fn check_ttl_respected(
    rx: &SstpReceiver,
    idx: usize,
    now: ss_netsim::SimTime,
    safe: &[Key],
) -> Result<(), Violation> {
    for &key in safe {
        if rx.replica().get(key).is_none() {
            return Err(Violation {
                invariant: inv::TTL,
                detail: format!(
                    "rx{idx} expired key {key:?} at t={}us before its deadline",
                    now.as_micros()
                ),
            });
        }
    }
    Ok(())
}

/// I3 + I4, run after every action: endpoint self-checks and the
/// backoff cap.
pub(crate) fn post_checks(m: &Model) -> Result<(), Violation> {
    if let Err(e) = m.sender.self_check() {
        return Err(Violation {
            invariant: inv::SELF_CHECK,
            detail: format!("sender: {e}"),
        });
    }
    let cap = SimDuration::from_micros(m.scope.repair_backoff.as_micros().saturating_mul(16));
    for (i, rx) in m.receivers.iter().enumerate() {
        if let Err(e) = rx.self_check() {
            return Err(Violation {
                invariant: inv::SELF_CHECK,
                detail: format!("rx{i}: {e}"),
            });
        }
        let gap = rx.max_required_gap();
        if gap > cap {
            return Err(Violation {
                invariant: inv::BACKOFF_CAP,
                detail: format!(
                    "rx{i} requires a {}us repair gap, cap is {}us",
                    gap.as_micros(),
                    cap.as_micros()
                ),
            });
        }
    }
    Ok(())
}

/// The per-receiver replica as a comparable map.
fn replica_map(rx: &SstpReceiver) -> BTreeMap<Key, u64> {
    rx.replica()
        .entries()
        .map(|(k, e)| (*k, e.value.version))
        .collect()
}

impl Model {
    /// Whether every replica exactly equals the publisher's live set
    /// (same keys, same versions).
    pub fn is_converged(&self) -> bool {
        let live: BTreeMap<Key, u64> = self
            .sender
            .table()
            .live()
            .map(|r| (r.key, r.value.version))
            .collect();
        self.receivers.iter().all(|rx| replica_map(rx) == live)
    }

    /// A one-line description of how the replicas diverge from the
    /// publisher, for non-convergence reports.
    pub fn divergence_report(&self) -> String {
        let live: BTreeMap<Key, u64> = self
            .sender
            .table()
            .live()
            .map(|r| (r.key, r.value.version))
            .collect();
        let mut parts = Vec::new();
        for (i, rx) in self.receivers.iter().enumerate() {
            let have = replica_map(rx);
            let missing: Vec<_> = live.keys().filter(|k| !have.contains_key(k)).collect();
            let extra: Vec<_> = have.keys().filter(|k| !live.contains_key(k)).collect();
            let stale: Vec<_> = live
                .iter()
                .filter(|(k, v)| have.get(k).is_some_and(|h| h != *v))
                .map(|(k, _)| k)
                .collect();
            if !missing.is_empty() || !extra.is_empty() || !stale.is_empty() {
                parts.push(format!(
                    "rx{i}: missing {missing:?}, extra {extra:?}, stale {stale:?}, \
                     {} feedback pending",
                    rx.outstanding_feedback()
                ));
            } else if rx.outstanding_feedback() > 0 {
                parts.push(format!(
                    "rx{i}: consistent but {} feedback still pending",
                    rx.outstanding_feedback()
                ));
            }
        }
        if parts.is_empty() {
            "replicas consistent but repair traffic never quiesced".to_string()
        } else {
            parts.join("; ")
        }
    }

    /// One repair round: advance past every (capped) backoff gap, flush
    /// the wire, announce the root summary, let receivers answer, let
    /// the sender answer back, and pump the hot queue dry. The cold
    /// cycle is deliberately never pumped — convergence must come from
    /// the repair path alone.
    fn drain_round(&mut self) -> Result<(), Violation> {
        self.now = self.now
            + SimDuration::from_micros(self.scope.repair_backoff.as_micros().saturating_mul(17))
            + self.scope.tick;
        self.flush_wire()?;
        self.emit(SenderEvent::PollSummary)?;
        self.flush_wire()?;
        for rx in 0..self.receivers.len() {
            self.poll_feedback(rx)?;
        }
        self.flush_wire()?;
        // Answering queries enqueues node summaries; promoting NACKs
        // enqueues data. Pump until the foreground queue is dry.
        while self.emit(SenderEvent::PollHot)? {
            self.flush_wire()?;
        }
        Ok(())
    }

    /// Delivers everything currently in flight, oldest first.
    fn flush_wire(&mut self) -> Result<(), Violation> {
        loop {
            let mut progressed = false;
            for rx in 0..self.receivers.len() {
                if let Some(pkt) = self.data_flights[rx].pop_front() {
                    self.deliver_data(rx, pkt)?;
                    progressed = true;
                }
                if let Some(pkt) = self.fb_flights[rx].pop_front() {
                    self.deliver_feedback(pkt)?;
                    progressed = true;
                }
            }
            if !progressed {
                return Ok(());
            }
        }
    }
}

/// The quiescent-drain check: clones the state and runs repair rounds
/// until the group is exactly convergent *and* a whole round passes
/// with no repair traffic, or the round budget runs out.
pub fn drain_converges(model: &Model) -> Result<(), Violation> {
    let mut m = model.clone();
    let rounds = m.scope().drain_rounds;
    for _ in 0..rounds {
        let before: Vec<(u64, u64)> = m
            .receivers
            .iter()
            .map(|rx| {
                let s = rx.stats();
                (s.queries_sent, s.nacks_sent)
            })
            .collect();
        m.drain_round()?;
        let after: Vec<(u64, u64)> = m
            .receivers
            .iter()
            .map(|rx| {
                let s = rx.stats();
                (s.queries_sent, s.nacks_sent)
            })
            .collect();
        let quiet = before == after
            && m.is_quiescent()
            && m.sender.hot_backlog() == 0
            && m.receivers.iter().all(|rx| rx.outstanding_feedback() == 0);
        if quiet {
            return if m.is_converged() {
                Ok(())
            } else {
                Err(Violation {
                    invariant: inv::CONVERGENCE,
                    detail: format!(
                        "repair went quiet without converging: {}",
                        m.divergence_report()
                    ),
                })
            };
        }
    }
    let invariant = if m.is_converged() {
        inv::REPAIR_QUIESCENCE
    } else {
        inv::CONVERGENCE
    };
    Err(Violation {
        invariant,
        detail: format!(
            "no quiet convergent round after {rounds} repair rounds: {}",
            m.divergence_report()
        ),
    })
}
