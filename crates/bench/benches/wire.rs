#![allow(missing_docs)] // criterion macros generate undocumented items
//! Wire codec benchmarks: encode and decode of each SSTP packet type,
//! including a 64-entry node summary (the heavy repair-response case).

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, Criterion};
use softstate::Key;
use sstp::digest::Digest;
use sstp::namespace::MetaTag;
use sstp::wire::{
    DataPacket, NackPacket, NodeSummaryPacket, Packet, ReceiverReportPacket, RepairQueryPacket,
    RootSummaryPacket, WireChildEntry,
};

fn sample_packets() -> Vec<(&'static str, Packet)> {
    vec![
        (
            "data",
            Packet::Data(DataPacket {
                seq: 123456,
                key: Key(42),
                version: 7,
                parent_path: vec![3, 1],
                slot: 9,
                tag: MetaTag(2),
                offset: 0,
                payload_len: 1000,
                total_len: 1000,
            }),
        ),
        (
            "root_summary",
            Packet::RootSummary(RootSummaryPacket {
                seq: 99,
                digest: Digest::from_u64(0xdead_beef),
                live_adus: 512,
            }),
        ),
        (
            "node_summary_64",
            Packet::NodeSummary(NodeSummaryPacket {
                seq: 7,
                path: vec![1],
                entries: (0..64)
                    .map(|i| WireChildEntry::Leaf {
                        slot: i,
                        key: Key(u64::from(i)),
                        digest: Digest::from_u64(u64::from(i) * 7),
                        tag: MetaTag(0),
                    })
                    .collect(),
            }),
        ),
        (
            "nack_16",
            Packet::Nack(NackPacket {
                keys: (0..16).map(Key).collect(),
            }),
        ),
        (
            "query",
            Packet::RepairQuery(RepairQueryPacket {
                path: vec![1, 2, 3],
            }),
        ),
        (
            "report",
            Packet::ReceiverReport(ReceiverReportPacket {
                receiver_id: 1,
                highest_seq: 1_000_000,
                received: 999_000,
            }),
        ),
    ]
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    for (name, pkt) in sample_packets() {
        group.bench_function(format!("encode/{name}"), |b| {
            b.iter(|| {
                let mut buf = BytesMut::with_capacity(2048);
                pkt.encode(&mut buf);
                buf.len()
            });
        });
        let mut buf = BytesMut::new();
        pkt.encode(&mut buf);
        let bytes = buf.freeze();
        group.bench_function(format!("decode/{name}"), |b| {
            b.iter(|| Packet::decode(bytes.clone()).expect("valid"));
        });
    }
    group.finish();
}

criterion_group!(wire_benches, benches);
criterion_main!(wire_benches);
