#![allow(missing_docs)] // criterion macros generate undocumented items
//! Scheduler hot-path benchmarks: one pick + unit charge, at hot/cold
//! scale (2 classes, the §4 setting) and at an application-class scale
//! (64 classes, the §6.1 hierarchy setting).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ss_netsim::SimRng;
use ss_sched::{Drr, Hierarchy, Lottery, Scfq, Scheduler, Sfq, StrictPriority, Stride};

fn bench_policy(c: &mut Criterion, name: &str, make: fn() -> Box<dyn Scheduler>) {
    let mut group = c.benchmark_group("scheduler");
    for &classes in &[2usize, 64] {
        group.bench_with_input(BenchmarkId::new(name, classes), &classes, |b, &classes| {
            let mut s = make();
            for cl in 0..classes {
                s.set_weight(cl, (cl as u64 % 7) + 1);
                s.set_backlogged(cl, true);
            }
            let mut rng = SimRng::new(1);
            b.iter(|| {
                let cl = s.pick(&mut rng).expect("backlogged");
                s.charge(cl, 1);
                cl
            });
        });
    }
    group.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group.bench_function("hierarchy/3-level-12-leaves", |b| {
        let mut h = Hierarchy::new();
        let root = h.root();
        let mut class = 0;
        for i in 0..3 {
            let mid = h.add_interior(root, i + 1);
            for j in 0..2 {
                let lo = h.add_interior(mid, j + 1);
                for k in 0..2 {
                    h.add_leaf(lo, k + 1, class);
                    h.set_backlogged(class, true);
                    class += 1;
                }
            }
        }
        let mut rng = SimRng::new(2);
        b.iter(|| {
            let cl = h.pick(&mut rng).expect("backlogged");
            h.charge(cl, 1);
            cl
        });
    });
    group.finish();
}

fn bench_scfq(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    for &classes in &[2usize, 64] {
        group.bench_with_input(
            BenchmarkId::new("scfq-enq-deq", classes),
            &classes,
            |b, &classes| {
                let mut q: Scfq<u64> = Scfq::new();
                for cl in 0..classes {
                    q.set_weight(cl, (cl as u64 % 7) + 1);
                    q.enqueue(cl, 1000, cl as u64);
                }
                let mut i = 0u64;
                b.iter(|| {
                    let (cl, _, _) = q.dequeue().expect("backlogged");
                    i += 1;
                    q.enqueue(cl, 100 + (i % 1400), i);
                    cl
                });
            },
        );
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_policy(c, "lottery", || Box::new(Lottery::new()));
    bench_policy(c, "stride", || Box::new(Stride::new()));
    bench_policy(c, "sfq", || Box::new(Sfq::new()));
    bench_policy(c, "drr", || Box::new(Drr::new(1)));
    bench_policy(c, "priority", || Box::new(StrictPriority::new()));
    bench_hierarchy(c);
    bench_scfq(c);
}

criterion_group!(scheduler_benches, benches);
criterion_main!(scheduler_benches);
