#![allow(missing_docs)] // criterion macros generate undocumented items
//! End-to-end simulation throughput: how much virtual time per wall
//! second each protocol variant simulates. These are the runs behind all
//! figure regeneration, so their speed bounds experiment turnaround.

use criterion::{criterion_group, criterion_main, Criterion};
use softstate::protocol::feedback::{self, FeedbackConfig};
use softstate::protocol::open_loop::{self, OpenLoopConfig};
use softstate::protocol::two_queue::{self, Sharing, TwoQueueConfig};
use softstate::protocol::LossSpec;
use softstate::{ArrivalProcess, DeathProcess, ServiceModel};
use ss_netsim::{EventQueue, SimDuration, SimRng, SimTime};

const SIM_SECS: u64 = 2_000;

/// The engine hot path in isolation: schedule/pop throughput through a
/// full million-event churn. Interleaves bursts of scheduling with
/// drains (the shape protocol runs produce) rather than one monotone
/// fill-then-empty; timestamps come from a seeded RNG so heap order is
/// nontrivial.
fn event_queue_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("event-queue");
    group.sample_size(10);

    group.bench_function("schedule_pop/1M", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::with_capacity(1 << 12);
            let mut rng = SimRng::new(7);
            let mut dispatched = 0u64;
            const TOTAL: u64 = 1_000_000;
            const BURST: u64 = 1_000;
            let mut scheduled = 0u64;
            while dispatched < TOTAL {
                while scheduled < TOTAL && q.len() < BURST as usize {
                    let at = q.now() + SimDuration::from_micros(1 + rng.below(5_000));
                    q.schedule(at, scheduled);
                    scheduled += 1;
                }
                if let Some((_, _payload)) = q.pop() {
                    dispatched += 1;
                }
            }
            assert_eq!(q.dispatched(), TOTAL);
            dispatched
        });
    });

    group.bench_function("clear_and_reuse/4096", |b| {
        // The sweep-engine reuse pattern: one preallocated queue cycled
        // through many short runs, versus paying a fresh heap per run.
        let mut q: EventQueue<u32> = EventQueue::with_capacity(4096);
        b.iter(|| {
            q.clear();
            for i in 0..4096u32 {
                q.schedule(SimTime::from_micros(u64::from(i % 97)), i);
            }
            let mut n = 0u32;
            while q.pop().is_some() {
                n += 1;
            }
            n
        });
    });

    group.finish();
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol-sim");
    group.sample_size(10);

    group.bench_function("open_loop/2000s", |b| {
        b.iter(|| {
            let mut cfg = OpenLoopConfig::analytic(2.0, 16.0, 0.2, 0.25, 1);
            cfg.duration = SimDuration::from_secs(SIM_SECS);
            open_loop::run(&cfg).transmissions
        });
    });

    group.bench_function("two_queue/2000s", |b| {
        b.iter(|| {
            let cfg = TwoQueueConfig {
                arrivals: ArrivalProcess::Poisson { rate: 1.875 },
                death: DeathProcess::PerTransmission { p: 0.1 },
                mu_hot: 2.8,
                mu_cold: 2.8,
                loss: LossSpec::Bernoulli(0.3),
                service: ServiceModel::Exponential,
                sharing: Sharing::Partitioned,
                seed: 2,
                duration: SimDuration::from_secs(SIM_SECS),
                series_spacing: None,
                trace_capacity: 0,
                event_capacity: 0,
            };
            two_queue::run(&cfg).transmissions()
        });
    });

    group.bench_function("feedback/2000s", |b| {
        b.iter(|| {
            let cfg = FeedbackConfig {
                arrivals: ArrivalProcess::Poisson { rate: 1.875 },
                death: DeathProcess::PerTransmission { p: 0.1 },
                mu_hot: 3.0,
                mu_cold: 1.5,
                mu_fb: 1.125,
                loss: LossSpec::Bernoulli(0.4),
                nack_loss: None,
                service: ServiceModel::Exponential,
                seed: 3,
                duration: SimDuration::from_secs(SIM_SECS),
                series_spacing: None,
                trace_capacity: 0,
                event_capacity: 0,
            };
            feedback::run(&cfg).transmissions()
        });
    });

    group.finish();
}

criterion_group!(protocol_benches, benches, event_queue_bench);
criterion_main!(protocol_benches);
