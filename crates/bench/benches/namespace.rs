#![allow(missing_docs)] // criterion macros generate undocumented items
//! Namespace benchmarks: the §6.2 operations that run per packet in a
//! busy session — ADU updates with dirty propagation, incremental root
//! digest recomputation, and summary-entry construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softstate::Key;
use sstp::digest::HashAlgorithm;
use sstp::namespace::{MetaTag, Namespace};

/// Builds a two-level namespace with `n` ADUs across √n branches.
fn build(n: u64) -> Namespace {
    let mut ns = Namespace::new(HashAlgorithm::Fnv64);
    let branches = (n as f64).sqrt() as u64;
    let parents: Vec<_> = (0..branches)
        .map(|i| ns.add_interior(ns.root(), MetaTag(i as u32)))
        .collect();
    for k in 0..n {
        let p = parents[(k % branches) as usize];
        ns.add_adu(p, Key(k), MetaTag((k % branches) as u32));
    }
    ns.root_digest();
    ns
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("namespace");
    for &n in &[256u64, 4096] {
        group.bench_with_input(
            BenchmarkId::new("update_and_root_digest", n),
            &n,
            |b, &n| {
                let mut ns = build(n);
                let mut version = 2u64;
                let mut key = 0u64;
                b.iter(|| {
                    ns.update_adu(Key(key % n), version, 1000);
                    key += 1;
                    version += 1;
                    ns.root_digest()
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("summary_entries", n), &n, |b, &n| {
            let mut ns = build(n);
            let root = ns.root();
            b.iter(|| ns.summary_entries(root).len());
        });
        group.bench_with_input(BenchmarkId::new("mirror_adu", n), &n, |b, &n| {
            b.iter_with_setup(
                || Namespace::new(HashAlgorithm::Fnv64),
                |mut rx| {
                    let branches = (n as f64).sqrt() as u16;
                    for k in 0..512u64 {
                        rx.mirror_adu(
                            &[(k % u64::from(branches)) as u16],
                            (k / u64::from(branches)) as u16,
                            Key(k),
                            1,
                            1000,
                            MetaTag(0),
                        );
                    }
                    rx.root_digest()
                },
            );
        });
    }
    group.finish();
}

criterion_group!(namespace_benches, benches);
criterion_main!(namespace_benches);
