#![allow(missing_docs)] // criterion macros generate undocumented items
//! Whole-session throughput: wall time to simulate a 300-second SSTP
//! session (sender, receiver, channels, adaptation, measurement) — the
//! unit of work behind the SSTP experiments.

use criterion::{criterion_group, criterion_main, Criterion};
use softstate::LossSpec;
use ss_netsim::SimDuration;
use sstp::session::{self, SessionConfig};

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("session");
    group.sample_size(10);
    group.bench_function("unicast/300s", |b| {
        b.iter(|| {
            let mut cfg = SessionConfig::unicast_default(1);
            cfg.duration = SimDuration::from_secs(300);
            session::run(&cfg).packets.data_channel_tx
        });
    });
    group.bench_function("multicast8/300s", |b| {
        b.iter(|| {
            let mut cfg = SessionConfig::unicast_default(2);
            cfg.n_receivers = 8;
            cfg.slot_window = Some(SimDuration::from_secs(1));
            cfg.data_loss = LossSpec::Bernoulli(0.2);
            cfg.duration = SimDuration::from_secs(300);
            session::run(&cfg).packets.data_channel_tx
        });
    });
    group.finish();
}

criterion_group!(session_benches, benches);
criterion_main!(session_benches);
