#![allow(missing_docs)] // criterion macros generate undocumented items
//! Digest benchmarks: the from-scratch MD5 against FNV-1a across the
//! buffer sizes namespace summaries actually hash (24-byte leaf tuples
//! up to multi-kilobyte child-digest concatenations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sstp::digest::{fnv1a64, md5};

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("digest");
    for &size in &[24usize, 256, 4096] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("md5", size), &data, |b, d| {
            b.iter(|| md5(d));
        });
        group.bench_with_input(BenchmarkId::new("fnv1a64", size), &data, |b, d| {
            b.iter(|| fnv1a64(d));
        });
    }
    group.finish();
}

criterion_group!(digest_benches, benches);
criterion_main!(digest_benches);
