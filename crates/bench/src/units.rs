//! Unit conversions tying the paper's kbps figure captions to the
//! packet-rate simulations.
//!
//! The paper states workloads in kilobits per second (λ = 15 kbps,
//! μ_data = 45 kbps, ...). The protocol simulations operate on packet
//! rates; with the standard 1000-byte ADU the conversion is
//! `pkt/s = kbps / 8`.

/// ADU payload size used throughout the experiments, in bytes.
pub const ADU_BYTES: u32 = 1000;

/// Converts a paper bandwidth in kbps to announcements per second.
pub fn pkts(kbps: f64) -> f64 {
    kbps * 1000.0 / (f64::from(ADU_BYTES) * 8.0)
}

/// Converts announcements per second back to kbps.
pub fn kbps(pkts: f64) -> f64 {
    pkts * f64::from(ADU_BYTES) * 8.0 / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_convert() {
        assert!((pkts(45.0) - 5.625).abs() < 1e-12);
        assert!((pkts(15.0) - 1.875).abs() < 1e-12);
        assert!((pkts(128.0) - 16.0).abs() < 1e-12);
        assert!((pkts(20.0) - 2.5).abs() < 1e-12);
        assert!((kbps(pkts(38.0)) - 38.0).abs() < 1e-12);
    }
}
