//! Extension: late-joiner catch-up time — how long "eventual" takes.
//!
//! The paper motivates cold retransmissions "in the form of reduced
//! average receive latency … benefit late joiners in an ongoing
//! multicast session". The `sync_time` closed forms (max-of-geometrics)
//! predict the full-synchronization time of a static store; this
//! experiment validates them against the open-loop simulation across
//! store sizes and loss rates (measured = the last record's first
//! delivery).

use crate::table::{fmt_pct, Table};
use softstate::protocol::open_loop::{self, OpenLoopConfig};
use softstate::protocol::LossSpec;
use softstate::{ArrivalProcess, DeathProcess, ServiceModel};
use ss_netsim::{par, SimDuration};
use ss_queueing::{expected_cycles_to_sync, expected_sync_time};

const MU: f64 = 20.0; // announcements/s

/// One simulated catch-up: returns the time of the last first-delivery
/// and the run's dispatched-event count.
fn simulate(n: u64, p_loss: f64, seed: u64) -> (f64, u64) {
    let cfg = OpenLoopConfig {
        arrivals: ArrivalProcess::Bulk { count: n },
        death: DeathProcess::Immortal,
        mu: MU,
        loss: LossSpec::Bernoulli(p_loss),
        service: ServiceModel::Deterministic,
        seed,
        duration: SimDuration::from_secs(((n as f64 / MU) * 200.0) as u64 + 600),
        series_spacing: None,
        event_capacity: 0,
        trace_capacity: 0,
    };
    let report = open_loop::run(&cfg);
    assert_eq!(report.stats.latency.count(), n, "all records delivered");
    (
        report.stats.latency.max().as_secs_f64(),
        crate::dispatched_events(&report.metrics),
    )
}

/// Runs the experiment.
pub fn run(fast: bool) -> crate::ExperimentOutput {
    let mut t = Table::new(
        "Late-joiner catch-up: analytic vs simulated full-sync time (mu = 20/s)",
        "catchup",
        &[
            "records",
            "loss",
            "E[cycles]",
            "analytic sync",
            "sim mean",
            "rel err",
        ],
    );
    let cases: Vec<(u64, f64)> = if fast {
        vec![(50, 0.3), (200, 0.5)]
    } else {
        vec![
            (50, 0.1),
            (50, 0.3),
            (50, 0.5),
            (200, 0.1),
            (200, 0.3),
            (200, 0.5),
            (800, 0.3),
        ]
    };
    let reps: u64 = if fast { 8 } else { 24 };
    // Every (case, rep) pair is an independent sweep point; the
    // per-case means below sum the reps in their original order, so the
    // float results match the sequential nesting bit for bit.
    let points: Vec<(u64, f64, u64)> = cases
        .iter()
        .flat_map(|&(n, p)| (0..reps).map(move |r| (n, p, 1000 + r)))
        .collect();
    let results = par::sweep(&points, |_, &(n, p, seed)| simulate(n, p, seed));
    let mut events = 0u64;
    for (&(n, p), chunk) in cases.iter().zip(results.chunks(reps as usize)) {
        let analytic = expected_sync_time(n, MU, p);
        let mean_sim: f64 = chunk.iter().map(|&(s, _)| s).sum::<f64>() / reps as f64;
        events += chunk.iter().map(|&(_, ev)| ev).sum::<u64>();
        let rel = (mean_sim - analytic).abs() / analytic;
        t.push_row(vec![
            n.to_string(),
            fmt_pct(p),
            format!("{:.2}", expected_cycles_to_sync(n, p)),
            format!("{analytic:.1}s"),
            format!("{mean_sim:.1}s"),
            fmt_pct(rel),
        ]);
    }
    crate::ExperimentOutput {
        events,
        ..vec![t].into()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let tables = super::run(true).tables;
        for row in &tables[0].rows {
            let rel: f64 = row[5].trim_end_matches('%').parse::<f64>().unwrap() / 100.0;
            // The first-order analysis should land within ~20% of the
            // simulation (it ignores sub-cycle position effects).
            assert!(rel < 0.20, "analysis off by {rel:.2}: {row:?}");
        }
    }
}
