//! Figure 3 — "Consistency degrades with increasing packet loss rate and
//! announcement death rate."
//!
//! Paper parameters: λ = 20 kbps, μ_ch = 128 kbps; curves per death rate;
//! x-axis loss rate 0..1; y-axis `E[c(t)]`. The analytic curve is the
//! unnormalized Jackson sum `q·min(ρ,1)` (DESIGN.md §3); simulation spot
//! checks overlay it. Note the paper text's "15% death rate" case sits
//! right at the stability boundary (`λ/μ = 0.15625`), which is why the
//! 0.15 curve reports `ρ ≥ 1` saturation.

use super::secs;
use crate::table::{fmt_frac, Table};
use crate::units::pkts;
use softstate::protocol::open_loop::{self, OpenLoopConfig};
use ss_netsim::par;
use ss_queueing::OpenLoop;

const DEATH_RATES: [f64; 4] = [0.10, 0.15, 0.25, 0.50];

/// Runs the experiment.
pub fn run(fast: bool) -> crate::ExperimentOutput {
    let lambda = pkts(20.0);
    let mu = pkts(128.0);

    // Analytic curves.
    let mut analytic = Table::new(
        "Figure 3 (analytic): E[c(t)] = q*min(rho,1); lambda=20kbps, mu=128kbps",
        "fig3_analytic",
        &["loss", "pd=0.10", "pd=0.15", "pd=0.25", "pd=0.50"],
    );
    for step in 0..=19 {
        let p_loss = step as f64 * 0.05;
        let mut row = vec![fmt_frac(p_loss)];
        for pd in DEATH_RATES {
            let m = OpenLoop::new(lambda, mu, p_loss, pd);
            row.push(fmt_frac(m.consistency_unnormalized()));
        }
        analytic.push_row(row);
    }

    // Simulation spot checks at a coarser loss grid. Each run's numbers
    // come out of its metrics registry; the raw snapshots are exported
    // as one labeled JSONL artifact.
    let mut sim = Table::new(
        "Figure 3 (simulation spot checks): unnormalized consistency",
        "fig3_sim",
        &["loss", "pd", "analytic", "simulated", "abs err"],
    );
    let loss_points: &[f64] = if fast {
        &[0.1, 0.4]
    } else {
        &[0.05, 0.2, 0.4, 0.6, 0.8]
    };
    // The (pd, loss) grid is one flat sweep: every point owns its
    // config and seed, so the fan-out can run points on any worker
    // while index-ordered reassembly keeps the table and JSONL bytes
    // identical to a sequential pass.
    let points: Vec<(f64, f64)> = DEATH_RATES
        .iter()
        .flat_map(|&pd| loss_points.iter().map(move |&p_loss| (pd, p_loss)))
        .collect();
    let mut results = par::sweep(&points, |i, &(pd, p_loss)| {
        let mut cfg = OpenLoopConfig::analytic(lambda, mu, p_loss, pd, 3);
        cfg.duration = secs(fast, 60_000);
        // Under --trace the first point also records its causal trace
        // (tracing consumes no randomness, so results are unchanged).
        if i == 0 && crate::trace_enabled() {
            cfg.trace_capacity = 200_000;
        }
        let report = open_loop::run(&cfg);
        let s = report.metrics.gauge("consistency.unnormalized");
        let mut jsonl = String::new();
        report
            .metrics
            .write_jsonl_labeled(&format!("pd={pd:.2},loss={p_loss:.2}"), &mut jsonl);
        let trace = (i == 0 && crate::trace_enabled())
            .then(|| crate::TraceArtifact::from_tracer("fig3_open_loop", &report.trace));
        (s, jsonl, trace, crate::dispatched_events(&report.metrics))
    });
    let mut jsonl = String::new();
    let mut traces = Vec::new();
    let mut events = 0u64;
    for (&(pd, p_loss), (s, run_jsonl, trace, ev)) in points.iter().zip(&mut results) {
        jsonl.push_str(run_jsonl);
        traces.extend(trace.take());
        events += *ev;
        let a = OpenLoop::new(lambda, mu, p_loss, pd).consistency_unnormalized();
        sim.push_row(vec![
            fmt_frac(p_loss),
            fmt_frac(pd),
            fmt_frac(a),
            fmt_frac(*s),
            format!("{:.4}", (a - *s).abs()),
        ]);
    }
    crate::ExperimentOutput {
        tables: vec![analytic, sim],
        metrics: vec![crate::MetricsArtifact {
            name: "fig3".into(),
            jsonl,
        }],
        traces,
        events,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let tables = super::run(true).tables;
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 20);
        // Shape check: consistency decreases along each analytic column.
        for col in 1..=4 {
            let first: f64 = tables[0].rows[0][col].parse().unwrap();
            let last: f64 = tables[0].rows[19][col].parse().unwrap();
            assert!(
                first > last,
                "column {col} must decrease: {first} -> {last}"
            );
        }
        // Stable configurations should agree with theory; near-saturation
        // ones (pd=0.10, 0.15 at these rates) are excluded from the bound.
        for row in &tables[1].rows {
            let pd: f64 = row[1].parse().unwrap();
            let err: f64 = row[4].parse().unwrap();
            if pd >= 0.25 {
                assert!(err < 0.06, "stable point error too high: {row:?}");
            }
        }
    }
}
