//! Ablation: §4 leaves the proportional-share mechanism open ("using a
//! randomized lottery scheduler, weighted fair queueing or stride
//! scheduling") and argues against strict priority. We compare all of
//! them under the Figure 5 workload in work-conserving mode.

use super::secs;
use crate::table::{fmt_frac, fmt_secs, Table};
use crate::units::pkts;
use softstate::protocol::two_queue::{self, Policy, Sharing, TwoQueueConfig};
use softstate::protocol::LossSpec;
use softstate::{ArrivalProcess, DeathProcess, ServiceModel};
use ss_netsim::par;

const POLICIES: [Policy; 5] = [
    Policy::Lottery,
    Policy::Stride,
    Policy::Sfq,
    Policy::Drr,
    Policy::Priority,
];

fn cfg(policy: Policy, fast: bool) -> TwoQueueConfig {
    let mu_data = pkts(45.0);
    TwoQueueConfig {
        // Saturating arrivals make the policy choice visible: hot is
        // persistently backlogged, so priority starves cold completely.
        arrivals: ArrivalProcess::Poisson { rate: pkts(60.0) },
        death: DeathProcess::PerTransmission { p: 0.1 },
        mu_hot: mu_data * 0.5,
        mu_cold: mu_data * 0.5,
        loss: LossSpec::Bernoulli(0.3),
        service: ServiceModel::Exponential,
        sharing: Sharing::WorkConserving(policy),
        seed: 41,
        duration: secs(fast, 20_000),
        series_spacing: None,
        event_capacity: 0,
        trace_capacity: 0,
    }
}

/// Runs the experiment.
pub fn run(fast: bool) -> crate::ExperimentOutput {
    let mut t = Table::new(
        "Scheduler ablation: hot/cold sharing policies under hot overload (loss=30%)",
        "sched_ablation",
        &[
            "policy",
            "consistency",
            "mean T_rec",
            "hot tx",
            "cold tx",
            "cold share",
        ],
    );
    let reports = par::sweep(&POLICIES, |_, &policy| two_queue::run(&cfg(policy, fast)));
    let mut events = 0u64;
    for (policy, r) in POLICIES.iter().zip(&reports) {
        events += crate::dispatched_events(&r.metrics);
        let total = r.transmissions().max(1);
        t.push_row(vec![
            format!("{policy:?}"),
            fmt_frac(r.stats.consistency.busy.unwrap_or(0.0)),
            fmt_secs(r.stats.latency.mean().as_secs_f64()),
            r.hot_transmissions.to_string(),
            r.cold_transmissions.to_string(),
            fmt_frac(r.cold_transmissions as f64 / total as f64),
        ]);
    }
    crate::ExperimentOutput {
        events,
        ..vec![t].into()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let tables = super::run(true).tables;
        let rows = &tables[0].rows;
        // The four proportional policies give cold ~50% service.
        for row in rows.iter().take(4) {
            let share: f64 = row[5].parse().unwrap();
            assert!(
                (share - 0.5).abs() < 0.05,
                "proportional policy must give cold its share: {row:?}"
            );
        }
        // Strict priority starves cold under persistent hot backlog.
        let pri_share: f64 = rows[4][5].parse().unwrap();
        assert!(pri_share < 0.05, "priority must starve cold: {pri_share}");
    }
}
