//! Extension: ALF fragmentation (§6.2's `right_edge`) under loss.
//!
//! Large ADUs fragment at the MTU; per-packet loss then compounds per
//! ADU (`P[complete] = (1−p)^k` for `k` fragments), while repair stays
//! whole-ADU. The sweep shows the cost of mismatching ADU size and MTU —
//! the quantitative side of the ALF argument that ADUs should be sized
//! to the transmission unit.

use crate::table::{fmt_frac, Table};
use softstate::{ArrivalProcess, LossSpec};
use ss_netsim::{par, SimDuration};
use sstp::session::{self, SessionConfig, SessionWorkload};

fn cfg(mtu: Option<u32>, fast: bool) -> SessionConfig {
    let mut cfg = SessionConfig::unicast_default(123);
    cfg.adu_bytes = 4000;
    cfg.mtu = mtu;
    cfg.allocator.adu_bytes = 4000;
    cfg.workload = SessionWorkload {
        arrivals: ArrivalProcess::Poisson { rate: 0.4 },
        mean_lifetime_secs: Some(120.0),
        branches: 4,
        class_weights: None,
    };
    cfg.data_loss = LossSpec::Bernoulli(0.15);
    cfg.fb_loss = LossSpec::Bernoulli(0.15);
    cfg.duration = SimDuration::from_secs(if fast { 300 } else { 800 });
    cfg
}

/// Runs the experiment.
pub fn run(fast: bool) -> crate::ExperimentOutput {
    let mut t = Table::new(
        "Fragmentation: 4000-byte ADUs at varying MTU, 15% per-packet loss",
        "frag",
        &[
            "mtu",
            "frags/adu",
            "consistency",
            "data pkts",
            "frag advances",
            "nacked keys",
        ],
    );
    let cases: Vec<(Option<u32>, u32)> =
        vec![(Some(500), 8), (Some(1000), 4), (Some(2000), 2), (None, 1)];
    let reports = par::sweep(&cases, |_, &(mtu, _)| session::run(&cfg(mtu, fast)));
    let mut events = 0u64;
    for (&(mtu, frags), report) in cases.iter().zip(&reports) {
        events += crate::dispatched_events(&report.metrics);
        let rx = &report.receivers[0];
        t.push_row(vec![
            mtu.map_or("whole".into(), |m| m.to_string()),
            frags.to_string(),
            fmt_frac(report.mean_consistency()),
            report.packets.data_channel_tx.to_string(),
            rx.stats.fragments_advanced.to_string(),
            rx.stats.nacked_keys.to_string(),
        ]);
    }
    crate::ExperimentOutput {
        events,
        ..vec![t].into()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let tables = super::run(true).tables;
        let rows = &tables[0].rows;
        let c = |i: usize| -> f64 { rows[i][2].parse().unwrap() };
        // Whole-ADU transmission (one loss draw per ADU) beats 8-way
        // fragmentation (compounded loss) at equal per-packet loss.
        assert!(c(3) > c(0), "whole {} must beat 8-fragment {}", c(3), c(0));
        // All variants still converge reasonably (repair works).
        for i in 0..4 {
            assert!(c(i) > 0.5, "row {i} consistency {}", c(i));
        }
    }
}
