//! Figure 6 — receive latency vs the cold/hot bandwidth ratio.
//!
//! The paper's two competing effects: with `μ_cold ≈ 0` the *measured*
//! latency is deceptively low because only first-shot successes are ever
//! delivered (survivorship); adding cold bandwidth first raises the mean
//! (retransmitted records are now delivered, slowly), then lowers it as
//! retransmissions speed up. The ≈300 ms anchor is the M/M/1 sojourn at
//! `μ_hot ≈ μ_data` (the `queueing::Mm1` value printed in the header).
//!
//! Substitution note (DESIGN.md): this sweep uses lifetime-based death
//! (mean 20 s) instead of per-transmission death. At the paper's rates a
//! per-transmission death process cannot reach steady state (total
//! service demand λ/p_d exceeds μ_data), so latency would grow with run
//! length; exponential lifetimes keep the live population stationary
//! while preserving the two competing effects the figure demonstrates.

use super::secs;
use crate::table::{fmt_frac, fmt_secs, Table};
use crate::units::pkts;
use softstate::protocol::two_queue::{self, Sharing, TwoQueueConfig};
use softstate::protocol::LossSpec;
use softstate::{ArrivalProcess, DeathProcess, ServiceModel};
use ss_netsim::par;
use ss_queueing::Mm1;

fn cfg(ratio: f64, fast: bool) -> TwoQueueConfig {
    // μ_hot fixed just above λ (paper: "maintaining μ_hot at its optimal
    // level, just higher than the arrival rate").
    let lambda = pkts(15.0);
    let mu_hot = lambda * 1.4;
    TwoQueueConfig {
        arrivals: ArrivalProcess::Poisson { rate: lambda },
        death: DeathProcess::Lifetime { mean_secs: 20.0 },
        mu_hot,
        mu_cold: mu_hot * ratio,
        loss: LossSpec::Bernoulli(0.5),
        service: ServiceModel::Exponential,
        sharing: Sharing::Partitioned,
        seed: 6,
        duration: secs(fast, 30_000),
        series_spacing: None,
        event_capacity: 0,
        trace_capacity: 0,
    }
}

/// Runs the experiment.
pub fn run(fast: bool) -> crate::ExperimentOutput {
    let lambda = pkts(15.0);
    let mm1 = Mm1::new(lambda, lambda * 1.4);
    let mut t = Table::new(
        format!(
            "Figure 6: T_rec vs mu_cold/mu_hot (loss = 50%; M/M/1 first-shot anchor = {})",
            fmt_secs(mm1.mean_sojourn())
        ),
        "fig6",
        &[
            "cold/hot",
            "mean T_rec",
            "p50",
            "p90",
            "delivered frac",
            "consistency",
        ],
    );
    let ratios: Vec<f64> = if fast {
        vec![0.01, 0.20, 2.0]
    } else {
        vec![
            0.01, 0.02, 0.05, 0.10, 0.20, 0.35, 0.50, 0.75, 1.0, 1.5, 2.0,
        ]
    };
    let results = par::sweep(&ratios, |_, &ratio| {
        let report = two_queue::run(&cfg(ratio, fast));
        let mut jsonl = String::new();
        report
            .metrics
            .write_jsonl_labeled(&format!("ratio={ratio:.2}"), &mut jsonl);
        (report, jsonl)
    });
    let mut jsonl = String::new();
    let mut events = 0u64;
    for (&ratio, (report, run_jsonl)) in ratios.iter().zip(&results) {
        let lat = report.metrics.histogram("latency.t_rec");
        let arrivals = report.metrics.counter("records.arrivals");
        let delivered = lat.count as f64 / arrivals.max(1) as f64;
        let busy = report.metrics.gauge("consistency.busy");
        t.push_row(vec![
            fmt_frac(ratio),
            fmt_secs(lat.mean_us as f64 / 1e6),
            fmt_secs(lat.p50_us as f64 / 1e6),
            fmt_secs(lat.p90_us as f64 / 1e6),
            fmt_frac(delivered),
            fmt_frac(if busy.is_finite() { busy } else { 0.0 }),
        ]);
        jsonl.push_str(run_jsonl);
        events += crate::dispatched_events(&report.metrics);
    }
    crate::ExperimentOutput {
        tables: vec![t],
        metrics: vec![crate::MetricsArtifact {
            name: "fig6".into(),
            jsonl,
        }],
        traces: Vec::new(),
        events,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let tables = super::run(true).tables;
        let rows = &tables[0].rows;
        let mean = |i: usize| -> f64 { rows[i][1].trim_end_matches('s').parse().unwrap() };
        let delivered = |i: usize| -> f64 { rows[i][4].parse().unwrap() };
        // Survivorship at tiny cold bandwidth: low latency, low delivery.
        // More cold: latency first rises, then falls; delivery rises.
        assert!(
            mean(1) > mean(0),
            "latency must rise: {} -> {}",
            mean(0),
            mean(1)
        );
        assert!(mean(2) < mean(1), "then fall: {} -> {}", mean(1), mean(2));
        assert!(delivered(2) > delivered(0) + 0.2);
    }
}
