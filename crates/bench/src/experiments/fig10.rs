//! Figure 10 — "λ ≤ μ_hot is the optimal region beyond which the
//! marginal benefit from additional bandwidth to the hot queue is
//! limited and below which system consistency shows marked degradation."
//!
//! μ_data = 38 kbps, μ_fb = 7 kbps, loss = 10%, λ = 15 kbps: the knee
//! sits at hot share = 15/38 ≈ 39%.

use super::secs;
use crate::table::{fmt_frac, fmt_pct, Table};
use crate::units::pkts;
use softstate::protocol::feedback::{self, FeedbackConfig};
use softstate::protocol::LossSpec;
use softstate::{ArrivalProcess, DeathProcess, ServiceModel};
use ss_netsim::par;

pub(crate) fn cfg(hot_share: f64, p_loss: f64, fast: bool) -> FeedbackConfig {
    let mu_data = pkts(38.0);
    FeedbackConfig {
        arrivals: ArrivalProcess::Poisson { rate: pkts(15.0) },
        death: DeathProcess::PerTransmission { p: 0.1 },
        mu_hot: mu_data * hot_share,
        mu_cold: mu_data * (1.0 - hot_share),
        mu_fb: pkts(7.0),
        loss: LossSpec::Bernoulli(p_loss),
        nack_loss: None,
        service: ServiceModel::Exponential,
        seed: 10,
        duration: secs(fast, 30_000),
        series_spacing: None,
        trace_capacity: 0,
        event_capacity: 0,
    }
}

/// Runs the experiment.
pub fn run(fast: bool) -> crate::ExperimentOutput {
    let mut t = Table::new(
        "Figure 10: consistency vs hot share (mu_data=38kbps, mu_fb=7kbps, loss=10%, knee at 39%)",
        "fig10",
        &["hot share", "consistency", "hot backlog", "promotions"],
    );
    let shares: Vec<f64> = if fast {
        vec![0.10, 0.50, 0.90]
    } else {
        (1..=9).map(|i| i as f64 * 0.10).collect()
    };
    let reports = par::sweep(&shares, |_, &share| feedback::run(&cfg(share, 0.10, fast)));
    let mut events = 0u64;
    for (&share, report) in shares.iter().zip(&reports) {
        events += crate::dispatched_events(&report.metrics);
        t.push_row(vec![
            fmt_pct(share),
            fmt_frac(report.stats.consistency.busy.unwrap_or(0.0)),
            format!("{:.1}", report.mean_hot_backlog),
            report.promotions.to_string(),
        ]);
    }
    crate::ExperimentOutput {
        events,
        ..vec![t].into()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let tables = super::run(true).tables;
        let rows = &tables[0].rows;
        let c = |i: usize| -> f64 { rows[i][1].parse().unwrap() };
        // Below the knee: degraded. Above: plateau.
        assert!(c(1) > c(0) + 0.2, "knee: {} vs starved {}", c(1), c(0));
        assert!((c(2) - c(1)).abs() < 0.08, "plateau: {} vs {}", c(2), c(1));
    }
}
