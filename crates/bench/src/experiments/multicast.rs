//! §6 — multicast feedback management: "In the case of multicast, a
//! scalable mechanism such as slotting and damping may be used in
//! managing feedback traffic."
//!
//! SSTP sessions over growing receiver groups with slotted, damped
//! NACKs: total feedback traffic must grow sub-linearly in the group
//! size while consistency holds.

use crate::table::{fmt_frac, Table};
use softstate::{ArrivalProcess, LossSpec};
use ss_netsim::{par, SimDuration};
use sstp::session::{self, SessionConfig, SessionWorkload};

fn cfg(n: usize, fast: bool) -> SessionConfig {
    let mut cfg = SessionConfig::unicast_default(88);
    cfg.n_receivers = n;
    cfg.slot_window = Some(SimDuration::from_secs(2));
    cfg.data_loss = LossSpec::Bernoulli(0.2);
    cfg.fb_loss = LossSpec::Bernoulli(0.05);
    cfg.workload = SessionWorkload {
        arrivals: ArrivalProcess::Poisson { rate: 0.5 },
        mean_lifetime_secs: None,
        branches: 4,
        class_weights: None,
    };
    cfg.ttl = SimDuration::from_secs(120);
    cfg.duration = SimDuration::from_secs(if fast { 300 } else { 800 });
    cfg
}

/// Runs the experiment.
pub fn run(fast: bool) -> crate::ExperimentOutput {
    let mut t = Table::new(
        "Multicast feedback: slotting and damping vs group size (loss = 20%)",
        "multicast",
        &[
            "receivers",
            "fb pkts",
            "fb pkts/rcv",
            "damped",
            "consistency",
        ],
    );
    let groups: Vec<usize> = if fast {
        vec![1, 8]
    } else {
        vec![1, 2, 4, 8, 16]
    };
    let reports = par::sweep(&groups, |_, &n| session::run(&cfg(n, fast)));
    let mut events = 0u64;
    for (&n, report) in groups.iter().zip(&reports) {
        events += crate::dispatched_events(&report.metrics);
        let damped: u64 = report.receivers.iter().map(|r| r.stats.damped).sum();
        t.push_row(vec![
            n.to_string(),
            report.packets.feedback_tx.to_string(),
            format!("{:.1}", report.packets.feedback_tx as f64 / n as f64),
            damped.to_string(),
            fmt_frac(report.mean_consistency()),
        ]);
    }
    crate::ExperimentOutput {
        events,
        ..vec![t].into()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let tables = super::run(true).tables;
        let rows = &tables[0].rows;
        let fb1: f64 = rows[0][1].parse().unwrap();
        let fb8: f64 = rows[1][1].parse().unwrap();
        let damped: u64 = rows[1][3].parse().unwrap();
        // Eight receivers see 8x the loss events; damping keeps total
        // feedback well under 8x the unicast level.
        assert!(
            fb8 < fb1 * 6.0,
            "feedback must grow sub-linearly: {fb1} -> {fb8}"
        );
        assert!(damped > 0, "damping must fire in a group of 8");
        let c: f64 = rows[1][4].parse().unwrap();
        assert!(c > 0.6, "group consistency {c}");
    }
}
