//! §6.1 — the profile-driven allocator in action. "The protocol must
//! monitor loss rates via receiver reports and use this information to
//! adaptively reallocate bandwidth to maintain this optimal consistency
//! level."
//!
//! Full SSTP sessions at several true loss rates: the table shows the
//! loss estimate the sender converged to and the allocation the profile
//! chose, plus the achieved consistency.

use crate::table::{fmt_frac, fmt_pct, Table};
use softstate::LossSpec;
use ss_netsim::{par, SimDuration};
use sstp::session::{self, SessionConfig};

/// Runs the experiment.
pub fn run(fast: bool) -> crate::ExperimentOutput {
    let mut t = Table::new(
        "SSTP adaptation: measured loss drives the bandwidth split",
        "adapt",
        &[
            "true loss",
            "estimated",
            "fb alloc",
            "hot alloc",
            "cold alloc",
            "consistency",
            "predicted",
        ],
    );
    let losses: Vec<f64> = if fast {
        vec![0.05, 0.40]
    } else {
        vec![0.01, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50]
    };
    let reports = par::sweep(&losses, |_, &loss| {
        let mut cfg = SessionConfig::unicast_default(77);
        cfg.data_loss = LossSpec::Bernoulli(loss);
        cfg.fb_loss = LossSpec::Bernoulli(loss);
        cfg.duration = SimDuration::from_secs(if fast { 300 } else { 1_000 });
        session::run(&cfg)
    });
    let mut events = 0u64;
    for (&loss, report) in losses.iter().zip(&reports) {
        events += crate::dispatched_events(&report.metrics);
        let last = report
            .allocations
            .last()
            .map(|&(_, a)| a)
            .expect("allocations recorded");
        t.push_row(vec![
            fmt_pct(loss),
            fmt_pct(report.final_loss_estimate),
            format!("{}", last.feedback),
            format!("{}", last.hot),
            format!("{}", last.cold),
            fmt_frac(report.mean_consistency()),
            fmt_frac(last.predicted_consistency),
        ]);
    }
    crate::ExperimentOutput {
        events,
        ..vec![t].into()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let tables = super::run(true).tables;
        let rows = &tables[0].rows;
        // Loss estimates track the truth.
        let est_lo: f64 = rows[0][1].trim_end_matches('%').parse::<f64>().unwrap() / 100.0;
        let est_hi: f64 = rows[1][1].trim_end_matches('%').parse::<f64>().unwrap() / 100.0;
        assert!((est_lo - 0.05).abs() < 0.06, "estimate {est_lo} vs 5%");
        assert!((est_hi - 0.40).abs() < 0.12, "estimate {est_hi} vs 40%");
        // Higher loss earns a larger feedback allocation.
        let fb = |i: usize| -> f64 { rows[i][2].trim_end_matches(" kbps").parse().unwrap() };
        assert!(fb(1) >= fb(0), "fb at 40% loss {} vs 5% {}", fb(1), fb(0));
    }
}
