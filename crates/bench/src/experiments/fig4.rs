//! Figure 4 — "At loss rates between 0-20% and an announcement death
//! rate of 10%, about 90% of the total available bandwidth is wasted"
//! on redundant retransmissions of already-consistent records.
//!
//! Analytic: `W = λ_C/λ̂ = (1−p_c)(1−p_d)/(1−p_c(1−p_d))`, overlaid with
//! the simulated redundant-transmission fraction.

use super::secs;
use crate::table::{fmt_frac, Table};
use crate::units::pkts;
use softstate::protocol::open_loop::{self, OpenLoopConfig};
use ss_netsim::par;
use ss_queueing::OpenLoop;

/// Runs the experiment.
pub fn run(fast: bool) -> crate::ExperimentOutput {
    let lambda = pkts(20.0);
    let mu = pkts(128.0);
    let pd = 0.10;

    let mut t = Table::new(
        "Figure 4: redundant-retransmission fraction (pd = 0.10; note rho = 1.56 > 1: \
the paper's own parameters saturate the channel, so the simulation runs below the analytic curve)",
        "fig4",
        &["loss", "analytic W", "simulated W", "abs err"],
    );
    let steps: Vec<f64> = if fast {
        vec![0.0, 0.2, 0.5]
    } else {
        (0..=9).map(|i| i as f64 * 0.1).collect()
    };
    let results = par::sweep(&steps, |_, &p_loss| {
        let mut cfg = OpenLoopConfig::analytic(lambda, mu, p_loss, pd, 4);
        cfg.duration = secs(fast, 60_000);
        let report = open_loop::run(&cfg);
        (
            report.wasted_fraction(),
            crate::dispatched_events(&report.metrics),
        )
    });
    let mut events = 0u64;
    for (&p_loss, &(s, ev)) in steps.iter().zip(&results) {
        events += ev;
        let a = OpenLoop::new(lambda, mu, p_loss, pd).wasted_bandwidth_fraction();
        t.push_row(vec![
            fmt_frac(p_loss),
            fmt_frac(a),
            fmt_frac(s),
            format!("{:.4}", (a - s).abs()),
        ]);
    }
    crate::ExperimentOutput {
        events,
        ..vec![t].into()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let tables = super::run(true).tables;
        let rows = &tables[0].rows;
        // Paper claim: ~90% wasted at low loss with pd = 0.10.
        let w0: f64 = rows[0][1].parse().unwrap();
        assert!((w0 - 0.90).abs() < 1e-9, "W(0) = {w0}");
        // The channel is saturated at these (paper) parameters, so the
        // simulated waste runs somewhat below the analytic W = q curve.
        for row in rows {
            let err: f64 = row[3].parse().unwrap();
            assert!(err < 0.12, "{row:?}");
        }
        // Shape: both decrease with loss.
        let w_last: f64 = rows.last().unwrap()[1].parse().unwrap();
        assert!(w0 > w_last);
    }
}
