//! Validation sweep: the §3 closed forms against discrete-event
//! simulation over a grid of stable parameter points. This is the
//! license for trusting every analytic curve in Figures 3 and 4.

use super::secs;
use crate::table::{fmt_frac, Table};
use softstate::protocol::open_loop::{self, OpenLoopConfig};
use ss_netsim::par;
use ss_queueing::OpenLoop;

struct Point {
    lambda: f64,
    mu: f64,
    p_loss: f64,
    p_death: f64,
}

/// Runs the experiment.
pub fn run(fast: bool) -> crate::ExperimentOutput {
    let grid = [
        Point {
            lambda: 1.0,
            mu: 10.0,
            p_loss: 0.1,
            p_death: 0.20,
        },
        Point {
            lambda: 2.0,
            mu: 16.0,
            p_loss: 0.2,
            p_death: 0.25,
        },
        Point {
            lambda: 2.0,
            mu: 16.0,
            p_loss: 0.5,
            p_death: 0.25,
        },
        Point {
            lambda: 0.5,
            mu: 4.0,
            p_loss: 0.3,
            p_death: 0.40,
        },
        Point {
            lambda: 4.0,
            mu: 40.0,
            p_loss: 0.05,
            p_death: 0.15,
        },
        Point {
            lambda: 1.0,
            mu: 20.0,
            p_loss: 0.7,
            p_death: 0.30,
        },
    ];
    let mut t = Table::new(
        "Validation: simulation vs Jackson closed forms (busy consistency, waste, E[n])",
        "validate",
        &[
            "lambda",
            "mu",
            "loss",
            "pd",
            "rho", //
            "c theory",
            "c sim",
            "W theory",
            "W sim",
            "E[n] theory",
            "E[n] sim",
        ],
    );
    let points: &[Point] = if fast { &grid[..2] } else { &grid };
    let reports = par::sweep(points, |_, p| {
        let mut cfg = OpenLoopConfig::analytic(p.lambda, p.mu, p.p_loss, p.p_death, 101);
        cfg.duration = secs(fast, 80_000);
        open_loop::run(&cfg)
    });
    let mut events = 0u64;
    for (p, r) in points.iter().zip(&reports) {
        let m = OpenLoop::new(p.lambda, p.mu, p.p_loss, p.p_death);
        assert!(m.is_stable(), "grid points must be stable");
        events += crate::dispatched_events(&r.metrics);
        t.push_row(vec![
            format!("{:.1}", p.lambda),
            format!("{:.1}", p.mu),
            fmt_frac(p.p_loss),
            fmt_frac(p.p_death),
            fmt_frac(m.rho()),
            fmt_frac(m.consistency_busy()),
            fmt_frac(r.stats.consistency.busy.unwrap()),
            fmt_frac(m.wasted_bandwidth_fraction()),
            fmt_frac(r.wasted_fraction()),
            format!("{:.2}", m.mean_live_records()),
            format!("{:.2}", r.stats.mean_live_records),
        ]);
    }
    crate::ExperimentOutput {
        events,
        ..vec![t].into()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let tables = super::run(true).tables;
        for row in &tables[0].rows {
            let c_th: f64 = row[5].parse().unwrap();
            let c_sim: f64 = row[6].parse().unwrap();
            assert!((c_th - c_sim).abs() < 0.04, "consistency mismatch: {row:?}");
            let w_th: f64 = row[7].parse().unwrap();
            let w_sim: f64 = row[8].parse().unwrap();
            assert!((w_th - w_sim).abs() < 0.04, "waste mismatch: {row:?}");
            let n_th: f64 = row[9].parse().unwrap();
            let n_sim: f64 = row[10].parse().unwrap();
            assert!(
                (n_th - n_sim).abs() / n_th.max(0.5) < 0.25,
                "occupancy mismatch: {row:?}"
            );
        }
    }
}
