//! Figure 11 — "The loss rate limits the maximum consistency that can be
//! attained with a given amount of total bandwidth, regardless of how it
//! is scheduled between the hot and cold transmissions. However, the
//! relative proportion of hot vs cold bandwidth does not significantly
//! affect consistency, once sufficient bandwidth is available to absorb
//! new arrivals."
//!
//! Same configuration as Figure 10 but one knee curve per loss rate.

use crate::table::{fmt_frac, fmt_pct, Table};

use super::fig10::cfg;
use softstate::protocol::feedback;
use ss_netsim::par;

const LOSS_RATES: [f64; 5] = [0.01, 0.20, 0.30, 0.40, 0.50];

/// Runs the experiment.
pub fn run(fast: bool) -> crate::ExperimentOutput {
    let mut t = Table::new(
        "Figure 11: consistency vs hot share per loss rate (mu_data=38kbps, mu_fb=7kbps)",
        "fig11",
        &[
            "hot share",
            "loss=1%",
            "loss=20%",
            "loss=30%",
            "loss=40%",
            "loss=50%",
        ],
    );
    let shares: Vec<f64> = if fast {
        vec![0.10, 0.50, 0.90]
    } else {
        (1..=9).map(|i| i as f64 * 0.10).collect()
    };
    let points: Vec<(f64, f64)> = shares
        .iter()
        .flat_map(|&share| LOSS_RATES.iter().map(move |&p_loss| (share, p_loss)))
        .collect();
    let results = par::sweep(&points, |_, &(share, p_loss)| {
        let report = feedback::run(&cfg(share, p_loss, fast));
        (
            report.stats.consistency.busy.unwrap_or(0.0),
            crate::dispatched_events(&report.metrics),
        )
    });
    let mut events = 0u64;
    for (&share, chunk) in shares.iter().zip(results.chunks(LOSS_RATES.len())) {
        let mut row = vec![fmt_pct(share)];
        for &(busy, ev) in chunk {
            row.push(fmt_frac(busy));
            events += ev;
        }
        t.push_row(row);
    }
    crate::ExperimentOutput {
        events,
        ..vec![t].into()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let tables = super::run(true).tables;
        let rows = &tables[0].rows;
        let cell = |i: usize, j: usize| -> f64 { rows[i][j].parse().unwrap() };
        // Loss rate caps the plateau: at the mid hot share, 1% loss must
        // beat 50% loss.
        assert!(cell(1, 1) > cell(1, 5), "loss cap violated");
        // Above the knee the hot/cold split hardly matters (1% loss).
        assert!((cell(1, 1) - cell(2, 1)).abs() < 0.08);
        // Below the knee everything degrades (50% loss column too).
        assert!(cell(0, 1) < cell(1, 1) - 0.2);
    }
}
