//! ss-chaos: reconvergence after a network partition — MTTR as a
//! function of partition length, soft-state TTL, and reliability level.
//!
//! The paper's central claim is that soft state makes recovery a
//! non-event: "the protocol continues to operate in the face of
//! failures, and consistency degrades (and recovers) gracefully". This
//! experiment quantifies that. A session with a steady update workload
//! suffers a scripted bidirectional partition; we report the time from
//! the heal until every replica fully agrees with the sender again
//! (MTTR, measured by the session's ground-truth probe), the stale
//! probe-samples served along the way, and the packets the fault ate.
//!
//! Two regimes emerge. While the partition is shorter than the TTL, the
//! replica's entries survive and only the missed *updates* need repair,
//! so feedback (digest descent + NACKs) reconverges much faster than
//! announce/listen's cold cycle. Once the partition outlives the TTL,
//! the replica has expired wholesale and both levels must re-fetch the
//! store — MTTR jumps and the levels converge toward each other.

use crate::table::{fmt_frac, Table};
use softstate::{ArrivalProcess, LossSpec};
use ss_netsim::{par, FaultSpec, SimDuration, SimTime};
use sstp::reliability::ReliabilityLevel;
use sstp::session::{self, SessionConfig, SessionWorkload};

const LEVELS: [(&str, ReliabilityLevel); 2] = [
    ("announce/listen", ReliabilityLevel::AnnounceListen),
    (
        "quasi (fb<=30%)",
        ReliabilityLevel::Quasi { max_fb_share: 0.3 },
    ),
];

/// The partition starts here; everything has converged by then.
const FAULT_AT: u64 = 60;

fn cfg(
    level: ReliabilityLevel,
    partition_secs: u64,
    ttl_secs: u64,
    tail_secs: u64,
) -> SessionConfig {
    let mut cfg = SessionConfig::unicast_default(4242);
    cfg.allocator.reliability = level.into();
    cfg.data_loss = LossSpec::Bernoulli(0.1);
    cfg.fb_loss = LossSpec::Bernoulli(0.1);
    cfg.workload = SessionWorkload {
        arrivals: ArrivalProcess::PoissonUpdates {
            rate: 1.0,
            keys: 40,
        },
        mean_lifetime_secs: None,
        branches: 4,
        class_weights: None,
    };
    cfg.ttl = SimDuration::from_secs(ttl_secs);
    cfg.duration = SimDuration::from_secs(FAULT_AT + partition_secs + tail_secs);
    cfg.faults = FaultSpec::none().partition(
        SimTime::ZERO + SimDuration::from_secs(FAULT_AT),
        SimTime::ZERO + SimDuration::from_secs(FAULT_AT + partition_secs),
    );
    cfg
}

/// Runs the experiment.
pub fn run(fast: bool) -> crate::ExperimentOutput {
    let mut t = Table::new(
        "Reconvergence: MTTR vs partition length x TTL x reliability (40-key update workload)",
        "recovery",
        &[
            "level",
            "partition",
            "ttl",
            "mttr",
            "stale samples",
            "fault drops",
            "E[c]",
        ],
    );
    let partitions: Vec<u64> = if fast {
        vec![20, 120]
    } else {
        vec![15, 45, 90, 180]
    };
    let ttls: Vec<u64> = if fast { vec![90] } else { vec![30, 90] };
    let tail: u64 = if fast { 180 } else { 300 };
    let points: Vec<(&str, ReliabilityLevel, u64, u64)> = ttls
        .iter()
        .flat_map(|&ttl| {
            partitions.iter().flat_map(move |&p| {
                LEVELS
                    .iter()
                    .map(move |&(name, level)| (name, level, p, ttl))
            })
        })
        .collect();
    let results = par::sweep(&points, |i, &(name, level, p, ttl)| {
        let mut c = cfg(level, p, ttl, tail);
        // Under --trace the first quasi point records the causal trace:
        // fault spans interleaved with the repair traffic they trigger.
        if i == 1 && crate::trace_enabled() {
            c.trace_capacity = 400_000;
        }
        let report = session::run(&c);
        let mut jsonl = String::new();
        report
            .metrics
            .write_jsonl_labeled(&format!("level={name},partition={p},ttl={ttl}"), &mut jsonl);
        (report, jsonl)
    });
    let mut jsonl = String::new();
    let mut events = 0u64;
    for (&(name, _, p, ttl), (report, point_jsonl)) in points.iter().zip(&results) {
        events += crate::dispatched_events(&report.metrics);
        jsonl.push_str(point_jsonl);
        let rec = report.recovery.expect("a fault schedule was configured");
        let mttr = match rec.mttr() {
            Some(d) => format!("{:.1}s", d.as_secs_f64()),
            None => "never".to_string(),
        };
        t.push_row(vec![
            name.to_string(),
            format!("{p}s"),
            format!("{ttl}s"),
            mttr,
            rec.stale_serves.to_string(),
            rec.fault_drops.to_string(),
            fmt_frac(report.mean_consistency()),
        ]);
    }
    let traces = if crate::trace_enabled() {
        vec![crate::TraceArtifact::from_tracer(
            "recovery_partition",
            &results[1].0.trace,
        )]
    } else {
        Vec::new()
    };
    crate::ExperimentOutput {
        tables: vec![t],
        metrics: vec![crate::MetricsArtifact {
            name: "recovery".into(),
            jsonl,
        }],
        traces,
        events,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let tables = super::run(true).tables;
        let rows = &tables[0].rows;
        for row in rows {
            // Every point must reconverge within the post-heal tail.
            assert!(row[3].ends_with('s'), "no reconvergence: {row:?}");
            let drops: u64 = row[5].parse().unwrap();
            assert!(drops > 0, "the partition must eat packets: {row:?}");
        }
        let mttr = |i: usize| -> f64 { rows[i][3].trim_end_matches('s').parse().unwrap() };
        // The long partition (row pairs are [short a/l, short quasi,
        // long a/l, long quasi]) accumulates more stale samples than the
        // short one at the same level.
        let stale = |i: usize| -> u64 { rows[i][4].parse().unwrap() };
        assert!(
            stale(2) > stale(0),
            "longer partition, more staleness: {rows:?}"
        );
        // Feedback repairs the backlog faster than announce/listen's
        // cold cycle after the long partition.
        assert!(
            mttr(3) <= mttr(2),
            "feedback should not reconverge slower: {rows:?}"
        );
    }
}
