//! §6.1 validation: how good are the allocator's *consistency profiles*?
//!
//! The paper's allocator uses "empirically derived consistency profiles"
//! to predict the consistency an allocation will achieve. We build the
//! empirical profile the way a deployment would — a grid of feedback-
//! protocol simulations over (loss, feedback share) — then score the
//! first-order analytic profile against it, point by point. The analytic
//! profile only has to rank allocations correctly for the allocator to
//! pick well; the table reports both the absolute error and whether the
//! argmax (best feedback share) agrees.

use super::secs;
use crate::table::{fmt_frac, fmt_pct, Table};
use crate::units::pkts;
use softstate::protocol::feedback::{self, FeedbackConfig};
use softstate::protocol::LossSpec;
use softstate::{ArrivalProcess, DeathProcess, ServiceModel};
use ss_netsim::par;
use sstp::profile::ConsistencyProfile;

const LOSSES: [f64; 4] = [0.10, 0.25, 0.40, 0.55];
const SHARES: [f64; 5] = [0.0, 0.10, 0.25, 0.45, 0.70];

fn simulate(loss: f64, fb_share: f64, fast: bool) -> (f64, u64) {
    let mu_tot = pkts(45.0);
    let mu_fb = mu_tot * fb_share;
    let mu_data = mu_tot - mu_fb;
    let cfg = FeedbackConfig {
        arrivals: ArrivalProcess::Poisson { rate: pkts(15.0) },
        death: DeathProcess::PerTransmission { p: 0.1 },
        mu_hot: mu_data * 0.67,
        mu_cold: mu_data * 0.33,
        mu_fb,
        loss: LossSpec::Bernoulli(loss),
        nack_loss: None,
        service: ServiceModel::Exponential,
        seed: 2026,
        duration: secs(fast, 20_000),
        series_spacing: None,
        trace_capacity: 0,
        event_capacity: 0,
    };
    let report = feedback::run(&cfg);
    (
        report.stats.consistency.busy.unwrap_or(0.0),
        crate::dispatched_events(&report.metrics),
    )
}

/// Runs the experiment.
pub fn run(fast: bool) -> crate::ExperimentOutput {
    // 1. Build the empirical grid: the (loss, share) cross product as
    // one flat sweep, reassembled into rows afterwards.
    let points: Vec<(f64, f64)> = LOSSES
        .iter()
        .flat_map(|&l| SHARES.iter().map(move |&s| (l, s)))
        .collect();
    let results = par::sweep(&points, |_, &(l, s)| simulate(l, s, fast));
    let events: u64 = results.iter().map(|&(_, ev)| ev).sum();
    let grid: Vec<Vec<f64>> = results
        .chunks(SHARES.len())
        .map(|row| row.iter().map(|&(c, _)| c).collect())
        .collect();
    let empirical = ConsistencyProfile::empirical(LOSSES.to_vec(), SHARES.to_vec(), grid.clone());
    let analytic = ConsistencyProfile::analytic(pkts(15.0), pkts(45.0), 0.1, 0.67);

    let mut t = Table::new(
        "Profile accuracy: analytic prediction vs simulated grid (45 kbps, lambda = 15 kbps)",
        "profile_accuracy",
        &["loss", "fb share", "simulated", "analytic", "abs err"],
    );
    for (i, &l) in LOSSES.iter().enumerate() {
        for (j, &s) in SHARES.iter().enumerate() {
            let sim = grid[i][j];
            let ana = analytic.predict(l, s);
            t.push_row(vec![
                fmt_pct(l),
                fmt_pct(s),
                fmt_frac(sim),
                fmt_frac(ana),
                fmt_frac((sim - ana).abs()),
            ]);
        }
    }

    // 2. Does the analytic profile pick (nearly) the right share?
    let mut pick = Table::new(
        "Profile accuracy: best feedback share, empirical vs analytic argmax",
        "profile_argmax",
        &["loss", "empirical best", "analytic best", "regret"],
    );
    for (i, &l) in LOSSES.iter().enumerate() {
        let emp_best = (0..SHARES.len())
            .max_by(|&a, &b| grid[i][a].total_cmp(&grid[i][b]))
            .map(|j| SHARES[j])
            .unwrap();
        let ana_best = analytic.best_fb_share(l, 0.70);
        // Regret: simulated consistency lost by following the analytic
        // choice instead of the empirical optimum (evaluated on the
        // empirical profile).
        let regret = empirical.predict(l, emp_best) - empirical.predict(l, ana_best);
        pick.push_row(vec![
            fmt_pct(l),
            fmt_pct(emp_best),
            fmt_pct(ana_best),
            fmt_frac(regret.max(0.0)),
        ]);
    }
    crate::ExperimentOutput {
        events,
        ..vec![t, pick].into()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let tables = super::run(true).tables;
        // Following the analytic profile instead of the measured optimum
        // must cost little consistency (regret < 0.08 everywhere).
        for row in &tables[1].rows {
            let regret: f64 = row[3].parse().unwrap();
            assert!(regret < 0.08, "allocator regret too high: {row:?}");
        }
    }
}
