//! The §5 headline numbers — "adding feedback dramatically improves data
//! consistency (by up to 55%) without increasing network resource
//! consumption" / "adding feedback can improve consistency by 10% to 50%
//! for loss rates between 5% and 40%".
//!
//! Both variants get the identical 45 kbps session budget; the feedback
//! variant carves 20% of it out for NACKs.

use super::secs;
use crate::table::{fmt_frac, fmt_pct, Table};
use crate::units::pkts;
use softstate::protocol::feedback::{self, FeedbackConfig};
use softstate::protocol::LossSpec;
use softstate::{ArrivalProcess, DeathProcess, ServiceModel};
use ss_netsim::par;

fn cfg(fb_share: f64, p_loss: f64, fast: bool) -> FeedbackConfig {
    let mu_tot = pkts(45.0);
    let mu_fb = mu_tot * fb_share;
    let mu_data = mu_tot - mu_fb;
    FeedbackConfig {
        arrivals: ArrivalProcess::Poisson { rate: pkts(15.0) },
        death: DeathProcess::PerTransmission { p: 0.1 },
        mu_hot: mu_data * 2.0 / 3.0,
        mu_cold: mu_data / 3.0,
        mu_fb,
        loss: LossSpec::Bernoulli(p_loss),
        nack_loss: None,
        service: ServiceModel::Exponential,
        seed: 55,
        duration: secs(fast, 40_000),
        series_spacing: None,
        trace_capacity: 0,
        event_capacity: 0,
    }
}

/// Runs the experiment.
pub fn run(fast: bool) -> crate::ExperimentOutput {
    let mut t = Table::new(
        "Headline: open-loop vs feedback at equal 45 kbps total (fb share = 20%)",
        "headline",
        &[
            "loss",
            "open-loop",
            "with feedback",
            "improvement",
            "data tx (open)",
            "data tx (fb)",
        ],
    );
    let losses: Vec<f64> = if fast {
        vec![0.10, 0.40]
    } else {
        vec![0.05, 0.10, 0.20, 0.30, 0.40, 0.50]
    };
    // Two runs per loss point (open loop, then feedback), flattened into
    // one sweep so both variants of every loss rate fan out together.
    let points: Vec<(f64, f64, &str)> = losses
        .iter()
        .flat_map(|&p_loss| [(p_loss, 0.0, "open"), (p_loss, 0.20, "fb")])
        .collect();
    let results = par::sweep(&points, |_, &(p_loss, fb_share, variant)| {
        let report = feedback::run(&cfg(fb_share, p_loss, fast));
        let mut jsonl = String::new();
        report
            .metrics
            .write_jsonl_labeled(&format!("loss={p_loss:.2},variant={variant}"), &mut jsonl);
        (report, jsonl)
    });
    let mut jsonl = String::new();
    let mut events = 0u64;
    for (&p_loss, pair) in losses.iter().zip(results.chunks(2)) {
        let (open, open_jsonl) = &pair[0];
        let (fb, fb_jsonl) = &pair[1];
        let busy = |m: &ss_netsim::MetricsSnapshot| {
            let v = m.gauge("consistency.busy");
            if v.is_finite() {
                v
            } else {
                0.0
            }
        };
        let tx = |m: &ss_netsim::MetricsSnapshot| m.counter("tx.hot") + m.counter("tx.cold");
        let c_open = busy(&open.metrics);
        let c_fb = busy(&fb.metrics);
        t.push_row(vec![
            fmt_pct(p_loss),
            fmt_frac(c_open),
            fmt_frac(c_fb),
            fmt_pct(c_fb - c_open),
            tx(&open.metrics).to_string(),
            tx(&fb.metrics).to_string(),
        ]);
        jsonl.push_str(open_jsonl);
        jsonl.push_str(fb_jsonl);
        events += crate::dispatched_events(&open.metrics) + crate::dispatched_events(&fb.metrics);
    }
    crate::ExperimentOutput {
        tables: vec![t],
        metrics: vec![crate::MetricsArtifact {
            name: "headline".into(),
            jsonl,
        }],
        traces: Vec::new(),
        events,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let tables = super::run(true).tables;
        let rows = &tables[0].rows;
        for row in rows {
            let open: f64 = row[1].parse().unwrap();
            let fb: f64 = row[2].parse().unwrap();
            assert!(fb >= open - 0.02, "feedback must not hurt: {row:?}");
        }
        // At 40% loss the improvement is substantial.
        let open: f64 = rows[1][1].parse().unwrap();
        let fb: f64 = rows[1][2].parse().unwrap();
        assert!(fb > open + 0.04, "at 40% loss: {fb} vs {open}");
    }
}
