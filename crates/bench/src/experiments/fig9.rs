//! Figure 9 — "Consistency is improved by allocating sufficient
//! bandwidth for feedback. At loss rates over 50%, allocating additional
//! feedback bandwidth reduces consistency."
//!
//! λ = 1.5 kbps, μ_tot = 30 kbps; x-axis the feedback share; one curve
//! per loss rate. The paper's companion text: consistency improves ~10%
//! at 10% loss and up to ~50% at ≥50% loss, reaching a 90-100% plateau.

use super::secs;
use crate::table::{fmt_frac, fmt_pct, Table};
use crate::units::pkts;
use softstate::protocol::feedback::{self, FeedbackConfig};
use softstate::protocol::LossSpec;
use softstate::{ArrivalProcess, DeathProcess, ServiceModel};
use ss_netsim::par;

const LOSS_RATES: [f64; 4] = [0.10, 0.30, 0.50, 0.70];

fn cfg(fb_share: f64, p_loss: f64, fast: bool) -> FeedbackConfig {
    let mu_tot = pkts(30.0);
    let mu_fb = mu_tot * fb_share;
    let mu_data = mu_tot - mu_fb;
    FeedbackConfig {
        arrivals: ArrivalProcess::Poisson { rate: pkts(1.5) },
        death: DeathProcess::PerTransmission { p: 0.1 },
        mu_hot: mu_data * 0.5,
        mu_cold: mu_data * 0.5,
        mu_fb,
        loss: LossSpec::Bernoulli(p_loss),
        nack_loss: None,
        service: ServiceModel::Exponential,
        seed: 9,
        duration: secs(fast, 40_000),
        series_spacing: None,
        trace_capacity: 0,
        event_capacity: 0,
    }
}

/// Runs the experiment.
pub fn run(fast: bool) -> crate::ExperimentOutput {
    let mut t = Table::new(
        "Figure 9: consistency vs feedback share per loss rate (lambda=1.5kbps, mu_tot=30kbps)",
        "fig9",
        &["fb share", "loss=10%", "loss=30%", "loss=50%", "loss=70%"],
    );
    let shares: Vec<f64> = if fast {
        vec![0.0, 0.3, 0.8]
    } else {
        vec![
            0.0, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90,
        ]
    };
    let points: Vec<(f64, f64)> = shares
        .iter()
        .flat_map(|&share| LOSS_RATES.iter().map(move |&p_loss| (share, p_loss)))
        .collect();
    let results = par::sweep(&points, |_, &(share, p_loss)| {
        let report = feedback::run(&cfg(share, p_loss, fast));
        (
            report.stats.consistency.busy.unwrap_or(0.0),
            crate::dispatched_events(&report.metrics),
        )
    });
    let mut events = 0u64;
    for (&share, chunk) in shares.iter().zip(results.chunks(LOSS_RATES.len())) {
        let mut row = vec![fmt_pct(share)];
        for &(busy, ev) in chunk {
            row.push(fmt_frac(busy));
            events += ev;
        }
        t.push_row(row);
    }
    crate::ExperimentOutput {
        events,
        ..vec![t].into()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let tables = super::run(true).tables;
        let rows = &tables[0].rows;
        let cell = |i: usize, j: usize| -> f64 { rows[i][j].parse().unwrap() };
        // At 50% loss, 30% feedback share must beat both the open loop
        // and the data-starved 80% share.
        let open = cell(0, 3);
        let mid = cell(1, 3);
        let starved = cell(2, 3);
        assert!(mid > open, "fb must help at 50% loss: {mid} vs {open}");
        assert!(
            mid > starved,
            "over-allocating fb must hurt: {mid} vs {starved}"
        );
    }
}
