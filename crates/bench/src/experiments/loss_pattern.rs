//! Ablation: §3 claims the consistency metric "is insensitive to the
//! exact pattern of losses, but is only affected by the mean of the
//! packet loss process". We test it: Bernoulli vs Gilbert burst loss at
//! equal means, across burst lengths.

use super::secs;
use crate::table::{fmt_frac, fmt_pct, Table};
use crate::units::pkts;
use softstate::protocol::open_loop::{self, OpenLoopConfig};
use softstate::protocol::LossSpec;
use softstate::{ArrivalProcess, DeathProcess, ServiceModel};
use ss_netsim::par;

fn cfg(loss: LossSpec, fast: bool) -> OpenLoopConfig {
    OpenLoopConfig {
        arrivals: ArrivalProcess::Poisson { rate: pkts(20.0) },
        death: DeathProcess::PerTransmission { p: 0.25 },
        mu: pkts(128.0),
        loss,
        service: ServiceModel::Exponential,
        seed: 31,
        duration: secs(fast, 60_000),
        series_spacing: None,
        event_capacity: 0,
        trace_capacity: 0,
    }
}

/// Runs the experiment.
pub fn run(fast: bool) -> crate::ExperimentOutput {
    let mut t = Table::new(
        "Loss-pattern insensitivity: open-loop consistency at equal mean loss",
        "loss_pattern",
        &[
            "mean loss",
            "Bernoulli",
            "burst len 5",
            "burst len 20",
            "max spread",
        ],
    );
    let means: Vec<f64> = if fast {
        vec![0.30]
    } else {
        vec![0.10, 0.30, 0.50]
    };
    // Three loss models per mean, flattened into one sweep.
    let points: Vec<LossSpec> = means
        .iter()
        .flat_map(|&mean| {
            [
                LossSpec::Bernoulli(mean),
                LossSpec::Bursty {
                    mean,
                    burst_len: 5.0,
                },
                LossSpec::Bursty {
                    mean,
                    burst_len: 20.0,
                },
            ]
        })
        .collect();
    let results = par::sweep(&points, |_, &loss| {
        let r = open_loop::run(&cfg(loss, fast));
        (
            r.stats.consistency.busy.unwrap(),
            crate::dispatched_events(&r.metrics),
        )
    });
    let mut events = 0u64;
    for (&mean, chunk) in means.iter().zip(results.chunks(3)) {
        let cs = [chunk[0].0, chunk[1].0, chunk[2].0];
        events += chunk.iter().map(|&(_, ev)| ev).sum::<u64>();
        let spread = cs.iter().cloned().fold(f64::MIN, f64::max)
            - cs.iter().cloned().fold(f64::MAX, f64::min);
        t.push_row(vec![
            fmt_pct(mean),
            fmt_frac(cs[0]),
            fmt_frac(cs[1]),
            fmt_frac(cs[2]),
            fmt_frac(spread),
        ]);
    }
    crate::ExperimentOutput {
        events,
        ..vec![t].into()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let tables = super::run(true).tables;
        for row in &tables[0].rows {
            // The paper's claim holds for moderate burstiness: Bernoulli
            // and 5-packet bursts agree closely. Very long bursts (20
            // packets) depress the time-averaged metric measurably — a
            // qualification of the claim, recorded in EXPERIMENTS.md.
            let bern: f64 = row[1].parse().unwrap();
            let b5: f64 = row[2].parse().unwrap();
            let b20: f64 = row[3].parse().unwrap();
            assert!((bern - b5).abs() < 0.06, "moderate bursts: {row:?}");
            assert!(b20 <= bern + 0.02, "long bursts never help: {row:?}");
        }
    }
}
