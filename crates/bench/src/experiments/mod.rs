//! One module per reproduced table/figure plus the ablations.
//! See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
//! paper-vs-measured record.

pub mod adapt;
pub mod catchup;
pub mod continuum;
pub mod fig10;
pub mod fig11;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig8;
pub mod fig9;
pub mod frag;
pub mod headline;
pub mod loss_pattern;
pub mod multicast;
pub mod namespace_exp;
pub mod profile_accuracy;
pub mod recovery;
pub mod sched_ablation;
pub mod table1;
pub mod validate;

/// Simulated duration in seconds, scaled down in fast (smoke-test) mode.
pub(crate) fn secs(fast: bool, full: u64) -> ss_netsim::SimDuration {
    ss_netsim::SimDuration::from_secs(if fast { (full / 20).max(200) } else { full })
}
