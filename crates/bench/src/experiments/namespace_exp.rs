//! Ablation: the §6.2 hierarchical namespace. "Our hierarchical data
//! model … simultaneously solves the namespace scaling problem and
//! provides a rich naming structure."
//!
//! We measure the wire cost of loss recovery — feedback bytes plus
//! repair-response bytes until full convergence — for a flat namespace
//! (every ADU directly under the root) versus a two-level hierarchy
//! (√N branches), when a localized burst knocks out one branch's worth
//! of records. The hierarchy's digests let the receiver descend only
//! into the damaged branch; the flat namespace pays for a summary of the
//! whole store.

use crate::table::Table;
use softstate::measure_tables;
use ss_netsim::{par, SimDuration, SimRng, SimTime};
use sstp::digest::HashAlgorithm;
use sstp::namespace::MetaTag;
use sstp::receiver::{ReceiverConfig, SstpReceiver};
use sstp::sender::SstpSender;
use sstp::wire::Packet;

/// Builds a store of `n` records, flat or hierarchical, loses records in
/// `lost_branch`, then repairs losslessly. Returns
/// `(feedback_packets, feedback_bytes, repair_response_bytes, rounds)`
/// plus the number of packet-delivery steps performed.
fn run_case(n: usize, branches: usize, hierarchical: bool) -> (u64, u64, u64, u32, u64) {
    let mut tx = SstpSender::new(HashAlgorithm::Fnv64, 1000);
    let mut cfg = ReceiverConfig::unicast(0, HashAlgorithm::Fnv64);
    cfg.ttl = SimDuration::from_secs(1_000_000);
    cfg.repair_backoff = SimDuration::from_millis(1);
    let mut rx = SstpReceiver::new(cfg, SimRng::new(2));

    let root = tx.root();
    let parents: Vec<_> = if hierarchical {
        (0..branches)
            .map(|i| tx.add_branch(root, MetaTag(i as u32)))
            .collect()
    } else {
        vec![root]
    };

    // Publish; records are assigned to branches contiguously so a
    // localized failure maps to one branch.
    let per_branch = n / branches;
    let mut keys = Vec::new();
    for i in 0..n {
        let b = (i / per_branch).min(parents.len() - 1);
        keys.push(tx.publish(SimTime::ZERO, parents[b], MetaTag(b as u32)));
    }

    // Deliver everything except branch 0's records (a localized burst).
    let mut now = SimTime::from_secs(1);
    // There is no event engine here (packets move by direct calls), so
    // count one step per packet delivery to feed the bench step rate.
    let mut steps = 0u64;
    while let Some(p) = tx.next_hot_packet() {
        steps += 1;
        // No engine here, so each counted step opens its own dispatch
        // scope — the profiler's event attribution stays exact.
        let _d = ss_netsim::profile::dispatch_scope("ns-initial-fill");
        let lost = match &p {
            Packet::Data(d) => keys[..per_branch].contains(&d.key),
            _ => false,
        };
        if !lost {
            rx.on_packet(now, &p);
        }
    }
    assert!(measure_tables(tx.table(), rx.replica()).unwrap() < 1.0);

    // Lossless repair rounds until convergence.
    let mut fb_packets = 0u64;
    let mut fb_bytes = 0u64;
    let mut repair_bytes = 0u64;
    let mut rounds = 0u32;
    loop {
        rounds += 1;
        now += SimDuration::from_secs(1);
        let summary = tx.summary_packet();
        steps += 1;
        repair_bytes += summary.wire_len() as u64;
        {
            let _d = ss_netsim::profile::dispatch_scope("ns-summary");
            rx.on_packet(now, &summary);
        }
        let mut progressed = false;
        loop {
            let fb = rx.poll_feedback(now);
            if fb.is_empty() {
                break;
            }
            progressed = true;
            for p in &fb {
                steps += 1;
                fb_packets += 1;
                fb_bytes += p.wire_len() as u64;
                let _d = ss_netsim::profile::dispatch_scope("ns-feedback");
                tx.on_packet(p);
            }
            while let Some(p) = tx.next_hot_packet() {
                steps += 1;
                let _d = ss_netsim::profile::dispatch_scope("ns-repair");
                // Count control responses; data retransmissions carry the
                // payload and are the same for both layouts.
                if matches!(p, Packet::NodeSummary(_)) {
                    repair_bytes += p.wire_len() as u64;
                }
                rx.on_packet(now, &p);
            }
        }
        if measure_tables(tx.table(), rx.replica()) == Some(1.0) {
            break;
        }
        assert!(progressed && rounds < 100, "repair must converge");
    }
    // Merge this worker thread's tallies into the global accumulator,
    // mirroring what the engine-driven sims do at end of run.
    ss_netsim::profile::flush();
    (fb_packets, fb_bytes, repair_bytes, rounds, steps)
}

/// Runs the experiment.
pub fn run(fast: bool) -> crate::ExperimentOutput {
    let mut t = Table::new(
        "Namespace repair cost: flat vs hierarchical, one branch lost",
        "namespace",
        &[
            "records",
            "layout",
            "fb pkts",
            "fb bytes",
            "ctl bytes",
            "rounds",
        ],
    );
    let sizes: Vec<usize> = if fast {
        vec![64, 256]
    } else {
        vec![64, 256, 1024, 4096]
    };
    // No event engine here (sender and receiver are driven directly),
    // but each (size, layout) case is still an independent sweep point.
    let points: Vec<(usize, &str, bool)> = sizes
        .iter()
        .flat_map(|&n| [(n, "flat", false), (n, "hierarchical", true)])
        .collect();
    let results = par::sweep(&points, |_, &(n, _, hier)| {
        run_case(n, (n as f64).sqrt() as usize, hier)
    });
    let mut events = 0u64;
    for (&(n, label, _), &(fp, fbb, cb, rounds, steps)) in points.iter().zip(&results) {
        events += steps;
        t.push_row(vec![
            n.to_string(),
            label.to_string(),
            fp.to_string(),
            fbb.to_string(),
            cb.to_string(),
            rounds.to_string(),
        ]);
    }
    let mut out: crate::ExperimentOutput = vec![t].into();
    out.events = events;
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let tables = super::run(true).tables;
        let rows = &tables[0].rows;
        // At 256 records, hierarchical control bytes must undercut flat.
        let flat_ctl: u64 = rows[2][4].parse().unwrap();
        let hier_ctl: u64 = rows[3][4].parse().unwrap();
        assert!(
            hier_ctl < flat_ctl,
            "hierarchy must reduce control bytes: {hier_ctl} vs {flat_ctl}"
        );
    }
}
