//! Table 1 — the state-change probabilities of the §3 queueing model,
//! checked empirically: a long open-loop run's observed transition
//! frequencies must match `{p_c(1−p_d), (1−p_c)(1−p_d), p_d}` out of the
//! inconsistent class and `{1−p_d, p_d}` out of the consistent class.

use super::secs;
use crate::table::{fmt_frac, Table};
use crate::units::pkts;
use softstate::protocol::open_loop::{self, OpenLoopConfig};
use ss_queueing::Transitions;

/// Runs the experiment.
pub fn run(fast: bool) -> crate::ExperimentOutput {
    let p_loss = 0.2;
    let p_death = 0.25;
    let mut cfg = OpenLoopConfig::analytic(pkts(20.0), pkts(128.0), p_loss, p_death, 1999);
    cfg.duration = secs(fast, 100_000);
    let report = open_loop::run(&cfg);

    let th = Transitions::new(p_loss, p_death);
    let (ii, ic, id) = report
        .transitions
        .from_inconsistent()
        .expect("run produced transitions");
    let (cc, cd) = report.transitions.from_consistent().unwrap();

    let mut t = Table::new(
        format!(
            "Table 1: state-change probabilities (p_c = {p_loss}, p_d = {p_death}; \
             {} services observed)",
            report.transitions.total()
        ),
        "table1",
        &["transition", "analytic", "simulated", "abs err"],
    );
    for (name, a, s) in [
        ("I -> I (lost, survives)", th.i_to_i, ii),
        ("I -> C (delivered)", th.i_to_c, ic),
        ("I -> death", th.i_death, id),
        ("C -> C (survives)", th.c_to_c, cc),
        ("C -> death", th.c_death, cd),
    ] {
        t.push_row(vec![
            name.to_string(),
            fmt_frac(a),
            fmt_frac(s),
            format!("{:.5}", (a - s).abs()),
        ]);
    }
    // A single long run: nothing to fan out, but the event count still
    // feeds the bench subcommand's throughput figures.
    crate::ExperimentOutput {
        events: crate::dispatched_events(&report.metrics),
        ..vec![t].into()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let tables = super::run(true).tables;
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 5);
        // All absolute errors under 3% even in fast mode.
        for row in &tables[0].rows {
            let err: f64 = row[3].parse().unwrap();
            assert!(err < 0.03, "{row:?}");
        }
    }
}
