//! Figure 5 — "Two-level scheduling improves consistency by 10% to 40%.
//! μ_data = 45 kbps, λ = 15 kbps; consistency is maximum when
//! μ_hot > λ."
//!
//! Sweep of the hot share of a fixed data budget, per loss rate. The
//! knee sits at `μ_hot = λ`, i.e. hot share = 15/45 = 33%.

use super::secs;
use crate::table::{fmt_frac, fmt_pct, Table};
use crate::units::pkts;
use softstate::protocol::two_queue::{self, Sharing, TwoQueueConfig};
use softstate::protocol::LossSpec;
use softstate::{ArrivalProcess, DeathProcess, ServiceModel};
use ss_netsim::par;

const LOSS_RATES: [f64; 3] = [0.10, 0.30, 0.50];

fn cfg(hot_share: f64, p_loss: f64, fast: bool) -> TwoQueueConfig {
    let mu_data = pkts(45.0);
    TwoQueueConfig {
        arrivals: ArrivalProcess::Poisson { rate: pkts(15.0) },
        death: DeathProcess::PerTransmission { p: 0.1 },
        mu_hot: mu_data * hot_share,
        mu_cold: mu_data * (1.0 - hot_share),
        loss: LossSpec::Bernoulli(p_loss),
        service: ServiceModel::Exponential,
        sharing: Sharing::Partitioned,
        seed: 5,
        duration: secs(fast, 30_000),
        series_spacing: None,
        event_capacity: 0,
        trace_capacity: 0,
    }
}

/// Runs the experiment.
pub fn run(fast: bool) -> crate::ExperimentOutput {
    let mut t = Table::new(
        "Figure 5: consistency vs hot share (mu_data = 45 kbps, lambda = 15 kbps, pd = 0.1)",
        "fig5",
        &["hot share", "loss=10%", "loss=30%", "loss=50%"],
    );
    let shares: Vec<f64> = if fast {
        vec![0.10, 0.35, 0.60]
    } else {
        (1..=16).map(|i| i as f64 * 0.05).collect()
    };
    let points: Vec<(f64, f64)> = shares
        .iter()
        .flat_map(|&share| LOSS_RATES.iter().map(move |&p_loss| (share, p_loss)))
        .collect();
    let mut results = par::sweep(&points, |i, &(share, p_loss)| {
        let mut c = cfg(share, p_loss, fast);
        // The first point also exports its typed event trace and (under
        // --trace) its causal trace; logging consumes no randomness, so
        // enabling either cannot perturb the sweep.
        if i == 0 {
            c.event_capacity = 4096;
            if crate::trace_enabled() {
                c.trace_capacity = 200_000;
            }
        }
        let report = two_queue::run(&c);
        let busy = report.metrics.gauge("consistency.busy");
        let mut jsonl = String::new();
        report
            .metrics
            .write_jsonl_labeled(&format!("share={share:.2},loss={p_loss:.2}"), &mut jsonl);
        let events_jsonl = if i == 0 {
            report.events.to_jsonl()
        } else {
            String::new()
        };
        let trace = (i == 0 && crate::trace_enabled())
            .then(|| crate::TraceArtifact::from_tracer("fig5_two_queue", &report.trace));
        (
            busy,
            jsonl,
            events_jsonl,
            trace,
            crate::dispatched_events(&report.metrics),
        )
    });
    let mut jsonl = String::new();
    let mut events_jsonl = String::new();
    let mut traces = Vec::new();
    let mut events = 0u64;
    for (&share, chunk) in shares.iter().zip(results.chunks_mut(LOSS_RATES.len())) {
        let mut row = vec![fmt_pct(share)];
        for (busy, run_jsonl, run_events, trace, ev) in chunk {
            row.push(fmt_frac(if busy.is_finite() { *busy } else { 0.0 }));
            jsonl.push_str(run_jsonl);
            if !run_events.is_empty() {
                events_jsonl = run_events.clone();
            }
            traces.extend(trace.take());
            events += *ev;
        }
        t.push_row(row);
    }
    crate::ExperimentOutput {
        tables: vec![t],
        metrics: vec![
            crate::MetricsArtifact {
                name: "fig5".into(),
                jsonl,
            },
            crate::MetricsArtifact {
                name: "fig5_events".into(),
                jsonl: events_jsonl,
            },
        ],
        traces,
        events,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let tables = super::run(true).tables;
        let rows = &tables[0].rows;
        // Knee shape at 10% loss: starved < knee, knee ~ plateau.
        let starved: f64 = rows[0][1].parse().unwrap();
        let knee: f64 = rows[1][1].parse().unwrap();
        let plateau: f64 = rows[2][1].parse().unwrap();
        assert!(knee > starved + 0.1, "knee {knee} vs starved {starved}");
        assert!(
            (plateau - knee).abs() < 0.1,
            "plateau {plateau} vs knee {knee}"
        );
        // Loss limits attainable consistency at the plateau.
        let plateau50: f64 = rows[2][3].parse().unwrap();
        assert!(plateau > plateau50, "10% loss must beat 50% loss");
    }
}
