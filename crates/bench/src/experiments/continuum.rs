//! §6's reliability continuum, measured: "a parameterized framework that
//! can be tuned to provide one of a continuum of 'reliability levels'" —
//! each level's consistency and overhead under the same workload and
//! loss.

use crate::table::{fmt_frac, Table};
use softstate::{ArrivalProcess, LossSpec};
use ss_netsim::{par, SimDuration};
use sstp::reliability::ReliabilityLevel;
use sstp::session::{self, SessionConfig, SessionWorkload};

const LEVELS: [(&str, ReliabilityLevel); 4] = [
    ("best-effort", ReliabilityLevel::BestEffort),
    ("announce/listen", ReliabilityLevel::AnnounceListen),
    (
        "quasi (fb<=30%)",
        ReliabilityLevel::Quasi { max_fb_share: 0.3 },
    ),
    ("reliable", ReliabilityLevel::Reliable),
];

fn cfg(level: ReliabilityLevel, loss: f64, fast: bool) -> SessionConfig {
    let mut cfg = SessionConfig::unicast_default(321);
    cfg.allocator.reliability = level.into();
    cfg.data_loss = LossSpec::Bernoulli(loss);
    cfg.fb_loss = LossSpec::Bernoulli(loss);
    cfg.workload = SessionWorkload {
        arrivals: ArrivalProcess::PoissonUpdates {
            rate: 2.0,
            keys: 50,
        },
        mean_lifetime_secs: None,
        branches: 4,
        class_weights: None,
    };
    cfg.ttl = SimDuration::from_secs(90);
    cfg.duration = SimDuration::from_secs(if fast { 300 } else { 800 });
    cfg
}

/// Runs the experiment.
pub fn run(fast: bool) -> crate::ExperimentOutput {
    let mut t = Table::new(
        "Reliability continuum: consistency and overhead per level (50-key update workload)",
        "continuum",
        &[
            "level",
            "loss",
            "consistency",
            "data bytes",
            "fb bytes",
            "repairs",
        ],
    );
    let losses: Vec<f64> = if fast {
        vec![0.25]
    } else {
        vec![0.10, 0.25, 0.40]
    };
    let points: Vec<(f64, &str, ReliabilityLevel)> = losses
        .iter()
        .flat_map(|&loss| LEVELS.iter().map(move |&(name, level)| (loss, name, level)))
        .collect();
    let reports = par::sweep(&points, |i, &(loss, _, level)| {
        let mut c = cfg(level, loss, fast);
        // Under --trace the quasi-reliable point (repairs active)
        // records the session's causal trace.
        if i == 2 && crate::trace_enabled() {
            c.trace_capacity = 200_000;
        }
        session::run(&c)
    });
    let mut events = 0u64;
    for (&(loss, name, _), report) in points.iter().zip(&reports) {
        events += crate::dispatched_events(&report.metrics);
        let rx = &report.receivers[0];
        t.push_row(vec![
            name.to_string(),
            fmt_frac(loss),
            fmt_frac(report.mean_consistency()),
            report.packets.data_bytes.to_string(),
            report.packets.feedback_bytes.to_string(),
            rx.stats.nacked_keys.to_string(),
        ]);
    }
    let traces = if crate::trace_enabled() {
        vec![crate::TraceArtifact::from_tracer(
            "continuum_sstp",
            &reports[2].trace,
        )]
    } else {
        Vec::new()
    };
    crate::ExperimentOutput {
        events,
        traces,
        ..vec![t].into()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let tables = super::run(true).tables;
        let rows = &tables[0].rows;
        let c = |i: usize| -> f64 { rows[i][2].parse().unwrap() };
        let fb = |i: usize| -> u64 { rows[i][4].parse().unwrap() };
        // Quasi-reliable beats best-effort on consistency at 25% loss.
        assert!(c(2) > c(0), "quasi {} vs best-effort {}", c(2), c(0));
        // Feedback bytes order with the level's budget.
        assert!(fb(2) > fb(1), "quasi must spend more feedback than A/L");
        // Best-effort still sends reports (the bootstrap trickle) but no
        // repair keys.
        let repairs_be: u64 = rows[0][5].parse().unwrap();
        assert_eq!(repairs_be, 0);
    }
}
