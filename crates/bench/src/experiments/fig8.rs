//! Figure 8 — consistency over time per feedback share.
//!
//! "In open-loop (p_fb/p_tot = 0), consistency is about 80%. When
//! p_fb/p_tot = 20-50%, consistency reaches 99%. At higher values, when
//! insufficient bandwidth is available for data, consistency collapses."
//!
//! λ = 15 kbps, μ_tot = 45 kbps, loss = 40%. The data budget splits
//! hot:cold = 2:1; the table samples the `c(t)` series the paper plots.

use super::secs;
use crate::table::{fmt_frac, fmt_pct, Table};
use crate::units::pkts;
use softstate::protocol::feedback::{self, FeedbackConfig};
use softstate::protocol::LossSpec;
use softstate::{ArrivalProcess, DeathProcess, ServiceModel};
use ss_netsim::par;
use ss_netsim::{SimDuration, SimTime};

const FB_SHARES: [f64; 4] = [0.0, 0.20, 0.50, 0.70];

fn cfg(fb_share: f64, fast: bool) -> FeedbackConfig {
    let mu_tot = pkts(45.0);
    let mu_fb = mu_tot * fb_share;
    let mu_data = mu_tot - mu_fb;
    FeedbackConfig {
        arrivals: ArrivalProcess::Poisson { rate: pkts(15.0) },
        death: DeathProcess::PerTransmission { p: 0.1 },
        mu_hot: mu_data * 2.0 / 3.0,
        mu_cold: mu_data / 3.0,
        mu_fb,
        loss: LossSpec::Bernoulli(0.4),
        nack_loss: None,
        service: ServiceModel::Exponential,
        seed: 8,
        duration: secs(fast, 2_000),
        series_spacing: Some(SimDuration::from_secs(if fast { 5 } else { 20 })),
        trace_capacity: 0,
        event_capacity: 0,
    }
}

/// Samples a series at `at` (last point at or before it).
fn sample(series: &[(SimTime, f64)], at: SimTime) -> f64 {
    series
        .iter()
        .take_while(|(t, _)| *t <= at)
        .last()
        .map(|&(_, v)| v)
        .unwrap_or(1.0)
}

/// Runs the experiment.
pub fn run(fast: bool) -> crate::ExperimentOutput {
    let mut t = Table::new(
        "Figure 8: c(t) over time per feedback share (lambda=15kbps, mu_tot=45kbps, loss=40%)",
        "fig8",
        &["time", "fb=0%", "fb=20%", "fb=50%", "fb=70%"],
    );
    let reports = par::sweep(&FB_SHARES, |i, &share| {
        let mut c = cfg(share, fast);
        // The 50%-share point records the causal trace under --trace:
        // it exercises the full NACK -> promote -> retransmit chain.
        if i == 2 && crate::trace_enabled() {
            c.trace_capacity = 200_000;
        }
        feedback::run(&c)
    });
    let horizon = if fast { 200u64 } else { 2_000 };
    let n_samples = 10;
    for i in 1..=n_samples {
        let at = SimTime::from_secs(horizon * i / n_samples);
        let mut row = vec![format!("{}s", at.as_secs_f64() as u64)];
        for r in &reports {
            let series = r.stats.series.as_ref().expect("series enabled");
            row.push(fmt_frac(sample(series, at)));
        }
        t.push_row(row);
    }

    let mut avg = Table::new(
        "Figure 8 (averages): time-averaged consistency per feedback share",
        "fig8_avg",
        &[
            "fb share",
            "consistency",
            "nacks",
            "promotions",
            "hot backlog",
        ],
    );
    for (share, r) in FB_SHARES.iter().zip(&reports) {
        avg.push_row(vec![
            fmt_pct(*share),
            fmt_frac(r.stats.consistency.busy.unwrap_or(0.0)),
            r.nacks_generated.to_string(),
            r.promotions.to_string(),
            format!("{:.1}", r.mean_hot_backlog),
        ]);
    }
    let events = reports
        .iter()
        .map(|r| crate::dispatched_events(&r.metrics))
        .sum();
    let traces = if crate::trace_enabled() {
        vec![crate::TraceArtifact::from_tracer(
            "fig8_feedback",
            &reports[2].trace,
        )]
    } else {
        Vec::new()
    };
    crate::ExperimentOutput {
        events,
        traces,
        ..vec![t, avg].into()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let tables = super::run(true).tables;
        let avg = &tables[1];
        let c = |i: usize| -> f64 { avg.rows[i][1].parse().unwrap() };
        // Moderate feedback beats open loop; 70% share collapses.
        assert!(c(1) > c(0), "20% fb {} must beat open loop {}", c(1), c(0));
        assert!(
            c(3) < c(1) - 0.2,
            "70% fb {} must collapse vs {}",
            c(3),
            c(1)
        );
    }
}
