//! # ss-bench — the experiment harness
//!
//! One runner per table and figure of the paper (and a set of ablations),
//! each printing the paper-shaped table and writing a CSV under
//! `results/`. Run with:
//!
//! ```text
//! cargo run -p ss-bench --release --bin experiments -- list
//! cargo run -p ss-bench --release --bin experiments -- fig3
//! cargo run -p ss-bench --release --bin experiments -- all
//! ```
//!
//! `--fast` shortens simulations (used by the smoke tests); published
//! numbers in EXPERIMENTS.md come from full-length runs.

pub mod experiments;
pub mod table;
pub mod units;

pub use table::Table;

use std::path::PathBuf;

/// The directory experiment CSVs are written to (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// The directory metrics JSONL artifacts are written to (created on
/// demand). See EXPERIMENTS.md for the artifact catalogue.
pub fn metrics_dir() -> PathBuf {
    let dir = PathBuf::from("results").join("metrics");
    std::fs::create_dir_all(&dir).expect("create results/metrics dir");
    dir
}

/// The directory causal-trace artifacts are written to (created on
/// demand): `results/traces/<name>.trace.json` (Chrome/Perfetto) and
/// `results/traces/<name>.causal.jsonl`.
pub fn traces_dir() -> PathBuf {
    let dir = PathBuf::from("results").join("traces");
    std::fs::create_dir_all(&dir).expect("create results/traces dir");
    dir
}

/// The directory profiler artifacts are written to (created on
/// demand): `results/profile/<name>.profile.jsonl` (committed, counts
/// only) and `results/profile/<name>.wall.jsonl` (gitignored wall
/// times).
pub fn profile_dir() -> PathBuf {
    let dir = PathBuf::from("results").join("profile");
    std::fs::create_dir_all(&dir).expect("create results/profile dir");
    dir
}

static TRACE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Turns causal-trace capture on for subsequent experiment runs (the
/// CLI's `--trace` flag). Tracing consumes no randomness, so enabling
/// it never perturbs results; it only adds the `results/traces/`
/// artifacts.
pub fn set_trace(on: bool) {
    TRACE.store(on, std::sync::atomic::Ordering::Relaxed);
}

/// Whether `--trace` is in effect. Experiments consult this to decide
/// whether their representative sweep point should record a tracer.
pub fn trace_enabled() -> bool {
    TRACE.load(std::sync::atomic::Ordering::Relaxed)
}

/// Turns the phase profiler on for subsequent experiment runs (the
/// CLI's `--profile` flag). Profiling consumes no randomness and
/// schedules no events, so enabling it never perturbs results; it only
/// adds the `results/profile/` artifacts. Delegates to the global
/// toggle in [`ss_netsim::profile`] so every sim loop sees it.
pub fn set_profile(on: bool) {
    ss_netsim::profile::set_enabled(on);
}

/// Whether `--profile` is in effect.
pub fn profile_enabled() -> bool {
    ss_netsim::profile::is_enabled()
}

/// A deterministic causal-trace artifact: both exports of one run's
/// [`ss_netsim::Tracer`], written under `results/traces/`.
pub struct TraceArtifact {
    /// Basename (no extension) under `results/traces/`.
    pub name: String,
    /// Chrome trace-event JSON (load in Perfetto / `chrome://tracing`).
    pub chrome_json: String,
    /// Compact causal JSONL (one event per line, parent edges inline).
    pub causal_jsonl: String,
}

impl TraceArtifact {
    /// Exports both formats from a finished tracer.
    pub fn from_tracer(name: &str, tracer: &ss_netsim::Tracer) -> Self {
        TraceArtifact {
            name: name.to_string(),
            chrome_json: tracer.to_chrome_json(),
            causal_jsonl: tracer.to_causal_jsonl(),
        }
    }
}

/// A deterministic metrics artifact: the JSON Lines export of one or
/// more [`ss_netsim::MetricsSnapshot`]s (one labeled block per sweep
/// point), written to `results/metrics/<name>.jsonl`.
pub struct MetricsArtifact {
    /// Basename (no extension) under `results/metrics/`.
    pub name: String,
    /// The JSONL payload; byte-identical across runs with one seed.
    pub jsonl: String,
}

/// What one experiment run produces: the paper-shaped tables plus any
/// metrics and trace artifacts exported from the runs.
#[derive(Default)]
pub struct ExperimentOutput {
    /// Tables, printed and written as CSV under `results/`.
    pub tables: Vec<Table>,
    /// Metrics artifacts, written under `results/metrics/`.
    pub metrics: Vec<MetricsArtifact>,
    /// Causal-trace artifacts, written under `results/traces/`
    /// (populated only when [`trace_enabled`]).
    pub traces: Vec<TraceArtifact>,
    /// Total simulator events dispatched across every run of the
    /// experiment (sum of the runs' `engine.events_dispatched`
    /// counters). Feeds the `experiments bench` events/sec figures.
    /// Experiments that drive endpoints directly instead of through the
    /// event engine (e.g. `namespace`) count one event per packet
    /// delivery, so every row in the bench report is non-zero.
    pub events: u64,
}

impl From<Vec<Table>> for ExperimentOutput {
    fn from(tables: Vec<Table>) -> Self {
        ExperimentOutput {
            tables,
            ..ExperimentOutput::default()
        }
    }
}

/// The `engine.events_dispatched` counter of one run's snapshot, or 0
/// when the run didn't export it. Sweeps sum this into
/// [`ExperimentOutput::events`].
pub fn dispatched_events(m: &ss_netsim::MetricsSnapshot) -> u64 {
    match m.get("engine.events_dispatched") {
        Some(ss_netsim::MetricValue::Counter(v)) => *v,
        _ => 0,
    }
}

/// An experiment: a named runner producing one or more tables.
pub struct Experiment {
    /// CLI id, e.g. `"fig3"`.
    pub id: &'static str,
    /// The paper artifact or question this regenerates.
    pub description: &'static str,
    /// Runner; `fast` shortens simulated durations for smoke tests.
    pub run: fn(fast: bool) -> ExperimentOutput,
}

/// Every registered experiment, in presentation order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            description: "Table 1: state-change probabilities, analytic vs simulated",
            run: experiments::table1::run,
        },
        Experiment {
            id: "fig3",
            description: "Figure 3: consistency vs loss rate per death rate (open loop)",
            run: experiments::fig3::run,
        },
        Experiment {
            id: "fig4",
            description: "Figure 4: wasted bandwidth vs loss rate (open loop)",
            run: experiments::fig4::run,
        },
        Experiment {
            id: "fig5",
            description: "Figure 5: consistency vs hot bandwidth share (two queues)",
            run: experiments::fig5::run,
        },
        Experiment {
            id: "fig6",
            description: "Figure 6: receive latency vs cold/hot ratio (two queues)",
            run: experiments::fig6::run,
        },
        Experiment {
            id: "fig8",
            description: "Figure 8: consistency over time per feedback share",
            run: experiments::fig8::run,
        },
        Experiment {
            id: "fig9",
            description: "Figure 9: consistency vs feedback share per loss rate",
            run: experiments::fig9::run,
        },
        Experiment {
            id: "fig10",
            description: "Figure 10: consistency vs hot share with feedback (knee)",
            run: experiments::fig10::run,
        },
        Experiment {
            id: "fig11",
            description: "Figure 11: knee curves per loss rate",
            run: experiments::fig11::run,
        },
        Experiment {
            id: "headline",
            description: "§5 headline: feedback gain at equal total bandwidth",
            run: experiments::headline::run,
        },
        Experiment {
            id: "loss-pattern",
            description: "Ablation: Bernoulli vs bursty loss at equal mean (§3 claim)",
            run: experiments::loss_pattern::run,
        },
        Experiment {
            id: "sched-ablation",
            description: "Ablation: lottery/stride/SFQ/DRR/priority for hot-cold sharing",
            run: experiments::sched_ablation::run,
        },
        Experiment {
            id: "namespace",
            description: "Ablation: hierarchical vs flat namespace repair cost (§6.2)",
            run: experiments::namespace_exp::run,
        },
        Experiment {
            id: "catchup",
            description: "Extension: late-joiner full-sync time, analytic vs simulated",
            run: experiments::catchup::run,
        },
        Experiment {
            id: "frag",
            description: "Extension: ALF fragmentation (right_edge) at varying MTU",
            run: experiments::frag::run,
        },
        Experiment {
            id: "continuum",
            description: "SSTP: the reliability continuum's consistency/overhead trade",
            run: experiments::continuum::run,
        },
        Experiment {
            id: "adapt",
            description: "SSTP: profile-driven allocation under measured loss (§6.1)",
            run: experiments::adapt::run,
        },
        Experiment {
            id: "profile-accuracy",
            description: "SSTP: analytic consistency profile vs empirical grid (§6.1)",
            run: experiments::profile_accuracy::run,
        },
        Experiment {
            id: "multicast",
            description: "SSTP: slotting-and-damping feedback vs group size",
            run: experiments::multicast::run,
        },
        Experiment {
            id: "recovery",
            description: "ss-chaos: MTTR after partitions vs TTL and reliability level",
            run: experiments::recovery::run,
        },
        Experiment {
            id: "validate-analysis",
            description: "Simulation vs closed forms across a parameter grid (§3)",
            run: experiments::validate::run,
        },
    ]
}

/// Looks up an experiment by id.
pub fn find_experiment(id: &str) -> Option<Experiment> {
    all_experiments().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let exps = all_experiments();
        let mut ids: Vec<&str> = exps.iter().map(|e| e.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), exps.len());
    }

    #[test]
    fn find_works() {
        assert!(find_experiment("fig3").is_some());
        assert!(find_experiment("nope").is_none());
    }
}
