//! The experiment CLI: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments list             # enumerate experiments
//! experiments fig3             # run one (writes results/fig3_*.csv)
//! experiments all              # run everything
//! experiments --fast all      # shortened runs (smoke testing)
//! experiments --threads 4 all # fan sweep points over 4 workers
//! experiments --trace fig5    # also write results/traces/ artifacts
//! experiments --profile all   # also write results/profile/ artifacts
//! experiments bench           # machine-readable wall-time + events/sec
//! experiments bench-check     # compare results/bench.json to baseline
//! ```
//!
//! Sweep points fan out across `--threads` workers (default: the
//! `SS_EXPERIMENTS_THREADS` env var, then the machine's available
//! parallelism); results are reassembled in sweep order, so every CSV
//! and JSONL artifact is byte-identical at any thread count.

use ss_bench::{
    all_experiments, find_experiment, metrics_dir, profile_dir, results_dir, traces_dir,
};
use ss_netsim::ARTIFACT_SCHEMA_VERSION;
// lint: allow(D001, wall-clock progress reporting for the human running the suite)
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--fast] [--threads N] [--trace] [--profile] \
         <experiment-id>|all|list|bench|bench-check [--tolerance F]"
    );
    eprintln!("experiments:");
    for e in all_experiments() {
        eprintln!("  {:16} {}", e.id, e.description);
    }
    std::process::exit(2);
}

/// Runs one experiment and writes its artifacts. Any file that fails to
/// write is reported and turns the final exit status nonzero.
fn run_one(id: &str, fast: bool) -> Result<(), ()> {
    let Some(exp) = find_experiment(id) else {
        eprintln!("unknown experiment '{id}'");
        usage();
    };
    // lint: allow(D001, timing printed to the operator; never feeds results)
    let started = Instant::now();
    println!("# {} — {}", exp.id, exp.description);
    let output = (exp.run)(fast);
    // Drain the profiler once per experiment: the per-run flushes merged
    // every worker thread's tallies into the global accumulator, so this
    // aggregate is identical at any `--threads` count.
    let prof = ss_bench::profile_enabled().then(ss_netsim::profile::take_report);
    let dir = results_dir();
    let mut ok = Ok(());
    for t in &output.tables {
        t.print();
        if let Err(e) = t.write_csv(&dir) {
            eprintln!("error: could not write {}: {e}", t.csv_name);
            ok = Err(());
        }
    }
    if !output.metrics.is_empty() {
        let mdir = metrics_dir();
        for m in &output.metrics {
            let path = mdir.join(format!("{}.jsonl", m.name));
            let payload = format!(
                "{{\"schema_version\":{ARTIFACT_SCHEMA_VERSION},\"artifact\":\"metrics\",\
                 \"name\":\"{}\"}}\n{}",
                m.name, m.jsonl
            );
            if let Err(e) = std::fs::write(&path, payload) {
                eprintln!("error: could not write {}: {e}", path.display());
                ok = Err(());
            }
        }
    }
    if !output.traces.is_empty() {
        let tdir = traces_dir();
        for t in &output.traces {
            // When both --trace and --profile are on, the phase tallies
            // ride along as Perfetto counter tracks in the same file.
            let chrome = match &prof {
                Some(p) if !p.is_empty() => t.chrome_json.replacen(
                    "\n]}\n",
                    &format!(",\n{}\n]}}\n", p.chrome_counter_events()),
                    1,
                ),
                _ => t.chrome_json.clone(),
            };
            let causal = format!(
                "{{\"schema_version\":{ARTIFACT_SCHEMA_VERSION},\"artifact\":\"causal\",\
                 \"name\":\"{}\"}}\n{}",
                t.name, t.causal_jsonl
            );
            for (suffix, payload) in [("trace.json", &chrome), ("causal.jsonl", &causal)] {
                let path = tdir.join(format!("{}.{suffix}", t.name));
                if let Err(e) = std::fs::write(&path, payload) {
                    eprintln!("error: could not write {}: {e}", path.display());
                    ok = Err(());
                }
            }
        }
    }
    if let Some(p) = &prof {
        let pdir = profile_dir();
        for (suffix, payload) in [
            ("profile.jsonl", p.to_jsonl(id, output.events)),
            ("wall.jsonl", p.to_wall_jsonl(id, output.events)),
        ] {
            let path = pdir.join(format!("{id}.{suffix}"));
            if let Err(e) = std::fs::write(&path, payload) {
                eprintln!("error: could not write {}: {e}", path.display());
                ok = Err(());
            }
        }
        let attributed = p.attributed_events();
        if output.events > 0 {
            let pct = 100.0 * attributed as f64 / output.events as f64;
            println!(
                "# {id} profile: {attributed}/{} events attributed ({pct:.2}%)",
                output.events
            );
        }
    }
    println!(
        "# {} done in {:.1}s ({} table(s) -> {}/, {} metrics artifact(s), {} trace(s))\n",
        exp.id,
        started.elapsed().as_secs_f64(),
        output.tables.len(),
        dir.display(),
        output.metrics.len(),
        output.traces.len()
    );
    ok
}

/// Pushes one JSON number with fixed decimal places (no float Display
/// variance across platforms beyond the fixed precision).
fn push_fixed(out: &mut String, v: f64, places: usize) {
    use std::fmt::Write as _;
    let _ = write!(out, "{v:.places$}");
}

/// Runs every experiment under the wall clock and emits one JSON object
/// with per-experiment wall seconds, dispatched events, and events/sec.
///
/// The timing figures are *observability*, not simulation results: they
/// vary run to run and machine to machine (hence the D001 allowances —
/// nothing here feeds a deterministic artifact). The `events` counts,
/// by contrast, are exact and reproducible.
fn run_bench(fast: bool) -> Result<(), ()> {
    let mut entries = String::new();
    let mut total_s = 0.0f64;
    let mut total_events = 0u64;
    for e in all_experiments() {
        // lint: allow(D001, bench subcommand measures wall time by design)
        let started = Instant::now();
        let output = (e.run)(fast);
        let wall_s = started.elapsed().as_secs_f64();
        total_s += wall_s;
        total_events += output.events;
        if ss_bench::profile_enabled() {
            let p = ss_netsim::profile::take_report();
            let pdir = profile_dir();
            for (suffix, payload) in [
                ("profile.jsonl", p.to_jsonl(e.id, output.events)),
                ("wall.jsonl", p.to_wall_jsonl(e.id, output.events)),
            ] {
                let path = pdir.join(format!("{}.{suffix}", e.id));
                if let Err(err) = std::fs::write(&path, payload) {
                    eprintln!("error: could not write {}: {err}", path.display());
                    return Err(());
                }
            }
            let attributed = p.attributed_events();
            let pct = if output.events > 0 {
                100.0 * attributed as f64 / output.events as f64
            } else {
                100.0
            };
            eprintln!(
                "# bench {:16} profile: {attributed}/{} events attributed ({pct:.2}%)",
                e.id, output.events
            );
        }
        let eps = if wall_s > 0.0 {
            output.events as f64 / wall_s
        } else {
            0.0
        };
        eprintln!(
            "# bench {:16} {wall_s:8.2}s {:>12} events",
            e.id, output.events
        );
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!("    {{\"id\": \"{}\", \"wall_s\": ", e.id));
        push_fixed(&mut entries, wall_s, 3);
        entries.push_str(&format!(
            ", \"events\": {}, \"events_per_sec\": ",
            output.events
        ));
        push_fixed(&mut entries, eps, 0);
        entries.push('}');
    }
    let threads = ss_netsim::par::threads();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema_version\": {ARTIFACT_SCHEMA_VERSION},\n"
    ));
    json.push_str(&format!("  \"fast\": {fast},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!(
        "  \"host\": {{\"os\": \"{}\", \"arch\": \"{}\", \"cpus\": {}}},\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
        std::thread::available_parallelism().map_or(0, |n| n.get())
    ));
    json.push_str("  \"experiments\": [\n");
    json.push_str(&entries);
    json.push_str("\n  ],\n  \"total_wall_s\": ");
    push_fixed(&mut json, total_s, 3);
    json.push_str(&format!(
        ",\n  \"total_events\": {total_events},\n  \"total_events_per_sec\": "
    ));
    push_fixed(
        &mut json,
        if total_s > 0.0 {
            total_events as f64 / total_s
        } else {
            0.0
        },
        0,
    );
    json.push_str("\n}\n");
    println!("{json}");
    let path = results_dir().join("bench.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("error: could not write {}: {e}", path.display());
        return Err(());
    }
    eprintln!("# bench written to {}", path.display());
    Ok(())
}

/// Extracts a top-level `"name": <number>` field from a flat JSON
/// object (the shape `run_bench` writes; no nesting below the
/// `experiments` array matters here because the keys we read are
/// unique).
fn json_number(json: &str, name: &str) -> Option<f64> {
    let needle = format!("\"{name}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One experiment's row from a bench JSON: `(id, events, events/sec)`.
/// Parses the fixed single-line-per-entry layout [`run_bench`] emits
/// (which `BENCH_baseline.json` is a committed copy of).
fn json_experiments(json: &str) -> Vec<(String, f64, f64)> {
    let mut out = Vec::new();
    for chunk in json.split("{\"id\": \"").skip(1) {
        let Some(id_end) = chunk.find('"') else {
            continue;
        };
        let entry = &chunk[..chunk.find('}').unwrap_or(chunk.len())];
        if let (Some(events), Some(eps)) = (
            json_number(entry, "events"),
            json_number(entry, "events_per_sec"),
        ) {
            out.push((chunk[..id_end].to_string(), events, eps));
        }
    }
    out
}

/// Compares a fresh `results/bench.json` against the committed
/// `BENCH_baseline.json`: events/sec may regress by at most
/// `tolerance` (a fraction; default 0.5, i.e. flag only halvings —
/// shared CI runners are noisy), both in aggregate and per experiment.
/// Exits nonzero on regression so CI can gate on it. Event *counts*
/// are also compared, exactly and per experiment: they are
/// deterministic, so any drift means the simulation itself changed.
fn run_bench_check(tolerance: f64) -> Result<(), ()> {
    let read = |path: &std::path::Path| -> Result<String, ()> {
        std::fs::read_to_string(path).map_err(|e| {
            eprintln!("error: could not read {}: {e}", path.display());
        })
    };
    let baseline = read(std::path::Path::new("BENCH_baseline.json"))?;
    let fresh = read(&results_dir().join("bench.json"))?;
    let field = |json: &str, name: &str| -> Result<f64, ()> {
        json_number(json, name).ok_or_else(|| {
            eprintln!("error: field '{name}' missing from bench JSON");
        })
    };
    let base_eps = field(&baseline, "total_events_per_sec")?;
    let fresh_eps = field(&fresh, "total_events_per_sec")?;
    let base_events = field(&baseline, "total_events")?;
    let fresh_events = field(&fresh, "total_events")?;
    let base_fast = baseline.contains("\"fast\": true");
    let fresh_fast = fresh.contains("\"fast\": true");
    // Host metadata is context for the throughput numbers, not a gate:
    // a baseline captured on different hardware explains (but does not
    // excuse past tolerance) an events/sec delta.
    let host = |json: &str| -> String {
        json.find("\"host\":")
            .and_then(|at| {
                let rest = &json[at..];
                rest.find('}').map(|end| rest[..end + 1].to_string())
            })
            .unwrap_or_else(|| "\"host\": (absent)".to_string())
    };
    println!(
        "# bench-check: baseline {} / fresh {}",
        host(&baseline),
        host(&fresh)
    );
    println!(
        "# bench-check: baseline {base_eps:.0} events/s, fresh {fresh_eps:.0} events/s \
         (tolerance {:.0}%)",
        tolerance * 100.0
    );
    let mut ok = Ok(());
    if base_fast == fresh_fast && fresh_events != base_events {
        eprintln!(
            "bench-check: event count drifted: baseline {base_events:.0}, fresh {fresh_events:.0} \
             (deterministic — the simulation changed; refresh BENCH_baseline.json deliberately)"
        );
        ok = Err(());
    }
    let floor = base_eps * (1.0 - tolerance);
    if fresh_eps < floor {
        eprintln!(
            "bench-check: throughput regression: {fresh_eps:.0} events/s < floor {floor:.0} \
             ({:.0}% below baseline {base_eps:.0})",
            (1.0 - fresh_eps / base_eps) * 100.0
        );
        ok = Err(());
    }
    // Per-experiment gates, same policy at finer grain: exact event
    // counts (determinism) and a per-experiment events/sec floor, so a
    // regression localized to one experiment can't hide inside a still-
    // healthy aggregate.
    let fresh_rows = json_experiments(&fresh);
    for (id, b_events, b_eps) in json_experiments(&baseline) {
        let Some((_, f_events, f_eps)) = fresh_rows.iter().find(|r| r.0 == id) else {
            eprintln!("bench-check: experiment '{id}' missing from fresh bench");
            ok = Err(());
            continue;
        };
        if base_fast == fresh_fast && *f_events != b_events {
            eprintln!(
                "bench-check: '{id}' event count drifted: baseline {b_events:.0}, \
                 fresh {f_events:.0}"
            );
            ok = Err(());
        }
        let floor = b_eps * (1.0 - tolerance);
        if *f_eps < floor {
            eprintln!(
                "bench-check: '{id}' throughput regression: {f_eps:.0} events/s \
                 < floor {floor:.0} (baseline {b_eps:.0})"
            );
            ok = Err(());
        }
    }
    if ok.is_ok() {
        println!("# bench-check: OK");
    }
    ok
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let fast = if let Some(pos) = args.iter().position(|a| a == "--fast") {
        args.remove(pos);
        true
    } else {
        false
    };
    if let Some(pos) = args.iter().position(|a| a == "--threads") {
        args.remove(pos);
        if pos >= args.len() {
            eprintln!("--threads requires a value");
            usage();
        }
        let val = args.remove(pos);
        match val.parse::<usize>() {
            Ok(n) if n >= 1 => ss_netsim::par::set_threads(n),
            _ => {
                eprintln!("invalid --threads value '{val}'");
                usage();
            }
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "--trace") {
        args.remove(pos);
        ss_bench::set_trace(true);
    }
    if let Some(pos) = args.iter().position(|a| a == "--profile") {
        args.remove(pos);
        ss_bench::set_profile(true);
    }
    let mut tolerance = 0.5f64;
    if let Some(pos) = args.iter().position(|a| a == "--tolerance") {
        args.remove(pos);
        if pos >= args.len() {
            eprintln!("--tolerance requires a value");
            usage();
        }
        let val = args.remove(pos);
        match val.parse::<f64>() {
            Ok(f) if (0.0..1.0).contains(&f) => tolerance = f,
            _ => {
                eprintln!("invalid --tolerance value '{val}' (want a fraction in [0,1))");
                usage();
            }
        }
    }
    let Some(target) = args.first() else { usage() };
    let ok = match target.as_str() {
        "list" => {
            for e in all_experiments() {
                println!("{:16} {}", e.id, e.description);
            }
            Ok(())
        }
        "bench" => run_bench(fast),
        "bench-check" => run_bench_check(tolerance),
        "all" => {
            // lint: allow(D001, timing printed to the operator; never feeds results)
            let started = Instant::now();
            let mut ok = Ok(());
            for e in all_experiments() {
                if run_one(e.id, fast).is_err() {
                    ok = Err(());
                }
            }
            println!("total: {:.1}s", started.elapsed().as_secs_f64());
            ok
        }
        id => run_one(id, fast),
    };
    if ok.is_err() {
        eprintln!("error: failure reported above");
        std::process::exit(1);
    }
}
