//! The experiment CLI: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments list             # enumerate experiments
//! experiments fig3             # run one (writes results/fig3_*.csv)
//! experiments all              # run everything
//! experiments --fast all       # shortened runs (smoke testing)
//! ```

use ss_bench::{all_experiments, find_experiment, metrics_dir, results_dir};
// lint: allow(D001, wall-clock progress reporting for the human running the suite)
use std::time::Instant;

fn usage() -> ! {
    eprintln!("usage: experiments [--fast] <experiment-id>|all|list");
    eprintln!("experiments:");
    for e in all_experiments() {
        eprintln!("  {:16} {}", e.id, e.description);
    }
    std::process::exit(2);
}

fn run_one(id: &str, fast: bool) {
    let Some(exp) = find_experiment(id) else {
        eprintln!("unknown experiment '{id}'");
        usage();
    };
    // lint: allow(D001, timing printed to the operator; never feeds results)
    let started = Instant::now();
    println!("# {} — {}", exp.id, exp.description);
    let output = (exp.run)(fast);
    let dir = results_dir();
    for t in &output.tables {
        t.print();
        if let Err(e) = t.write_csv(&dir) {
            eprintln!("warning: could not write {}: {e}", t.csv_name);
        }
    }
    if !output.metrics.is_empty() {
        let mdir = metrics_dir();
        for m in &output.metrics {
            let path = mdir.join(format!("{}.jsonl", m.name));
            if let Err(e) = std::fs::write(&path, &m.jsonl) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }
    println!(
        "# {} done in {:.1}s ({} table(s) -> {}/, {} metrics artifact(s))\n",
        exp.id,
        started.elapsed().as_secs_f64(),
        output.tables.len(),
        dir.display(),
        output.metrics.len()
    );
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let fast = if let Some(pos) = args.iter().position(|a| a == "--fast") {
        args.remove(pos);
        true
    } else {
        false
    };
    let Some(target) = args.first() else { usage() };
    match target.as_str() {
        "list" => {
            for e in all_experiments() {
                println!("{:16} {}", e.id, e.description);
            }
        }
        "all" => {
            // lint: allow(D001, timing printed to the operator; never feeds results)
            let started = Instant::now();
            for e in all_experiments() {
                run_one(e.id, fast);
            }
            println!("total: {:.1}s", started.elapsed().as_secs_f64());
        }
        id => run_one(id, fast),
    }
}
