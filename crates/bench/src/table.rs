//! Result tables: aligned console printing plus CSV export.

use std::fmt::Write as _;
use std::path::Path;

/// A titled table of string cells.
#[derive(Clone, Debug)]
pub struct Table {
    /// Human-readable title (printed above the table).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows; each must match the header width.
    pub rows: Vec<Vec<String>>,
    /// Basename (no extension) for the CSV export.
    pub csv_name: String,
}

impl Table {
    /// An empty table.
    pub fn new(title: impl Into<String>, csv_name: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            csv_name: csv_name.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Panics if the width differs from the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width {} != header width {}",
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(header.join("  ").len()));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", cells.join("  "));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Writes CSV into `dir` as `<csv_name>.csv` (commas in cells are
    /// quoted).
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        let mut out = String::new();
        let quote = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| quote(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            );
        }
        std::fs::write(dir.join(format!("{}.csv", self.csv_name)), out)
    }
}

/// Formats a probability/fraction with 4 decimals.
pub fn fmt_frac(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a percentage with 1 decimal.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats seconds with 3 decimals.
pub fn fmt_secs(x: f64) -> String {
    if x.is_infinite() {
        "inf".to_string()
    } else {
        format!("{x:.3}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_and_counts() {
        let mut t = Table::new("Demo", "demo", &["x", "value"]);
        t.push_row(vec!["1".into(), "0.5".into()]);
        t.push_row(vec!["10".into(), "0.25".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("value"));
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("Demo", "demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn csv_quotes() {
        let dir = std::env::temp_dir().join(format!("ssb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut t = Table::new("T", "quoted", &["a,b", "c"]);
        t.push_row(vec!["x\"y".into(), "z".into()]);
        t.write_csv(&dir).unwrap();
        let s = std::fs::read_to_string(dir.join("quoted.csv")).unwrap();
        assert!(s.contains("\"a,b\""));
        assert!(s.contains("\"x\"\"y\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_frac(0.12345), "0.1235");
        assert_eq!(fmt_pct(0.5), "50.0%");
        assert_eq!(fmt_secs(1.5), "1.500s");
        assert_eq!(fmt_secs(f64::INFINITY), "inf");
    }
}
