//! Seeded-violation fixtures: each rule must fire at exactly the marked
//! `file:line` positions, and a fully compliant file must scan clean.
//! The fixture sources live under `tests/fixtures/` (never compiled) and
//! are scanned under synthetic workspace-relative paths that put them in
//! each rule's scope.

use ss_lint::scan_source;

/// `(rule, line)` pairs of a scan, for order-insensitive comparison.
fn hits(path: &str, src: &str) -> Vec<(&'static str, usize)> {
    scan_source(path, src)
        .into_iter()
        .map(|d| (d.rule, d.line))
        .collect()
}

#[test]
fn d001_flags_wall_clocks_with_exact_lines() {
    let src = include_str!("fixtures/d001_wall_clock.rs");
    let path = "crates/netsim/src/fixture.rs";
    assert_eq!(hits(path, src), vec![("D001", 5), ("D001", 10)]);
    let diag = &scan_source(path, src)[0];
    assert_eq!(
        format!("{diag}").split(": ").next(),
        Some("crates/netsim/src/fixture.rs:5")
    );
}

#[test]
fn d001_allowlist_exempts_udp_bridge_and_tests() {
    let src = include_str!("fixtures/d001_wall_clock.rs");
    assert!(hits("crates/sstp/src/udp.rs", src).is_empty());
    assert!(hits("tests/some_harness.rs", src).is_empty());
}

#[test]
fn d002_flags_hash_containers_and_honors_allow() {
    let src = include_str!("fixtures/d002_hash_container.rs");
    // Line 9's HashSet carries a reasoned allow annotation on line 8.
    assert_eq!(
        hits("crates/core/src/fixture.rs", src),
        vec![("D002", 4), ("D002", 7)]
    );
    // Outside the simulation crates the rule does not apply at all.
    assert!(hits("crates/bench/src/fixture.rs", src).is_empty());
}

#[test]
fn d003_flags_ambient_randomness_everywhere() {
    let src = include_str!("fixtures/d003_ambient_rng.rs");
    for path in [
        "crates/bench/src/fixture.rs",
        "src/fixture.rs",
        "tests/fixture.rs",
    ] {
        assert_eq!(hits(path, src), vec![("D003", 5), ("D003", 6)], "{path}");
    }
}

#[test]
fn d004_flags_panicking_parse_in_wire_only() {
    let src = include_str!("fixtures/d004_wire_panic.rs");
    assert_eq!(
        hits("crates/sstp/src/wire.rs", src),
        vec![("D004", 5), ("D004", 6), ("D004", 7)]
    );
    // The same code elsewhere is not the wire parse path.
    assert!(hits("crates/sstp/src/sender.rs", src).is_empty());
}

#[test]
fn d010_flags_handler_accumulation_with_exact_lines() {
    let src = include_str!("fixtures/d010_handler_accumulation.rs");
    // Line 13's push is covered by the reasoned allow on line 12; the
    // batch helper after the handler is out of scope entirely.
    assert_eq!(
        hits("crates/core/src/fixture.rs", src),
        vec![("D010", 6), ("D010", 9)]
    );
    // Outside the simulation crates the rule does not apply.
    assert!(hits("crates/bench/src/fixture.rs", src).is_empty());
}

#[test]
fn d011_flags_sleeps_in_sstp_with_exact_lines() {
    let src = include_str!("fixtures/d011_thread_sleep.rs");
    // Line 9's sleep carries the reasoned allow on line 8; the
    // #[cfg(test)] tail and the `sleep_budget` ident never fire.
    assert_eq!(
        hits("crates/sstp/src/runtime/mux.rs", src),
        vec![("D011", 6), ("D011", 7)]
    );
    // Outside sstp the rule does not apply (no other rule fires here).
    assert!(hits("crates/netsim/src/fixture.rs", src).is_empty());
    assert!(hits("tests/fixture.rs", src).is_empty());
}

#[test]
fn clean_fixture_produces_no_diagnostics() {
    let src = include_str!("fixtures/clean.rs");
    // Scan under the strictest path (a sim crate), where D001-D003 all
    // apply: strings, comments, and the #[cfg(test)] tail must not fire.
    assert!(hits("crates/core/src/fixture.rs", src).is_empty());
}

#[test]
fn annotation_edge_cases_fire_and_suppress_exactly() {
    let src = include_str!("fixtures/d009_annotations.rs");
    // Line 6 is covered by the multi-rule allow on line 5 (both D002 and
    // D006 named, one reason). Lines 8-11 are malformed suppressions:
    // each is a D009, and the reasonless ones fail to suppress D002.
    // Line 14's allow is well-formed but names the wrong rule.
    assert_eq!(
        hits("crates/core/src/fixture.rs", src),
        vec![
            ("D009", 8),
            ("D002", 8),
            ("D009", 9),
            ("D002", 9),
            ("D009", 10),
            ("D009", 11),
            ("D002", 14),
        ]
    );
}

#[test]
fn false_positive_corpus_is_clean_in_every_scope() {
    let src = include_str!("fixtures/false_positives.rs");
    for path in [
        "crates/core/src/fixture.rs", // D001-D003, D006, D007
        "crates/sstp/src/sender.rs",  // + D005, D008 (machine file)
        "crates/sstp/src/wire.rs",    // + D004 (wire parse path)
    ] {
        let got = hits(path, src);
        assert!(got.is_empty(), "{path} flagged {got:?}");
    }
}

#[test]
fn binary_exits_nonzero_on_violation_and_zero_on_clean() {
    // Drive the actual CLI against temp trees to pin the exit codes the
    // CI gate relies on.
    use std::process::Command;
    let bin = env!("CARGO_BIN_EXE_ss-lint");

    let dir = std::env::temp_dir().join(format!("ss-lint-fixture-{}", std::process::id()));
    let src_dir = dir.join("crates/netsim/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir fixture tree");
    std::fs::write(
        src_dir.join("bad.rs"),
        include_str!("fixtures/d001_wall_clock.rs"),
    )
    .expect("write fixture");
    let out = Command::new(bin).arg(&dir).output().expect("run ss-lint");
    assert!(!out.status.success(), "violations must exit non-zero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("crates/netsim/src/bad.rs:5: D001"),
        "diagnostic must carry file:line, got:\n{stderr}"
    );

    std::fs::write(src_dir.join("bad.rs"), include_str!("fixtures/clean.rs"))
        .expect("write clean fixture");
    let out = Command::new(bin).arg(&dir).output().expect("run ss-lint");
    assert!(out.status.success(), "clean tree must exit zero");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn binary_json_mode_emits_findings_document() {
    use std::process::Command;
    let bin = env!("CARGO_BIN_EXE_ss-lint");

    let dir = std::env::temp_dir().join(format!("ss-lint-json-{}", std::process::id()));
    let src_dir = dir.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir fixture tree");
    std::fs::write(
        src_dir.join("bad.rs"),
        include_str!("fixtures/d002_hash_container.rs"),
    )
    .expect("write fixture");

    let out = Command::new(bin)
        .args(["--json"])
        .arg(&dir)
        .output()
        .expect("run ss-lint --json");
    assert!(!out.status.success(), "violations must still exit non-zero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.starts_with(r#"{"version":1,"#),
        "doc header: {stdout}"
    );
    assert!(stdout.contains(r#""count":2"#), "two D002 hits: {stdout}");
    assert!(
        stdout.contains(r#""rule":"D002""#) && stdout.contains(r#""line":4"#),
        "findings carry rule and line: {stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();

    // --schema exits zero without scanning and names every rule.
    let out = Command::new(bin)
        .arg("--schema")
        .output()
        .expect("run ss-lint --schema");
    assert!(out.status.success());
    let schema = String::from_utf8_lossy(&out.stdout);
    for rule in ["D001", "D005", "D009"] {
        assert!(schema.contains(rule), "schema missing {rule}");
    }
}
