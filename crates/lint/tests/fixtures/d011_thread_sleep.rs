//! D011 fixture: raw sleeps in sstp non-test code. Never compiled.

use std::time::Duration;

fn busy_poll_loop() {
    std::thread::sleep(Duration::from_millis(1));
    thread::sleep(POLL_INTERVAL);
    // lint: allow(D011, settling delay documented and bounded)
    std::thread::sleep(Duration::from_micros(10));
    let sleep_budget = 5; // ident `sleep_budget` must not token-match
    drop(sleep_budget);
}

#[cfg(test)]
mod tests {
    fn timed_helper() {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
}
