// Fixture: a fully compliant simulation source file. Hash containers,
// clocks, and panicking accessors appear only in strings, comments, and
// the trailing test module — none may be flagged.

use std::collections::BTreeMap;

/* A block comment mentioning HashMap and Instant::now() is fine. */

fn describe() -> &'static str {
    "uses HashMap, thread_rng, and Instant only inside a string"
}

fn lookup(m: &BTreeMap<u64, u32>, k: u64) -> Option<u32> {
    m.get(&k).copied()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    fn helper() {
        let _ = Instant::now();
        let _: HashMap<u64, u64> = HashMap::new();
        let v = vec![1u8];
        let _ = v[0];
    }
}
