// Fixture: D003 violation — ambient randomness source.
// Not compiled; scanned by tests/fixtures.rs with a synthetic path.

fn jitter() -> f64 {
    let mut rng = rand::thread_rng(); // line 5: flagged
    let x: f64 = rand::random(); // line 6: flagged
    x
}
