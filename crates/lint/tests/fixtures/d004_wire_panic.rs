// Fixture: D004 violation — panicking access in the wire parse path.
// Not compiled; scanned by tests/fixtures.rs as crates/sstp/src/wire.rs.

fn decode(buf: &[u8]) -> u16 {
    let hi = buf[0]; // line 5: flagged (slice indexing)
    let lo = buf.get(1).copied().unwrap(); // line 6: flagged (unwrap)
    let tag = buf.first().expect("tag byte"); // line 7: flagged (expect)
    u16::from(hi) << 8 | u16::from(lo) | u16::from(*tag)
}
