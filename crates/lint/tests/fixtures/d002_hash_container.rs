// Fixture: D002 violation — hash-ordered container in a sim crate.
// Not compiled; scanned by tests/fixtures.rs with a synthetic path.

use std::collections::HashMap; // line 4: flagged

struct State {
    by_id: HashMap<u64, u32>, // line 7: flagged
    // lint: allow(D002, membership only; iteration order never observed)
    seen: std::collections::HashSet<u64>, // line 9: suppressed
}
