// Fixture: D001 violation — wall-clock time in simulation code.
// Not compiled; scanned by tests/fixtures.rs with a synthetic path.

fn elapsed_wrong() -> u64 {
    let start = std::time::Instant::now(); // line 5: flagged
    start.elapsed().as_secs()
}

fn epoch_wrong() -> u64 {
    let now = std::time::SystemTime::now(); // line 10: flagged
    now.elapsed().map(|d| d.as_secs()).unwrap_or(0)
}
