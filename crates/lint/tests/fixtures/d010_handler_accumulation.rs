//! D010 fixture: push/insert accumulation inside per-event handler
//! bodies. Never compiled — scanned by tests/fixtures.rs.

impl World for Sim {
    fn handle(&mut self, q: &mut EventQueue<Ev>, ev: Ev) {
        self.all_arrivals.push(q.now()); // line 6: unbounded per-event growth
        match ev {
            Ev::Arrival(k) => {
                self.seen.insert(k, q.now()); // line 9: same, via insert
            }
            Ev::Tick => {
                // lint: allow(D010, bounded send queue, drained by kick below)
                self.queue.push(Packet::probe());
            }
        }
    }
}

fn rebuild_index(keys: &[Key], out: &mut Vec<Key>) {
    // Outside a handler body: batch/setup code may accumulate freely.
    for k in keys {
        out.push(*k);
    }
}
