// Fixture: suppression-annotation edge cases — multi-rule allows,
// empty reasons, malformed ids. Not compiled; scanned by
// tests/fixtures.rs under a simulation-crate path.

// lint: allow(D002, D006, shared reason covering both rules)
type Wide = (std::collections::HashMap<u64, u64>, f32); // line 6: suppressed

use std::collections::HashMap; // lint: allow(D002)
use std::collections::HashSet; // lint: allow(D002, )
fn typo() {} // lint: allow(D02, typo in the rule id)
fn unclosed() {} // lint: allow(D002, never closed

// lint: allow(D006, valid annotation naming the wrong rule)
struct Wrong(std::collections::HashMap<u64, u64>);
