// Fixture: a false-positive corpus — code that *looks* like rule
// violations but must scan clean under every rule scope (simulation
// crate, machine file, and the wire parse path).

/// Doc comments may cite HashMap, Instant::now(), and thread_rng().
fn doc_cited() {}

fn raw() -> &'static str {
    r#"HashMap SystemTime rand::random() buf[0].unwrap()"#
}

fn idents(file_path: &str, instant_marker: u64) -> usize {
    let _ = instant_marker;
    file_path.len()
}

struct InstantLike;
type Rows = [u64; 4];

#[derive(Clone)]
struct Snapshot;

fn lifetimes<'a>(x: &'a str) -> &'a str {
    x
}

fn register_once(metrics: &Snapshot) -> u64 {
    // Registration without a same-line mutation is the sanctioned
    // pattern; D007 must not fire on it.
    metrics.counter("tx.hot")
}

pub fn with_cap(mut cap: u64) -> u64 {
    cap += 1;
    cap
}
