//! `ss-lint`: a determinism-enforcing static analysis pass for this
//! workspace.
//!
//! The reproduction's central claim is that every simulation result is a
//! pure function of its configuration and seed. That property is easy to
//! lose silently: one `Instant::now()` in a hot path, one `HashMap`
//! iteration feeding an event order, one `thread_rng()` in a test helper,
//! and runs stop being comparable. This crate enforces the invariants
//! mechanically, with a hand-rolled lexical scanner so the gate itself has
//! **zero external dependencies** and keeps working when the crate
//! registry is unreachable.
//!
//! Rules (see `DESIGN.md`, "Determinism invariants", for the rationale):
//!
//! - **D001** — no `std::time::Instant` / `std::time::SystemTime` outside
//!   the allowlist (`crates/sstp/src/udp.rs`, anything under a `tests/`
//!   directory). Wall clocks make runs time-dependent.
//! - **D002** — no `HashMap` / `HashSet` in the simulation crates
//!   (`core`, `netsim`, `sched`, `queueing`, `sstp`). Hash iteration
//!   order is randomized per-process; ordered collections (`BTreeMap`,
//!   `BTreeSet`) or explicit sorts are required.
//! - **D003** — no `thread_rng` / `rand::random` anywhere. All
//!   randomness must flow through the seeded `SimRng`.
//! - **D004** — no `unwrap()` / `expect()` / slice indexing in the wire
//!   parse path (`crates/sstp/src/wire.rs`). Decoding untrusted bytes
//!   must be total.
//! - **D005** — no console or I/O identifiers in the pure state-machine
//!   files (the `sstp` sender/receiver and the core protocol machine).
//!   The machines are `step(state, event) -> effects` functions that
//!   `ss-verify` explores exhaustively; any side channel breaks that.
//! - **D006** — no `f32` in the simulation crates. Consistency statistics
//!   accumulate over millions of events; half-precision drift would make
//!   runs platform-dependent. Use `f64` or integer counters.
//! - **D007** — no metrics handle registered and used on the same line.
//!   Registration (`.counter("…")` etc.) must happen once, with the
//!   returned id stored; inline re-registration silently creates a fresh
//!   series per call site.
//! - **D008** — no `pub fn` taking `&mut self` (other than `step`), and
//!   no `pub fn … -> &mut` accessor, in the state-machine files. All
//!   mutation flows through `step`; compat shims must carry a reasoned
//!   `allow(D008, …)` annotation.
//! - **D009** — every suppression annotation (`allow(…)`) must be well-formed:
//!   at least one valid rule id and a non-empty reason. A malformed
//!   annotation both fails to suppress *and* is itself a violation, so
//!   silent typos cannot disable the gate.
//! - **D010** — no unbounded `.push(…)` / `.insert(…)` accumulation inside
//!   a per-event handler body (`fn handle…`) in the simulation crates.
//!   Per-event growth is O(events) memory and is what the bounded sketch
//!   and first-N abstractions exist for; a bounded queue (drained
//!   elsewhere) is fine but must say so in an `allow(D010, …)` reason.
//! - **D011** — no raw `thread::sleep` in `sstp` non-test code. Fixed
//!   sleeps are busy-polls in disguise: they burn CPU when idle and add
//!   latency when busy. Compute the next protocol deadline and block on
//!   the socket with `runtime::wait::wait_for_datagram` instead.
//!
//! A line may opt out of one or more rules with an annotation on the same
//! line or the line directly above:
//!
//! ```text
//! // lint: allow(D002, reason the hash container is safe here)
//! // lint: allow(D002, D005, one reason covering both rules)
//! ```
//!
//! The trailing reason is mandatory (D009 enforces this); an annotation
//! without one does not suppress. Module-level `#[cfg(test)]` blocks are
//! exempt: scanning stops at the first `#[cfg(test)]` attribute in a file
//! (test modules are last by convention, enforced socially rather than
//! mechanically).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation, addressable as `path:line`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier, e.g. `"D002"`.
    pub rule: &'static str,
    /// Human-readable explanation of the violation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

impl Diagnostic {
    /// The diagnostic as one JSON object (the element type of the
    /// `findings` array in [`findings_to_json`]).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"path":{},"line":{},"rule":{},"message":{}}}"#,
            json_string(&self.path),
            self.line,
            json_string(self.rule),
            json_string(&self.message)
        )
    }
}

/// Escapes `s` as a JSON string literal (hand-rolled: the gate must keep
/// working with zero external dependencies).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Static description of one lint rule, used by the `--schema` output.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Rule identifier, e.g. `"D002"`.
    pub id: &'static str,
    /// One-line summary of what the rule forbids.
    pub summary: &'static str,
}

/// Every rule the scanner knows, in id order.
pub const RULES: [RuleInfo; 11] = [
    RuleInfo {
        id: "D001",
        summary: "wall-clock time source (Instant/SystemTime) outside the allowlist",
    },
    RuleInfo {
        id: "D002",
        summary: "hash-ordered container (HashMap/HashSet) in a simulation crate",
    },
    RuleInfo {
        id: "D003",
        summary: "ambient randomness (thread_rng/rand::random) anywhere",
    },
    RuleInfo {
        id: "D004",
        summary: "panicking accessor or slice indexing in the wire parse path",
    },
    RuleInfo {
        id: "D005",
        summary: "console or I/O identifier reachable from a pure state machine",
    },
    RuleInfo {
        id: "D006",
        summary: "f32 arithmetic in a simulation crate (statistics must be f64/integer)",
    },
    RuleInfo {
        id: "D007",
        summary: "metrics handle registered and used on the same line",
    },
    RuleInfo {
        id: "D008",
        summary: "pub &mut-self method (or -> &mut accessor) outside step in machine files",
    },
    RuleInfo {
        id: "D009",
        summary: "malformed lint: allow(...) annotation (bad rule id or missing reason)",
    },
    RuleInfo {
        id: "D010",
        summary: "unbounded push/insert accumulation in a per-event sim handler body",
    },
    RuleInfo {
        id: "D011",
        summary: "raw thread::sleep in sstp non-test code (use the deadline-aware socket wait)",
    },
];

/// The machine-readable findings report: a stable JSON document with the
/// schema described by [`schema_json`].
pub fn findings_to_json(root: &str, diagnostics: &[Diagnostic]) -> String {
    let findings = diagnostics
        .iter()
        .map(Diagnostic::to_json)
        .collect::<Vec<_>>()
        .join(",");
    format!(
        r#"{{"version":1,"root":{},"count":{},"findings":[{}]}}"#,
        json_string(root),
        diagnostics.len(),
        findings
    )
}

/// A self-describing schema for the `--json` output: the document shape
/// plus every rule id and its summary.
pub fn schema_json() -> String {
    let rules = RULES
        .iter()
        .map(|r| {
            format!(
                r#"{{"id":{},"summary":{}}}"#,
                json_string(r.id),
                json_string(r.summary)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        concat!(
            r#"{{"version":1,"#,
            r#""document":{{"version":"int","root":"string","count":"int","#,
            r#""findings":"[{{path,line,rule,message}}]"}},"#,
            r#""rules":[{}]}}"#
        ),
        rules
    )
}

/// Simulation crates where hash-ordered containers are forbidden (D002).
const SIM_CRATE_PREFIXES: [&str; 5] = [
    "crates/core/src",
    "crates/netsim/src",
    "crates/sched/src",
    "crates/queueing/src",
    "crates/sstp/src",
];

/// Files holding the pure protocol state machines (D005/D008): no I/O may
/// be reachable from them, and all mutation must flow through `step`.
const MACHINE_FILES: [&str; 4] = [
    "crates/sstp/src/sender.rs",
    "crates/sstp/src/receiver.rs",
    "crates/sstp/src/machine.rs",
    "crates/core/src/protocol/machine.rs",
];

/// Identifiers that mean console or file/socket I/O when they appear in a
/// state-machine file (D005). Matched as whole identifier tokens, so
/// strings, comments, and e.g. `file_path` do not trip it.
const IO_IDENTS: [&str; 14] = [
    "println",
    "eprintln",
    "print",
    "eprint",
    "dbg",
    "stdout",
    "stderr",
    "stdin",
    "File",
    "OpenOptions",
    "UdpSocket",
    "TcpStream",
    "TcpListener",
    "Command",
];

/// Files allowed to read the wall clock (D001): the real-socket UDP
/// bridge and the runtime's clock boundary need actual time, and test
/// harnesses may time themselves. Everything else in the runtime module
/// tree (pacing, shed, supervision, mux) is pure `SimTime` code and gets
/// no exemption.
fn d001_allowed(path: &str) -> bool {
    path == "crates/sstp/src/udp.rs"
        || path == "crates/sstp/src/runtime/mod.rs"
        || path.starts_with("tests/")
        || path.contains("/tests/")
}

fn in_sim_crate(path: &str) -> bool {
    SIM_CRATE_PREFIXES.iter().any(|p| path.starts_with(p))
}

fn is_machine_file(path: &str) -> bool {
    MACHINE_FILES.contains(&path)
}

/// One source line split into scannable code and its trailing comments.
struct ScanLine {
    /// Code with comments, string contents, and char literals blanked out
    /// (replaced by spaces, so columns are preserved).
    code: String,
    /// The concatenated comment text of the line (for `lint: allow`).
    comment: String,
}

/// Carry-over lexical state between lines.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Carry {
    /// Plain code.
    None,
    /// Inside a `/* */` comment, with nesting depth.
    BlockComment(u32),
    /// Inside a raw string literal with `hashes` trailing `#`s.
    RawString(u32),
}

/// Strips one physical line given the carry-over state, returning the
/// scan view and the state to carry into the next line.
fn strip_line(line: &str, carry: Carry) -> (ScanLine, Carry) {
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    let mut state = carry;

    while i < bytes.len() {
        match state {
            Carry::BlockComment(depth) => {
                if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        Carry::None
                    } else {
                        Carry::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = Carry::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(bytes[i] as char);
                    i += 1;
                }
                continue;
            }
            Carry::RawString(hashes) => {
                if bytes[i] == b'"' {
                    let h = hashes as usize;
                    if bytes.len() >= i + 1 + h
                        && bytes[i + 1..i + 1 + h].iter().all(|&b| b == b'#')
                    {
                        state = Carry::None;
                        code.push('"');
                        for _ in 0..h {
                            code.push(' ');
                        }
                        i += 1 + h;
                        continue;
                    }
                }
                code.push(' ');
                i += 1;
                continue;
            }
            Carry::None => {}
        }

        let c = bytes[i];
        if c == b'/' && bytes.get(i + 1) == Some(&b'/') {
            // Line comment: the rest of the line is comment text.
            comment.push_str(&line[i + 2..]);
            break;
        }
        if c == b'/' && bytes.get(i + 1) == Some(&b'*') {
            state = Carry::BlockComment(1);
            code.push(' ');
            code.push(' ');
            i += 2;
            continue;
        }
        if c == b'r' {
            // Possible raw string: r"..." or r#"..."#.
            let mut j = i + 1;
            while bytes.get(j) == Some(&b'#') {
                j += 1;
            }
            if bytes.get(j) == Some(&b'"') {
                let hashes = (j - (i + 1)) as u32;
                code.push('r');
                for _ in i + 1..=j {
                    code.push(' ');
                }
                i = j + 1;
                state = Carry::RawString(hashes);
                continue;
            }
        }
        if c == b'"' {
            // Ordinary string literal: blank to the closing quote.
            code.push('"');
            i += 1;
            while i < bytes.len() {
                if bytes[i] == b'\\' {
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    continue;
                }
                if bytes[i] == b'"' {
                    code.push('"');
                    i += 1;
                    break;
                }
                code.push(' ');
                i += 1;
            }
            continue;
        }
        if c == b'\'' {
            // Char literal vs lifetime: a literal closes within a few
            // bytes ('x', '\n', '\u{..}'); a lifetime never closes.
            let close = if bytes.get(i + 1) == Some(&b'\\') {
                bytes[i + 2..].iter().take(8).position(|&b| b == b'\'')
            } else {
                (bytes.get(i + 2) == Some(&b'\'')).then_some(0)
            };
            if let Some(off) = close {
                let end = if bytes.get(i + 1) == Some(&b'\\') {
                    i + 2 + off
                } else {
                    i + 2
                };
                for _ in i..=end {
                    code.push(' ');
                }
                i = end + 1;
                continue;
            }
        }
        code.push(c as char);
        i += 1;
    }

    (ScanLine { code, comment }, state)
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Yields the identifier tokens of a stripped code line.
fn idents(code: &str) -> Vec<&str> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if is_ident_byte(bytes[i]) {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            out.push(&code[start..i]);
        } else {
            i += 1;
        }
    }
    out
}

/// True when `s` (already trimmed) is a rule identifier: `D` followed by
/// exactly three digits.
fn is_rule_id(s: &str) -> bool {
    s.len() == 4 && s.starts_with('D') && s[1..].bytes().all(|b| b.is_ascii_digit())
}

/// A parsed suppression-annotation body.
struct Annotation {
    /// The rule ids the annotation names (well-formed ones only).
    rules: Vec<String>,
    /// Why the parse is not a usable suppression, if it is not.
    problem: Option<&'static str>,
}

/// Parses every suppression-annotation occurrence in a comment. The body is a
/// comma-separated list: one or more rule ids, then a mandatory free-text
/// reason (`allow(D002, D005, shared justification)`).
fn parse_annotations(comment: &str) -> Vec<Annotation> {
    const MARKER: &str = "lint: allow(";
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find(MARKER) {
        let body_start = &rest[pos + MARKER.len()..];
        let Some(end) = body_start.find(')') else {
            out.push(Annotation {
                rules: Vec::new(),
                problem: Some("unclosed annotation (missing `)`)"),
            });
            break;
        };
        let body = &body_start[..end];
        rest = &body_start[end + 1..];

        let mut rules = Vec::new();
        let mut reason = String::new();
        let mut segments = body.split(',');
        for seg in segments.by_ref() {
            let t = seg.trim();
            if is_rule_id(t) {
                rules.push(t.to_string());
            } else {
                // First non-id segment starts the reason; commas inside
                // the reason are reason text, not separators.
                reason = t.to_string();
                break;
            }
        }
        // Re-join any remaining segments into the reason.
        for seg in segments {
            if !reason.is_empty() {
                reason.push(',');
            }
            reason.push_str(seg);
        }
        let problem = if rules.is_empty() {
            Some("no valid rule id (expected `DNNN`)")
        } else if reason.trim().is_empty() {
            Some("missing reason (suppressions must cite one)")
        } else {
            None
        };
        out.push(Annotation { rules, problem });
    }
    out
}

/// True when `comment` carries a well-formed suppression naming `rule`:
/// `allow(D002, …, non-empty reason)`-style. Malformed annotations never
/// suppress (and are themselves flagged by D009).
fn allows(comment: &str, rule: &str) -> bool {
    parse_annotations(comment)
        .iter()
        .any(|a| a.problem.is_none() && a.rules.iter().any(|r| r == rule))
}

/// True when the stripped line contains slice-index syntax: a `[` directly
/// following an identifier character, `)`, or `]` (so array type syntax
/// `[u64; 4]` and attributes `#[...]` do not match).
fn has_indexing(code: &str) -> bool {
    let bytes = code.as_bytes();
    bytes.iter().enumerate().any(|(i, &b)| {
        b == b'['
            && i > 0
            && (is_ident_byte(bytes[i - 1]) || bytes[i - 1] == b')' || bytes[i - 1] == b']')
    })
}

/// True when the stripped line performs a metrics *registration*: a
/// `.counter("…")`-style call whose first argument is a string literal
/// (snapshot lookups share the method names but D007 only fires when a
/// mutation call shares the line, which snapshots cannot do).
fn has_metric_registration(code: &str) -> bool {
    ["counter", "gauge", "histogram", "time_average"]
        .iter()
        .any(|m| {
            code.match_indices(m).any(|(i, _)| {
                i > 0
                    && code.as_bytes()[i - 1] == b'.'
                    && code[i + m.len()..].trim_start().starts_with("(\"")
            })
        })
}

/// True when the stripped line calls a metrics mutation method.
fn has_metric_use(code: &str) -> bool {
    [
        ".inc(",
        ".add(",
        ".observe(",
        ".record_sample(",
        ".set_gauge(",
    ]
    .iter()
    .any(|m| code.contains(m))
}

/// True when the stripped line declares a `pub fn` that mutates through
/// `&mut self` (D008). `step` is the sanctioned mutation entry point;
/// `pub(crate)` helpers and by-value builders (`mut self`) are exempt.
fn has_pub_mut_method(code: &str) -> bool {
    let Some(pos) = code.find("pub fn ") else {
        return false;
    };
    let rest = &code[pos + "pub fn ".len()..];
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    name != "step" && code.contains("&mut self")
}

/// True when the stripped line is a `pub fn` returning `&mut` (a mutable
/// accessor leaking protocol state past the `step` seam).
fn has_pub_mut_return(code: &str) -> bool {
    code.contains("pub fn ") && code.contains("-> &mut ")
}

/// True when the token stream declares a per-event handler: an `fn`
/// token directly followed by an identifier starting with `handle`
/// (`fn handle`, `fn handle_arrival`, …).
fn declares_handler(toks: &[&str]) -> bool {
    toks.windows(2)
        .any(|w| w[0] == "fn" && w[1].starts_with("handle"))
}

/// Net brace-depth tracking over stripped code (strings/comments are
/// already blanked, so every remaining brace is structural).
fn brace_delta(code: &str) -> i32 {
    code.bytes().fold(0i32, |d, b| match b {
        b'{' => d + 1,
        b'}' => d - 1,
        _ => d,
    })
}

/// Scans one source file's content. `path` must be workspace-relative with
/// `/` separators; it selects which rules apply.
pub fn scan_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut carry = Carry::None;
    let mut prev_comment = String::new();

    let check_d001 = !d001_allowed(path);
    let check_d002 = in_sim_crate(path);
    let check_d004 = path == "crates/sstp/src/wire.rs";
    let check_d005 = is_machine_file(path);
    let check_d006 = in_sim_crate(path);
    let check_d007 = in_sim_crate(path);
    let check_d008 = is_machine_file(path);
    // D010 applies in the sim crates, but not inside the bounded
    // accumulation abstractions themselves (the sketch module and the
    // capacity-capped logs are what handlers are told to use instead).
    let check_d010 = in_sim_crate(path) && path != "crates/netsim/src/metrics/sketch.rs";
    let check_d011 = path.starts_with("crates/sstp/src");
    // Handler-body tracking for D010: brace depth, the depth at which an
    // active `fn handle…` was declared, and whether its body has opened.
    let mut depth: i32 = 0;
    let mut handler_at: Option<i32> = None;
    let mut handler_body_seen = false;

    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let (scan, next_carry) = strip_line(raw, carry);
        let was_code = carry == Carry::None || matches!(carry, Carry::RawString(_));
        carry = next_carry;

        if was_code && scan.code.trim_start().starts_with("#[cfg(test)]") {
            // Test modules sit at the end of each file; everything after
            // this attribute is test-only and exempt from the rules.
            break;
        }

        // D009 first: malformed annotations are diagnosed on their own
        // line and never act as suppressions.
        for ann in parse_annotations(&scan.comment) {
            if let Some(problem) = ann.problem {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line: line_no,
                    rule: "D009",
                    message: format!("malformed suppression: {problem}"),
                });
            }
        }

        let suppressed = |rule: &str| allows(&scan.comment, rule) || allows(&prev_comment, rule);
        let toks = idents(&scan.code);
        let has = |t: &str| toks.contains(&t);

        if check_d001 && (has("Instant") || has("SystemTime")) && !suppressed("D001") {
            out.push(Diagnostic {
                path: path.to_string(),
                line: line_no,
                rule: "D001",
                message: "wall-clock time source outside the allowlist; use the simulated clock"
                    .to_string(),
            });
        }
        if check_d002 && (has("HashMap") || has("HashSet")) && !suppressed("D002") {
            out.push(Diagnostic {
                path: path.to_string(),
                line: line_no,
                rule: "D002",
                message: "hash-ordered container in a simulation crate; use BTreeMap/BTreeSet or \
                     annotate with `// lint: allow(D002, reason)`"
                    .to_string(),
            });
        }
        if (has("thread_rng") || scan.code.contains("rand::random")) && !suppressed("D003") {
            out.push(Diagnostic {
                path: path.to_string(),
                line: line_no,
                rule: "D003",
                message: "ambient randomness source; all draws must come from the seeded SimRng"
                    .to_string(),
            });
        }
        if check_d004 && !suppressed("D004") {
            if has("unwrap") || has("expect") {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line: line_no,
                    rule: "D004",
                    message: "panicking accessor in the wire parse path; decoding must be total"
                        .to_string(),
                });
            } else if has_indexing(&scan.code) {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line: line_no,
                    rule: "D004",
                    message:
                        "slice indexing in the wire parse path; use checked access (get/split)"
                            .to_string(),
                });
            }
        }
        if check_d005 && IO_IDENTS.iter().any(|id| has(id)) && !suppressed("D005") {
            out.push(Diagnostic {
                path: path.to_string(),
                line: line_no,
                rule: "D005",
                message: "I/O reachable from a pure state machine; effects must flow out of step"
                    .to_string(),
            });
        }
        if check_d006 && has("f32") && !suppressed("D006") {
            out.push(Diagnostic {
                path: path.to_string(),
                line: line_no,
                rule: "D006",
                message: "f32 in a simulation crate; statistics must accumulate in f64 or integers"
                    .to_string(),
            });
        }
        if check_d007
            && has_metric_registration(&scan.code)
            && has_metric_use(&scan.code)
            && !suppressed("D007")
        {
            out.push(Diagnostic {
                path: path.to_string(),
                line: line_no,
                rule: "D007",
                message: "metrics handle registered and used in one expression; register once \
                     and store the id"
                    .to_string(),
            });
        }
        if check_d008
            && (has_pub_mut_method(&scan.code) || has_pub_mut_return(&scan.code))
            && !suppressed("D008")
        {
            out.push(Diagnostic {
                path: path.to_string(),
                line: line_no,
                rule: "D008",
                message: "pub mutation outside step in a state-machine file; route through step \
                     or annotate the compat shim"
                    .to_string(),
            });
        }
        let in_handler_body = handler_at.is_some_and(|d| handler_body_seen && depth > d);
        if check_d010
            && in_handler_body
            && (scan.code.contains(".push(") || scan.code.contains(".insert("))
            && !suppressed("D010")
        {
            out.push(Diagnostic {
                path: path.to_string(),
                line: line_no,
                rule: "D010",
                message: "push/insert accumulation in a per-event handler; per-event growth is \
                     O(events) memory — use a bounded sketch/first-N abstraction, or \
                     annotate why this collection is bounded"
                    .to_string(),
            });
        }
        if check_d011 && has("sleep") && !suppressed("D011") {
            out.push(Diagnostic {
                path: path.to_string(),
                line: line_no,
                rule: "D011",
                message: "thread::sleep in sstp non-test code; compute the next protocol \
                     deadline and block with runtime::wait::wait_for_datagram"
                    .to_string(),
            });
        }
        if check_d010 && handler_at.is_none() && declares_handler(&toks) {
            handler_at = Some(depth);
            handler_body_seen = false;
        }
        depth += brace_delta(&scan.code);
        if let Some(d) = handler_at {
            if depth > d {
                handler_body_seen = true;
            } else if handler_body_seen {
                // The body closed (depth fell back to the declaration
                // level); pushes after this are outside the handler.
                handler_at = None;
                handler_body_seen = false;
            }
        }

        prev_comment = scan.comment;
    }
    out
}

/// Collects the `.rs` files the lint covers: everything under
/// `crates/*/src`, plus the root `src/` and `tests/` trees. `vendor/` and
/// build output are never scanned.
fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut roots: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    for extra in ["src", "tests"] {
        let p = root.join(extra);
        if p.is_dir() {
            roots.push(p);
        }
    }
    if roots.is_empty() {
        // A root with no scannable trees is an I/O problem (bad path,
        // wrong directory), not a clean workspace: reporting "clean"
        // here would let a typo in CI silently disable the gate.
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no source trees under {}", root.display()),
        ));
    }
    let mut stack = roots;
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Scans the whole workspace rooted at `root`, returning all diagnostics
/// in deterministic (path, line) order.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for file in collect_sources(root)? {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(&file)?;
        out.extend(scan_source(&rel, &src));
    }
    Ok(out)
}

/// Locates the workspace root from this crate's build-time manifest path
/// (`crates/lint` → two levels up).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_do_not_trigger() {
        let src = r#"
            // HashMap in a comment is fine
            /* Instant::now() in a block comment too */
            fn f() -> &'static str { "HashMap thread_rng Instant" }
        "#;
        assert!(scan_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_requires_reason() {
        let with_reason = "use std::collections::HashMap; // lint: allow(D002, keyed by opaque id, order never observed)\n";
        let without = "use std::collections::HashMap; // lint: allow(D002)\n";
        assert!(scan_source("crates/core/src/x.rs", with_reason).is_empty());
        // The reasonless annotation does not suppress D002 *and* is
        // itself a D009 violation.
        let rules: Vec<_> = scan_source("crates/core/src/x.rs", without)
            .iter()
            .map(|d| d.rule)
            .collect();
        assert_eq!(rules, vec!["D009", "D002"]);
    }

    #[test]
    fn allow_on_preceding_line() {
        let src = "// lint: allow(D002, justified)\nuse std::collections::HashSet;\n";
        assert!(scan_source("crates/sched/src/x.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_stops_scanning() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(scan_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn indexing_detection() {
        assert!(has_indexing("let x = buf[0];"));
        assert!(has_indexing("let y = &data[..4];"));
        assert!(!has_indexing("let s: [u64; 4] = t;"));
        assert!(!has_indexing("#[derive(Debug)]"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let (scan, carry) = strip_line("fn f<'a>(x: &'a str) -> &'a str { x }", Carry::None);
        assert!(carry == Carry::None);
        assert!(scan.code.contains("str"));
    }

    #[test]
    fn multi_rule_allow_suppresses_each_named_rule() {
        let src = "use std::collections::HashMap; type T = f32; \
                   // lint: allow(D002, D006, fixture exercising both rules)\n";
        assert!(scan_source("crates/core/src/x.rs", src).is_empty());
        // Naming only one rule leaves the other to fire.
        let src = "use std::collections::HashMap; type T = f32; \
                   // lint: allow(D002, only the map is justified)\n";
        assert_eq!(
            scan_source("crates/core/src/x.rs", src)
                .iter()
                .map(|d| d.rule)
                .collect::<Vec<_>>(),
            vec!["D006"]
        );
    }

    #[test]
    fn reason_with_commas_is_one_reason() {
        let src = "use std::collections::HashMap; \
                   // lint: allow(D002, keyed by id, order never observed)\n";
        assert!(scan_source("crates/core/src/x.rs", src).is_empty());
        // A reason *starting* with rule-id-like text is still a reason.
        let src = "use std::collections::HashMap; \
                   // lint: allow(D002, D003-adjacent helper needs it)\n";
        assert!(scan_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn malformed_annotations_are_d009_and_do_not_suppress() {
        // Missing reason: the original rule fires AND D009 fires.
        let src = "use std::collections::HashMap; // lint: allow(D002)\n";
        let rules: Vec<_> = scan_source("crates/core/src/x.rs", src)
            .iter()
            .map(|d| d.rule)
            .collect();
        assert_eq!(rules, vec!["D009", "D002"]);
        // Empty reason after the comma.
        let src = "use std::collections::HashMap; // lint: allow(D002, )\n";
        let rules: Vec<_> = scan_source("crates/core/src/x.rs", src)
            .iter()
            .map(|d| d.rule)
            .collect();
        assert_eq!(rules, vec!["D009", "D002"]);
        // No valid rule id at all.
        let src = "fn ok() {} // lint: allow(D02, typo in the id)\n";
        let rules: Vec<_> = scan_source("crates/core/src/x.rs", src)
            .iter()
            .map(|d| d.rule)
            .collect();
        assert_eq!(rules, vec!["D009"]);
        // Unclosed annotation.
        let src = "fn ok() {} // lint: allow(D002, never closed\n";
        let rules: Vec<_> = scan_source("crates/core/src/x.rs", src)
            .iter()
            .map(|d| d.rule)
            .collect();
        assert_eq!(rules, vec!["D009"]);
    }

    #[test]
    fn d005_flags_io_only_in_machine_files() {
        let src = "fn debug_dump(&self) { println!(\"{:?}\", self); }\n";
        assert_eq!(
            scan_source("crates/sstp/src/sender.rs", src)
                .iter()
                .map(|d| d.rule)
                .collect::<Vec<_>>(),
            vec!["D005"]
        );
        // The same code in a non-machine file is fine.
        assert!(scan_source("crates/sstp/src/session.rs", src).is_empty());
        // `file_path` must not token-match `File`.
        let src = "fn f(file_path: &str) -> usize { file_path.len() }\n";
        assert!(scan_source("crates/sstp/src/sender.rs", src).is_empty());
    }

    #[test]
    fn d006_flags_f32_in_sim_crates_only() {
        let src = "fn mean(xs: &[f32]) -> f32 { 0.0 }\n";
        assert_eq!(scan_source("crates/core/src/x.rs", src).len(), 1);
        assert!(scan_source("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn d007_flags_inline_register_and_use() {
        let src = "self.metrics.add(self.metrics.counter(\"tx.hot\"), 1);\n";
        assert_eq!(
            scan_source("crates/core/src/x.rs", src)
                .iter()
                .map(|d| d.rule)
                .collect::<Vec<_>>(),
            vec!["D007"]
        );
        // Registration alone and use alone are both fine.
        assert!(scan_source(
            "crates/core/src/x.rs",
            "let c = self.metrics.counter(\"tx.hot\");\n"
        )
        .is_empty());
        assert!(scan_source("crates/core/src/x.rs", "self.metrics.inc(c);\n").is_empty());
        // Snapshot lookups pass a string but never mutate on the line.
        assert!(scan_source(
            "crates/core/src/x.rs",
            "let v = snapshot.counter(\"tx.hot\");\n"
        )
        .is_empty());
    }

    #[test]
    fn d008_flags_pub_mut_methods_outside_step() {
        let src = "    pub fn poke(&mut self) {}\n";
        assert_eq!(
            scan_source("crates/sstp/src/receiver.rs", src)
                .iter()
                .map(|d| d.rule)
                .collect::<Vec<_>>(),
            vec!["D008"]
        );
        // step itself, by-value builders, and pub(crate) helpers pass.
        assert!(scan_source(
            "crates/sstp/src/receiver.rs",
            "    pub fn step(&mut self, ev: Ev) {}\n"
        )
        .is_empty());
        assert!(scan_source(
            "crates/sstp/src/receiver.rs",
            "    pub fn with_cap(mut self, cap: usize) -> Self { self }\n"
        )
        .is_empty());
        assert!(scan_source(
            "crates/sstp/src/receiver.rs",
            "    pub(crate) fn internal(&mut self) {}\n"
        )
        .is_empty());
        // Mutable accessors leak state past the seam.
        let src = "    pub fn table_mut(&self) -> &mut Table { unreachable!() }\n";
        assert_eq!(scan_source("crates/sstp/src/receiver.rs", src).len(), 1);
        // Outside machine files the rule does not apply.
        assert!(
            scan_source("crates/sstp/src/session.rs", "pub fn poke(&mut self) {}\n").is_empty()
        );
    }

    #[test]
    fn d010_flags_pushes_in_handler_bodies_only() {
        let src = "impl World for Sim {\n\
                   \x20   fn handle(&mut self, ev: Ev) {\n\
                   \x20       self.samples.push(ev.t);\n\
                   \x20       self.index.insert(ev.key, ev.t);\n\
                   \x20   }\n\
                   }\n\
                   fn helper(v: &mut Vec<u64>) { v.push(1); }\n";
        assert_eq!(
            scan_source("crates/core/src/x.rs", src)
                .iter()
                .map(|d| (d.rule, d.line))
                .collect::<Vec<_>>(),
            vec![("D010", 3), ("D010", 4)]
        );
        // Outside sim crates, and in the sketch module itself, exempt.
        assert!(scan_source("crates/bench/src/x.rs", src).is_empty());
        assert!(scan_source("crates/netsim/src/metrics/sketch.rs", src).is_empty());
        // A reasoned allow suppresses.
        let src = "fn handle(&mut self) {\n\
                   \x20   // lint: allow(D010, bounded queue drained by kick_fb)\n\
                   \x20   self.q.push(1);\n\
                   }\n";
        assert!(scan_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn d010_handler_tracking_survives_nested_braces() {
        // Braces in match arms must not end the handler early, and the
        // handler must actually end at its closing brace.
        let src = "fn handle(&mut self, ev: Ev) {\n\
                   \x20   match ev {\n\
                   \x20       Ev::A => { self.log.push(1); }\n\
                   \x20       Ev::B => {}\n\
                   \x20   }\n\
                   \x20   self.tail.push(2);\n\
                   }\n\
                   fn not_a_handler(&mut self) { self.v.push(3); }\n";
        assert_eq!(
            scan_source("crates/sstp/src/x.rs", src)
                .iter()
                .map(|d| (d.rule, d.line))
                .collect::<Vec<_>>(),
            vec![("D010", 3), ("D010", 6)]
        );
    }

    #[test]
    fn d011_flags_sleep_in_sstp_non_test_code_only() {
        let src = "fn spin() { std::thread::sleep(Duration::from_millis(1)); }\n";
        assert_eq!(
            scan_source("crates/sstp/src/udp.rs", src)
                .iter()
                .map(|d| d.rule)
                .collect::<Vec<_>>(),
            vec!["D011"]
        );
        // Outside sstp the rule does not apply.
        assert!(scan_source("crates/netsim/src/x.rs", src).is_empty());
        // Test modules are exempt (scanning stops at #[cfg(test)]).
        let src =
            "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn s() { std::thread::sleep(D); }\n}\n";
        assert!(scan_source("crates/sstp/src/udp.rs", src).is_empty());
        // `sleep` must match as a whole token.
        let src = "fn f(sleep_budget: u64) -> u64 { sleep_budget }\n";
        assert!(scan_source("crates/sstp/src/udp.rs", src).is_empty());
        // A reasoned allow suppresses.
        let src = "// lint: allow(D011, startup settle before first bind retry)\n\
                   fn s() { std::thread::sleep(D); }\n";
        assert!(scan_source("crates/sstp/src/udp.rs", src).is_empty());
    }

    #[test]
    fn json_output_escapes_and_carries_all_fields() {
        let d = Diagnostic {
            path: "crates/x/src/a \"b\".rs".to_string(),
            line: 7,
            rule: "D001",
            message: "line1\nline2".to_string(),
        };
        let j = d.to_json();
        assert!(j.contains(r#""line":7"#));
        assert!(j.contains(r#"\"b\""#));
        assert!(j.contains(r#"line1\nline2"#));
        let doc = findings_to_json("/root", &[d]);
        assert!(doc.starts_with(r#"{"version":1,"#));
        assert!(doc.contains(r#""count":1"#));
        let empty = findings_to_json("/root", &[]);
        assert!(empty.contains(r#""findings":[]"#));
        // The schema names every rule.
        let schema = schema_json();
        for r in RULES {
            assert!(schema.contains(r.id), "schema missing {}", r.id);
        }
    }

    #[test]
    fn missing_root_is_an_io_error() {
        let err = scan_workspace(Path::new("/nonexistent/ss-lint-root"))
            .expect_err("bad root must not scan clean");
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
