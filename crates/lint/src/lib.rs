//! `ss-lint`: a determinism-enforcing static analysis pass for this
//! workspace.
//!
//! The reproduction's central claim is that every simulation result is a
//! pure function of its configuration and seed. That property is easy to
//! lose silently: one `Instant::now()` in a hot path, one `HashMap`
//! iteration feeding an event order, one `thread_rng()` in a test helper,
//! and runs stop being comparable. This crate enforces the invariants
//! mechanically, with a hand-rolled lexical scanner so the gate itself has
//! **zero external dependencies** and keeps working when the crate
//! registry is unreachable.
//!
//! Rules (see `DESIGN.md`, "Determinism invariants", for the rationale):
//!
//! - **D001** — no `std::time::Instant` / `std::time::SystemTime` outside
//!   the allowlist (`crates/sstp/src/udp.rs`, anything under a `tests/`
//!   directory). Wall clocks make runs time-dependent.
//! - **D002** — no `HashMap` / `HashSet` in the simulation crates
//!   (`core`, `netsim`, `sched`, `queueing`, `sstp`). Hash iteration
//!   order is randomized per-process; ordered collections (`BTreeMap`,
//!   `BTreeSet`) or explicit sorts are required.
//! - **D003** — no `thread_rng` / `rand::random` anywhere. All
//!   randomness must flow through the seeded `SimRng`.
//! - **D004** — no `unwrap()` / `expect()` / slice indexing in the wire
//!   parse path (`crates/sstp/src/wire.rs`). Decoding untrusted bytes
//!   must be total.
//!
//! A line may opt out of a rule with an annotation on the same line or
//! the line directly above:
//!
//! ```text
//! // lint: allow(D002, reason the hash container is safe here)
//! ```
//!
//! The reason is mandatory; an annotation without one does not suppress.
//! Module-level `#[cfg(test)]` blocks are exempt: scanning stops at the
//! first `#[cfg(test)]` attribute in a file (test modules are last by
//! convention, enforced socially rather than mechanically).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation, addressable as `path:line`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier, e.g. `"D002"`.
    pub rule: &'static str,
    /// Human-readable explanation of the violation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Simulation crates where hash-ordered containers are forbidden (D002).
const SIM_CRATE_PREFIXES: [&str; 5] = [
    "crates/core/src",
    "crates/netsim/src",
    "crates/sched/src",
    "crates/queueing/src",
    "crates/sstp/src",
];

/// Files allowed to read the wall clock (D001): the real-socket UDP
/// bridge needs actual time, and test harnesses may time themselves.
fn d001_allowed(path: &str) -> bool {
    path == "crates/sstp/src/udp.rs" || path.starts_with("tests/") || path.contains("/tests/")
}

fn in_sim_crate(path: &str) -> bool {
    SIM_CRATE_PREFIXES.iter().any(|p| path.starts_with(p))
}

/// One source line split into scannable code and its trailing comments.
struct ScanLine {
    /// Code with comments, string contents, and char literals blanked out
    /// (replaced by spaces, so columns are preserved).
    code: String,
    /// The concatenated comment text of the line (for `lint: allow`).
    comment: String,
}

/// Carry-over lexical state between lines.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Carry {
    /// Plain code.
    None,
    /// Inside a `/* */` comment, with nesting depth.
    BlockComment(u32),
    /// Inside a raw string literal with `hashes` trailing `#`s.
    RawString(u32),
}

/// Strips one physical line given the carry-over state, returning the
/// scan view and the state to carry into the next line.
fn strip_line(line: &str, carry: Carry) -> (ScanLine, Carry) {
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    let mut state = carry;

    while i < bytes.len() {
        match state {
            Carry::BlockComment(depth) => {
                if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        Carry::None
                    } else {
                        Carry::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = Carry::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(bytes[i] as char);
                    i += 1;
                }
                continue;
            }
            Carry::RawString(hashes) => {
                if bytes[i] == b'"' {
                    let h = hashes as usize;
                    if bytes.len() >= i + 1 + h
                        && bytes[i + 1..i + 1 + h].iter().all(|&b| b == b'#')
                    {
                        state = Carry::None;
                        code.push('"');
                        for _ in 0..h {
                            code.push(' ');
                        }
                        i += 1 + h;
                        continue;
                    }
                }
                code.push(' ');
                i += 1;
                continue;
            }
            Carry::None => {}
        }

        let c = bytes[i];
        if c == b'/' && bytes.get(i + 1) == Some(&b'/') {
            // Line comment: the rest of the line is comment text.
            comment.push_str(&line[i + 2..]);
            break;
        }
        if c == b'/' && bytes.get(i + 1) == Some(&b'*') {
            state = Carry::BlockComment(1);
            code.push(' ');
            code.push(' ');
            i += 2;
            continue;
        }
        if c == b'r' {
            // Possible raw string: r"..." or r#"..."#.
            let mut j = i + 1;
            while bytes.get(j) == Some(&b'#') {
                j += 1;
            }
            if bytes.get(j) == Some(&b'"') {
                let hashes = (j - (i + 1)) as u32;
                code.push('r');
                for _ in i + 1..=j {
                    code.push(' ');
                }
                i = j + 1;
                state = Carry::RawString(hashes);
                continue;
            }
        }
        if c == b'"' {
            // Ordinary string literal: blank to the closing quote.
            code.push('"');
            i += 1;
            while i < bytes.len() {
                if bytes[i] == b'\\' {
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    continue;
                }
                if bytes[i] == b'"' {
                    code.push('"');
                    i += 1;
                    break;
                }
                code.push(' ');
                i += 1;
            }
            continue;
        }
        if c == b'\'' {
            // Char literal vs lifetime: a literal closes within a few
            // bytes ('x', '\n', '\u{..}'); a lifetime never closes.
            let close = if bytes.get(i + 1) == Some(&b'\\') {
                bytes[i + 2..].iter().take(8).position(|&b| b == b'\'')
            } else {
                (bytes.get(i + 2) == Some(&b'\'')).then_some(0)
            };
            if let Some(off) = close {
                let end = if bytes.get(i + 1) == Some(&b'\\') {
                    i + 2 + off
                } else {
                    i + 2
                };
                for _ in i..=end {
                    code.push(' ');
                }
                i = end + 1;
                continue;
            }
        }
        code.push(c as char);
        i += 1;
    }

    (ScanLine { code, comment }, state)
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Yields the identifier tokens of a stripped code line.
fn idents(code: &str) -> Vec<&str> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if is_ident_byte(bytes[i]) {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            out.push(&code[start..i]);
        } else {
            i += 1;
        }
    }
    out
}

/// True when `comment` carries a well-formed suppression for `rule`:
/// `lint: allow(DXXX, non-empty reason)`.
fn allows(comment: &str, rule: &str) -> bool {
    let Some(pos) = comment.find("lint: allow(") else {
        return false;
    };
    let body = &comment[pos + "lint: allow(".len()..];
    let Some(end) = body.find(')') else {
        return false;
    };
    let body = &body[..end];
    let Some((id, reason)) = body.split_once(',') else {
        return false;
    };
    id.trim() == rule && !reason.trim().is_empty()
}

/// True when the stripped line contains slice-index syntax: a `[` directly
/// following an identifier character, `)`, or `]` (so array type syntax
/// `[u64; 4]` and attributes `#[...]` do not match).
fn has_indexing(code: &str) -> bool {
    let bytes = code.as_bytes();
    bytes.iter().enumerate().any(|(i, &b)| {
        b == b'['
            && i > 0
            && (is_ident_byte(bytes[i - 1]) || bytes[i - 1] == b')' || bytes[i - 1] == b']')
    })
}

/// Scans one source file's content. `path` must be workspace-relative with
/// `/` separators; it selects which rules apply.
pub fn scan_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut carry = Carry::None;
    let mut prev_comment = String::new();

    let check_d001 = !d001_allowed(path);
    let check_d002 = in_sim_crate(path);
    let check_d004 = path == "crates/sstp/src/wire.rs";

    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let (scan, next_carry) = strip_line(raw, carry);
        let was_code = carry == Carry::None || matches!(carry, Carry::RawString(_));
        carry = next_carry;

        if was_code && scan.code.trim_start().starts_with("#[cfg(test)]") {
            // Test modules sit at the end of each file; everything after
            // this attribute is test-only and exempt from the rules.
            break;
        }

        let suppressed = |rule: &str| allows(&scan.comment, rule) || allows(&prev_comment, rule);
        let toks = idents(&scan.code);
        let has = |t: &str| toks.iter().any(|&x| x == t);

        if check_d001 && (has("Instant") || has("SystemTime")) && !suppressed("D001") {
            out.push(Diagnostic {
                path: path.to_string(),
                line: line_no,
                rule: "D001",
                message: "wall-clock time source outside the allowlist; use the simulated clock"
                    .to_string(),
            });
        }
        if check_d002 && (has("HashMap") || has("HashSet")) && !suppressed("D002") {
            out.push(Diagnostic {
                path: path.to_string(),
                line: line_no,
                rule: "D002",
                message: "hash-ordered container in a simulation crate; use BTreeMap/BTreeSet or \
                     annotate with `// lint: allow(D002, reason)`"
                    .to_string(),
            });
        }
        if (has("thread_rng") || scan.code.contains("rand::random")) && !suppressed("D003") {
            out.push(Diagnostic {
                path: path.to_string(),
                line: line_no,
                rule: "D003",
                message: "ambient randomness source; all draws must come from the seeded SimRng"
                    .to_string(),
            });
        }
        if check_d004 && !suppressed("D004") {
            if has("unwrap") || has("expect") {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line: line_no,
                    rule: "D004",
                    message: "panicking accessor in the wire parse path; decoding must be total"
                        .to_string(),
                });
            } else if has_indexing(&scan.code) {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line: line_no,
                    rule: "D004",
                    message:
                        "slice indexing in the wire parse path; use checked access (get/split)"
                            .to_string(),
                });
            }
        }

        prev_comment = scan.comment;
    }
    out
}

/// Collects the `.rs` files the lint covers: everything under
/// `crates/*/src`, plus the root `src/` and `tests/` trees. `vendor/` and
/// build output are never scanned.
fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut roots: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    for extra in ["src", "tests"] {
        let p = root.join(extra);
        if p.is_dir() {
            roots.push(p);
        }
    }
    let mut stack = roots;
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Scans the whole workspace rooted at `root`, returning all diagnostics
/// in deterministic (path, line) order.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for file in collect_sources(root)? {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(&file)?;
        out.extend(scan_source(&rel, &src));
    }
    Ok(out)
}

/// Locates the workspace root from this crate's build-time manifest path
/// (`crates/lint` → two levels up).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_do_not_trigger() {
        let src = r#"
            // HashMap in a comment is fine
            /* Instant::now() in a block comment too */
            fn f() -> &'static str { "HashMap thread_rng Instant" }
        "#;
        assert!(scan_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_requires_reason() {
        let with_reason = "use std::collections::HashMap; // lint: allow(D002, keyed by opaque id, order never observed)\n";
        let without = "use std::collections::HashMap; // lint: allow(D002)\n";
        assert!(scan_source("crates/core/src/x.rs", with_reason).is_empty());
        assert_eq!(scan_source("crates/core/src/x.rs", without).len(), 1);
    }

    #[test]
    fn allow_on_preceding_line() {
        let src = "// lint: allow(D002, justified)\nuse std::collections::HashSet;\n";
        assert!(scan_source("crates/sched/src/x.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_stops_scanning() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(scan_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn indexing_detection() {
        assert!(has_indexing("let x = buf[0];"));
        assert!(has_indexing("let y = &data[..4];"));
        assert!(!has_indexing("let s: [u64; 4] = t;"));
        assert!(!has_indexing("#[derive(Debug)]"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let (scan, carry) = strip_line("fn f<'a>(x: &'a str) -> &'a str { x }", Carry::None);
        assert!(carry == Carry::None);
        assert!(scan.code.contains("str"));
    }
}
