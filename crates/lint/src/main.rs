//! The `ss-lint` binary: scans the workspace sources for violations of
//! the determinism rules D001-D004 and exits non-zero if any are found.
//!
//! Usage: `cargo run -p ss-lint [--] [workspace-root]`. With no argument
//! the root is derived from this crate's location in the tree.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(ss_lint::workspace_root);

    let diagnostics = match ss_lint::scan_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("ss-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if diagnostics.is_empty() {
        println!("ss-lint: clean (rules D001-D004)");
        return ExitCode::SUCCESS;
    }
    for d in &diagnostics {
        eprintln!("{d}");
    }
    eprintln!("ss-lint: {} violation(s)", diagnostics.len());
    ExitCode::FAILURE
}
