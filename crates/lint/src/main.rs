//! The `ss-lint` binary: scans the workspace sources for violations of
//! the determinism and purity rules D001-D011 and exits non-zero if any
//! are found.
//!
//! Usage: `cargo run -p ss-lint [--] [--json] [--schema] [workspace-root]`.
//! With no root argument the root is derived from this crate's location
//! in the tree.
//!
//! Exit codes (the CI gate relies on the distinction):
//!
//! - `0` — scan completed, no findings.
//! - `1` — scan completed, at least one finding.
//! - `2` — the scan itself failed (unreadable root, no source trees,
//!   I/O error mid-walk). A bad path must never read as "clean".
//!
//! `--json` prints the machine-readable findings document on stdout (the
//! human rendering moves to stderr); `--schema` prints the document and
//! rule schema and exits 0 without scanning.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--schema" => {
                println!("{}", ss_lint::schema_json());
                return ExitCode::SUCCESS;
            }
            "--" => {}
            _ => root = Some(PathBuf::from(arg)),
        }
    }
    let root = root.unwrap_or_else(ss_lint::workspace_root);

    let diagnostics = match ss_lint::scan_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("ss-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!(
            "{}",
            ss_lint::findings_to_json(&root.display().to_string(), &diagnostics)
        );
    }
    if diagnostics.is_empty() {
        if !json {
            println!("ss-lint: clean (rules D001-D011)");
        }
        return ExitCode::SUCCESS;
    }
    for d in &diagnostics {
        eprintln!("{d}");
    }
    eprintln!("ss-lint: {} violation(s)", diagnostics.len());
    ExitCode::FAILURE
}
