//! Property-based tests of the scheduler contracts: work conservation
//! and weight-proportional sharing for arbitrary weight vectors.

use proptest::prelude::*;
use ss_netsim::SimRng;
use ss_sched::{Drr, Hierarchy, Lottery, Scheduler, Sfq, StrictPriority, Stride};

fn service_shares(s: &mut dyn Scheduler, weights: &[u64], rounds: usize) -> Vec<f64> {
    for (c, &w) in weights.iter().enumerate() {
        s.set_weight(c, w);
        s.set_backlogged(c, true);
    }
    let mut rng = SimRng::new(7);
    let mut counts = vec![0u64; weights.len()];
    for _ in 0..rounds {
        let c = s.pick(&mut rng).expect("work conservation");
        counts[c] += 1;
        s.charge(c, 1);
    }
    let total: u64 = counts.iter().sum();
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

fn check_proportional(
    s: &mut dyn Scheduler,
    weights: &[u64],
    tol: f64,
) -> Result<(), TestCaseError> {
    let rounds = 20_000;
    let shares = service_shares(s, weights, rounds);
    let wtotal: u64 = weights.iter().sum();
    for (c, (&got, &w)) in shares.iter().zip(weights).enumerate() {
        let want = w as f64 / wtotal as f64;
        prop_assert!(
            (got - want).abs() <= tol,
            "class {c}: share {got:.4} vs weight share {want:.4} ({})",
            s.name()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Deterministic proportional-share policies track arbitrary weight
    /// vectors tightly.
    #[test]
    fn deterministic_policies_are_proportional(
        weights in prop::collection::vec(1u64..50, 2..8),
    ) {
        check_proportional(&mut Stride::new(), &weights, 0.01)?;
        check_proportional(&mut Sfq::new(), &weights, 0.01)?;
        check_proportional(&mut Drr::new(1), &weights, 0.02)?;
    }

    /// Lottery tracks weights statistically.
    #[test]
    fn lottery_is_proportional(weights in prop::collection::vec(1u64..50, 2..6)) {
        check_proportional(&mut Lottery::new(), &weights, 0.03)?;
    }

    /// A flat hierarchy behaves exactly like a flat scheduler.
    #[test]
    fn flat_hierarchy_is_proportional(weights in prop::collection::vec(1u64..50, 2..8)) {
        let mut h = Hierarchy::new();
        let root = h.root();
        for (c, &w) in weights.iter().enumerate() {
            h.add_leaf(root, w, c);
        }
        check_proportional(&mut h, &weights, 0.01)?;
    }

    /// Work conservation: as long as any class is backlogged with a
    /// positive weight, every policy picks something; with none, nothing.
    #[test]
    fn work_conservation(
        weights in prop::collection::vec(0u64..5, 1..8),
        backlog in prop::collection::vec(any::<bool>(), 1..8),
    ) {
        let n = weights.len().min(backlog.len());
        let eligible = (0..n).any(|c| weights[c] > 0 && backlog[c]);
        let mut rng = SimRng::new(3);
        let policies: Vec<Box<dyn Scheduler>> = vec![
            Box::new(Lottery::new()),
            Box::new(Stride::new()),
            Box::new(Sfq::new()),
            Box::new(Drr::new(1)),
            Box::new(StrictPriority::new()),
        ];
        for mut s in policies {
            for c in 0..n {
                s.set_weight(c, weights[c]);
                s.set_backlogged(c, backlog[c]);
            }
            let picked = s.pick(&mut rng);
            prop_assert_eq!(
                picked.is_some(),
                eligible,
                "{}: eligible={} picked={:?}",
                s.name(),
                eligible,
                picked
            );
            if let Some(c) = picked {
                prop_assert!(weights[c] > 0 && backlog[c], "{} picked ineligible", s.name());
            }
        }
    }

    /// Nested hierarchy shares multiply: leaf share = prod(weight ratios)
    /// along its path.
    #[test]
    fn hierarchy_shares_multiply(
        top in prop::collection::vec(1u64..9, 2..4),
        inner in prop::collection::vec(1u64..9, 2..4),
    ) {
        let mut h = Hierarchy::new();
        let root = h.root();
        let mut class = 0usize;
        let mut want = Vec::new();
        let top_total: u64 = top.iter().sum();
        let inner_total: u64 = inner.iter().sum();
        for &tw in &top {
            let mid = h.add_interior(root, tw);
            for &iw in &inner {
                h.add_leaf(mid, iw, class);
                h.set_backlogged(class, true);
                want.push((tw as f64 / top_total as f64) * (iw as f64 / inner_total as f64));
                class += 1;
            }
        }
        let mut rng = SimRng::new(5);
        let mut counts = vec![0u64; class];
        let rounds = 40_000;
        for _ in 0..rounds {
            let c = h.pick(&mut rng).unwrap();
            counts[c] += 1;
            h.charge(c, 1);
        }
        for (c, (&got, &w)) in counts.iter().zip(&want).enumerate() {
            let share = got as f64 / rounds as f64;
            prop_assert!((share - w).abs() < 0.015, "leaf {c}: {share:.4} vs {w:.4}");
        }
    }
}
