//! Stride scheduling (Waldspurger & Weihl, MIT/LCS/TM-528) — the
//! deterministic counterpart to lottery scheduling, also cited in §4.
//!
//! Each class has a *stride* inversely proportional to its weight and a
//! *pass* value; the backlogged class with the smallest pass transmits and
//! its pass advances by `stride × cost`. Deterministic, with per-class
//! service error bounded by a constant (vs. `O(√n)` for lottery).

use crate::{ClassId, ClassTable, Scheduler};
use ss_netsim::SimRng;

/// Numerator for stride computation; large so integer strides stay precise
/// across weight ratios up to ~10^6.
const STRIDE1: u128 = 1 << 40;

/// A deterministic proportional-share scheduler.
#[derive(Clone, Debug, Default)]
pub struct Stride {
    table: ClassTable,
    /// Per-class pass value (virtual time of next service).
    pass: Vec<u128>,
    /// Global virtual time: pass values of newly backlogged classes start
    /// here so a waking class cannot claim ancient credit.
    global_pass: u128,
}

impl Stride {
    /// An empty stride scheduler.
    pub fn new() -> Self {
        Stride::default()
    }

    fn ensure(&mut self, class: ClassId) {
        self.table.ensure(class);
        if class >= self.pass.len() {
            self.pass.resize(class + 1, 0);
        }
    }

    fn stride_of(&self, class: ClassId) -> u128 {
        let w = self.table.weight(class) as u128;
        debug_assert!(w > 0);
        STRIDE1 / w
    }
}

impl Scheduler for Stride {
    fn set_weight(&mut self, class: ClassId, weight: u64) {
        self.ensure(class);
        self.table.set_weight(class, weight);
    }

    fn weight(&self, class: ClassId) -> u64 {
        self.table.weight(class)
    }

    fn set_backlogged(&mut self, class: ClassId, backlogged: bool) {
        self.ensure(class);
        let was = self.table.is_backlogged(class);
        self.table.set_backlogged(class, backlogged);
        if backlogged && !was {
            // Re-sync a waking class to the current virtual time.
            self.pass[class] = self.pass[class].max(self.global_pass);
        }
    }

    fn is_backlogged(&self, class: ClassId) -> bool {
        self.table.is_backlogged(class)
    }

    fn pick(&mut self, _rng: &mut SimRng) -> Option<ClassId> {
        let best = self.table.eligible().min_by_key(|&c| (self.pass[c], c))?;
        self.global_pass = self.pass[best];
        Some(best)
    }

    fn charge(&mut self, class: ClassId, cost: u64) {
        self.ensure(class);
        if self.table.weight(class) == 0 {
            return;
        }
        self.pass[class] += self.stride_of(class) * cost as u128;
    }

    fn name(&self) -> &'static str {
        "stride"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_proportional, service_counts};

    #[test]
    fn shares_track_weights_exactly() {
        let weights = [10, 30, 60];
        let counts = service_counts(&mut Stride::new(), &weights, 100_000, 0);
        // Deterministic policy: tighter tolerance than lottery.
        assert_proportional(&counts, &weights, 0.001);
    }

    #[test]
    fn interleaving_is_smooth() {
        // With weights 3:1, class 1 should never wait more than 4 slots.
        let mut s = Stride::new();
        let mut rng = SimRng::new(0);
        s.set_weight(0, 3);
        s.set_weight(1, 1);
        s.set_backlogged(0, true);
        s.set_backlogged(1, true);
        let mut gap = 0;
        for _ in 0..1000 {
            let c = s.pick(&mut rng).unwrap();
            s.charge(c, 1);
            if c == 1 {
                gap = 0;
            } else {
                gap += 1;
                assert!(gap <= 4, "class 1 starved for {gap} slots");
            }
        }
    }

    #[test]
    fn waking_class_gets_no_back_credit() {
        let mut s = Stride::new();
        let mut rng = SimRng::new(0);
        s.set_weight(0, 1);
        s.set_weight(1, 1);
        s.set_backlogged(0, true);
        // Class 0 runs alone for a while.
        for _ in 0..1000 {
            assert_eq!(s.pick(&mut rng), Some(0));
            s.charge(0, 1);
        }
        // Class 1 wakes: it must not monopolize to "catch up".
        s.set_backlogged(1, true);
        let mut run1 = 0;
        for _ in 0..100 {
            if s.pick(&mut rng) == Some(1) {
                run1 += 1;
                s.charge(1, 1);
            } else {
                s.charge(0, 1);
            }
        }
        assert!((40..=60).contains(&run1), "woken class took {run1}/100");
    }

    #[test]
    fn byte_costs_weight_service() {
        // Equal weights, but class 0 sends 4x larger packets: it should get
        // ~1/4 as many picks so byte shares equalize.
        let mut s = Stride::new();
        let mut rng = SimRng::new(0);
        s.set_weight(0, 1);
        s.set_weight(1, 1);
        s.set_backlogged(0, true);
        s.set_backlogged(1, true);
        let mut picks = [0u64; 2];
        for _ in 0..10_000 {
            let c = s.pick(&mut rng).unwrap();
            picks[c] += 1;
            s.charge(c, if c == 0 { 4 } else { 1 });
        }
        let ratio = picks[1] as f64 / picks[0] as f64;
        assert!((ratio - 4.0).abs() < 0.05, "pick ratio {ratio}");
    }

    #[test]
    fn work_conserving() {
        let mut s = Stride::new();
        let mut rng = SimRng::new(0);
        assert_eq!(s.pick(&mut rng), None);
        s.set_weight(3, 7);
        s.set_backlogged(3, true);
        assert_eq!(s.pick(&mut rng), Some(3));
    }
}
