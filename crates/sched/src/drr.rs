//! Deficit round robin (Shreedhar & Varghese) — an O(1) proportional-share
//! alternative to the virtual-time schedulers, included for the scheduler
//! ablation experiment.
//!
//! Classes sit in a round-robin ring; each visit adds `quantum × weight`
//! to the class's deficit counter, and the class transmits while its
//! deficit covers the next packet's cost. With the slot-and-charge
//! interface the cost arrives after the pick, so a pick is allowed when
//! the deficit is positive and may momentarily overdraw by at most one
//! packet — the classic DRR bound.

use crate::{ClassId, ClassTable, Scheduler};
use ss_netsim::SimRng;

/// A deficit-round-robin scheduler.
#[derive(Clone, Debug)]
pub struct Drr {
    table: ClassTable,
    deficit: Vec<i128>,
    /// Ring cursor: index of the class currently holding the token.
    cursor: usize,
    /// Deficit granted per unit weight per round.
    quantum: u64,
}

impl Default for Drr {
    fn default() -> Self {
        Drr::new(1)
    }
}

impl Drr {
    /// A DRR scheduler granting `quantum` cost units per unit weight per
    /// round. Use the typical packet cost (e.g. the MTU when charging
    /// bytes, or 1 when charging packets).
    pub fn new(quantum: u64) -> Self {
        assert!(quantum > 0, "quantum must be positive");
        Drr {
            table: ClassTable::default(),
            deficit: Vec::new(),
            cursor: 0,
            quantum,
        }
    }

    fn ensure(&mut self, class: ClassId) {
        self.table.ensure(class);
        if class >= self.deficit.len() {
            self.deficit.resize(class + 1, 0);
        }
    }
}

impl Scheduler for Drr {
    fn set_weight(&mut self, class: ClassId, weight: u64) {
        self.ensure(class);
        self.table.set_weight(class, weight);
    }

    fn weight(&self, class: ClassId) -> u64 {
        self.table.weight(class)
    }

    fn set_backlogged(&mut self, class: ClassId, backlogged: bool) {
        self.ensure(class);
        let was = self.table.is_backlogged(class);
        self.table.set_backlogged(class, backlogged);
        if !backlogged && was {
            // An emptied class forfeits its remaining deficit (standard DRR).
            self.deficit[class] = 0;
        }
    }

    fn is_backlogged(&self, class: ClassId) -> bool {
        self.table.is_backlogged(class)
    }

    fn pick(&mut self, _rng: &mut SimRng) -> Option<ClassId> {
        let n = self.table.len();
        if n == 0 || self.table.eligible().next().is_none() {
            return None;
        }
        // Walk the ring; each full pass tops up deficits, so termination is
        // guaranteed once some eligible class accumulates a positive deficit.
        loop {
            for _ in 0..n {
                let c = self.cursor;
                self.cursor = (self.cursor + 1) % n;
                if self.table.is_backlogged(c) && self.table.weight(c) > 0 {
                    if self.deficit[c] > 0 {
                        // Keep the token on this class so it can continue
                        // next pick while its deficit lasts.
                        self.cursor = c;
                        return Some(c);
                    }
                    self.deficit[c] += (self.quantum as i128) * (self.table.weight(c) as i128);
                    if self.deficit[c] > 0 {
                        self.cursor = c;
                        return Some(c);
                    }
                }
            }
        }
    }

    fn charge(&mut self, class: ClassId, cost: u64) {
        self.ensure(class);
        self.deficit[class] -= cost as i128;
        if self.deficit[class] <= 0 {
            // Spent: pass the token onward.
            let n = self.table.len();
            if self.cursor == class && n > 0 {
                self.cursor = (class + 1) % n;
            }
        }
    }

    fn name(&self) -> &'static str {
        "drr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_proportional, service_counts};

    #[test]
    fn shares_track_weights() {
        let weights = [1, 2, 3];
        let counts = service_counts(&mut Drr::new(1), &weights, 60_000, 0);
        assert_proportional(&counts, &weights, 0.005);
    }

    #[test]
    fn byte_mode_with_mtu_quantum() {
        // Charge in bytes with a 1500-byte quantum, unequal packet sizes.
        let mut s = Drr::new(1500);
        let mut rng = SimRng::new(0);
        s.set_weight(0, 1);
        s.set_weight(1, 1);
        s.set_backlogged(0, true);
        s.set_backlogged(1, true);
        let mut bytes = [0u64; 2];
        for _ in 0..20_000 {
            let c = s.pick(&mut rng).unwrap();
            let cost = if c == 0 { 1500 } else { 300 };
            bytes[c] += cost;
            s.charge(c, cost);
        }
        let ratio = bytes[0] as f64 / bytes[1] as f64;
        assert!((ratio - 1.0).abs() < 0.01, "byte ratio {ratio}");
    }

    #[test]
    fn idle_class_forfeits_deficit() {
        let mut s = Drr::new(1);
        let mut rng = SimRng::new(0);
        s.set_weight(0, 100);
        s.set_weight(1, 1);
        s.set_backlogged(0, true);
        s.set_backlogged(1, true);
        // Serve a bit, then idle class 0; its banked deficit must vanish.
        for _ in 0..50 {
            let c = s.pick(&mut rng).unwrap();
            s.charge(c, 1);
        }
        s.set_backlogged(0, false);
        for _ in 0..10 {
            assert_eq!(s.pick(&mut rng), Some(1));
            s.charge(1, 1);
        }
        s.set_backlogged(0, true);
        // After waking, class 0 gets its weight share again but no burst of
        // banked credit beyond one quantum round.
        let mut first_ten = Vec::new();
        for _ in 0..10 {
            let c = s.pick(&mut rng).unwrap();
            s.charge(c, 1);
            first_ten.push(c);
        }
        assert!(first_ten.contains(&0));
    }

    #[test]
    fn none_when_idle() {
        let mut s = Drr::new(1);
        let mut rng = SimRng::new(0);
        assert_eq!(s.pick(&mut rng), None);
        s.set_weight(0, 1);
        assert_eq!(s.pick(&mut rng), None);
    }
}
