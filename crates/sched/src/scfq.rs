//! Self-clocked fair queueing (Golestani) — the finish-time member of
//! the WFQ family the paper cites via Demers et al. \[17\].
//!
//! Unlike the slot-and-charge schedulers in this crate, SCFQ owns the
//! per-class packet queues: each packet is stamped at *enqueue* with a
//! finish tag `F = max(v, F_last) + len/weight`, the packet with the
//! minimum tag transmits next, and the virtual clock `v` self-clocks to
//! the tag of the packet in service. This gives byte-accurate weighted
//! fairness for arbitrary packet-size mixes with O(log n) per operation,
//! without reconstructing the GPS fluid schedule real WFQ needs.
//!
//! Use this when packet lengths are known at enqueue (real transmit
//! queues); use [`crate::Sfq`]/[`crate::Stride`] when the cost is only
//! known after service (the slot abstraction the protocol simulations
//! need).

use crate::ClassId;
use std::collections::{BTreeSet, VecDeque};

/// Fixed-point scale for virtual time.
const VSCALE: u128 = 1 << 32;

#[derive(Debug)]
struct ClassQueue<T> {
    weight: u64,
    /// Finish tag of the most recently enqueued packet.
    last_finish: u128,
    /// Queued packets with their finish tags (FIFO within the class).
    packets: VecDeque<(u128, u64, T)>,
}

/// A weighted fair queue over per-class packet queues with lengths known
/// at enqueue time.
#[derive(Debug)]
pub struct Scfq<T> {
    classes: Vec<ClassQueue<T>>,
    /// Head finish tags of backlogged classes: `(tag, class)`.
    heads: BTreeSet<(u128, usize)>,
    /// The self-clocked virtual time.
    vtime: u128,
    enqueued: u64,
    dequeued: u64,
}

impl<T> Default for Scfq<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Scfq<T> {
    /// An empty SCFQ with no classes.
    pub fn new() -> Self {
        Scfq {
            classes: Vec::new(),
            heads: BTreeSet::new(),
            vtime: 0,
            enqueued: 0,
            dequeued: 0,
        }
    }

    fn ensure(&mut self, class: ClassId) {
        while self.classes.len() <= class {
            self.classes.push(ClassQueue {
                weight: 1,
                last_finish: 0,
                packets: VecDeque::new(),
            });
        }
    }

    /// Sets a class's weight (applies to packets enqueued afterwards).
    /// Panics on zero — an unserviceable class would trap its packets.
    pub fn set_weight(&mut self, class: ClassId, weight: u64) {
        assert!(weight > 0, "SCFQ weight must be positive");
        self.ensure(class);
        self.classes[class].weight = weight;
    }

    /// The class's weight (1 if never set).
    pub fn weight(&self, class: ClassId) -> u64 {
        self.classes.get(class).map_or(1, |c| c.weight)
    }

    /// Enqueues a packet of `len` cost units for `class`.
    pub fn enqueue(&mut self, class: ClassId, len: u64, item: T) {
        assert!(len > 0, "zero-length packet");
        self.ensure(class);
        let cq = &mut self.classes[class];
        let start = self.vtime.max(cq.last_finish);
        let finish = start + u128::from(len) * VSCALE / u128::from(cq.weight);
        cq.last_finish = finish;
        let was_empty = cq.packets.is_empty();
        cq.packets.push_back((finish, len, item));
        if was_empty {
            self.heads.insert((finish, class));
        }
        self.enqueued += 1;
    }

    /// Dequeues the packet with the smallest finish tag, advancing the
    /// virtual clock. Returns `(class, len, item)`.
    pub fn dequeue(&mut self) -> Option<(ClassId, u64, T)> {
        let &(tag, class) = self.heads.iter().next()?;
        self.heads.remove(&(tag, class));
        let cq = &mut self.classes[class];
        let (finish, len, item) = cq.packets.pop_front().expect("head class has a packet");
        debug_assert_eq!(finish, tag);
        self.vtime = finish;
        if let Some(&(next_tag, _, _)) = cq.packets.front() {
            self.heads.insert((next_tag, class));
        }
        self.dequeued += 1;
        Some((class, len, item))
    }

    /// Total packets currently queued.
    pub fn len(&self) -> usize {
        (self.enqueued - self.dequeued) as usize
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.enqueued == self.dequeued
    }

    /// Packets queued in one class.
    pub fn class_len(&self, class: ClassId) -> usize {
        self.classes.get(class).map_or(0, |c| c.packets.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Keeps every class persistently backlogged (refilling whatever is
    /// dequeued) and measures long-run served byte shares.
    fn byte_shares(weights: &[u64], lens: &[u64], drain_bytes: u64) -> Vec<f64> {
        let mut q: Scfq<usize> = Scfq::new();
        for (c, &w) in weights.iter().enumerate() {
            q.set_weight(c, w);
            // A few packets of initial backlog per class.
            for _ in 0..4 {
                q.enqueue(c, lens[c], c);
            }
        }
        let mut served = vec![0u64; weights.len()];
        let mut drained = 0;
        while drained < drain_bytes {
            let (c, len, _) = q.dequeue().unwrap();
            served[c] += len;
            drained += len;
            q.enqueue(c, lens[c], c); // stay backlogged
        }
        let total: u64 = served.iter().sum();
        served.iter().map(|&b| b as f64 / total as f64).collect()
    }

    #[test]
    fn equal_weights_equal_bytes_despite_size_mix() {
        // Class 0 sends 1500-byte packets, class 1 sends 100-byte ones;
        // equal weights must still split bytes ~50/50.
        let shares = byte_shares(&[1, 1], &[1500, 100], 2_000_000);
        assert!((shares[0] - 0.5).abs() < 0.02, "{shares:?}");
    }

    #[test]
    fn weighted_byte_shares() {
        let shares = byte_shares(&[3, 1], &[500, 500], 2_000_000);
        assert!((shares[0] - 0.75).abs() < 0.02, "{shares:?}");
        let shares = byte_shares(&[1, 4], &[1200, 300], 2_000_000);
        assert!((shares[1] - 0.8).abs() < 0.02, "{shares:?}");
    }

    #[test]
    fn fifo_within_class() {
        let mut q: Scfq<u32> = Scfq::new();
        for i in 0..10 {
            q.enqueue(0, 100, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.dequeue().map(|(_, _, x)| x)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn idle_class_gets_no_back_credit() {
        let mut q: Scfq<&str> = Scfq::new();
        q.set_weight(0, 1);
        q.set_weight(1, 1);
        // Class 0 monopolizes for a long time while 1 is idle.
        for _ in 0..1000 {
            q.enqueue(0, 100, "a");
        }
        for _ in 0..1000 {
            q.dequeue();
        }
        // Class 1 wakes with a burst: it must not starve class 0 while it
        // "catches up" — service alternates.
        for _ in 0..100 {
            q.enqueue(0, 100, "a");
            q.enqueue(1, 100, "b");
        }
        let mut first_twenty = Vec::new();
        for _ in 0..20 {
            first_twenty.push(q.dequeue().unwrap().0);
        }
        let ones = first_twenty.iter().filter(|&&c| c == 1).count();
        assert!((8..=12).contains(&ones), "woken class took {ones}/20");
    }

    #[test]
    fn work_conserving_and_empty() {
        let mut q: Scfq<u8> = Scfq::new();
        assert!(q.dequeue().is_none());
        assert!(q.is_empty());
        q.enqueue(3, 10, 7);
        assert_eq!(q.len(), 1);
        assert_eq!(q.class_len(3), 1);
        assert_eq!(q.dequeue(), Some((3, 10, 7)));
        assert!(q.is_empty());
        assert_eq!(q.weight(9), 1, "default weight");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let mut q: Scfq<()> = Scfq::new();
        q.set_weight(0, 0);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_len_rejected() {
        let mut q: Scfq<()> = Scfq::new();
        q.enqueue(0, 0, ());
    }
}
