//! Start-time fair queueing — the weighted-fair-queueing family member
//! we use for the paper's WFQ citation (Demers/Keshav/Shenker, SIGCOMM
//! '89; SFQ formulation by Goyal et al.).
//!
//! Classic WFQ computes finish tags from packet lengths *before*
//! transmission; SFQ instead serves the backlogged class with the minimum
//! *start* tag and needs the length only afterwards, which matches this
//! crate's slot-and-charge interface exactly. Service error is within one
//! maximum packet of ideal weighted fairness, like WFQ.

use crate::{ClassId, ClassTable, Scheduler};
use ss_netsim::SimRng;

/// Fixed-point scale for virtual time so integer tags stay precise.
const VSCALE: u128 = 1 << 32;

/// A start-time fair queueing scheduler.
#[derive(Clone, Debug, Default)]
pub struct Sfq {
    table: ClassTable,
    /// Per-class start tag for its next packet.
    start: Vec<u128>,
    /// Virtual time: start tag of the packet most recently put in service.
    vtime: u128,
}

impl Sfq {
    /// An empty SFQ scheduler.
    pub fn new() -> Self {
        Sfq::default()
    }

    fn ensure(&mut self, class: ClassId) {
        self.table.ensure(class);
        if class >= self.start.len() {
            self.start.resize(class + 1, 0);
        }
    }
}

impl Scheduler for Sfq {
    fn set_weight(&mut self, class: ClassId, weight: u64) {
        self.ensure(class);
        self.table.set_weight(class, weight);
    }

    fn weight(&self, class: ClassId) -> u64 {
        self.table.weight(class)
    }

    fn set_backlogged(&mut self, class: ClassId, backlogged: bool) {
        self.ensure(class);
        let was = self.table.is_backlogged(class);
        self.table.set_backlogged(class, backlogged);
        if backlogged && !was {
            // SFQ rule: a newly backlogged class starts at v(t).
            self.start[class] = self.start[class].max(self.vtime);
        }
    }

    fn is_backlogged(&self, class: ClassId) -> bool {
        self.table.is_backlogged(class)
    }

    fn pick(&mut self, _rng: &mut SimRng) -> Option<ClassId> {
        let best = self.table.eligible().min_by_key(|&c| (self.start[c], c))?;
        self.vtime = self.start[best];
        Some(best)
    }

    fn charge(&mut self, class: ClassId, cost: u64) {
        self.ensure(class);
        let w = self.table.weight(class) as u128;
        if w == 0 {
            return;
        }
        // Finish tag of the served packet becomes the next start tag.
        self.start[class] += cost as u128 * VSCALE / w;
    }

    fn name(&self) -> &'static str {
        "sfq"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_proportional, service_counts};

    #[test]
    fn shares_track_weights() {
        let weights = [1, 2, 3, 4];
        let counts = service_counts(&mut Sfq::new(), &weights, 100_000, 0);
        assert_proportional(&counts, &weights, 0.001);
    }

    #[test]
    fn no_back_credit_after_idle() {
        let mut s = Sfq::new();
        let mut rng = SimRng::new(0);
        s.set_weight(0, 1);
        s.set_weight(1, 1);
        s.set_backlogged(0, true);
        for _ in 0..500 {
            assert_eq!(s.pick(&mut rng), Some(0));
            s.charge(0, 1);
        }
        s.set_backlogged(1, true);
        let mut got1 = 0;
        for _ in 0..100 {
            let c = s.pick(&mut rng).unwrap();
            s.charge(c, 1);
            if c == 1 {
                got1 += 1;
            }
        }
        assert!((40..=60).contains(&got1), "woken class took {got1}/100");
    }

    #[test]
    fn respects_byte_costs() {
        let mut s = Sfq::new();
        let mut rng = SimRng::new(0);
        s.set_weight(0, 1);
        s.set_weight(1, 1);
        s.set_backlogged(0, true);
        s.set_backlogged(1, true);
        let mut bytes = [0u64; 2];
        for _ in 0..9000 {
            let c = s.pick(&mut rng).unwrap();
            let cost = if c == 0 { 1500 } else { 64 };
            bytes[c] += cost;
            s.charge(c, cost);
        }
        let ratio = bytes[0] as f64 / bytes[1] as f64;
        assert!((ratio - 1.0).abs() < 0.05, "byte ratio {ratio}");
    }

    #[test]
    fn work_conserving_and_disable() {
        let mut s = Sfq::new();
        let mut rng = SimRng::new(0);
        assert_eq!(s.pick(&mut rng), None);
        s.set_weight(0, 2);
        s.set_backlogged(0, true);
        assert_eq!(s.pick(&mut rng), Some(0));
        s.set_weight(0, 0);
        assert_eq!(s.pick(&mut rng), None, "zero weight disables");
    }
}
