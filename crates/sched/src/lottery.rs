//! Lottery scheduling (Waldspurger & Weihl, OSDI '95) — the first
//! proportional-share mechanism the paper cites for hot/cold bandwidth
//! sharing.
//!
//! Each class holds tickets equal to its weight; every transmission slot
//! holds a lottery among backlogged classes and the winner transmits.
//! Fairness is probabilistic: over `n` slots a class with ticket share
//! `s` receives `s·n ± O(√n)` slots.

use crate::{ClassId, ClassTable, Scheduler};
use ss_netsim::SimRng;

/// A randomized proportional-share scheduler.
#[derive(Clone, Debug, Default)]
pub struct Lottery {
    table: ClassTable,
}

impl Lottery {
    /// An empty lottery scheduler.
    pub fn new() -> Self {
        Lottery::default()
    }
}

impl Scheduler for Lottery {
    fn set_weight(&mut self, class: ClassId, weight: u64) {
        self.table.set_weight(class, weight);
    }

    fn weight(&self, class: ClassId) -> u64 {
        self.table.weight(class)
    }

    fn set_backlogged(&mut self, class: ClassId, backlogged: bool) {
        self.table.set_backlogged(class, backlogged);
    }

    fn is_backlogged(&self, class: ClassId) -> bool {
        self.table.is_backlogged(class)
    }

    fn pick(&mut self, rng: &mut SimRng) -> Option<ClassId> {
        let total: u64 = self.table.eligible().map(|c| self.table.weight(c)).sum();
        if total == 0 {
            return None;
        }
        let mut ticket = rng.below(total);
        for c in self.table.eligible() {
            let w = self.table.weight(c);
            if ticket < w {
                return Some(c);
            }
            ticket -= w;
        }
        unreachable!("ticket {ticket} beyond total {total}")
    }

    fn charge(&mut self, _class: ClassId, _cost: u64) {
        // Memoryless: a lottery holds no service history.
    }

    fn name(&self) -> &'static str {
        "lottery"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_proportional, service_counts};

    #[test]
    fn shares_track_tickets() {
        let weights = [10, 30, 60];
        let counts = service_counts(&mut Lottery::new(), &weights, 100_000, 1);
        assert_proportional(&counts, &weights, 0.01);
    }

    #[test]
    fn ignores_idle_and_zero_weight() {
        let mut s = Lottery::new();
        let mut rng = SimRng::new(2);
        s.set_weight(0, 5);
        s.set_weight(1, 5);
        s.set_weight(2, 0); // zero weight, backlogged
        s.set_backlogged(0, true);
        s.set_backlogged(2, true);
        // class 1 idle, class 2 weightless: only 0 may win.
        for _ in 0..200 {
            assert_eq!(s.pick(&mut rng), Some(0));
        }
    }

    #[test]
    fn none_when_nothing_eligible() {
        let mut s = Lottery::new();
        let mut rng = SimRng::new(3);
        assert_eq!(s.pick(&mut rng), None);
        s.set_weight(0, 10);
        assert_eq!(s.pick(&mut rng), None, "weighted but idle");
        s.set_backlogged(0, true);
        assert_eq!(s.pick(&mut rng), Some(0));
        s.set_backlogged(0, false);
        assert_eq!(s.pick(&mut rng), None);
    }

    #[test]
    fn two_queue_hot_cold_split() {
        // The paper's §4 configuration: hot/cold sharing 2:1.
        let weights = [2, 1];
        let counts = service_counts(&mut Lottery::new(), &weights, 90_000, 4);
        assert_proportional(&counts, &weights, 0.01);
    }
}
