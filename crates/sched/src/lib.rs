//! # ss-sched — proportional-share link schedulers
//!
//! §4 of the paper splits the sender's data bandwidth between a "hot"
//! (new data) and a "cold" (retransmission) queue and notes that
//! "proportional sharing is preferred over strict priority scheduling
//! since it prevents starvation of cold data items", citing lottery
//! scheduling, weighted fair queueing, and stride scheduling as suitable
//! mechanisms. §6 additionally uses a hierarchical (CBQ/H-FSC-style)
//! scheduler so applications can split bandwidth across data classes.
//!
//! This crate implements all of them behind one [`Scheduler`] trait:
//!
//! * [`Lottery`] — randomized proportional share (Waldspurger & Weihl).
//! * [`Stride`] — deterministic proportional share via pass values.
//! * [`Sfq`] — start-time fair queueing (a virtual-time WFQ variant that
//!   does not need packet lengths in advance).
//! * [`Scfq`] — self-clocked (finish-time) fair queueing over real
//!   per-class packet queues, for byte-accurate sharing when lengths are
//!   known at enqueue.
//! * [`Drr`] — deficit round robin.
//! * [`StrictPriority`] — the starvation-prone baseline §4 argues against.
//! * [`Hierarchy`] — a weighted class tree (used by SSTP's
//!   application-controlled allocation).
//!
//! The abstraction is *slot-and-charge*: the link asks the scheduler which
//! backlogged class sends the next packet ([`Scheduler::pick`]), then
//! reports the packet's cost ([`Scheduler::charge`]) so byte-weighted
//! fairness holds even with mixed packet sizes.

pub mod drr;
pub mod hier;
pub mod lottery;
pub mod metered;
pub mod priority;
pub mod scfq;
pub mod sfq;
pub mod stride;

pub use drr::Drr;
pub use hier::{Hierarchy, NodeId};
pub use lottery::Lottery;
pub use metered::Metered;
pub use priority::StrictPriority;
pub use scfq::Scfq;
pub use sfq::Sfq;
pub use stride::Stride;

use ss_netsim::SimRng;

/// Identifies a traffic class (a transmission queue). Classes are small
/// dense indices assigned by the caller.
pub type ClassId = usize;

/// A work-conserving proportional-share scheduler over a fixed set of
/// classes.
///
/// Contract:
/// * [`pick`](Scheduler::pick) returns `Some(c)` for a backlogged class
///   with positive weight whenever one exists (work conservation), `None`
///   otherwise.
/// * After a pick, the caller reports the transmission's cost with
///   [`charge`](Scheduler::charge); long-run service of backlogged classes
///   is proportional to their weights.
/// * Weight 0 disables a class (it is never picked).
pub trait Scheduler {
    /// Sets (or changes) the weight of `class`. Weights are relative;
    /// only ratios matter.
    fn set_weight(&mut self, class: ClassId, weight: u64);

    /// The current weight of `class` (0 if never set).
    fn weight(&self, class: ClassId) -> u64;

    /// Declares whether `class` currently has packets to send.
    fn set_backlogged(&mut self, class: ClassId, backlogged: bool);

    /// True if `class` is currently marked backlogged.
    fn is_backlogged(&self, class: ClassId) -> bool;

    /// Chooses the class that transmits next. `rng` is only consulted by
    /// randomized policies ([`Lottery`]).
    fn pick(&mut self, rng: &mut SimRng) -> Option<ClassId>;

    /// Accounts `cost` (e.g. bytes) of service to `class` after a pick.
    fn charge(&mut self, class: ClassId, cost: u64);

    /// A short policy name for experiment output.
    fn name(&self) -> &'static str;
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn set_weight(&mut self, class: ClassId, weight: u64) {
        (**self).set_weight(class, weight)
    }
    fn weight(&self, class: ClassId) -> u64 {
        (**self).weight(class)
    }
    fn set_backlogged(&mut self, class: ClassId, backlogged: bool) {
        (**self).set_backlogged(class, backlogged)
    }
    fn is_backlogged(&self, class: ClassId) -> bool {
        (**self).is_backlogged(class)
    }
    fn pick(&mut self, rng: &mut SimRng) -> Option<ClassId> {
        (**self).pick(rng)
    }
    fn charge(&mut self, class: ClassId, cost: u64) {
        (**self).charge(class, cost)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Shared bookkeeping for flat schedulers: weights and backlog flags.
#[derive(Clone, Debug, Default)]
pub(crate) struct ClassTable {
    weights: Vec<u64>,
    backlogged: Vec<bool>,
}

impl ClassTable {
    pub(crate) fn ensure(&mut self, class: ClassId) {
        if class >= self.weights.len() {
            self.weights.resize(class + 1, 0);
            self.backlogged.resize(class + 1, false);
        }
    }

    pub(crate) fn set_weight(&mut self, class: ClassId, weight: u64) {
        self.ensure(class);
        self.weights[class] = weight;
    }

    pub(crate) fn weight(&self, class: ClassId) -> u64 {
        self.weights.get(class).copied().unwrap_or(0)
    }

    pub(crate) fn set_backlogged(&mut self, class: ClassId, b: bool) {
        self.ensure(class);
        self.backlogged[class] = b;
    }

    pub(crate) fn is_backlogged(&self, class: ClassId) -> bool {
        self.backlogged.get(class).copied().unwrap_or(false)
    }

    /// Classes eligible for service: backlogged with positive weight.
    pub(crate) fn eligible(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.weights.len()).filter(|&c| self.backlogged[c] && self.weights[c] > 0)
    }

    pub(crate) fn len(&self) -> usize {
        self.weights.len()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared statistical harness: run a scheduler with always-backlogged
    //! classes and check long-run service shares against weights.

    use super::*;

    /// Runs `n` unit-cost picks with every class always backlogged and
    /// returns per-class service counts.
    pub fn service_counts(
        sched: &mut dyn Scheduler,
        weights: &[u64],
        n: usize,
        seed: u64,
    ) -> Vec<u64> {
        let mut rng = SimRng::new(seed);
        for (c, &w) in weights.iter().enumerate() {
            sched.set_weight(c, w);
            sched.set_backlogged(c, true);
        }
        let mut counts = vec![0u64; weights.len()];
        for _ in 0..n {
            let c = sched.pick(&mut rng).expect("work conservation violated");
            counts[c] += 1;
            sched.charge(c, 1);
        }
        counts
    }

    /// Asserts service shares match weight shares within `tol` (absolute).
    pub fn assert_proportional(counts: &[u64], weights: &[u64], tol: f64) {
        let total_c: u64 = counts.iter().sum();
        let total_w: u64 = weights.iter().sum();
        for (c, (&got, &w)) in counts.iter().zip(weights).enumerate() {
            let share = got as f64 / total_c as f64;
            let want = w as f64 / total_w as f64;
            assert!(
                (share - want).abs() <= tol,
                "class {c}: share {share:.4} vs weight share {want:.4} (tol {tol})"
            );
        }
    }
}
