//! Hierarchical link sharing — the CBQ / H-FSC-style class tree §6.1 uses
//! for application-controlled bandwidth allocation (Figure 12's allocation
//! hierarchy: session → {data, feedback}, data → {hot, cold}, or arbitrary
//! per-data-class subtrees).
//!
//! Each interior node shares its bandwidth among its children in
//! proportion to their weights, using stride scheduling at every level
//! (deterministic, starvation-free). Leaves map to external [`ClassId`]s
//! so a [`Hierarchy`] can drop in anywhere a flat [`Scheduler`] is used.

use crate::{ClassId, Scheduler};
use ss_netsim::SimRng;

/// Identifies a node inside a [`Hierarchy`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

const STRIDE1: u128 = 1 << 40;

#[derive(Clone, Debug)]
struct Node {
    parent: Option<usize>,
    children: Vec<usize>,
    weight: u64,
    /// Stride pass value within the parent's competition.
    pass: u128,
    /// Virtual time at this node: pass of the child most recently served.
    vtime: u128,
    /// For leaves: the external class and its backlog flag.
    leaf: Option<(ClassId, bool)>,
}

/// A weighted class tree scheduling among leaf classes.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    nodes: Vec<Node>,
    /// Maps external class ids to leaf node indices.
    class_to_leaf: Vec<Option<usize>>,
}

impl Default for Hierarchy {
    fn default() -> Self {
        Self::new()
    }
}

impl Hierarchy {
    /// A tree containing only the root.
    pub fn new() -> Self {
        Hierarchy {
            nodes: vec![Node {
                parent: None,
                children: Vec::new(),
                weight: 1,
                pass: 0,
                vtime: 0,
                leaf: None,
            }],
            class_to_leaf: Vec::new(),
        }
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Adds an interior node under `parent` with the given share weight.
    pub fn add_interior(&mut self, parent: NodeId, weight: u64) -> NodeId {
        self.add_node(parent, weight, None)
    }

    /// Adds a leaf under `parent` carrying external class `class`.
    /// Panics if `class` is already attached to a leaf.
    pub fn add_leaf(&mut self, parent: NodeId, weight: u64, class: ClassId) -> NodeId {
        if class < self.class_to_leaf.len() {
            assert!(
                self.class_to_leaf[class].is_none(),
                "class {class} already has a leaf"
            );
        }
        let id = self.add_node(parent, weight, Some((class, false)));
        if class >= self.class_to_leaf.len() {
            self.class_to_leaf.resize(class + 1, None);
        }
        self.class_to_leaf[class] = Some(id.0);
        id
    }

    fn add_node(&mut self, parent: NodeId, weight: u64, leaf: Option<(ClassId, bool)>) -> NodeId {
        assert!(parent.0 < self.nodes.len(), "bad parent");
        assert!(
            self.nodes[parent.0].leaf.is_none(),
            "cannot add children under a leaf"
        );
        let idx = self.nodes.len();
        let parent_vtime = self.nodes[parent.0].vtime;
        self.nodes.push(Node {
            parent: Some(parent.0),
            children: Vec::new(),
            weight,
            pass: parent_vtime,
            vtime: 0,
            leaf,
        });
        self.nodes[parent.0].children.push(idx);
        NodeId(idx)
    }

    /// Changes a node's share weight directly (interior nodes included);
    /// the flat [`Scheduler::set_weight`] only reaches leaves.
    pub fn set_node_weight(&mut self, node: NodeId, weight: u64) {
        self.nodes[node.0].weight = weight;
    }

    /// A node's weight.
    pub fn node_weight(&self, node: NodeId) -> u64 {
        self.nodes[node.0].weight
    }

    fn leaf_of(&self, class: ClassId) -> Option<usize> {
        self.class_to_leaf.get(class).copied().flatten()
    }

    /// True if any leaf under `idx` is backlogged (with positive weights
    /// along the way).
    fn subtree_backlogged(&self, idx: usize) -> bool {
        let n = &self.nodes[idx];
        if n.weight == 0 {
            return false;
        }
        match n.leaf {
            Some((_, b)) => b,
            None => n.children.iter().any(|&c| self.subtree_backlogged(c)),
        }
    }

    /// Resyncs `idx`'s pass to its parent's virtual time when it wakes.
    fn resync_up(&mut self, mut idx: usize) {
        while let Some(p) = self.nodes[idx].parent {
            let pv = self.nodes[p].vtime;
            if self.nodes[idx].pass < pv {
                self.nodes[idx].pass = pv;
            }
            idx = p;
        }
    }
}

impl Scheduler for Hierarchy {
    fn set_weight(&mut self, class: ClassId, weight: u64) {
        let leaf = self
            .leaf_of(class)
            .unwrap_or_else(|| panic!("class {class} has no leaf; call add_leaf first"));
        self.nodes[leaf].weight = weight;
    }

    fn weight(&self, class: ClassId) -> u64 {
        self.leaf_of(class).map_or(0, |l| self.nodes[l].weight)
    }

    fn set_backlogged(&mut self, class: ClassId, backlogged: bool) {
        let leaf = self
            .leaf_of(class)
            .unwrap_or_else(|| panic!("class {class} has no leaf; call add_leaf first"));
        let was = match self.nodes[leaf].leaf {
            Some((_, b)) => b,
            None => unreachable!(),
        };
        if let Some((c, _)) = self.nodes[leaf].leaf {
            self.nodes[leaf].leaf = Some((c, backlogged));
        }
        if backlogged && !was {
            self.resync_up(leaf);
        }
    }

    fn is_backlogged(&self, class: ClassId) -> bool {
        self.leaf_of(class)
            .and_then(|l| self.nodes[l].leaf)
            .is_some_and(|(_, b)| b)
    }

    fn pick(&mut self, _rng: &mut SimRng) -> Option<ClassId> {
        let mut idx = 0;
        if !self.subtree_backlogged(idx) {
            return None;
        }
        loop {
            let node = &self.nodes[idx];
            if let Some((class, _)) = node.leaf {
                return Some(class);
            }
            let best = node
                .children
                .iter()
                .copied()
                .filter(|&c| self.subtree_backlogged(c))
                .min_by_key(|&c| (self.nodes[c].pass, c))?;
            self.nodes[idx].vtime = self.nodes[best].pass;
            idx = best;
        }
    }

    fn charge(&mut self, class: ClassId, cost: u64) {
        let Some(mut idx) = self.leaf_of(class) else {
            return;
        };
        // Charge the leaf and every ancestor: each level's competition
        // advances by cost scaled by that node's weight.
        loop {
            let w = self.nodes[idx].weight as u128;
            if let Some(step) = (STRIDE1 * cost as u128).checked_div(w) {
                self.nodes[idx].pass += step;
            }
            match self.nodes[idx].parent {
                Some(p) => idx = p,
                None => break,
            }
        }
    }

    fn name(&self) -> &'static str {
        "hierarchy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::assert_proportional;

    fn run(h: &mut Hierarchy, n: usize, classes: usize) -> Vec<u64> {
        let mut rng = SimRng::new(0);
        let mut counts = vec![0u64; classes];
        for _ in 0..n {
            let c = h.pick(&mut rng).expect("work conservation");
            counts[c] += 1;
            h.charge(c, 1);
        }
        counts
    }

    #[test]
    fn flat_tree_is_proportional() {
        let mut h = Hierarchy::new();
        let root = h.root();
        h.add_leaf(root, 1, 0);
        h.add_leaf(root, 2, 1);
        h.add_leaf(root, 3, 2);
        for c in 0..3 {
            h.set_backlogged(c, true);
        }
        let counts = run(&mut h, 60_000, 3);
        assert_proportional(&counts, &[1, 2, 3], 0.001);
    }

    #[test]
    fn nested_shares_multiply() {
        // root -> {data (3), feedback (1)}; data -> {hot (2), cold (1)}.
        // Expected: hot 50%, cold 25%, feedback 25%.
        let mut h = Hierarchy::new();
        let root = h.root();
        let data = h.add_interior(root, 3);
        h.add_leaf(data, 2, 0); // hot
        h.add_leaf(data, 1, 1); // cold
        h.add_leaf(root, 1, 2); // feedback
        for c in 0..3 {
            h.set_backlogged(c, true);
        }
        let counts = run(&mut h, 80_000, 3);
        let total: u64 = counts.iter().sum();
        let shares: Vec<f64> = counts.iter().map(|&c| c as f64 / total as f64).collect();
        assert!((shares[0] - 0.50).abs() < 0.002, "hot {shares:?}");
        assert!((shares[1] - 0.25).abs() < 0.002, "cold {shares:?}");
        assert!((shares[2] - 0.25).abs() < 0.002, "fb {shares:?}");
    }

    #[test]
    fn sibling_absorbs_idle_excess() {
        // The paper: "Unused excess hot bandwidth is consumed by
        // transmissions from the cold queue."
        let mut h = Hierarchy::new();
        let root = h.root();
        let data = h.add_interior(root, 1);
        h.add_leaf(data, 9, 0); // hot, idle
        h.add_leaf(data, 1, 1); // cold, backlogged
        h.set_backlogged(1, true);
        let counts = run(&mut h, 1000, 2);
        assert_eq!(counts[0], 0);
        assert_eq!(counts[1], 1000, "cold gets the whole link when hot idle");
    }

    #[test]
    fn waking_leaf_gets_no_back_credit() {
        let mut h = Hierarchy::new();
        let root = h.root();
        h.add_leaf(root, 1, 0);
        h.add_leaf(root, 1, 1);
        h.set_backlogged(0, true);
        let _ = run(&mut h, 1000, 2);
        h.set_backlogged(1, true);
        let counts = run(&mut h, 100, 2);
        assert!(
            (40..=60).contains(&(counts[1] as i64)),
            "woken leaf took {counts:?}"
        );
    }

    #[test]
    fn empty_tree_returns_none() {
        let mut h = Hierarchy::new();
        let mut rng = SimRng::new(0);
        assert_eq!(h.pick(&mut rng), None);
    }

    #[test]
    #[should_panic(expected = "already has a leaf")]
    fn duplicate_class_rejected() {
        let mut h = Hierarchy::new();
        let root = h.root();
        h.add_leaf(root, 1, 0);
        h.add_leaf(root, 1, 0);
    }

    #[test]
    #[should_panic(expected = "cannot add children under a leaf")]
    fn leaf_cannot_have_children() {
        let mut h = Hierarchy::new();
        let root = h.root();
        let leaf = h.add_leaf(root, 1, 0);
        h.add_interior(leaf, 1);
    }

    #[test]
    fn interior_reweighting_applies() {
        let mut h = Hierarchy::new();
        let root = h.root();
        let a = h.add_interior(root, 1);
        let b = h.add_interior(root, 1);
        h.add_leaf(a, 1, 0);
        h.add_leaf(b, 1, 1);
        h.set_backlogged(0, true);
        h.set_backlogged(1, true);
        h.set_node_weight(a, 3);
        assert_eq!(h.node_weight(a), 3);
        let counts = run(&mut h, 40_000, 2);
        assert_proportional(&counts, &[3, 1], 0.001);
    }
}
