//! A metering decorator for [`Scheduler`]s.
//!
//! [`Metered`] wraps any scheduler and counts, per class, how often it
//! was picked and how much cost it was charged — the raw material for
//! the scheduler-fairness metrics (`sched.<class>.picks`,
//! `sched.<class>.cost`) without touching any policy's internals. The
//! counts can be exported into an `ss-metrics` registry at the end of a
//! run with [`Metered::export_into`].

use crate::{ClassId, Scheduler};
use ss_netsim::{MetricsRegistry, SimRng, SimTime, Tracer};

/// Wraps a scheduler, counting per-class picks and charged cost.
#[derive(Debug)]
pub struct Metered<S> {
    inner: S,
    picks: Vec<u64>,
    cost: Vec<u64>,
}

impl<S: Scheduler> Metered<S> {
    /// Wraps `inner`; counters start at zero.
    pub fn new(inner: S) -> Self {
        Metered {
            inner,
            picks: Vec::new(),
            cost: Vec::new(),
        }
    }

    fn ensure(&mut self, class: ClassId) {
        if class >= self.picks.len() {
            self.picks.resize(class + 1, 0);
            self.cost.resize(class + 1, 0);
        }
    }

    /// How often `class` was picked.
    pub fn picks(&self, class: ClassId) -> u64 {
        self.picks.get(class).copied().unwrap_or(0)
    }

    /// Total cost charged to `class`.
    pub fn charged(&self, class: ClassId) -> u64 {
        self.cost.get(class).copied().unwrap_or(0)
    }

    /// The wrapped scheduler.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Like [`Scheduler::pick`], but also records the decision in
    /// `tracer` as a scheduler-lane instant labeled with the policy
    /// name and keyed by the picked class. Taking the tracer as a
    /// parameter keeps the call usable while the scheduler itself is
    /// borrowed out of a larger simulation struct.
    pub fn pick_traced(
        &mut self,
        now: SimTime,
        rng: &mut SimRng,
        tracer: &mut Tracer,
    ) -> Option<ClassId> {
        let picked = self.pick(rng);
        if let Some(class) = picked {
            tracer.decision(now, class as u64, self.inner.name());
        }
        picked
    }

    /// Exports the per-class counters into `registry` as
    /// `<prefix>.<class>.picks` / `<prefix>.<class>.cost`.
    pub fn export_into(&self, registry: &mut MetricsRegistry, prefix: &str) {
        for class in 0..self.picks.len() {
            let picks = registry.counter(&format!("{prefix}.{class}.picks"));
            registry.add(picks, self.picks[class]);
            let cost = registry.counter(&format!("{prefix}.{class}.cost"));
            registry.add(cost, self.cost[class]);
        }
    }
}

impl<S: Scheduler> Scheduler for Metered<S> {
    fn set_weight(&mut self, class: ClassId, weight: u64) {
        self.inner.set_weight(class, weight);
    }

    fn weight(&self, class: ClassId) -> u64 {
        self.inner.weight(class)
    }

    fn set_backlogged(&mut self, class: ClassId, backlogged: bool) {
        self.inner.set_backlogged(class, backlogged);
    }

    fn is_backlogged(&self, class: ClassId) -> bool {
        self.inner.is_backlogged(class)
    }

    fn pick(&mut self, rng: &mut SimRng) -> Option<ClassId> {
        let picked = self.inner.pick(rng);
        if let Some(class) = picked {
            self.ensure(class);
            self.picks[class] += 1;
        }
        picked
    }

    fn charge(&mut self, class: ClassId, cost: u64) {
        self.ensure(class);
        self.cost[class] += cost;
        self.inner.charge(class, cost);
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Stride;

    #[test]
    fn counts_picks_and_cost_transparently() {
        let mut m = Metered::new(Stride::new());
        m.set_weight(0, 3);
        m.set_weight(1, 1);
        m.set_backlogged(0, true);
        m.set_backlogged(1, true);
        let mut rng = SimRng::new(1);
        for _ in 0..400 {
            let c = m.pick(&mut rng).expect("work conserving");
            m.charge(c, 2);
        }
        assert_eq!(m.picks(0) + m.picks(1), 400);
        assert_eq!(m.charged(0), m.picks(0) * 2);
        assert_eq!(m.picks(0), 300, "stride is exact: 3:1 split");
        assert_eq!(m.name(), Stride::new().name());
    }

    #[test]
    fn boxed_scheduler_can_be_metered() {
        let inner: Box<dyn Scheduler> = Box::new(Stride::new());
        let mut m = Metered::new(inner);
        m.set_weight(0, 1);
        m.set_backlogged(0, true);
        let mut rng = SimRng::new(2);
        assert_eq!(m.pick(&mut rng), Some(0));
        m.charge(0, 5);
        assert_eq!(m.charged(0), 5);
        assert_eq!(m.picks(1), 0, "unpicked class reads zero");
    }

    #[test]
    fn pick_traced_logs_a_decision_per_pick() {
        let mut m = Metered::new(Stride::new());
        m.set_weight(0, 1);
        m.set_backlogged(0, true);
        let mut rng = SimRng::new(4);
        let mut tracer = Tracer::with_capacity(8);
        let c = m
            .pick_traced(SimTime::from_millis(3), &mut rng, &mut tracer)
            .unwrap();
        assert_eq!(m.picks(c), 1);
        assert_eq!(tracer.len(), 1);
        let ev = &tracer.events()[0];
        assert_eq!(ev.key, c as u64);
        assert_eq!(ev.label, Stride::new().name());
        // A disabled tracer records nothing but the pick still counts.
        let mut off = Tracer::disabled();
        m.pick_traced(SimTime::from_millis(4), &mut rng, &mut off)
            .unwrap();
        assert_eq!(m.picks(c), 2);
        assert!(off.is_empty());
        assert_eq!(off.dropped(), 0, "disabled tracer drops silently");
    }

    #[test]
    fn export_writes_registry_counters() {
        let mut m = Metered::new(Stride::new());
        m.set_weight(0, 1);
        m.set_backlogged(0, true);
        let mut rng = SimRng::new(3);
        let c = m.pick(&mut rng).unwrap();
        m.charge(c, 7);
        let mut reg = MetricsRegistry::new();
        m.export_into(&mut reg, "sched");
        let snap = reg.snapshot(ss_netsim::SimTime::ZERO);
        assert_eq!(snap.counter("sched.0.picks"), 1);
        assert_eq!(snap.counter("sched.0.cost"), 7);
    }
}
