//! Strict priority scheduling — the baseline §4 argues **against**:
//! "Proportional sharing is preferred over strict priority scheduling
//! since it prevents starvation of cold data items in the background
//! transmission queue."
//!
//! Included so the scheduler-ablation experiment can demonstrate that
//! starvation empirically: under strict priority with a saturated hot
//! queue, cold retransmissions never happen and late joiners never catch
//! up.

use crate::{ClassId, ClassTable, Scheduler};
use ss_netsim::SimRng;

/// Serves the lowest-numbered backlogged class with positive weight;
/// weights only gate eligibility, they do not share.
#[derive(Clone, Debug, Default)]
pub struct StrictPriority {
    table: ClassTable,
}

impl StrictPriority {
    /// An empty strict-priority scheduler (class 0 = highest priority).
    pub fn new() -> Self {
        StrictPriority::default()
    }
}

impl Scheduler for StrictPriority {
    fn set_weight(&mut self, class: ClassId, weight: u64) {
        self.table.set_weight(class, weight);
    }

    fn weight(&self, class: ClassId) -> u64 {
        self.table.weight(class)
    }

    fn set_backlogged(&mut self, class: ClassId, backlogged: bool) {
        self.table.set_backlogged(class, backlogged);
    }

    fn is_backlogged(&self, class: ClassId) -> bool {
        self.table.is_backlogged(class)
    }

    fn pick(&mut self, _rng: &mut SimRng) -> Option<ClassId> {
        self.table.eligible().next()
    }

    fn charge(&mut self, _class: ClassId, _cost: u64) {}

    fn name(&self) -> &'static str {
        "priority"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starves_lower_priority() {
        let mut s = StrictPriority::new();
        let mut rng = SimRng::new(0);
        s.set_weight(0, 1);
        s.set_weight(1, 1000); // weight is irrelevant to priority order
        s.set_backlogged(0, true);
        s.set_backlogged(1, true);
        for _ in 0..100 {
            assert_eq!(s.pick(&mut rng), Some(0));
            s.charge(0, 1);
        }
    }

    #[test]
    fn falls_through_when_high_idle() {
        let mut s = StrictPriority::new();
        let mut rng = SimRng::new(0);
        s.set_weight(0, 1);
        s.set_weight(1, 1);
        s.set_backlogged(1, true);
        assert_eq!(s.pick(&mut rng), Some(1));
        s.set_backlogged(0, true);
        assert_eq!(s.pick(&mut rng), Some(0));
    }

    #[test]
    fn zero_weight_is_ineligible() {
        let mut s = StrictPriority::new();
        let mut rng = SimRng::new(0);
        s.set_weight(0, 0);
        s.set_backlogged(0, true);
        s.set_weight(1, 1);
        s.set_backlogged(1, true);
        assert_eq!(s.pick(&mut rng), Some(1));
    }
}
