//! Property-based tests of the simulation substrate's invariants.

use proptest::prelude::*;
use ss_netsim::prelude::*;

proptest! {
    /// Events always pop in nondecreasing time order with FIFO ties,
    /// regardless of insertion order.
    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q: EventQueue<usize> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        let mut popped = 0;
        while let Some((t, idx)) = q.pop() {
            popped += 1;
            prop_assert_eq!(SimTime::from_micros(times[idx]), t, "payload/time pairing");
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt, "time order");
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO tie-break");
                }
            }
            last = Some((t, idx));
        }
        prop_assert_eq!(popped, times.len());
    }

    /// The time-weighted mean always lies within the range of observed
    /// values and matches a brute-force integral.
    #[test]
    fn time_weighted_mean_matches_bruteforce(
        steps in prop::collection::vec((1u64..1_000, 0.0f64..1.0), 1..50),
        tail in 1u64..1_000,
    ) {
        let mut m = TimeWeightedMean::new(SimTime::ZERO, 0.0);
        let mut t = 0u64;
        let mut integral = 0.0;
        let mut prev_v = 0.0;
        for &(dt, v) in &steps {
            integral += prev_v * dt as f64;
            t += dt;
            m.update(SimTime::from_micros(t), v);
            prev_v = v;
        }
        integral += prev_v * tail as f64;
        let end = t + tail;
        let want = integral / end as f64;
        let got = m.mean_until(SimTime::from_micros(end));
        prop_assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
        prop_assert!((0.0..=1.0).contains(&got));
    }

    /// Histogram quantiles are monotone, bounded by min/max, and the mean
    /// is exact.
    #[test]
    fn histogram_invariants(samples in prop::collection::vec(0u64..10_000_000, 1..300)) {
        let mut h = DurationHistogram::new();
        for &us in &samples {
            h.record(SimDuration::from_micros(us));
        }
        let true_mean = samples.iter().sum::<u64>() / samples.len() as u64;
        prop_assert_eq!(h.mean().as_micros(), true_mean);
        prop_assert_eq!(h.min().as_micros(), *samples.iter().min().unwrap());
        prop_assert_eq!(h.max().as_micros(), *samples.iter().max().unwrap());
        let mut last = SimDuration::ZERO;
        for i in 0..=10 {
            let q = h.quantile(i as f64 / 10.0);
            prop_assert!(q >= last, "quantiles monotone");
            prop_assert!(q >= h.min() && q <= h.max());
            last = q;
        }
        // Bucketed median is within 10% (relative) of the exact median.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let exact = sorted[(sorted.len() - 1) / 2] as f64;
        let approx = h.quantile(0.5).as_micros() as f64;
        prop_assert!(
            (approx - exact).abs() <= exact.max(10.0) * 0.10 + 1.0,
            "median {approx} vs exact {exact}"
        );
    }

    /// A transmitter never serves more than its rate allows: the total
    /// busy time of back-to-back submissions equals sum(bytes)/rate.
    #[test]
    fn transmitter_conserves_capacity(
        sizes in prop::collection::vec(1usize..10_000, 1..100),
        kbps in 1u64..10_000,
    ) {
        let rate = Bandwidth::from_kbps(kbps);
        let mut tx = Transmitter::new(rate);
        let mut expected = SimTime::ZERO;
        for &s in &sizes {
            let depart = tx.submit(SimTime::ZERO, s);
            expected += rate.transmit_time(s);
            prop_assert_eq!(depart, expected, "back-to-back serialization");
        }
        prop_assert_eq!(tx.bytes_sent(), sizes.iter().map(|&s| s as u64).sum::<u64>());
    }

    /// Derived RNG streams are reproducible and label-disjoint.
    #[test]
    fn rng_derivation_properties(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let root = SimRng::new(seed);
        let mut a = root.derive(&label);
        let mut b = root.derive(&label);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = root.derive(&format!("{label}x"));
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        prop_assert_ne!(va, vc);
    }

    /// Gilbert–Elliott's configured mean matches its long-run empirical
    /// loss rate for any feasible (mean, burst) pair.
    #[test]
    fn gilbert_elliott_mean_is_truthful(
        mean in 0.02f64..0.7,
        burst in 1.0f64..10.0,
        seed in any::<u64>(),
    ) {
        // Skip infeasible combos (p_gb would exceed 1).
        prop_assume!(mean * (1.0 / burst) / (1.0 - mean) <= 1.0);
        let mut ge = GilbertElliott::bursty(mean, burst);
        prop_assert!((ge.mean_loss_rate() - mean).abs() < 1e-9);
        let mut rng = SimRng::new(seed);
        let n = 60_000;
        let lost = (0..n).filter(|_| ge.is_lost(&mut rng)).count();
        let emp = lost as f64 / n as f64;
        prop_assert!((emp - mean).abs() < 0.05, "empirical {emp} vs {mean}");
    }
}

/// One step of a randomized schedule driven against both queue
/// implementations at once.
#[derive(Debug, Clone)]
enum QueueOp {
    /// Schedule an event this many microseconds after the current clock.
    Schedule(u64),
    /// Pop one event and compare against the reference model.
    Pop,
}

/// Delays spanning every wheel level *and* the far-future spill
/// (shifts past 36 bits exceed the 64^6-tick wheel horizon), plus a
/// heavy dose of zero/near-zero delays to force same-timestamp bursts.
fn queue_op() -> impl Strategy<Value = QueueOp> {
    prop_oneof![
        (0u32..44, 0u64..64).prop_map(|(shift, off)| QueueOp::Schedule((1u64 << shift) + off)),
        (0u64..4).prop_map(QueueOp::Schedule),
        Just(QueueOp::Pop),
    ]
}

proptest! {
    /// The timer-wheel queue dequeues in *exactly* the order of a
    /// reference `BinaryHeap` with `(time, seq)` keys — the structure it
    /// replaced — across random interleavings of scheduling and popping,
    /// including same-timestamp bursts and beyond-horizon overflow. This
    /// is the determinism contract that keeps committed artifacts
    /// byte-identical across the engine swap (DESIGN.md §14).
    #[test]
    fn wheel_matches_binary_heap_reference(ops in prop::collection::vec(queue_op(), 1..500)) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut q: EventQueue<u32> = EventQueue::new();
        let mut reference: BinaryHeap<Reverse<(SimTime, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = SimTime::ZERO;
        for op in ops {
            match op {
                QueueOp::Schedule(d) => {
                    let at = now.saturating_add(SimDuration::from_micros(d));
                    q.schedule(at, seq as u32);
                    reference.push(Reverse((at, seq, seq as u32)));
                    seq += 1;
                }
                QueueOp::Pop => {
                    let got = q.pop();
                    let want = reference.pop().map(|Reverse((t, _, p))| (t, p));
                    prop_assert_eq!(got, want);
                    if let Some((t, _)) = got {
                        now = t;
                    }
                    prop_assert_eq!(q.peek_time(), reference.peek().map(|Reverse((t, _, _))| *t));
                    prop_assert_eq!(q.len(), reference.len());
                }
            }
        }
        // Drain both to the end: the tails must agree too.
        loop {
            let got = q.pop();
            let want = reference.pop().map(|Reverse((t, _, p))| (t, p));
            prop_assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }
}

/// Adversarial sample sets for the sketch properties: heavy tails,
/// near-boundary powers of two, dense clusters, and extremes — the
/// shapes most likely to expose bucketing or merge bugs.
fn adversarial_samples() -> impl Strategy<Value = Vec<u64>> {
    let any_shape = prop_oneof![
        // Uniform small values (exact sub-linear buckets).
        prop::collection::vec(0u64..64, 1..300),
        // Heavy tail: exponents spread across the full u64 range.
        prop::collection::vec(
            (0u32..63, 0u64..1_000).prop_map(|(e, o)| (1u64 << e) | o),
            1..300
        ),
        // Bucket boundaries and their neighbors.
        prop::collection::vec(
            (5u32..63, prop_oneof![Just(-1i64), Just(0), Just(1)])
                .prop_map(|(e, d)| (1u64 << e).wrapping_add_signed(d)),
            1..300
        ),
        // Dense cluster around one magnitude.
        (10u64..1 << 40, prop::collection::vec(0u64..100, 1..300))
            .prop_map(|(base, ds)| ds.into_iter().map(|d| base + d).collect::<Vec<_>>()),
        // Extremes, including u64::MAX.
        prop::collection::vec(prop_oneof![Just(0u64), Just(1), Just(u64::MAX)], 1..100),
    ];
    any_shape
}

proptest! {
    /// Merging per-worker shards in **any order** yields byte-identical
    /// serialized state — the property the parallel sweep's determinism
    /// rests on (sketches from workers merge in whatever order the
    /// reassembly loop visits them).
    #[test]
    fn sketch_merge_is_order_independent(
        samples in adversarial_samples(),
        shards in 1usize..8,
        perm_seed in 0u64..1_000,
    ) {
        // Bulk reference: every sample recorded into one sketch.
        let mut bulk = QuantileSketch::new();
        for &v in &samples {
            bulk.record(v);
        }
        // Shard round-robin, then merge in a permuted order.
        let mut parts = vec![QuantileSketch::new(); shards];
        for (i, &v) in samples.iter().enumerate() {
            parts[i % shards].record(v);
        }
        let mut order: Vec<usize> = (0..shards).collect();
        // Deterministic Fisher-Yates driven by the seed parameter.
        let mut state = perm_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let mut merged = QuantileSketch::new();
        for &s in &order {
            merged.merge(&parts[s]);
        }
        prop_assert_eq!(merged.serialize(), bulk.serialize());
        prop_assert_eq!(merged.count(), samples.len() as u64);
    }

    /// Sketch quantiles agree with exact rank-based quantiles within the
    /// documented relative error (doubled: one bucket width of slack on
    /// each side of the rank walk) on adversarial distributions.
    #[test]
    fn sketch_quantiles_match_exact_within_relative_error(samples in adversarial_samples()) {
        let mut sk = QuantileSketch::new();
        for &v in &samples {
            sk.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let got = sk.quantile(q) as f64;
            // Same rank convention as the sketch: the ceil(q*n)-th
            // smallest sample, 1-indexed, clamped to [1, n].
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1] as f64;
            let tol = 2.0 * QuantileSketch::RELATIVE_ERROR * exact + 1.0;
            prop_assert!(
                (got - exact).abs() <= tol,
                "q={q}: got {got}, exact {exact}, tol {tol}"
            );
            prop_assert!(got >= sk.min() as f64 && got <= sk.max() as f64);
        }
        // Memory stays bounded regardless of the distribution (the 2x
        // slack covers Vec's amortized capacity-doubling growth; same
        // bound the sketch's own memory_stays_bounded test pins).
        prop_assert!(sk.heap_bytes() <= 2 * QuantileSketch::MAX_BUCKETS * 8);
    }
}
