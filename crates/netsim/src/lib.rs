//! # ss-netsim — deterministic discrete-event network simulation substrate
//!
//! The SIGCOMM '99 soft-state paper evaluates its protocols on a
//! single-sender/single-receiver simulator with a lossy, rate-limited
//! channel. This crate is that simulator, rebuilt from scratch:
//!
//! * [`time`] — integer-microsecond virtual clock ([`SimTime`],
//!   [`SimDuration`]).
//! * [`units`] — [`Bandwidth`] in bits/s, with exact serialization delays.
//! * [`engine`] — the event queue and run loop ([`EventQueue`], [`World`]).
//! * [`wheel`] — the hierarchical timing wheel backing the event queue
//!   ([`wheel::TimerWheel`]); DESIGN.md §14 covers its geometry and
//!   determinism contract.
//! * [`arena`] — generational-index arenas for per-record protocol state
//!   ([`arena::Arena`]), replacing per-record map allocations in the hot
//!   loop.
//! * [`rng`] — seeded, name-derivable random streams ([`SimRng`]) so
//!   protocol variants can be compared on identical workloads.
//! * [`loss`] — Bernoulli, Gilbert–Elliott, and scripted loss processes,
//!   plus the plain-data [`LossSpec`] they are built from.
//! * [`link`] — FIFO transmitters and lossy channels ([`Transmitter`],
//!   [`Channel`]).
//! * [`faults`] — `ss-chaos`: deterministic fault-injection schedules
//!   (partitions, loss overrides, bandwidth degradation, endpoint
//!   crashes) on the virtual clock ([`FaultSpec`], [`FaultSchedule`]).
//! * [`stats`] — exact time-weighted averages, Welford accumulators,
//!   latency histograms, and time-series recorders for the paper's metrics.
//! * [`metrics`] — `ss-metrics`: a deterministic registry of named
//!   counters/gauges/histograms/time-averages plus a typed event log,
//!   with JSONL export ([`MetricsRegistry`], [`EventLog`]).
//! * [`trace`] — `ss-trace`: causal record-lifecycle tracing with
//!   virtual-time spans, Perfetto/JSONL exporters, and trace-derived
//!   metric recomputation ([`Tracer`], [`LifecycleAnalysis`]).
//! * [`profile`] — `ss-profile`: deterministic hierarchical phase
//!   profiling ([`ProfileReport`]); exact per-phase event tallies with
//!   wall time quarantined from committed artifacts (DESIGN.md §15).
//! * [`par`] — the deterministic fan-out executor for sweeps of
//!   independent runs ([`par::sweep`]): results reassemble in index
//!   order, so artifacts are byte-identical at any worker count.
//!
//! Each simulation run is single-threaded and fully deterministic given a
//! seed: two runs with the same seed produce identical event sequences,
//! which is what lets the experiment harness regenerate every figure
//! reproducibly. Sweeps of independent runs fan out across worker
//! threads through [`par`] without weakening that guarantee, because
//! every sweep point owns its seed and its results are reassembled in
//! index order.
//!
//! ## Example
//!
//! ```
//! use ss_netsim::prelude::*;
//!
//! // A 128 kbps channel losing 10% of packets, 50 ms propagation delay.
//! let mut ch = Channel::new(
//!     Bandwidth::from_kbps(128),
//!     SimDuration::from_millis(50),
//!     Box::new(Bernoulli::new(0.1)),
//!     SimRng::new(42),
//! );
//! let d = ch.send(SimTime::ZERO, 1000);
//! assert_eq!(d.departs, SimTime::from_micros(62_500));
//! ```

#![deny(missing_docs)]

pub mod arena;
pub mod engine;
pub mod faults;
pub mod link;
pub mod loss;
pub mod metrics;
pub mod par;
pub mod profile;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;
pub mod units;
pub mod wheel;

pub use arena::{Arena, Handle};
pub use engine::{
    run_to_completion, run_until, run_until_profiled, run_until_traced, EventQueue, TracedWorld,
    World,
};
pub use faults::{
    EpisodeSpec, FaultDir, FaultKind, FaultSchedule, FaultSpec, Perturbation, RealPathFaults,
};
pub use link::{Channel, Delivery, Transmitter};
pub use loss::{BatchedBernoulli, Bernoulli, GilbertElliott, LossModel, LossSpec, Pattern};
pub use metrics::{
    AverageId, CounterId, EventKind, EventLog, EventRecord, GaugeId, HistogramId, HistogramSummary,
    MetricValue, MetricsRegistry, MetricsSnapshot, QuantileSketch, QueueClass, SketchId,
    SketchSummary, WindowedTimeAverage, ARTIFACT_SCHEMA_VERSION,
};
pub use profile::{PhaseEntry, ProfileReport};
pub use rng::SimRng;
pub use stats::{DurationHistogram, TimeSeries, TimeWeightedMean, Welford};
pub use time::{Clock, ManualClock, SimDuration, SimTime};
pub use trace::{Actor, LifecycleAnalysis, TraceEvent, TraceId, TraceKind, Tracer};
pub use units::Bandwidth;

/// Convenient glob import for simulations.
pub mod prelude {
    pub use crate::engine::{
        run_to_completion, run_until, run_until_profiled, run_until_traced, EventQueue,
        TracedWorld, World,
    };
    pub use crate::faults::{
        EpisodeSpec, FaultDir, FaultKind, FaultSchedule, FaultSpec, Perturbation,
    };
    pub use crate::link::{Channel, Delivery, Transmitter};
    pub use crate::loss::{
        BatchedBernoulli, Bernoulli, GilbertElliott, LossModel, LossSpec, Pattern,
    };
    pub use crate::metrics::{
        AverageId, CounterId, EventKind, EventLog, EventRecord, GaugeId, HistogramId,
        HistogramSummary, MetricValue, MetricsRegistry, MetricsSnapshot, QuantileSketch,
        QueueClass, SketchId, SketchSummary, WindowedTimeAverage, ARTIFACT_SCHEMA_VERSION,
    };
    pub use crate::rng::SimRng;
    pub use crate::stats::{DurationHistogram, TimeSeries, TimeWeightedMean, Welford};
    pub use crate::time::{Clock, ManualClock, SimDuration, SimTime};
    pub use crate::trace::{Actor, LifecycleAnalysis, TraceEvent, TraceId, TraceKind, Tracer};
    pub use crate::units::Bandwidth;
}
