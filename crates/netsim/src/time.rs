//! Virtual time for the discrete-event simulator.
//!
//! All simulation time is integer **microseconds** held in a [`SimTime`]
//! (an instant) or a [`SimDuration`] (a span). Integer time makes event
//! ordering exact and runs reproducible across platforms; microsecond
//! resolution is far below any timescale in the paper (refresh intervals
//! are tens of milliseconds to seconds).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from whole milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Builds an instant from fractional seconds, rounding to the nearest
    /// microsecond. Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time {s}");
        SimTime((s * 1e6).round() as u64)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (lossy for very large times).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Span from `earlier` to `self`; saturates to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Span from `earlier` to `self`. Panics if `earlier > self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "time went backwards: {earlier} > {self}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a span from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a span from fractional seconds, rounding to the nearest
    /// microsecond. Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Whole microseconds in this span.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the span by a non-negative factor, rounding to the nearest
    /// microsecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k.is_finite() && k >= 0.0, "invalid scale {k}");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

/// A read-only source of simulated time.
///
/// The protocol state machines (`sstp::SstpSender`/`SstpReceiver`, the
/// core protocol engines) never read a clock directly: time only enters
/// them through event payloads, and whatever *drives* them — the
/// discrete-event engine, the exhaustive explorer in `ss-verify`, or a
/// future async transport — owns a `Clock`. That seam is what makes the
/// machines pure `step(state, event) -> effects` functions, exhaustively
/// checkable by `ss-verify` and reusable under a real runtime.
pub trait Clock {
    /// The current simulated instant.
    fn now(&self) -> SimTime;
}

/// A [`Clock`] that only moves when told to — the driver for pure state
/// machines in tests and in the `ss-verify` explorer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ManualClock {
    now: SimTime,
}

impl ManualClock {
    /// A clock at the epoch.
    pub const fn new() -> Self {
        ManualClock { now: SimTime::ZERO }
    }

    /// A clock frozen at `t`.
    pub const fn at(t: SimTime) -> Self {
        ManualClock { now: t }
    }

    /// Advances the clock by `d`.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Jumps to an absolute instant. Panics if time would run backwards.
    pub fn set(&mut self, t: SimTime) {
        assert!(t >= self.now, "clock cannot run backwards");
        self.now = t;
    }
}

impl Clock for ManualClock {
    fn now(&self) -> SimTime {
        self.now
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(3).as_micros(), 3);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimTime::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_micros(), 250_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!((t + d).as_micros(), 14_000_000);
        assert_eq!((t - d).as_micros(), 6_000_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 2, SimDuration::from_secs(2));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(2));
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_panics_backwards() {
        let _ = SimTime::from_secs(1).since(SimTime::from_secs(2));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::ZERO < SimTime::MAX);
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }

    #[test]
    fn saturating_add_caps() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }
}
