//! `ss-trace`: deterministic causal record-lifecycle tracing.
//!
//! The paper's metrics — per-key consistency `c(k,t)`, receive latency
//! `T_rec`, wasted retransmission bandwidth (§2.1, §3) — are *lifecycle*
//! properties of a record as it flows publisher → scheduler → lossy
//! channel → replica → expiry. The `ss-metrics` registry reports them as
//! scalar aggregates; this module records the underlying causal history:
//! a flat, append-only log of [`TraceEvent`]s keyed to [`SimTime`], each
//! carrying a parent pointer so chains like *NACK → promotion →
//! retransmit → install* are explicit edges rather than timestamps the
//! reader has to correlate by eye.
//!
//! # Model
//!
//! * **Identity.** Every recorded event gets a [`TraceId`] equal to its
//!   1-based position in the log; `TraceId::NONE` (0) means "no parent".
//!   Ids are dense and assigned in dispatch order, so the log is its own
//!   topological sort: a parent always precedes its children.
//! * **Spans and instants.** An event with an `end` time is a span on
//!   the virtual timeline (a record's lifetime, a packet's serialization
//!   on the wire); one without is an instant (a loss, a NACK, a
//!   scheduling decision).
//! * **Actors.** Each event belongs to an [`Actor`] — publisher, hot or
//!   cold announcement server, channel, per-receiver replica, scheduler,
//!   engine. Exported Chrome traces render one "thread" per actor with
//!   virtual time as the timeline.
//! * **Roots.** A record's *birth* opens a root span for its key; later
//!   lifecycle events default to parenting under that root, and *death*
//!   closes it. Cross-actor edges (e.g. a delivery caused by a specific
//!   transmission) pass an explicit parent id instead.
//!
//! # Determinism
//!
//! Tracing is pure observation: it consumes no randomness and schedules
//! nothing, so enabling it cannot perturb a run (the same invariant the
//! typed [`crate::metrics::EventLog`] relies on). Retention is a
//! **first-N prefix** — once `capacity` events are kept, later ones are
//! counted in [`Tracer::dropped`] but not stored — never a ring, because
//! a ring's contents depend on how the run *ends* rather than how it
//! *begins* and make prefix comparisons between runs meaningless. All
//! state lives in `Vec`s and `BTreeMap`s (ss-lint D002) and every
//! timestamp is sim time (D001), so exports are byte-identical across
//! double runs and sweep-worker counts.
//!
//! A disabled tracer ([`Tracer::disabled`], capacity 0) records nothing
//! and costs one branch per call, like the old `Trace` ring it replaces.

#![deny(missing_docs)]

mod analysis;
mod export;

pub use analysis::{CSample, InconsistencyInterval, LifecycleAnalysis};

use crate::time::SimTime;
use std::collections::BTreeMap;

/// Identity of one traced event: its 1-based position in the log.
///
/// `TraceId::NONE` (the `Default`) is the null id, used for events with
/// no parent and returned by recording calls when tracing is disabled or
/// the capacity prefix is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceId(u64);

impl TraceId {
    /// The null id: no event, no parent.
    pub const NONE: TraceId = TraceId(0);

    /// True when this id names a recorded event.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }

    /// The raw 1-based id (0 for [`TraceId::NONE`]).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The log index of this id, if it names a recorded event.
    fn index(self) -> Option<usize> {
        (self.0 as usize).checked_sub(1)
    }
}

/// The simulated component an event belongs to.
///
/// Exported Chrome traces render one named "thread" per actor; the
/// variants cover every component of the core protocol models and the
/// SSTP session (which has one replica and one feedback lane per
/// receiver index).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Actor {
    /// The event-loop itself (per-dispatch spans).
    Engine,
    /// The publisher's record table (births, updates, expiries).
    Publisher,
    /// The bandwidth scheduler (pick/allocation decisions).
    Scheduler,
    /// The hot (new/changed data) announcement server.
    HotServer,
    /// The cold (background refresh) announcement server.
    ColdServer,
    /// The lossy channel (losses happen here).
    Channel,
    /// The feedback channel carrying NACKs/queries back to the sender.
    FeedbackServer,
    /// Receiver `i`'s replica table (installs, expiries).
    Replica(u32),
    /// Receiver `i`'s feedback generator (NACK/query/report tx).
    Feedback(u32),
    /// The fault-injection engine (`ss-chaos` episode spans).
    FaultInjector,
}

impl Actor {
    /// Stable "thread id" for the Chrome trace export. Fixed actors take
    /// small ids; per-receiver actors interleave from 10 up so receiver
    /// `i`'s replica and feedback lanes sit next to each other.
    pub fn tid(self) -> u64 {
        match self {
            Actor::Engine => 0,
            Actor::Publisher => 1,
            Actor::Scheduler => 2,
            Actor::HotServer => 3,
            Actor::ColdServer => 4,
            Actor::Channel => 5,
            Actor::FeedbackServer => 6,
            Actor::FaultInjector => 7,
            Actor::Replica(i) => 10 + 2 * i as u64,
            Actor::Feedback(i) => 11 + 2 * i as u64,
        }
    }

    /// Human-readable actor name for exports.
    pub fn name(self) -> String {
        match self {
            Actor::Engine => "engine".into(),
            Actor::Publisher => "publisher".into(),
            Actor::Scheduler => "scheduler".into(),
            Actor::HotServer => "hot-server".into(),
            Actor::ColdServer => "cold-server".into(),
            Actor::Channel => "channel".into(),
            Actor::FeedbackServer => "feedback-server".into(),
            Actor::FaultInjector => "fault-injector".into(),
            Actor::Replica(i) => format!("replica-{i}"),
            Actor::Feedback(i) => format!("feedback-{i}"),
        }
    }
}

/// What kind of lifecycle step an event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceKind {
    /// A record entered the publisher's table (opens the root span).
    Birth,
    /// The record's value was superseded in place.
    Update,
    /// An announcement transmission (span: serialization on the wire).
    Announce,
    /// A summary/digest transmission.
    Summary,
    /// A transmission reached a replica and installed (I → C).
    Deliver,
    /// The channel lost a transmission.
    Drop,
    /// The record's lifetime ended (closes the root span).
    Expire,
    /// A receiver generated a NACK.
    Nack,
    /// The sender promoted a key to the hot queue.
    Promote,
    /// A served hot record aged into the cold queue.
    Demote,
    /// A receiver asked for a repair digest.
    Query,
    /// A receiver loss report.
    Report,
    /// The engine dispatched one queued event.
    Dispatch,
    /// The scheduler picked a queue to serve.
    Decision,
    /// A fault episode was active (span: the episode window).
    Fault,
}

impl TraceKind {
    /// Stable lowercase label for exports.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::Birth => "birth",
            TraceKind::Update => "update",
            TraceKind::Announce => "announce",
            TraceKind::Summary => "summary",
            TraceKind::Deliver => "deliver",
            TraceKind::Drop => "drop",
            TraceKind::Expire => "expire",
            TraceKind::Nack => "nack",
            TraceKind::Promote => "promote",
            TraceKind::Demote => "demote",
            TraceKind::Query => "query",
            TraceKind::Report => "report",
            TraceKind::Dispatch => "dispatch",
            TraceKind::Decision => "decision",
            TraceKind::Fault => "fault",
        }
    }
}

/// One causally-linked trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// This event's id (equals its 1-based log position).
    pub id: TraceId,
    /// Causal parent, or [`TraceId::NONE`].
    pub parent: TraceId,
    /// Virtual start time.
    pub at: SimTime,
    /// Virtual end time — `Some` makes this a span, `None` an instant.
    pub end: Option<SimTime>,
    /// The component this event happened on.
    pub actor: Actor,
    /// Lifecycle step.
    pub kind: TraceKind,
    /// The record key involved (0 when not key-scoped).
    pub key: u64,
    /// Free-form static label (event name, scheduler name, queue class).
    pub label: &'static str,
}

/// The causal trace of one simulation run.
///
/// Records [`TraceEvent`]s with first-N-prefix retention and tracks one
/// open *root span* per live key so lifecycle events can default their
/// parent to the record's birth. See the module docs for the model.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
    roots: BTreeMap<u64, TraceId>,
}

impl Tracer {
    /// A disabled tracer: records nothing, costs one branch per call.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// A tracer retaining the first `capacity` events of the run.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            events: Vec::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
            roots: BTreeMap::new(),
        }
    }

    /// True when this tracer records events.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Appends one event, honoring the prefix bound. Returns the new id,
    /// or [`TraceId::NONE`] when disabled or full.
    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        parent: TraceId,
        at: SimTime,
        end: Option<SimTime>,
        actor: Actor,
        kind: TraceKind,
        key: u64,
        label: &'static str,
    ) -> TraceId {
        if self.capacity == 0 {
            return TraceId::NONE;
        }
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return TraceId::NONE;
        }
        let id = TraceId(self.events.len() as u64 + 1);
        self.events.push(TraceEvent {
            id,
            parent,
            at,
            end,
            actor,
            kind,
            key,
            label,
        });
        id
    }

    /// A record is born: opens the root span for `key` on `actor`.
    pub fn birth(&mut self, at: SimTime, actor: Actor, key: u64) -> TraceId {
        if self.capacity == 0 {
            return TraceId::NONE;
        }
        let id = self.push(TraceId::NONE, at, None, actor, TraceKind::Birth, key, "");
        if id.is_some() {
            self.roots.insert(key, id);
        }
        id
    }

    /// A record died: closes `key`'s root span and logs an `Expire`
    /// instant under it.
    pub fn death(&mut self, at: SimTime, actor: Actor, key: u64) {
        if self.capacity == 0 {
            return;
        }
        let root = self.roots.remove(&key).unwrap_or(TraceId::NONE);
        self.close(root, at);
        self.push(root, at, None, actor, TraceKind::Expire, key, "");
    }

    /// The open root span for `key`, or [`TraceId::NONE`].
    pub fn root(&self, key: u64) -> TraceId {
        self.roots.get(&key).copied().unwrap_or(TraceId::NONE)
    }

    /// Logs an instant parented under `key`'s root span.
    pub fn instant(&mut self, at: SimTime, actor: Actor, kind: TraceKind, key: u64) -> TraceId {
        let parent = self.root(key);
        self.push(parent, at, None, actor, kind, key, "")
    }

    /// Logs an instant with an explicit causal parent.
    pub fn instant_under(
        &mut self,
        at: SimTime,
        actor: Actor,
        kind: TraceKind,
        key: u64,
        parent: TraceId,
    ) -> TraceId {
        self.push(parent, at, None, actor, kind, key, "")
    }

    /// Logs a labeled instant with an explicit causal parent.
    pub fn instant_labeled(
        &mut self,
        at: SimTime,
        actor: Actor,
        kind: TraceKind,
        key: u64,
        parent: TraceId,
        label: &'static str,
    ) -> TraceId {
        self.push(parent, at, None, actor, kind, key, label)
    }

    /// Logs a closed span `[at, end]` parented under `key`'s root span.
    pub fn span(
        &mut self,
        at: SimTime,
        end: SimTime,
        actor: Actor,
        kind: TraceKind,
        key: u64,
    ) -> TraceId {
        let parent = self.root(key);
        self.push(parent, at, Some(end), actor, kind, key, "")
    }

    /// Logs a closed span with an explicit causal parent.
    #[allow(clippy::too_many_arguments)]
    pub fn span_under(
        &mut self,
        at: SimTime,
        end: SimTime,
        actor: Actor,
        kind: TraceKind,
        key: u64,
        parent: TraceId,
    ) -> TraceId {
        self.push(parent, at, Some(end), actor, kind, key, "")
    }

    /// Logs an unparented span with a static label (fault episodes).
    pub fn span_labeled(
        &mut self,
        at: SimTime,
        end: SimTime,
        actor: Actor,
        kind: TraceKind,
        key: u64,
        label: &'static str,
    ) -> TraceId {
        self.push(TraceId::NONE, at, Some(end), actor, kind, key, label)
    }

    /// Logs one engine dispatch as a zero-width span on the
    /// [`Actor::Engine`] lane. Event handling consumes no virtual time
    /// (the clock only advances when the queue pops), so the span's
    /// width is structural, not temporal.
    pub fn dispatch(&mut self, at: SimTime, label: &'static str) {
        self.push(
            TraceId::NONE,
            at,
            Some(at),
            Actor::Engine,
            TraceKind::Dispatch,
            0,
            label,
        );
    }

    /// Logs a scheduling decision: the scheduler (named by `label`)
    /// picked queue class `key` to serve.
    pub fn decision(&mut self, at: SimTime, key: u64, label: &'static str) {
        self.push(
            TraceId::NONE,
            at,
            None,
            Actor::Scheduler,
            TraceKind::Decision,
            key,
            label,
        );
    }

    /// Closes an open span at `end` (no-op for [`TraceId::NONE`], for
    /// dropped events, and for already-closed spans).
    pub fn close(&mut self, id: TraceId, end: SimTime) {
        if self.capacity == 0 {
            return;
        }
        if let Some(ev) = id.index().and_then(|i| self.events.get_mut(i)) {
            if ev.end.is_none() {
                ev.end = Some(end);
            }
        }
    }

    /// Ends the run at `end`: every still-open root span is closed (the
    /// record outlived the observation window, not its lifetime).
    pub fn finish(&mut self, end: SimTime) {
        if self.capacity == 0 {
            return;
        }
        let open: Vec<TraceId> = self.roots.values().copied().collect();
        for id in open {
            self.close(id, end);
        }
        self.roots.clear();
    }

    /// The recorded events, in id order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Recorded events of one kind, in id order.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events that arrived after the prefix bound filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        let id = t.birth(SimTime::ZERO, Actor::Publisher, 1);
        assert_eq!(id, TraceId::NONE);
        t.death(SimTime::from_secs(1), Actor::Publisher, 1);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn prefix_retention_keeps_first_n() {
        let mut t = Tracer::with_capacity(2);
        for i in 0..5 {
            t.instant(SimTime::from_secs(i), Actor::Channel, TraceKind::Drop, i);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        // The kept prefix is the *first* two events, and ids are dense.
        assert_eq!(t.events()[0].key, 0);
        assert_eq!(t.events()[1].key, 1);
        assert_eq!(t.events()[1].id, TraceId(2));
    }

    #[test]
    fn birth_roots_parent_lifecycle_events() {
        let mut t = Tracer::with_capacity(16);
        let root = t.birth(SimTime::ZERO, Actor::Publisher, 7);
        let tx = t.span(
            SimTime::from_secs(1),
            SimTime::from_secs(2),
            Actor::HotServer,
            TraceKind::Announce,
            7,
        );
        let deliver = t.instant_under(
            SimTime::from_secs(2),
            Actor::Replica(0),
            TraceKind::Deliver,
            7,
            tx,
        );
        t.death(SimTime::from_secs(5), Actor::Publisher, 7);
        let evs = t.events();
        assert_eq!(evs[tx.index().unwrap()].parent, root);
        assert_eq!(evs[deliver.index().unwrap()].parent, tx);
        // Death closed the root span and logged an Expire under it.
        assert_eq!(evs[root.index().unwrap()].end, Some(SimTime::from_secs(5)));
        let expire = evs.last().unwrap();
        assert_eq!(expire.kind, TraceKind::Expire);
        assert_eq!(expire.parent, root);
        assert_eq!(t.root(7), TraceId::NONE);
    }

    #[test]
    fn finish_closes_open_roots() {
        let mut t = Tracer::with_capacity(16);
        let a = t.birth(SimTime::ZERO, Actor::Publisher, 1);
        let b = t.birth(SimTime::from_secs(1), Actor::Publisher, 2);
        t.finish(SimTime::from_secs(9));
        assert_eq!(
            t.events()[a.index().unwrap()].end,
            Some(SimTime::from_secs(9))
        );
        assert_eq!(
            t.events()[b.index().unwrap()].end,
            Some(SimTime::from_secs(9))
        );
        assert_eq!(t.root(1), TraceId::NONE);
    }

    #[test]
    fn ids_are_dense_and_topological() {
        let mut t = Tracer::with_capacity(8);
        t.birth(SimTime::ZERO, Actor::Publisher, 1);
        t.instant(SimTime::from_secs(1), Actor::Channel, TraceKind::Drop, 1);
        t.dispatch(SimTime::from_secs(1), "service-done");
        for (i, e) in t.events().iter().enumerate() {
            assert_eq!(e.id.raw(), i as u64 + 1);
            assert!(e.parent < e.id, "parent must precede child");
        }
    }
}
