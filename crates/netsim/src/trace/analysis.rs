//! Derived analysis: recomputing the paper's lifecycle metrics from the
//! causal trace alone.
//!
//! [`LifecycleAnalysis`] replays a [`Tracer`]'s Birth / Deliver / Update
//! / Expire events through the same state machine the protocols'
//! live-set bookkeeping runs (`LiveJobs` in `ss-core`): per key, a
//! record is *inconsistent* from birth (and from each update) until the
//! next delivery, and leaves the system at expiry. From that replay it
//! rebuilds:
//!
//! * the `T_rec` distribution — birth to delivery, one sample per
//!   recovering (I → C) delivery;
//! * every per-key inconsistency interval (birth→deliver,
//!   update→deliver, and the terminal birth/update→expiry-or-end ones);
//! * the exact sequence of `(live, consistent)` sample points the
//!   live-set emits to its windowed time averages.
//!
//! Because both layers observe the identical event sequence at identical
//! sim times, the recomputation matches the `ss-metrics` registry
//! **exactly** — integer-for-integer on counters and histograms,
//! bit-for-bit on replayed time averages — which is what the
//! cross-check tests assert. The two observability layers verify each
//! other: a drift in either one breaks the equality.

use super::{TraceKind, Tracer};
use crate::metrics::WindowedTimeAverage;
use crate::stats::DurationHistogram;
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// A maximal interval during which a key's replica was stale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InconsistencyInterval {
    /// The record key.
    pub key: u64,
    /// When the key became inconsistent (birth or update).
    pub from: SimTime,
    /// When it recovered (delivery) or left observation (expiry/end).
    pub to: SimTime,
    /// True when the interval ended in a delivery; false when the record
    /// died (or the run ended) still inconsistent.
    pub recovered: bool,
}

/// One consistency sample point, mirroring the live-set's `observe`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CSample {
    /// Sample time.
    pub at: SimTime,
    /// Live records after the transition.
    pub live: u64,
    /// Consistent records after the transition.
    pub consistent: u64,
}

impl CSample {
    /// The system consistency `c(t)` at this sample: the consistent
    /// fraction of the live set, `0.0` when the set is empty (the same
    /// convention the live-set bookkeeping samples).
    pub fn c(self) -> f64 {
        if self.live == 0 {
            0.0
        } else {
            self.consistent as f64 / self.live as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct KeyState {
    born: SimTime,
    inconsistent_since: SimTime,
    consistent: bool,
}

/// Lifecycle metrics recomputed from a causal trace alone.
#[derive(Clone, Debug, Default)]
pub struct LifecycleAnalysis {
    /// Birth→delivery latencies, the paper's `T_rec`: one sample per
    /// recovering (I → C) delivery, measured from the record's birth —
    /// the exact convention of the registry's `latency.t_rec`.
    pub t_rec: DurationHistogram,
    /// Every per-key inconsistency interval, in close order.
    pub intervals: Vec<InconsistencyInterval>,
    /// Consistency sample points in event order (one per lifecycle
    /// transition the live set observes).
    pub samples: Vec<CSample>,
    /// Birth events seen (`records.arrivals`).
    pub births: u64,
    /// Recovering (I → C) delivery transitions seen
    /// (`records.delivered`).
    pub deliveries: u64,
    /// Expire events seen (`records.deaths`).
    pub expiries: u64,
    /// Update events seen (`records.updates`).
    pub updates: u64,
}

impl LifecycleAnalysis {
    /// Replays `tracer`'s lifecycle events. `end` closes the terminal
    /// inconsistency interval of keys still stale when observation
    /// stopped. The replay is only exact when the tracer dropped nothing
    /// ([`Tracer::dropped`] == 0); cross-check tests assert that first.
    pub fn from_tracer(tracer: &Tracer, end: SimTime) -> Self {
        let mut a = LifecycleAnalysis::default();
        let mut keys: BTreeMap<u64, KeyState> = BTreeMap::new();
        let mut consistent: u64 = 0;
        for e in tracer.events() {
            match e.kind {
                TraceKind::Birth => {
                    if keys.contains_key(&e.key) {
                        continue;
                    }
                    keys.insert(
                        e.key,
                        KeyState {
                            born: e.at,
                            inconsistent_since: e.at,
                            consistent: false,
                        },
                    );
                    a.births += 1;
                    a.sample(e.at, keys.len() as u64, consistent);
                }
                TraceKind::Deliver => {
                    let Some(k) = keys.get_mut(&e.key) else {
                        continue;
                    };
                    if k.consistent {
                        continue;
                    }
                    k.consistent = true;
                    consistent += 1;
                    a.deliveries += 1;
                    a.t_rec.record(e.at.since(k.born));
                    a.intervals.push(InconsistencyInterval {
                        key: e.key,
                        from: k.inconsistent_since,
                        to: e.at,
                        recovered: true,
                    });
                    a.sample(e.at, keys.len() as u64, consistent);
                }
                TraceKind::Update => {
                    let Some(k) = keys.get_mut(&e.key) else {
                        continue;
                    };
                    a.updates += 1;
                    if k.consistent {
                        k.consistent = false;
                        k.inconsistent_since = e.at;
                        consistent -= 1;
                        a.sample(e.at, keys.len() as u64, consistent);
                    }
                }
                TraceKind::Expire => {
                    let Some(k) = keys.remove(&e.key) else {
                        continue;
                    };
                    if k.consistent {
                        consistent -= 1;
                    } else {
                        a.intervals.push(InconsistencyInterval {
                            key: e.key,
                            from: k.inconsistent_since,
                            to: e.at,
                            recovered: false,
                        });
                    }
                    a.expiries += 1;
                    a.sample(e.at, keys.len() as u64, consistent);
                }
                _ => {}
            }
        }
        // Keys still live and stale at the end of observation.
        for (key, k) in &keys {
            if !k.consistent {
                a.intervals.push(InconsistencyInterval {
                    key: *key,
                    from: k.inconsistent_since,
                    to: end,
                    recovered: false,
                });
            }
        }
        a
    }

    fn sample(&mut self, at: SimTime, live: u64, consistent: u64) {
        self.samples.push(CSample {
            at,
            live,
            consistent,
        });
    }

    /// Replays the consistency samples through a fresh
    /// [`WindowedTimeAverage`] configured like the registry's
    /// `consistency.c_t` (start `start`, initial value 0, window width
    /// `window`) and returns its overall mean at `end`. The float
    /// operation sequence is identical to the live one, so the result is
    /// bit-exact, not approximately equal.
    pub fn replay_c_t(&self, start: SimTime, window: SimDuration, end: SimTime) -> f64 {
        let mut avg = WindowedTimeAverage::windowed(start, 0.0, window);
        for s in &self.samples {
            avg.update(s.at, s.c());
        }
        avg.mean_until(end)
    }

    /// Same replay for the `records.live` occupancy average.
    pub fn replay_live(&self, start: SimTime, end: SimTime) -> f64 {
        let mut avg = WindowedTimeAverage::windowed(start, 0.0, SimDuration::ZERO);
        for s in &self.samples {
            avg.update(s.at, s.live as f64);
        }
        avg.mean_until(end)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Actor, Tracer};
    use super::*;

    /// The same lifecycle as `LiveJobs`' own unit test: two records, one
    /// delivered after 1s, both killed at 4s.
    fn traced() -> Tracer {
        let mut t = Tracer::with_capacity(64);
        t.birth(SimTime::ZERO, Actor::Publisher, 1);
        t.birth(SimTime::ZERO, Actor::Publisher, 2);
        t.instant(
            SimTime::from_secs(1),
            Actor::Replica(0),
            TraceKind::Deliver,
            1,
        );
        t.death(SimTime::from_secs(4), Actor::Publisher, 1);
        t.death(SimTime::from_secs(4), Actor::Publisher, 2);
        t
    }

    #[test]
    fn recomputes_t_rec_and_counts() {
        let a = LifecycleAnalysis::from_tracer(&traced(), SimTime::from_secs(4));
        assert_eq!(a.births, 2);
        assert_eq!(a.deliveries, 1);
        assert_eq!(a.expiries, 2);
        assert_eq!(a.t_rec.count(), 1);
        assert_eq!(a.t_rec.mean(), SimDuration::from_secs(1));
    }

    #[test]
    fn intervals_cover_both_outcomes() {
        let a = LifecycleAnalysis::from_tracer(&traced(), SimTime::from_secs(4));
        assert_eq!(
            a.intervals,
            vec![
                InconsistencyInterval {
                    key: 1,
                    from: SimTime::ZERO,
                    to: SimTime::from_secs(1),
                    recovered: true,
                },
                InconsistencyInterval {
                    key: 2,
                    from: SimTime::ZERO,
                    to: SimTime::from_secs(4),
                    recovered: false,
                },
            ]
        );
    }

    #[test]
    fn replayed_c_t_matches_hand_integral() {
        let a = LifecycleAnalysis::from_tracer(&traced(), SimTime::from_secs(4));
        // c(t): 0 on [0,1), 0.5 on [1,4) -> 1.5/4.
        let c = a.replay_c_t(SimTime::ZERO, SimDuration::ZERO, SimTime::from_secs(4));
        assert!((c - 0.375).abs() < 1e-12);
        let live = a.replay_live(SimTime::ZERO, SimTime::from_secs(4));
        assert!((live - 2.0).abs() < 1e-12);
    }

    #[test]
    fn update_reopens_interval_only_when_consistent() {
        let mut t = Tracer::with_capacity(64);
        t.birth(SimTime::ZERO, Actor::Publisher, 1);
        t.instant(
            SimTime::from_secs(1),
            Actor::Replica(0),
            TraceKind::Deliver,
            1,
        );
        t.instant(
            SimTime::from_secs(2),
            Actor::Publisher,
            TraceKind::Update,
            1,
        );
        // A second update while already stale: counted, but no new interval.
        t.instant(
            SimTime::from_secs(3),
            Actor::Publisher,
            TraceKind::Update,
            1,
        );
        let a = LifecycleAnalysis::from_tracer(&t, SimTime::from_secs(5));
        assert_eq!(a.updates, 2);
        assert_eq!(a.intervals.len(), 2);
        assert_eq!(a.intervals[1].from, SimTime::from_secs(2));
        assert_eq!(a.intervals[1].to, SimTime::from_secs(5));
        assert!(!a.intervals[1].recovered);
        // Samples: birth, deliver, first update only.
        assert_eq!(a.samples.len(), 3);
    }
}
