//! Deterministic trace exporters: Chrome trace-event JSON (Perfetto) and
//! a compact causal JSONL log.
//!
//! Both formats are hand-assembled from integers and static ASCII labels
//! — no float formatting, no hashing, no wall clock — so the bytes are a
//! pure function of the recorded events and identical across double runs
//! and sweep-worker counts.

use super::{Actor, Tracer};
use std::collections::BTreeMap;
use std::fmt::Write as _;

impl Tracer {
    /// Serializes the trace in Chrome trace-event format (the JSON
    /// object flavor), loadable in Perfetto / `chrome://tracing`.
    ///
    /// Virtual time is the timeline: `ts`/`dur` are sim microseconds.
    /// Each [`Actor`] renders as one named thread of pid 0. Spans become
    /// complete (`ph:"X"`) events, instants become thread-scoped
    /// (`ph:"i"`) marks, and every cross-actor parent edge additionally
    /// emits a flow (`ph:"s"` → `ph:"f"`) pair so causality is drawn as
    /// arrows between lanes.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 * (self.events().len() + 2));
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push_str(",\n");
            }
        };

        // Thread-name metadata for every actor that appears, tid-sorted.
        let mut actors: BTreeMap<u64, Actor> = BTreeMap::new();
        for e in self.events() {
            actors.entry(e.actor.tid()).or_insert(e.actor);
        }
        for (tid, actor) in &actors {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                actor.name()
            );
        }

        for e in self.events() {
            let name = if e.label.is_empty() {
                e.kind.label()
            } else {
                e.label
            };
            let tid = e.actor.tid();
            let ts = e.at.as_micros();
            sep(&mut out);
            match e.end {
                Some(end) => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"dur\":{},\
                         \"name\":\"{name}\",\"cat\":\"{}\",\
                         \"args\":{{\"id\":{},\"parent\":{},\"key\":{}}}}}",
                        end.as_micros() - ts,
                        e.kind.label(),
                        e.id.raw(),
                        e.parent.raw(),
                        e.key
                    );
                }
                None => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"s\":\"t\",\
                         \"name\":\"{name}\",\"cat\":\"{}\",\
                         \"args\":{{\"id\":{},\"parent\":{},\"key\":{}}}}}",
                        e.kind.label(),
                        e.id.raw(),
                        e.parent.raw(),
                        e.key
                    );
                }
            }
            // Cross-actor causality renders as a flow arrow; the flow id
            // is the child's event id, which is unique by construction.
            if let Some(p) = e
                .parent
                .index()
                .and_then(|i| self.events().get(i))
                .filter(|p| p.actor != e.actor)
            {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"ph\":\"s\",\"pid\":0,\"tid\":{},\"ts\":{},\"id\":{},\
                     \"name\":\"causal\",\"cat\":\"flow\"}}",
                    p.actor.tid(),
                    p.at.as_micros(),
                    e.id.raw()
                );
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\
                     \"id\":{},\"name\":\"causal\",\"cat\":\"flow\"}}",
                    e.id.raw()
                );
            }
        }
        out.push_str("\n]}\n");
        out
    }

    /// Serializes the trace as compact causal JSON Lines: one event per
    /// line in id order, then a `{"dropped_events":N}` trailer (mirroring
    /// the typed event log) so truncation is visible in the artifact.
    ///
    /// `dur_us` appears only on spans and `label` only when non-empty,
    /// keeping lines minimal while staying deterministic: whether a field
    /// appears depends only on the event itself.
    pub fn to_causal_jsonl(&self) -> String {
        let mut out = String::with_capacity(96 * (self.events().len() + 1));
        for e in self.events() {
            let _ = write!(
                out,
                "{{\"id\":{},\"parent\":{},\"t_us\":{}",
                e.id.raw(),
                e.parent.raw(),
                e.at.as_micros()
            );
            if let Some(end) = e.end {
                let _ = write!(out, ",\"dur_us\":{}", end.as_micros() - e.at.as_micros());
            }
            let _ = write!(
                out,
                ",\"actor\":\"{}\",\"kind\":\"{}\",\"key\":{}",
                e.actor.name(),
                e.kind.label(),
                e.key
            );
            if !e.label.is_empty() {
                let _ = write!(out, ",\"label\":\"{}\"", e.label);
            }
            out.push_str("}\n");
        }
        let _ = writeln!(out, "{{\"dropped_events\":{}}}", self.dropped());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Actor, TraceKind, Tracer};
    use crate::time::SimTime;

    fn sample() -> Tracer {
        let mut t = Tracer::with_capacity(16);
        let root = t.birth(SimTime::ZERO, Actor::Publisher, 7);
        let tx = t.span(
            SimTime::from_millis(10),
            SimTime::from_millis(12),
            Actor::HotServer,
            TraceKind::Announce,
            7,
        );
        t.instant_under(
            SimTime::from_millis(62),
            Actor::Replica(0),
            TraceKind::Deliver,
            7,
            tx,
        );
        t.close(root, SimTime::from_secs(1));
        t.dispatch(SimTime::from_secs(1), "lifetime-end");
        t
    }

    #[test]
    fn chrome_export_shape() {
        let json = sample().to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        // Thread metadata for each actor that appears.
        for name in ["publisher", "hot-server", "replica-0", "engine"] {
            assert!(
                json.contains(&format!("\"args\":{{\"name\":\"{name}\"}}")),
                "missing thread_name for {name}"
            );
        }
        // The announce span is a complete event with its virtual duration.
        assert!(json.contains("\"ph\":\"X\",\"pid\":0,\"tid\":3,\"ts\":10000,\"dur\":2000"));
        // The cross-actor deliver edge produces a flow pair.
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\",\"bp\":\"e\""));
        // Export is deterministic.
        assert_eq!(json, sample().to_chrome_json());
    }

    #[test]
    fn causal_jsonl_shape() {
        let jsonl = sample().to_causal_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(
            lines[0],
            "{\"id\":1,\"parent\":0,\"t_us\":0,\"dur_us\":1000000,\
             \"actor\":\"publisher\",\"kind\":\"birth\",\"key\":7}"
        );
        assert!(
            lines[2].contains("\"parent\":2"),
            "deliver parents the tx span"
        );
        assert!(lines[3].contains("\"label\":\"lifetime-end\""));
        assert_eq!(lines[4], "{\"dropped_events\":0}");
        assert_eq!(jsonl, sample().to_causal_jsonl());
    }
}
